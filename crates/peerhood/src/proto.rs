//! The PeerHood wire protocol messages.
//!
//! These are the commands exchanged between daemons and libraries in the
//! original implementation (PH_BRIDGE, PH_OK, the inquiry information
//! fetches of Fig. 3.7, data packets and disconnects), extended with the
//! fields the thesis adds for dynamic discovery (neighbour lists with jump
//! counts and qualities) and for result routing (client parameters carried
//! at connection start, §5.3 option 2).

use std::rc::Rc;

use serde::{Deserialize, Serialize};

use crate::device::DeviceInfo;
use crate::error::ErrorCode;
use crate::ids::{ConnectionId, DeviceAddress};
use crate::service::ServiceInfo;

/// One entry of a device's storage as exported in an inquiry response: the
/// neighbourhood information fetch of §3.1/Fig. 3.5.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeighborRecord {
    /// The advertised device.
    pub info: DeviceInfo,
    /// Jump count as seen from the responding device (0 = its direct
    /// neighbour).
    pub jumps: u8,
    /// Per-hop qualities along the responder's route to this device, nearest
    /// hop first.
    pub hop_qualities: Vec<u8>,
    /// Services the device offers. Interned behind an `Rc` slice so the same
    /// list flows from decode through the device storage and back out of
    /// `export_neighbors` without per-record deep clones.
    pub services: Rc<[ServiceInfo]>,
}

/// A protocol message carried as one payload on a simulated link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// Daemon-level request for device / service / prototype / neighbourhood
    /// information (the four short fetch connections of Fig. 3.7, unified
    /// into one exchange as the thesis suggests in §3.4.1).
    InquiryRequest {
        /// The requesting device's own description.
        requester: DeviceInfo,
    },
    /// Daemon-level response to an [`Message::InquiryRequest`].
    InquiryResponse {
        /// The responding device's description.
        device: DeviceInfo,
        /// Services registered on the responding device.
        services: Vec<ServiceInfo>,
        /// The responder's exported device storage (neighbourhood
        /// information), which the requester feeds to
        /// `AnalyzeNeighbourhoodDevices`.
        neighbors: Vec<NeighborRecord>,
        /// Bridge load as a percentage of the configured maximum relayed
        /// connections; used to de-rate the advertised link quality and avoid
        /// the "bottle neck" situation described in §4.
        bridge_load_percent: u8,
    },
    /// Application connection request to a named service on the receiving
    /// device (the normal `Connect` path of Fig. 2.5).
    ConnectRequest {
        /// End-to-end connection identity allocated by the initiator.
        conn_id: ConnectionId,
        /// Name of the target service.
        service: String,
        /// The connecting client's parameters (address, name, mobility,
        /// checksum). Carried so the server can later re-establish a
        /// connection to the client for result routing (§5.3, option 2).
        client: DeviceInfo,
        /// When set, this connection is the server's reply channel for the
        /// given original connection (result routing): the receiving client
        /// should attach it to the waiting session instead of a service.
        reply_context: Option<ConnectionId>,
    },
    /// PH_BRIDGE: ask the receiving device's bridge service to relay the
    /// connection onwards to `destination` (§4.1/Fig. 4.3).
    BridgeRequest {
        /// End-to-end connection identity allocated by the initiator.
        conn_id: ConnectionId,
        /// Final destination device.
        destination: DeviceAddress,
        /// Name of the target service on the destination.
        service: String,
        /// The original client's parameters, forwarded unchanged.
        client: DeviceInfo,
        /// Reply-channel context, forwarded unchanged (see
        /// [`Message::ConnectRequest::reply_context`]).
        reply_context: Option<ConnectionId>,
    },
    /// PH_OK: end-to-end acknowledgement that the connection (direct or
    /// bridged) reached the destination service.
    Accept {
        /// The acknowledged connection.
        conn_id: ConnectionId,
    },
    /// Protocol-level failure notification, propagated back along the
    /// connection chain.
    Error {
        /// The affected connection.
        conn_id: ConnectionId,
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Application payload on an established connection.
    Data {
        /// The connection the payload belongs to.
        conn_id: ConnectionId,
        /// Raw application bytes.
        payload: Vec<u8>,
    },
    /// Graceful end of a connection; bridges forward it and drop the pair.
    Disconnect {
        /// The connection being closed.
        conn_id: ConnectionId,
    },
}

impl Message {
    /// The connection this message belongs to, if any (inquiry traffic is
    /// daemon-level and carries no connection id).
    pub fn connection_id(&self) -> Option<ConnectionId> {
        match self {
            Message::InquiryRequest { .. } | Message::InquiryResponse { .. } => None,
            Message::ConnectRequest { conn_id, .. }
            | Message::BridgeRequest { conn_id, .. }
            | Message::Accept { conn_id }
            | Message::Error { conn_id, .. }
            | Message::Data { conn_id, .. }
            | Message::Disconnect { conn_id } => Some(*conn_id),
        }
    }

    /// Short command name, mirroring the original protocol constants.
    pub fn command_name(&self) -> &'static str {
        match self {
            Message::InquiryRequest { .. } => "PH_INQUIRY",
            Message::InquiryResponse { .. } => "PH_INQUIRY_RESP",
            Message::ConnectRequest { .. } => "PH_CONNECT",
            Message::BridgeRequest { .. } => "PH_BRIDGE",
            Message::Accept { .. } => "PH_OK",
            Message::Error { .. } => "PH_ERROR",
            Message::Data { .. } => "PH_DATA",
            Message::Disconnect { .. } => "PH_DISCONNECT",
        }
    }

    /// True for messages that establish or tear down connections (as opposed
    /// to carrying payload or discovery information).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Message::ConnectRequest { .. }
                | Message::BridgeRequest { .. }
                | Message::Accept { .. }
                | Message::Error { .. }
                | Message::Disconnect { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MobilityClass;
    use simnet::{NodeId, RadioTech};

    fn client() -> DeviceInfo {
        DeviceInfo::new(
            NodeId::from_raw(1),
            "client",
            MobilityClass::Dynamic,
            &[RadioTech::Bluetooth],
        )
    }

    #[test]
    fn connection_id_extraction() {
        let conn = ConnectionId::new(DeviceAddress::from_node_raw(1), 5);
        let msgs = vec![
            Message::ConnectRequest {
                conn_id: conn,
                service: "echo".into(),
                client: client(),
                reply_context: None,
            },
            Message::Accept { conn_id: conn },
            Message::Data {
                conn_id: conn,
                payload: vec![1, 2, 3],
            },
            Message::Disconnect { conn_id: conn },
        ];
        for m in &msgs {
            assert_eq!(m.connection_id(), Some(conn));
        }
        let inquiry = Message::InquiryRequest { requester: client() };
        assert_eq!(inquiry.connection_id(), None);
    }

    #[test]
    fn command_names_follow_original_protocol() {
        let conn = ConnectionId::new(DeviceAddress::from_node_raw(1), 0);
        assert_eq!(
            Message::BridgeRequest {
                conn_id: conn,
                destination: DeviceAddress::from_node_raw(9),
                service: "s".into(),
                client: client(),
                reply_context: None,
            }
            .command_name(),
            "PH_BRIDGE"
        );
        assert_eq!(Message::Accept { conn_id: conn }.command_name(), "PH_OK");
        assert_eq!(
            Message::InquiryRequest { requester: client() }.command_name(),
            "PH_INQUIRY"
        );
    }

    #[test]
    fn control_classification() {
        let conn = ConnectionId::new(DeviceAddress::from_node_raw(1), 0);
        assert!(Message::Accept { conn_id: conn }.is_control());
        assert!(!Message::Data {
            conn_id: conn,
            payload: vec![]
        }
        .is_control());
        assert!(!Message::InquiryRequest { requester: client() }.is_control());
    }
}
