//! `peerhood::resilience` — circuit breakers, backpressure and admission
//! control on the PeerHood data path.
//!
//! The thesis' middleware trusts every peer and accepts every connection,
//! which degrades ungracefully under overload (see the E13/E14 fault
//! experiments). This module adds an ordered, per-node middleware pipeline
//! interposed on the data path, composed via [`ResilienceConfig`] on the
//! node builder with each layer independently disableable:
//!
//! 1. **per-peer circuit breakers** — Closed/Open/HalfOpen state machines
//!    keyed by [`DeviceAddress`], tripped by connect failures, peer crashes
//!    and flapping (repeated link breaks within a window), with
//!    deterministic virtual-clock cooldowns and half-open probes, gating
//!    every outgoing dial (application connects, daemon fetches, reply
//!    reconnects and handover legs all funnel through the same gate),
//! 2. **bounded per-app inbound/outbound rate limits with explicit
//!    shedding** — token buckets plus a cap on the §5.3 result-routing
//!    outbox; shed work is surfaced as
//!    [`PeerHoodError::Overloaded`](crate::error::PeerHoodError::Overloaded)
//!    or a typed [`Shed`](crate::node::PeerHoodEvent::Shed) event to the
//!    owning app, never dropped silently,
//! 3. **admission control** on incoming radio connections — a per-node
//!    concurrent-session cap and a per-peer accept-rate cap; rejected
//!    attempts are answered at the radio layer (the dialer sees
//!    `ConnectError::Rejected`) before any middleware state is allocated,
//!    and hot neighbours re-asking for inquiry responses are already served
//!    from the generation-keyed cached frame.
//!
//! Every decision is a pure function of the virtual clock and the observed
//! event stream — the pipeline draws **no randomness**, and with every layer
//! disabled (the default) it is behaviourally invisible, preserving
//! byte-identical reports for all existing experiments.
//!
//! A [`ResilienceStats`] snapshot (per-layer trips, sheds, admits/rejects,
//! breaker states) is exported per node through
//! [`PeerHoodNode::resilience_stats`](crate::node::PeerHoodNode::resilience_stats).

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};
use simnet::{SimDuration, SimTime, Telemetry};

use crate::ids::DeviceAddress;
use crate::node::AppId;

/// Circuit-breaker layer tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Master switch of the breaker layer.
    pub enabled: bool,
    /// Consecutive dial failures (connect refused/failed, peer crashed) that
    /// trip a Closed breaker open.
    pub failure_threshold: u32,
    /// Link breaks towards one peer within [`BreakerConfig::flap_window`]
    /// that trip the breaker (the flapping-neighbour detector).
    pub flap_threshold: u32,
    /// Sliding window for flap counting.
    pub flap_window: SimDuration,
    /// How long an Open breaker blocks dials before admitting a half-open
    /// probe.
    pub cooldown: SimDuration,
    /// Successful dials a HalfOpen breaker requires before closing again.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            enabled: false,
            failure_threshold: 3,
            flap_threshold: 3,
            flap_window: SimDuration::from_secs(60),
            cooldown: SimDuration::from_secs(30),
            probe_successes: 1,
        }
    }
}

/// Backpressure layer tuning (per-app token buckets plus queue caps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackpressureConfig {
    /// Master switch of the backpressure layer.
    pub enabled: bool,
    /// Sustained inbound payload rate per app (payloads/second).
    pub inbound_rate: u32,
    /// Inbound burst size (bucket capacity).
    pub inbound_burst: u32,
    /// Sustained outbound send rate per app (payloads/second).
    pub outbound_rate: u32,
    /// Outbound burst size (bucket capacity).
    pub outbound_burst: u32,
    /// Cap on the §5.3 result-routing outbox of one connection; further
    /// queued results are shed with an explicit error.
    pub outbox_cap: usize,
    /// Master switch of rate adaptation: when set, each bucket learns its
    /// app's typical demand via a windowed EWMA and tightens the admitted
    /// rate to `demand × headroom`, clamped to `[adapt_min_rate, the static
    /// rate]`. The static rate stays a hard ceiling — adaptation only ever
    /// tightens — so a peer or app that suddenly blasts traffic far beyond
    /// its learned envelope is shed early instead of riding the full static
    /// budget. Off by default, and off ⇒ byte-identical to the fixed bucket.
    #[serde(default)]
    pub adaptive: bool,
    /// Observation window of the adaptation law; boundaries are derived from
    /// the virtual clock, so adaptation is fully deterministic.
    #[serde(default = "default_adapt_window")]
    pub adapt_window: SimDuration,
    /// EWMA weight (percent) of the newest window's observed demand.
    #[serde(default = "default_adapt_alpha")]
    pub adapt_alpha_percent: u32,
    /// Slack (percent) granted above the learned demand: the adapted rate is
    /// `ewma_demand × adapt_headroom_percent / 100`.
    #[serde(default = "default_adapt_headroom")]
    pub adapt_headroom_percent: u32,
    /// Floor of the adapted rate, so a freshly idle app is never throttled
    /// to zero and can always ramp back up.
    #[serde(default = "default_adapt_min_rate")]
    pub adapt_min_rate: u32,
}

fn default_adapt_window() -> SimDuration {
    SimDuration::from_secs(5)
}

fn default_adapt_alpha() -> u32 {
    30
}

fn default_adapt_headroom() -> u32 {
    150
}

fn default_adapt_min_rate() -> u32 {
    5
}

impl Default for BackpressureConfig {
    fn default() -> Self {
        BackpressureConfig {
            enabled: false,
            inbound_rate: 50,
            inbound_burst: 100,
            outbound_rate: 50,
            outbound_burst: 100,
            outbox_cap: 64,
            adaptive: false,
            adapt_window: default_adapt_window(),
            adapt_alpha_percent: default_adapt_alpha(),
            adapt_headroom_percent: default_adapt_headroom(),
            adapt_min_rate: default_adapt_min_rate(),
        }
    }
}

/// Admission-control layer tuning (incoming radio connections).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Master switch of the admission layer.
    pub enabled: bool,
    /// Maximum concurrent incoming sessions (established incoming app
    /// connections plus not-yet-identified accepted links).
    pub max_sessions: usize,
    /// Accepted connections per peer within
    /// [`AdmissionConfig::per_peer_window`].
    pub per_peer_rate: u32,
    /// Sliding window for the per-peer rate cap.
    pub per_peer_window: SimDuration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: false,
            max_sessions: 48,
            per_peer_rate: 6,
            per_peer_window: SimDuration::from_secs(10),
        }
    }
}

/// Composition of the resilience pipeline: breaker → backpressure →
/// admission, each layer independently disableable. The default disables
/// everything, making the pipeline behaviourally invisible.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Per-peer circuit breakers on every outgoing dial.
    pub breaker: BreakerConfig,
    /// Per-app inbound/outbound rate limits and queue caps.
    pub backpressure: BackpressureConfig,
    /// Admission control on incoming radio connections.
    pub admission: AdmissionConfig,
}

impl ResilienceConfig {
    /// Every layer disabled (the default; byte-identical to a build without
    /// the subsystem).
    pub fn disabled() -> Self {
        ResilienceConfig::default()
    }

    /// Every layer enabled with its default knobs.
    pub fn all_on() -> Self {
        let mut cfg = ResilienceConfig::default();
        cfg.breaker.enabled = true;
        cfg.backpressure.enabled = true;
        cfg.admission.enabled = true;
        cfg
    }

    /// True when at least one layer is active.
    pub fn any_enabled(&self) -> bool {
        self.breaker.enabled || self.backpressure.enabled || self.admission.enabled
    }
}

/// State of one per-peer circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Dials flow; failures are counted.
    Closed,
    /// Dials are refused locally until the cooldown elapses.
    Open,
    /// The cooldown elapsed; probe dials are admitted and decide the fate.
    HalfOpen,
}

/// One per-peer Closed→Open→HalfOpen state machine. All transitions are
/// driven by the deterministic virtual clock; no randomness is involved.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    breaks: VecDeque<SimTime>,
    opened_at: SimTime,
    probe_successes: u32,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            breaks: VecDeque::new(),
            opened_at: SimTime::ZERO,
            probe_successes: 0,
        }
    }
}

impl CircuitBreaker {
    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.consecutive_failures = 0;
        self.probe_successes = 0;
    }

    /// Gate for one outgoing dial. An Open breaker past its cooldown moves
    /// to HalfOpen and admits the dial as a probe; returns whether the dial
    /// may proceed.
    pub fn allow(&mut self, now: SimTime, cfg: &BreakerConfig) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now.saturating_since(self.opened_at) >= cfg.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.probe_successes = 0;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful dial (link established to the peer).
    pub fn record_success(&mut self, cfg: &BreakerConfig) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= cfg.probe_successes {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    self.breaks.clear();
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Records a dial failure (or a peer crash). Returns true when this
    /// failure tripped the breaker open.
    pub fn record_failure(&mut self, now: SimTime, cfg: &BreakerConfig) -> bool {
        match self.state {
            BreakerState::HalfOpen => {
                // The probe failed: straight back to Open, cooldown restarts.
                self.trip(now);
                true
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= cfg.failure_threshold {
                    self.trip(now);
                    true
                } else {
                    false
                }
            }
            BreakerState::Open => false,
        }
    }

    /// Records a link break towards the peer (the flap detector). Returns
    /// true when the break tripped the breaker.
    pub fn record_break(&mut self, now: SimTime, cfg: &BreakerConfig) -> bool {
        let horizon = now.saturating_since(SimTime::ZERO);
        while let Some(first) = self.breaks.front() {
            if horizon
                .as_micros()
                .saturating_sub(first.saturating_since(SimTime::ZERO).as_micros())
                > cfg.flap_window.as_micros()
            {
                self.breaks.pop_front();
            } else {
                break;
            }
        }
        self.breaks.push_back(now);
        match self.state {
            BreakerState::HalfOpen => {
                // The probe's link broke under it.
                self.trip(now);
                true
            }
            BreakerState::Closed if self.breaks.len() >= cfg.flap_threshold as usize => {
                self.trip(now);
                true
            }
            _ => false,
        }
    }
}

const MICRO_TOKEN: u64 = 1_000_000;

/// After this many consecutive empty windows the EWMA demand is treated as
/// fully decayed (it is below any representable rate long before that),
/// which bounds the catch-up work after an arbitrarily long idle.
const EWMA_DECAY_CAP: u32 = 64;

/// The EWMA adaptation law of the backpressure layer, separated from the
/// bucket so it can be driven window-by-window in tests: feed it one
/// observation (attempted takes) per elapsed window and read back the rate
/// the bucket should refill at. All arithmetic is integer micro-units off
/// the deterministic virtual clock — the law draws no randomness.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveRate {
    /// EWMA of per-window demand, in micro-attempts per window.
    ewma_micro: u64,
    /// Static configured rate (tokens/second) — the hard ceiling.
    ceiling: u32,
    /// Floor of the adapted rate (tokens/second).
    floor: u32,
    /// EWMA weight (percent) of the newest observation.
    alpha_percent: u32,
    /// Slack (percent) granted above the learned demand.
    headroom_percent: u32,
    /// Window length in seconds (micro-precision kept by the caller).
    window_secs_micro: u64,
}

impl AdaptiveRate {
    /// A law that has seen no traffic yet. Until the first window closes the
    /// effective rate is the static ceiling, so adaptation never penalises
    /// startup.
    pub fn new(cfg: &BackpressureConfig, ceiling: u32) -> Self {
        AdaptiveRate {
            // Seed the EWMA at the ceiling's own per-window demand so the
            // learned envelope starts wide open and tightens only from
            // observed behaviour.
            ewma_micro: (ceiling as u64)
                .saturating_mul(cfg.adapt_window.as_micros())
                .max(MICRO_TOKEN),
            ceiling,
            floor: cfg.adapt_min_rate.min(ceiling),
            alpha_percent: cfg.adapt_alpha_percent.min(100),
            headroom_percent: cfg.adapt_headroom_percent,
            window_secs_micro: cfg.adapt_window.as_micros().max(1),
        }
    }

    /// Folds one closed window's observed demand (attempted takes, admitted
    /// or shed) into the EWMA.
    pub fn observe_window(&mut self, attempts: u64) {
        let alpha = self.alpha_percent as u64;
        self.ewma_micro = attempts
            .saturating_mul(MICRO_TOKEN)
            .saturating_mul(alpha)
            .saturating_add(self.ewma_micro.saturating_mul(100 - alpha))
            / 100;
    }

    /// Folds `windows` consecutive empty windows at once (bounded decay, so
    /// a long idle costs constant work).
    pub fn observe_idle(&mut self, windows: u32) {
        for _ in 0..windows.min(EWMA_DECAY_CAP) {
            self.observe_window(0);
        }
        if windows > EWMA_DECAY_CAP {
            self.ewma_micro = 0;
        }
    }

    /// The rate (tokens/second) the bucket should refill at: the learned
    /// per-second demand plus headroom, clamped to `[floor, ceiling]`.
    pub fn effective_rate(&self) -> u32 {
        let demand_per_sec_micro = self
            .ewma_micro
            .saturating_mul(MICRO_TOKEN)
            .checked_div(self.window_secs_micro)
            .unwrap_or(0);
        let with_headroom = demand_per_sec_micro.saturating_mul(self.headroom_percent as u64) / 100;
        let rate = (with_headroom / MICRO_TOKEN).min(u32::MAX as u64) as u32;
        rate.clamp(self.floor, self.ceiling)
    }
}

/// Deterministic integer token bucket: one token = [`MICRO_TOKEN`]
/// micro-tokens, refilled linearly from the virtual clock. With an
/// [`AdaptiveRate`] attached, the refill rate is re-derived at every
/// virtual-clock window boundary from the learned demand EWMA.
#[derive(Debug, Clone)]
struct TokenBucket {
    rate_per_sec: u64,
    burst: u64,
    micro: u64,
    last: SimTime,
    adaptive: Option<AdaptiveBucketState>,
}

#[derive(Debug, Clone)]
struct AdaptiveBucketState {
    law: AdaptiveRate,
    window_micros: u64,
    /// Index of the window `last observation` falls in.
    window_index: u64,
    /// Attempted takes in the current window.
    attempts: u64,
    /// Window rolls that changed the effective rate (for the stats plane).
    adaptations: u64,
    /// The static rate and burst, so the burst can scale with the adapted
    /// rate: a tightened envelope must also stop the app from banking the
    /// full static burst while quiet and then blasting it in one tick.
    static_rate: u64,
    static_burst: u64,
}

impl TokenBucket {
    fn new(rate_per_sec: u32, burst: u32, now: SimTime) -> Self {
        TokenBucket {
            rate_per_sec: rate_per_sec as u64,
            burst: (burst.max(1)) as u64,
            micro: (burst.max(1)) as u64 * MICRO_TOKEN,
            last: now,
            adaptive: None,
        }
    }

    fn new_adaptive(rate_per_sec: u32, burst: u32, now: SimTime, cfg: &BackpressureConfig) -> Self {
        let mut bucket = TokenBucket::new(rate_per_sec, burst, now);
        let window_micros = cfg.adapt_window.as_micros().max(1);
        bucket.adaptive = Some(AdaptiveBucketState {
            law: AdaptiveRate::new(cfg, rate_per_sec),
            window_micros,
            window_index: now.saturating_since(SimTime::ZERO).as_micros() / window_micros,
            attempts: 0,
            adaptations: 0,
            static_rate: (rate_per_sec.max(1)) as u64,
            static_burst: (burst.max(1)) as u64,
        });
        bucket
    }

    /// Closes every window boundary crossed since the last observation and
    /// re-derives the refill rate from the law.
    fn roll_windows(&mut self, now: SimTime) {
        let Some(state) = self.adaptive.as_mut() else {
            return;
        };
        let index = now.saturating_since(SimTime::ZERO).as_micros() / state.window_micros;
        if index <= state.window_index {
            return;
        }
        let crossed = index - state.window_index;
        state.law.observe_window(state.attempts);
        if crossed > 1 {
            state.law.observe_idle((crossed - 1).min(u32::MAX as u64) as u32);
        }
        state.attempts = 0;
        state.window_index = index;
        let rate = state.law.effective_rate() as u64;
        if rate != self.rate_per_sec {
            state.adaptations += 1;
            self.rate_per_sec = rate;
            // Scale the burst with the rate, so a tightened envelope also
            // shrinks how many tokens a quiet app can bank.
            self.burst = (rate.saturating_mul(state.static_burst) / state.static_rate).max(1);
            self.micro = self.micro.min(self.burst * MICRO_TOKEN);
        }
    }

    fn try_take(&mut self, now: SimTime) -> bool {
        // Refill first (at the rate that was in force), then roll the
        // adaptation window, then count this attempt as demand.
        let elapsed = now.saturating_since(self.last).as_micros();
        self.last = now;
        self.micro = self
            .micro
            .saturating_add(elapsed.saturating_mul(self.rate_per_sec))
            .min(self.burst * MICRO_TOKEN);
        self.roll_windows(now);
        if let Some(state) = self.adaptive.as_mut() {
            state.attempts += 1;
        }
        if self.micro >= MICRO_TOKEN {
            self.micro -= MICRO_TOKEN;
            true
        } else {
            false
        }
    }

    fn adaptations(&self) -> u64 {
        self.adaptive.as_ref().map(|s| s.adaptations).unwrap_or(0)
    }
}

/// Point-in-time snapshot of the pipeline's per-layer counters and breaker
/// population, exported per node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Times any breaker transitioned to Open.
    pub breaker_trips: u64,
    /// Outgoing dials refused locally by an Open breaker.
    pub breaker_blocked: u64,
    /// Half-open probe dials admitted.
    pub breaker_probes: u64,
    /// Breakers currently Open.
    pub breakers_open: usize,
    /// Breakers currently HalfOpen.
    pub breakers_half_open: usize,
    /// Inbound payloads shed by the per-app token bucket.
    pub inbound_shed: u64,
    /// Outbound sends shed by the per-app token bucket.
    pub outbound_shed: u64,
    /// Results shed by the outbox queue cap.
    pub queue_shed: u64,
    /// Window rolls of the adaptive law that actually changed a bucket's
    /// refill rate (zero unless [`BackpressureConfig::adaptive`] is set).
    pub rate_adaptations: u64,
    /// Incoming connections admitted by the admission layer.
    pub admitted: u64,
    /// Incoming connections rejected by the concurrent-session cap.
    pub rejected_sessions: u64,
    /// Incoming connections rejected by the per-peer rate cap.
    pub rejected_rate: u64,
    /// Inquiry responses served from the generation-keyed cached frame.
    pub inquiries_cached: u64,
    /// Inquiry responses that required a fresh encode.
    pub inquiries_encoded: u64,
}

impl ResilienceStats {
    /// Adds another snapshot into this one; breaker populations and counters
    /// all sum, so a fleet-wide roll-up is a plain fold.
    pub fn absorb(&mut self, other: &ResilienceStats) {
        self.breaker_trips += other.breaker_trips;
        self.breaker_blocked += other.breaker_blocked;
        self.breaker_probes += other.breaker_probes;
        self.breakers_open += other.breakers_open;
        self.breakers_half_open += other.breakers_half_open;
        self.inbound_shed += other.inbound_shed;
        self.outbound_shed += other.outbound_shed;
        self.queue_shed += other.queue_shed;
        self.rate_adaptations += other.rate_adaptations;
        self.admitted += other.admitted;
        self.rejected_sessions += other.rejected_sessions;
        self.rejected_rate += other.rejected_rate;
        self.inquiries_cached += other.inquiries_cached;
        self.inquiries_encoded += other.inquiries_encoded;
    }

    /// Mirrors the snapshot into the telemetry plane under the `resilience`
    /// subsystem: monotonic tallies as counters, the live breaker population
    /// as gauges. `label` distinguishes scopes (a node name, or `None` for a
    /// fleet-wide roll-up).
    pub fn export_gauges(&self, tel: &mut Telemetry, label: Option<&str>) {
        tel.set_counter("resilience", "breaker_trips", label, self.breaker_trips);
        tel.set_counter("resilience", "breaker_blocked", label, self.breaker_blocked);
        tel.set_counter("resilience", "breaker_probes", label, self.breaker_probes);
        tel.set_gauge("resilience", "breakers_open", label, self.breakers_open as f64);
        tel.set_gauge(
            "resilience",
            "breakers_half_open",
            label,
            self.breakers_half_open as f64,
        );
        tel.set_counter("resilience", "inbound_shed", label, self.inbound_shed);
        tel.set_counter("resilience", "outbound_shed", label, self.outbound_shed);
        tel.set_counter("resilience", "queue_shed", label, self.queue_shed);
        tel.set_counter("resilience", "rate_adaptations", label, self.rate_adaptations);
        tel.set_counter("resilience", "admitted", label, self.admitted);
        tel.set_counter("resilience", "rejected_sessions", label, self.rejected_sessions);
        tel.set_counter("resilience", "rejected_rate", label, self.rejected_rate);
        tel.set_counter("resilience", "inquiries_cached", label, self.inquiries_cached);
        tel.set_counter("resilience", "inquiries_encoded", label, self.inquiries_encoded);
    }
}

/// Runtime state of one node's resilience pipeline. Owned by the middleware
/// core; every data-path hook funnels through the methods here, and each
/// method is a no-op returning "allow" when its layer is disabled.
#[derive(Debug, Clone)]
pub struct Resilience {
    cfg: ResilienceConfig,
    breakers: BTreeMap<DeviceAddress, CircuitBreaker>,
    inbound: BTreeMap<Option<AppId>, TokenBucket>,
    outbound: BTreeMap<Option<AppId>, TokenBucket>,
    admits: BTreeMap<DeviceAddress, VecDeque<SimTime>>,
    breaker_trips: u64,
    breaker_blocked: u64,
    breaker_probes: u64,
    inbound_shed: u64,
    outbound_shed: u64,
    queue_shed: u64,
    admitted: u64,
    rejected_sessions: u64,
    rejected_rate: u64,
    inquiries_cached: u64,
    inquiries_encoded: u64,
}

impl Resilience {
    /// Builds the pipeline from its configuration.
    pub fn new(cfg: ResilienceConfig) -> Self {
        Resilience {
            cfg,
            breakers: BTreeMap::new(),
            inbound: BTreeMap::new(),
            outbound: BTreeMap::new(),
            admits: BTreeMap::new(),
            breaker_trips: 0,
            breaker_blocked: 0,
            breaker_probes: 0,
            inbound_shed: 0,
            outbound_shed: 0,
            queue_shed: 0,
            admitted: 0,
            rejected_sessions: 0,
            rejected_rate: 0,
            inquiries_cached: 0,
            inquiries_encoded: 0,
        }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &ResilienceConfig {
        &self.cfg
    }

    // ------------------------------------------------------------------
    // Layer 1: per-peer circuit breakers
    // ------------------------------------------------------------------

    /// Gate for one outgoing dial towards `peer` (the first physical hop).
    /// Every dial the middleware starts — application connects, daemon
    /// fetches, reply reconnects, handover legs — asks here first.
    pub fn allow_dial(&mut self, peer: DeviceAddress, now: SimTime) -> bool {
        if !self.cfg.breaker.enabled {
            return true;
        }
        let breaker = self.breakers.entry(peer).or_default();
        let was_open = breaker.state() == BreakerState::Open;
        let ok = breaker.allow(now, &self.cfg.breaker);
        if ok {
            if was_open {
                self.breaker_probes += 1;
            }
        } else {
            self.breaker_blocked += 1;
        }
        ok
    }

    /// Records a successful dial (radio link established towards `peer`).
    pub fn record_dial_success(&mut self, peer: DeviceAddress) {
        if !self.cfg.breaker.enabled {
            return;
        }
        if let Some(b) = self.breakers.get_mut(&peer) {
            b.record_success(&self.cfg.breaker);
        }
    }

    /// Records a failed dial (connect refused/failed) or a peer crash.
    pub fn record_dial_failure(&mut self, peer: DeviceAddress, now: SimTime) {
        if !self.cfg.breaker.enabled {
            return;
        }
        if self
            .breakers
            .entry(peer)
            .or_default()
            .record_failure(now, &self.cfg.breaker)
        {
            self.breaker_trips += 1;
        }
    }

    /// Records a link break towards `peer` (flap counting).
    pub fn record_link_break(&mut self, peer: DeviceAddress, now: SimTime) {
        if !self.cfg.breaker.enabled {
            return;
        }
        if self
            .breakers
            .entry(peer)
            .or_default()
            .record_break(now, &self.cfg.breaker)
        {
            self.breaker_trips += 1;
        }
    }

    /// The breaker state towards a peer (`None` when the peer was never
    /// dialled or the layer is disabled).
    pub fn breaker_state(&self, peer: DeviceAddress) -> Option<BreakerState> {
        self.breakers.get(&peer).map(|b| b.state())
    }

    // ------------------------------------------------------------------
    // Layer 2: per-app backpressure
    // ------------------------------------------------------------------

    /// Gate for one outbound application send by `app`.
    pub fn allow_outbound(&mut self, app: Option<AppId>, now: SimTime) -> bool {
        if !self.cfg.backpressure.enabled {
            return true;
        }
        let cfg = &self.cfg.backpressure;
        let bucket = self.outbound.entry(app).or_insert_with(|| {
            if cfg.adaptive {
                TokenBucket::new_adaptive(cfg.outbound_rate, cfg.outbound_burst, now, cfg)
            } else {
                TokenBucket::new(cfg.outbound_rate, cfg.outbound_burst, now)
            }
        });
        let ok = bucket.try_take(now);
        if !ok {
            self.outbound_shed += 1;
        }
        ok
    }

    /// Gate for one inbound payload delivered to `app`.
    pub fn allow_inbound(&mut self, app: Option<AppId>, now: SimTime) -> bool {
        if !self.cfg.backpressure.enabled {
            return true;
        }
        let cfg = &self.cfg.backpressure;
        let bucket = self.inbound.entry(app).or_insert_with(|| {
            if cfg.adaptive {
                TokenBucket::new_adaptive(cfg.inbound_rate, cfg.inbound_burst, now, cfg)
            } else {
                TokenBucket::new(cfg.inbound_rate, cfg.inbound_burst, now)
            }
        });
        let ok = bucket.try_take(now);
        if !ok {
            self.inbound_shed += 1;
        }
        ok
    }

    /// The outbox queue cap, when the backpressure layer is active.
    pub fn outbox_cap(&self) -> Option<usize> {
        self.cfg
            .backpressure
            .enabled
            .then_some(self.cfg.backpressure.outbox_cap)
    }

    /// Counts one result shed by the outbox cap.
    pub fn note_queue_shed(&mut self) {
        self.queue_shed += 1;
    }

    // ------------------------------------------------------------------
    // Layer 3: admission control
    // ------------------------------------------------------------------

    /// Gate for one incoming radio connection from `peer`.
    /// `active_sessions` is the caller-computed concurrent incoming-session
    /// count (established incoming connections plus unidentified links).
    pub fn admit(&mut self, peer: DeviceAddress, now: SimTime, active_sessions: usize) -> bool {
        if !self.cfg.admission.enabled {
            return true;
        }
        if active_sessions >= self.cfg.admission.max_sessions {
            self.rejected_sessions += 1;
            return false;
        }
        let window = self.cfg.admission.per_peer_window;
        let recent = self.admits.entry(peer).or_default();
        while let Some(first) = recent.front() {
            if now.saturating_since(*first) > window {
                recent.pop_front();
            } else {
                break;
            }
        }
        if recent.len() >= self.cfg.admission.per_peer_rate as usize {
            self.rejected_rate += 1;
            return false;
        }
        recent.push_back(now);
        self.admitted += 1;
        true
    }

    // ------------------------------------------------------------------
    // Layer 4: observability
    // ------------------------------------------------------------------

    /// Counts one inquiry response, served from the cached frame or freshly
    /// encoded (pure accounting; the cache itself lives in the wire layer).
    pub fn note_inquiry_served(&mut self, cached: bool) {
        if cached {
            self.inquiries_cached += 1;
        } else {
            self.inquiries_encoded += 1;
        }
    }

    /// Point-in-time snapshot of every per-layer counter.
    pub fn stats(&self) -> ResilienceStats {
        ResilienceStats {
            breaker_trips: self.breaker_trips,
            breaker_blocked: self.breaker_blocked,
            breaker_probes: self.breaker_probes,
            breakers_open: self
                .breakers
                .values()
                .filter(|b| b.state() == BreakerState::Open)
                .count(),
            breakers_half_open: self
                .breakers
                .values()
                .filter(|b| b.state() == BreakerState::HalfOpen)
                .count(),
            inbound_shed: self.inbound_shed,
            outbound_shed: self.outbound_shed,
            queue_shed: self.queue_shed,
            rate_adaptations: self
                .inbound
                .values()
                .chain(self.outbound.values())
                .map(TokenBucket::adaptations)
                .sum(),
            admitted: self.admitted,
            rejected_sessions: self.rejected_sessions,
            rejected_rate: self.rejected_rate,
            inquiries_cached: self.inquiries_cached,
            inquiries_encoded: self.inquiries_encoded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            enabled: true,
            ..BreakerConfig::default()
        }
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_and_recovers_via_probe() {
        let cfg = cfg();
        let mut b = CircuitBreaker::default();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.record_failure(t(1), &cfg));
        assert!(!b.record_failure(t(2), &cfg));
        // Third consecutive failure trips Closed → Open.
        assert!(b.record_failure(t(3), &cfg));
        assert_eq!(b.state(), BreakerState::Open);
        // Blocked while the cooldown runs.
        assert!(!b.allow(t(4), &cfg));
        assert!(!b.allow(t(32), &cfg));
        // Cooldown edge: exactly 30 s after the trip the probe is admitted.
        assert!(b.allow(t(33), &cfg));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Probe success closes the breaker and resets the failure count.
        b.record_success(&cfg);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.record_failure(t(40), &cfg));
    }

    #[test]
    fn probe_failure_retrips_and_restarts_the_cooldown() {
        let cfg = cfg();
        let mut b = CircuitBreaker::default();
        for s in 0..3 {
            b.record_failure(t(s), &cfg);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(t(40), &cfg));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // The probe fails: straight back to Open, new cooldown from t=40.
        assert!(b.record_failure(t(40), &cfg));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(t(69), &cfg));
        assert!(b.allow(t(70), &cfg));
    }

    #[test]
    fn success_resets_the_consecutive_failure_count() {
        let cfg = cfg();
        let mut b = CircuitBreaker::default();
        b.record_failure(t(1), &cfg);
        b.record_failure(t(2), &cfg);
        b.record_success(&cfg);
        // The streak restarted: two more failures do not trip.
        assert!(!b.record_failure(t(3), &cfg));
        assert!(!b.record_failure(t(4), &cfg));
        assert!(b.record_failure(t(5), &cfg));
    }

    #[test]
    fn flapping_breaks_inside_the_window_trip_the_breaker() {
        let cfg = cfg();
        let mut b = CircuitBreaker::default();
        assert!(!b.record_break(t(10), &cfg));
        assert!(!b.record_break(t(30), &cfg));
        // Third break within the 60 s window trips.
        assert!(b.record_break(t(50), &cfg));
        assert_eq!(b.state(), BreakerState::Open);

        // Spread outside the window: never trips.
        let mut slow = CircuitBreaker::default();
        assert!(!slow.record_break(t(0), &cfg));
        assert!(!slow.record_break(t(100), &cfg));
        assert!(!slow.record_break(t(200), &cfg));
        assert_eq!(slow.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_break_retrips() {
        let cfg = cfg();
        let mut b = CircuitBreaker::default();
        for s in 0..3 {
            b.record_failure(t(s), &cfg);
        }
        assert!(b.allow(t(60), &cfg));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.record_break(t(61), &cfg));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn token_bucket_refills_linearly_and_caps_at_burst() {
        let mut bucket = TokenBucket::new(2, 4, t(0));
        // Starts full: the whole burst drains immediately.
        for _ in 0..4 {
            assert!(bucket.try_take(t(0)));
        }
        assert!(!bucket.try_take(t(0)));
        // 2 tokens/s: after 500 ms exactly one token is back.
        let half = SimTime::ZERO + SimDuration::from_millis(500);
        assert!(bucket.try_take(half));
        assert!(!bucket.try_take(half));
        // A long idle refills to the burst cap, not beyond.
        for _ in 0..4 {
            assert!(bucket.try_take(t(100)));
        }
        assert!(!bucket.try_take(t(100)));
    }

    #[test]
    fn disabled_layers_allow_everything_and_count_nothing() {
        let mut r = Resilience::new(ResilienceConfig::disabled());
        let peer = DeviceAddress::from_node_raw(7);
        for s in 0..10 {
            r.record_dial_failure(peer, t(s));
            r.record_link_break(peer, t(s));
            assert!(r.allow_dial(peer, t(s)));
            assert!(r.allow_outbound(None, t(s)));
            assert!(r.allow_inbound(None, t(s)));
            assert!(r.admit(peer, t(s), usize::MAX - 1));
        }
        assert_eq!(r.outbox_cap(), None);
        let stats = r.stats();
        assert_eq!(stats, ResilienceStats::default());
    }

    #[test]
    fn pipeline_counters_track_each_layer() {
        let mut r = Resilience::new(ResilienceConfig::all_on());
        let peer = DeviceAddress::from_node_raw(9);
        for s in 0..3 {
            r.record_dial_failure(peer, t(s));
        }
        assert_eq!(r.breaker_state(peer), Some(BreakerState::Open));
        assert!(!r.allow_dial(peer, t(4)));
        let stats = r.stats();
        assert_eq!(stats.breaker_trips, 1);
        assert_eq!(stats.breaker_blocked, 1);
        assert_eq!(stats.breakers_open, 1);
        // Cooldown over: the next dial is a counted probe.
        assert!(r.allow_dial(peer, t(40)));
        assert_eq!(r.stats().breaker_probes, 1);
        assert_eq!(r.stats().breakers_half_open, 1);
        r.record_dial_success(peer);
        assert_eq!(r.breaker_state(peer), Some(BreakerState::Closed));
    }

    #[test]
    fn admission_enforces_session_and_rate_caps() {
        let mut cfg = ResilienceConfig::default();
        cfg.admission.enabled = true;
        cfg.admission.max_sessions = 2;
        cfg.admission.per_peer_rate = 2;
        cfg.admission.per_peer_window = SimDuration::from_secs(10);
        let mut r = Resilience::new(cfg);
        let peer = DeviceAddress::from_node_raw(3);
        // Session cap.
        assert!(!r.admit(peer, t(0), 2));
        assert_eq!(r.stats().rejected_sessions, 1);
        // Per-peer rate cap inside the window...
        assert!(r.admit(peer, t(1), 0));
        assert!(r.admit(peer, t(2), 0));
        assert!(!r.admit(peer, t(3), 0));
        assert_eq!(r.stats().rejected_rate, 1);
        // ...and recovery once the window slides past.
        assert!(r.admit(peer, t(20), 0));
        assert_eq!(r.stats().admitted, 3);
    }

    fn adaptive_cfg(rate: u32, burst: u32) -> ResilienceConfig {
        let mut cfg = ResilienceConfig::default();
        cfg.backpressure.enabled = true;
        cfg.backpressure.adaptive = true;
        cfg.backpressure.adapt_window = SimDuration::from_secs(1);
        cfg.backpressure.outbound_rate = rate;
        cfg.backpressure.outbound_burst = burst;
        cfg
    }

    #[test]
    fn adaptation_law_tracks_demand_and_respects_the_clamp() {
        let mut cfg = BackpressureConfig::default();
        cfg.adapt_window = SimDuration::from_secs(1);
        cfg.adapt_alpha_percent = 50;
        cfg.adapt_headroom_percent = 150;
        cfg.adapt_min_rate = 5;
        let mut law = AdaptiveRate::new(&cfg, 100);
        // Seeded at the ceiling: startup is never penalised.
        assert_eq!(law.effective_rate(), 100);
        // Steady demand of 10/s converges to 10 × 1.5 = 15 tokens/s.
        for _ in 0..20 {
            law.observe_window(10);
        }
        assert_eq!(law.effective_rate(), 15);
        // A single wild window moves the EWMA by α, not to the spike:
        // 0.5·1000 + 0.5·10 = 505/s → headroom 757, clamped to the ceiling.
        law.observe_window(1000);
        assert_eq!(law.effective_rate(), 100);
        // Sustained silence decays to the floor, never to zero.
        law.observe_idle(EWMA_DECAY_CAP + 1);
        assert_eq!(law.effective_rate(), 5);
        // And the floor itself is capped by the ceiling.
        cfg.adapt_min_rate = 500;
        let floor_law = AdaptiveRate::new(&cfg, 100);
        assert_eq!(floor_law.effective_rate(), 100);
    }

    #[test]
    fn adaptation_is_deterministic_in_the_window_count() {
        let mut cfg = BackpressureConfig::default();
        cfg.adapt_window = SimDuration::from_secs(1);
        let mut a = AdaptiveRate::new(&cfg, 50);
        let mut b = AdaptiveRate::new(&cfg, 50);
        for _ in 0..5 {
            a.observe_window(0);
        }
        b.observe_idle(5);
        assert_eq!(a.effective_rate(), b.effective_rate());
    }

    #[test]
    fn adaptive_bucket_tightens_to_the_learned_envelope() {
        let mut r = Resilience::new(adaptive_cfg(50, 50));
        let app = Some(AppId(0));
        // Two quiet windows per second for a while: demand 2/s, so the
        // learned rate converges to max(2 × 1.5, floor 5) = 5 tokens/s.
        for s in 1..40 {
            assert!(r.allow_outbound(app, t(s)));
            assert!(r.allow_outbound(app, SimTime::ZERO + SimDuration::from_millis(s as u64 * 1000 + 500)));
        }
        assert!(r.stats().rate_adaptations > 0);
        // Now the app goes hostile and blasts a burst: the static config
        // would admit 50 back-to-back, the learned envelope sheds far
        // earlier.
        let mut admitted = 0;
        for _ in 0..50 {
            if r.allow_outbound(app, t(40)) {
                admitted += 1;
            }
        }
        assert!(
            admitted < 25,
            "learned envelope must shed the burst early, admitted {admitted}"
        );
        assert!(r.stats().outbound_shed > 0);
    }

    #[test]
    fn adaptation_never_tightens_below_steady_demand_plus_headroom() {
        // An app that steadily uses its full static budget sees the exact
        // same admissions with adaptation on as off: the envelope only
        // tightens on demand *below* the ceiling, never on conformant load.
        let mut adaptive = Resilience::new(adaptive_cfg(4, 4));
        let mut fixed = Resilience::new({
            let mut c = adaptive_cfg(4, 4);
            c.backpressure.adaptive = false;
            c
        });
        let app = Some(AppId(2));
        for s in 0..120 {
            let at = SimTime::ZERO + SimDuration::from_millis(s * 250);
            assert_eq!(adaptive.allow_outbound(app, at), fixed.allow_outbound(app, at));
        }
        assert_eq!(adaptive.stats().outbound_shed, fixed.stats().outbound_shed);
        assert_eq!(fixed.stats().rate_adaptations, 0);
    }

    #[test]
    fn backpressure_sheds_past_the_burst() {
        let mut cfg = ResilienceConfig::default();
        cfg.backpressure.enabled = true;
        cfg.backpressure.outbound_rate = 1;
        cfg.backpressure.outbound_burst = 2;
        let mut r = Resilience::new(cfg);
        let app = Some(AppId(0));
        assert!(r.allow_outbound(app, t(0)));
        assert!(r.allow_outbound(app, t(0)));
        assert!(!r.allow_outbound(app, t(0)));
        assert_eq!(r.stats().outbound_shed, 1);
        assert_eq!(r.outbox_cap(), Some(64));
        // Separate apps have separate buckets.
        assert!(r.allow_outbound(Some(AppId(1)), t(0)));
    }
}
