//! Error types of the PeerHood middleware.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{ConnectionId, DeviceAddress};

/// Errors surfaced by the PeerHood library API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerHoodError {
    /// The requested device is not present in the device storage.
    UnknownDevice(DeviceAddress),
    /// No device in the storage offers the requested service.
    ServiceNotFound(String),
    /// The referenced connection does not exist (or has been closed).
    UnknownConnection(ConnectionId),
    /// The connection exists but is not in a state that allows the operation
    /// (for example writing before the end-to-end acknowledgement arrived).
    InvalidConnectionState(ConnectionId),
    /// The stored route to the device is unusable (for example the bridge
    /// node has disappeared from the storage).
    NoRoute(DeviceAddress),
    /// A service with the same name is already registered locally.
    ServiceAlreadyRegistered(String),
    /// The bridge service refused the connection because it reached its
    /// configured maximum number of relayed connections.
    BridgeBusy,
    /// The remote end answered with a protocol error.
    Remote(String),
    /// The operation acted on a connection owned by a different application
    /// on the same node, and the node was built without the
    /// `trusted_apps(true)` escape hatch.
    NotOwner(ConnectionId),
    /// The resilience pipeline shed the operation: the per-app rate limit or
    /// a queue cap refused to take more work for this connection.
    Overloaded(ConnectionId),
    /// The per-peer circuit breaker towards the first physical hop is open;
    /// the dial was refused locally without touching the radio.
    CircuitOpen(DeviceAddress),
}

impl fmt::Display for PeerHoodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeerHoodError::UnknownDevice(addr) => write!(f, "unknown device {addr}"),
            PeerHoodError::ServiceNotFound(name) => write!(f, "service not found: {name}"),
            PeerHoodError::UnknownConnection(id) => write!(f, "unknown connection {id}"),
            PeerHoodError::InvalidConnectionState(id) => {
                write!(f, "connection {id} is not in a valid state for this operation")
            }
            PeerHoodError::NoRoute(addr) => write!(f, "no usable route to {addr}"),
            PeerHoodError::ServiceAlreadyRegistered(name) => {
                write!(f, "service already registered: {name}")
            }
            PeerHoodError::BridgeBusy => write!(f, "bridge connection limit reached"),
            PeerHoodError::Remote(reason) => write!(f, "remote error: {reason}"),
            PeerHoodError::NotOwner(id) => {
                write!(f, "connection {id} is owned by a different application")
            }
            PeerHoodError::Overloaded(id) => {
                write!(f, "connection {id} shed by the resilience pipeline")
            }
            PeerHoodError::CircuitOpen(addr) => {
                write!(f, "circuit breaker open towards {addr}")
            }
        }
    }
}

impl std::error::Error for PeerHoodError {}

/// Protocol-level error codes carried in [`crate::proto::Message::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The requested service is not registered on the target device.
    ServiceUnavailable,
    /// The bridge could not find a route to the requested destination.
    NoRouteToDestination,
    /// The bridge has reached its connection limit ("bottle neck", §4).
    BridgeBusy,
    /// A downstream leg of a bridged connection failed.
    DownstreamFailed,
    /// The peer does not recognise the referenced connection.
    UnknownConnection,
    /// Catch-all protocol violation.
    Protocol,
}

impl ErrorCode {
    /// Stable numeric encoding used on the wire.
    pub fn code(self) -> u8 {
        match self {
            ErrorCode::ServiceUnavailable => 1,
            ErrorCode::NoRouteToDestination => 2,
            ErrorCode::BridgeBusy => 3,
            ErrorCode::DownstreamFailed => 4,
            ErrorCode::UnknownConnection => 5,
            ErrorCode::Protocol => 6,
        }
    }

    /// Decodes a wire value back into an error code.
    pub fn from_code(code: u8) -> Option<ErrorCode> {
        Some(match code {
            1 => ErrorCode::ServiceUnavailable,
            2 => ErrorCode::NoRouteToDestination,
            3 => ErrorCode::BridgeBusy,
            4 => ErrorCode::DownstreamFailed,
            5 => ErrorCode::UnknownConnection,
            6 => ErrorCode::Protocol,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::ServiceUnavailable => "service unavailable",
            ErrorCode::NoRouteToDestination => "no route to destination",
            ErrorCode::BridgeBusy => "bridge busy",
            ErrorCode::DownstreamFailed => "downstream connection failed",
            ErrorCode::UnknownConnection => "unknown connection",
            ErrorCode::Protocol => "protocol error",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_roundtrip() {
        for code in [
            ErrorCode::ServiceUnavailable,
            ErrorCode::NoRouteToDestination,
            ErrorCode::BridgeBusy,
            ErrorCode::DownstreamFailed,
            ErrorCode::UnknownConnection,
            ErrorCode::Protocol,
        ] {
            assert_eq!(ErrorCode::from_code(code.code()), Some(code));
        }
        assert_eq!(ErrorCode::from_code(0), None);
        assert_eq!(ErrorCode::from_code(200), None);
    }

    #[test]
    fn errors_display() {
        let addr = DeviceAddress::from_node_raw(3);
        assert!(PeerHoodError::UnknownDevice(addr)
            .to_string()
            .contains("unknown device"));
        assert!(PeerHoodError::ServiceNotFound("x".into()).to_string().contains('x'));
        assert!(ErrorCode::BridgeBusy.to_string().contains("busy"));
    }
}
