//! Identifiers used by the PeerHood middleware.
//!
//! The thesis identifies devices by the MAC address of their network
//! interface (plus a checksum equal to the daemon's process id, §2.3),
//! services by `(name, attribute, port)` and live connections by a
//! connection id that is also used to substitute connections during roaming
//! and handover.
//!
//! In the simulated substrate a [`DeviceAddress`] deterministically embeds
//! the underlying simulator [`NodeId`](simnet::NodeId), which plays the role
//! of "the radio that owns this MAC": converting between the two is a pure
//! function, exactly as resolving a Bluetooth address resolves to a physical
//! radio.

use std::fmt;

use serde::{Deserialize, Serialize};
use simnet::NodeId;

/// A 48-bit device address (MAC-style), the unique identity of a PeerHood
/// device.
///
/// ```
/// use peerhood::ids::DeviceAddress;
/// use simnet::NodeId;
///
/// let addr = DeviceAddress::from_node(NodeId::from_raw(7));
/// assert_eq!(addr.node_id(), NodeId::from_raw(7));
/// assert_eq!(addr.to_string(), "02:50:00:00:00:07");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceAddress([u8; 6]);

impl DeviceAddress {
    /// PeerHood's locally administered OUI prefix used for simulated radios.
    const PREFIX: [u8; 2] = [0x02, 0x50];

    /// Builds the address of the device whose radio is the given simulator
    /// node.
    pub fn from_node(node: NodeId) -> Self {
        Self::from_node_raw(node.as_raw())
    }

    /// Builds an address from a raw node number.
    pub fn from_node_raw(raw: u64) -> Self {
        let b = (raw as u32).to_be_bytes();
        DeviceAddress([Self::PREFIX[0], Self::PREFIX[1], b[0], b[1], b[2], b[3]])
    }

    /// The simulator node that owns this address.
    pub fn node_id(self) -> NodeId {
        let raw = u32::from_be_bytes([self.0[2], self.0[3], self.0[4], self.0[5]]);
        NodeId::from_raw(raw as u64)
    }

    /// The raw six bytes of the address.
    pub fn octets(self) -> [u8; 6] {
        self.0
    }

    /// Rebuilds an address from its six bytes.
    pub fn from_octets(octets: [u8; 6]) -> Self {
        DeviceAddress(octets)
    }
}

impl fmt::Display for DeviceAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// The checksum parameter a PeerHood device advertises. The thesis sets it to
/// the daemon's process id and notes it is "currently not used" beyond
/// identification; it is carried for protocol fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Checksum(pub u32);

impl fmt::Display for Checksum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// The port a registered service listens on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ServicePort(pub u16);

impl fmt::Display for ServicePort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":{}", self.0)
    }
}

/// Identity of an application-level PeerHood connection.
///
/// The initiating device allocates the id; it is carried end-to-end in every
/// protocol message so that bridges can pair their two legs and so that a
/// substituted (handed-over or re-established) connection can be recognised
/// as the same logical session (§2.3 "Connection ID is used to identify the
/// connection to substitute").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConnectionId(u64);

impl ConnectionId {
    /// Builds a globally unique connection id from the initiator's address
    /// and a locally increasing counter.
    pub fn new(initiator: DeviceAddress, counter: u32) -> Self {
        let node = initiator.node_id().as_raw();
        ConnectionId((node << 32) | counter as u64)
    }

    /// The raw 64-bit value (used on the wire).
    pub fn as_raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a connection id from its raw wire value.
    pub fn from_raw(raw: u64) -> Self {
        ConnectionId(raw)
    }

    /// The device that allocated this connection id.
    pub fn initiator(self) -> DeviceAddress {
        DeviceAddress::from_node_raw(self.0 >> 32)
    }
}

impl fmt::Display for ConnectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_roundtrips_node_id() {
        for raw in [0u64, 1, 42, 65_535, 1_000_000] {
            let addr = DeviceAddress::from_node_raw(raw);
            assert_eq!(addr.node_id().as_raw(), raw);
            assert_eq!(DeviceAddress::from_octets(addr.octets()), addr);
        }
    }

    #[test]
    fn address_display_looks_like_mac() {
        let addr = DeviceAddress::from_node_raw(0x0102_0304);
        assert_eq!(addr.to_string(), "02:50:01:02:03:04");
    }

    #[test]
    fn addresses_are_unique_per_node() {
        let a = DeviceAddress::from_node_raw(1);
        let b = DeviceAddress::from_node_raw(2);
        assert_ne!(a, b);
    }

    #[test]
    fn connection_id_embeds_initiator_and_counter() {
        let addr = DeviceAddress::from_node_raw(9);
        let c1 = ConnectionId::new(addr, 0);
        let c2 = ConnectionId::new(addr, 1);
        assert_ne!(c1, c2);
        assert_eq!(c1.initiator(), addr);
        assert_eq!(c2.initiator(), addr);
        assert_eq!(ConnectionId::from_raw(c1.as_raw()), c1);
    }

    #[test]
    fn connection_ids_from_different_devices_never_collide() {
        let a = ConnectionId::new(DeviceAddress::from_node_raw(1), 7);
        let b = ConnectionId::new(DeviceAddress::from_node_raw(2), 7);
        assert_ne!(a, b);
    }

    #[test]
    fn displays() {
        assert_eq!(Checksum(12).to_string(), "pid12");
        assert_eq!(ServicePort(8080).to_string(), ":8080");
        let c = ConnectionId::new(DeviceAddress::from_node_raw(1), 2);
        assert!(c.to_string().starts_with("conn"));
    }
}
