//! Routing information stored per remote device and the best-route
//! selection rules of Fig. 3.13.
//!
//! Dynamic device discovery turns the `DeviceStorage` into an ad-hoc routing
//! table: each entry carries the *bridge* (gateway neighbour) through which
//! the device is reachable and the number of *jumps* (intermediate nodes).
//! When two candidate routes to the same device are known, the selection
//! order is:
//!
//! 1. fewer jumps,
//! 2. lower mobility value of the nearest device on the route
//!    ({static, hybrid, dynamic} = {0, 1, 3}, §3.4.3),
//! 3. higher link quality, subject to the per-hop minimum threshold rule of
//!    Fig. 3.9.

use serde::{Deserialize, Serialize};

use crate::device::MobilityClass;
use crate::ids::DeviceAddress;
use crate::quality::candidate_quality_better;

/// A route towards a remote device as stored in the device storage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteInfo {
    /// Number of intermediate nodes. Direct neighbours have 0 jumps.
    pub jumps: u8,
    /// The gateway neighbour to connect through, or `None` for direct
    /// neighbours.
    pub bridge: Option<DeviceAddress>,
    /// Link-quality value of each hop along the route, nearest hop first.
    /// For a direct neighbour this is the single measured quality.
    pub hop_qualities: Vec<u8>,
    /// Mobility class of the nearest device on the route (the bridge for
    /// multi-hop routes, the device itself for direct neighbours). The thesis
    /// considers only the nearest device's mobility (§3.4.3).
    pub nearest_mobility: MobilityClass,
}

impl RouteInfo {
    /// A route to a direct neighbour.
    pub fn direct(quality: u8, mobility: MobilityClass) -> Self {
        RouteInfo {
            jumps: 0,
            bridge: None,
            hop_qualities: vec![quality],
            nearest_mobility: mobility,
        }
    }

    /// A route through `bridge` with the given per-hop qualities.
    pub fn via(bridge: DeviceAddress, jumps: u8, hop_qualities: Vec<u8>, bridge_mobility: MobilityClass) -> Self {
        RouteInfo {
            jumps,
            bridge: Some(bridge),
            hop_qualities,
            nearest_mobility: bridge_mobility,
        }
    }

    /// True if this is a direct (0-jump) route.
    pub fn is_direct(&self) -> bool {
        self.jumps == 0
    }

    /// The quality of the first hop (towards the bridge or the device
    /// itself).
    pub fn first_hop_quality(&self) -> u8 {
        self.hop_qualities.first().copied().unwrap_or(0)
    }

    /// Sum of hop qualities (the comparison value of Fig. 3.8).
    pub fn quality_sum(&self) -> u32 {
        self.hop_qualities.iter().map(|&q| q as u32).sum()
    }

    /// The connection cost used by the thesis: the jump count.
    pub fn cost(&self) -> u8 {
        self.jumps
    }
}

/// Decides whether `candidate` should replace `current` for the same target
/// device, implementing the `AnalyzeNeighbourhoodDevices` comparison chain of
/// Fig. 3.13: fewer jumps, then lower mobility value, then better quality
/// (with the Fig. 3.9 per-hop threshold rule).
pub fn candidate_replaces(candidate: &RouteInfo, current: &RouteInfo, quality_threshold: u8) -> bool {
    if candidate.jumps != current.jumps {
        return candidate.jumps < current.jumps;
    }
    let cand_mob = candidate.nearest_mobility.value();
    let curr_mob = current.nearest_mobility.value();
    if cand_mob != curr_mob {
        return cand_mob < curr_mob;
    }
    candidate_quality_better(&candidate.hop_qualities, &current.hop_qualities, quality_threshold)
}

/// Picks the best route out of a non-empty candidate list using
/// [`candidate_replaces`]. Returns `None` for an empty list.
pub fn best_route<'a, I>(candidates: I, quality_threshold: u8) -> Option<&'a RouteInfo>
where
    I: IntoIterator<Item = &'a RouteInfo>,
{
    let mut best: Option<&RouteInfo> = None;
    for candidate in candidates {
        match best {
            None => best = Some(candidate),
            Some(current) => {
                if candidate_replaces(candidate, current, quality_threshold) {
                    best = Some(candidate);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> DeviceAddress {
        DeviceAddress::from_node_raw(n)
    }

    #[test]
    fn direct_route_properties() {
        let r = RouteInfo::direct(240, MobilityClass::Static);
        assert!(r.is_direct());
        assert_eq!(r.cost(), 0);
        assert_eq!(r.first_hop_quality(), 240);
        assert_eq!(r.quality_sum(), 240);
        assert_eq!(r.bridge, None);
    }

    #[test]
    fn via_route_properties() {
        let r = RouteInfo::via(addr(5), 1, vec![250, 235], MobilityClass::Hybrid);
        assert!(!r.is_direct());
        assert_eq!(r.cost(), 1);
        assert_eq!(r.first_hop_quality(), 250);
        assert_eq!(r.quality_sum(), 485);
        assert_eq!(r.bridge, Some(addr(5)));
    }

    #[test]
    fn fewer_jumps_always_wins() {
        let direct = RouteInfo::direct(180, MobilityClass::Dynamic);
        let via = RouteInfo::via(addr(1), 1, vec![255, 255], MobilityClass::Static);
        // Even though the multi-hop route has a static bridge and far better
        // quality, the direct route has fewer jumps and is preferred.
        assert!(candidate_replaces(&direct, &via, 230));
        assert!(!candidate_replaces(&via, &direct, 230));
    }

    #[test]
    fn lower_mobility_breaks_jump_ties() {
        // Fig. 3.11: a static bridge is preferred over a dynamic one.
        let via_static = RouteInfo::via(addr(1), 1, vec![231, 231], MobilityClass::Static);
        let via_dynamic = RouteInfo::via(addr(2), 1, vec![255, 255], MobilityClass::Dynamic);
        assert!(candidate_replaces(&via_static, &via_dynamic, 230));
        assert!(!candidate_replaces(&via_dynamic, &via_static, 230));
    }

    #[test]
    fn quality_breaks_remaining_ties_with_threshold_rule() {
        // Same jumps, same mobility: the Fig. 3.9 rule applies.
        let good = RouteInfo::via(addr(1), 1, vec![230, 230], MobilityClass::Static);
        let below_threshold = RouteInfo::via(addr(2), 1, vec![210, 250], MobilityClass::Static);
        assert!(candidate_replaces(&good, &below_threshold, 230));
        assert!(!candidate_replaces(&below_threshold, &good, 230));

        let better_sum = RouteInfo::via(addr(3), 1, vec![250, 250], MobilityClass::Static);
        assert!(candidate_replaces(&better_sum, &good, 230));
    }

    #[test]
    fn equal_routes_do_not_replace() {
        let a = RouteInfo::direct(240, MobilityClass::Static);
        assert!(!candidate_replaces(&a.clone(), &a, 230));
    }

    #[test]
    fn best_route_selects_by_full_chain() {
        let routes = [
            RouteInfo::via(addr(1), 2, vec![255, 255, 255], MobilityClass::Static),
            RouteInfo::via(addr(2), 1, vec![240, 240], MobilityClass::Dynamic),
            RouteInfo::via(addr(3), 1, vec![231, 232], MobilityClass::Static),
            RouteInfo::via(addr(4), 1, vec![250, 250], MobilityClass::Static),
        ];
        let best = best_route(routes.iter(), 230).unwrap();
        // Jump count eliminates the first; mobility eliminates the second;
        // quality sum picks the fourth over the third.
        assert_eq!(best.bridge, Some(addr(4)));
        assert!(best_route(std::iter::empty(), 230).is_none());
    }
}
