//! Link-quality values and the route-quality rules of §3.4.1.
//!
//! Link quality is the 0–255 scale obtained by listening on the connection
//! channel (RSSI / HCI link quality for Bluetooth). The thesis uses it three
//! ways:
//!
//! 1. the **sum** of hop qualities ranks routes with the same jump count
//!    (Fig. 3.8),
//! 2. every individual hop must be at least the **minimum demanded
//!    threshold** (230) or the route is rejected even if its sum is higher
//!    (Fig. 3.9),
//! 3. a connection whose sampled quality stays below the threshold for more
//!    than a configured number of consecutive samples is considered to be
//!    degrading and triggers handover (§5.2.1).

use serde::{Deserialize, Serialize};
use simnet::{QUALITY_LOW_THRESHOLD, QUALITY_MAX};

/// A sampled or advertised link-quality value (0–255).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkQuality(pub u8);

impl LinkQuality {
    /// Best possible quality.
    pub const MAX: LinkQuality = LinkQuality(QUALITY_MAX);
    /// The thesis' "minimum demanded" / "signal low" threshold of 230.
    pub const LOW_THRESHOLD: LinkQuality = LinkQuality(QUALITY_LOW_THRESHOLD);

    /// The raw value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// True if the value is at or above the given acceptance threshold.
    pub fn acceptable(self, threshold: u8) -> bool {
        self.0 >= threshold
    }

    /// True if the value is below the given threshold (a "signal low" event
    /// in the handover monitor).
    pub fn is_low(self, threshold: u8) -> bool {
        self.0 < threshold
    }
}

impl From<u8> for LinkQuality {
    fn from(value: u8) -> Self {
        LinkQuality(value)
    }
}

impl std::fmt::Display for LinkQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Sum of hop qualities along a route (Fig. 3.8's "addition").
pub fn route_quality_sum(hops: &[u8]) -> u32 {
    hops.iter().map(|&q| q as u32).sum()
}

/// The weakest hop along a route.
pub fn route_quality_min(hops: &[u8]) -> u8 {
    hops.iter().copied().min().unwrap_or(0)
}

/// The Fig. 3.9 acceptance rule: a route is usable only if **every** hop is
/// at or above the minimum demanded threshold.
pub fn route_acceptable(hops: &[u8], threshold: u8) -> bool {
    !hops.is_empty() && hops.iter().all(|&q| q >= threshold)
}

/// Compares two routes with an equal number of jumps by the rules of
/// Fig. 3.8/3.9: reject routes with a hop below `threshold`; among the
/// acceptable ones pick the larger quality sum. Returns `true` when
/// `candidate` should replace `current`.
pub fn candidate_quality_better(candidate: &[u8], current: &[u8], threshold: u8) -> bool {
    let cand_ok = route_acceptable(candidate, threshold);
    let curr_ok = route_acceptable(current, threshold);
    match (cand_ok, curr_ok) {
        (true, false) => true,
        (false, _) => false,
        (true, true) => route_quality_sum(candidate) > route_quality_sum(current),
    }
}

/// Tracks consecutive "signal low" samples for a monitored connection
/// (state 1 of the routing-handover diagram, Fig. 5.5): handover triggers
/// once more than `limit` consecutive samples fall below the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LowSignalCounter {
    threshold: u8,
    limit: u32,
    count: u32,
}

impl LowSignalCounter {
    /// Creates a counter with the given threshold and consecutive-sample
    /// limit (the thesis uses threshold 230 and limit 3).
    pub fn new(threshold: u8, limit: u32) -> Self {
        LowSignalCounter {
            threshold,
            limit,
            count: 0,
        }
    }

    /// Records a quality sample. Returns `true` if this sample pushed the
    /// counter over the limit (i.e. handover should start now).
    pub fn record(&mut self, quality: u8) -> bool {
        if quality < self.threshold {
            self.count += 1;
            self.count > self.limit
        } else {
            self.count = 0;
            false
        }
    }

    /// Records a failure to sample (e.g. the link already dropped); counts as
    /// a low sample.
    pub fn record_missing(&mut self) -> bool {
        self.count += 1;
        self.count > self.limit
    }

    /// Number of consecutive low samples so far.
    pub fn consecutive_low(&self) -> u32 {
        self.count
    }

    /// Resets the counter (used after a successful handover).
    pub fn reset(&mut self) {
        self.count = 0;
    }

    /// The configured threshold.
    pub fn threshold(&self) -> u8 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_thesis() {
        assert_eq!(LinkQuality::MAX.value(), 255);
        assert_eq!(LinkQuality::LOW_THRESHOLD.value(), 230);
    }

    #[test]
    fn acceptable_and_low() {
        assert!(LinkQuality(230).acceptable(230));
        assert!(!LinkQuality(229).acceptable(230));
        assert!(LinkQuality(229).is_low(230));
        assert!(!LinkQuality(230).is_low(230));
        assert_eq!(LinkQuality::from(40u8).value(), 40);
    }

    #[test]
    fn sums_and_minimum() {
        assert_eq!(route_quality_sum(&[230, 230]), 460);
        assert_eq!(route_quality_sum(&[]), 0);
        assert_eq!(route_quality_min(&[240, 210, 255]), 210);
        assert_eq!(route_quality_min(&[]), 0);
    }

    #[test]
    fn figure_3_9_equity_case() {
        // Fig. 3.9: routes A-B-D (230 + 230) and A-C-D (210 + 250) have equal
        // sums, but A-C is below the minimum threshold 230, so A-B-D is the
        // only acceptable route.
        let abd = [230u8, 230];
        let acd = [210u8, 250];
        assert_eq!(route_quality_sum(&abd), route_quality_sum(&acd));
        assert!(route_acceptable(&abd, 230));
        assert!(!route_acceptable(&acd, 230));
        assert!(candidate_quality_better(&abd, &acd, 230));
        assert!(!candidate_quality_better(&acd, &abd, 230));
    }

    #[test]
    fn higher_sum_wins_when_both_acceptable() {
        let a = [235u8, 250];
        let b = [231u8, 240];
        assert!(candidate_quality_better(&a, &b, 230));
        assert!(!candidate_quality_better(&b, &a, 230));
        // Equal sums: keep the current route (no replacement).
        assert!(!candidate_quality_better(&a, &a, 230));
    }

    #[test]
    fn unacceptable_candidate_never_replaces() {
        let good = [240u8, 240];
        let bad = [229u8, 255];
        assert!(!candidate_quality_better(&bad, &good, 230));
        // But an acceptable candidate replaces an unacceptable current route
        // even with a lower sum.
        assert!(candidate_quality_better(&[230, 230], &[255, 200], 230));
    }

    #[test]
    fn empty_route_is_never_acceptable() {
        assert!(!route_acceptable(&[], 0));
    }

    #[test]
    fn low_signal_counter_triggers_after_limit_exceeded() {
        // Thesis: "if the signal has been too low for 3 times ... go to
        // state 2" — i.e. the fourth consecutive low sample triggers.
        let mut c = LowSignalCounter::new(230, 3);
        assert!(!c.record(229));
        assert!(!c.record(210));
        assert!(!c.record(200));
        assert!(c.record(199));
        assert_eq!(c.consecutive_low(), 4);
    }

    #[test]
    fn good_sample_resets_counter() {
        let mut c = LowSignalCounter::new(230, 3);
        c.record(100);
        c.record(100);
        assert_eq!(c.consecutive_low(), 2);
        c.record(240);
        assert_eq!(c.consecutive_low(), 0);
        assert!(!c.record(100));
    }

    #[test]
    fn missing_samples_count_as_low() {
        let mut c = LowSignalCounter::new(230, 2);
        assert!(!c.record_missing());
        assert!(!c.record_missing());
        assert!(c.record_missing());
        c.reset();
        assert_eq!(c.consecutive_low(), 0);
        assert_eq!(c.threshold(), 230);
    }
}
