//! PeerHood services and the local service registry.
//!
//! A PeerHood service is described by `(name, attribute, port)` (§2.3). Any
//! registered service is discoverable by remote inquiries and can be
//! connected to from anywhere in the PeerHood network.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::PeerHoodError;
use crate::ids::ServicePort;

/// Description of one registered service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceInfo {
    /// Service name, e.g. `"picture-analysis"`.
    pub name: String,
    /// Free-form attribute string, e.g. a version or capability tag.
    pub attribute: String,
    /// Port the service listens on.
    pub port: ServicePort,
}

impl ServiceInfo {
    /// Creates a service description.
    pub fn new(name: impl Into<String>, attribute: impl Into<String>, port: u16) -> Self {
        ServiceInfo {
            name: name.into(),
            attribute: attribute.into(),
            port: ServicePort(port),
        }
    }
}

impl fmt::Display for ServiceInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{} ({})", self.name, self.port, self.attribute)
    }
}

/// The set of services registered on the local daemon.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceRegistry {
    services: Vec<ServiceInfo>,
    generation: u64,
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ServiceRegistry::default()
    }

    /// Monotonic mutation counter (see
    /// [`DeviceStorage::generation`](crate::storage::DeviceStorage::generation)):
    /// unchanged generation ⇒ unchanged registry contents.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Registers a service, making it visible to discovery inquiries.
    ///
    /// # Errors
    ///
    /// Returns [`PeerHoodError::ServiceAlreadyRegistered`] if a service with
    /// the same name already exists.
    pub fn register(&mut self, service: ServiceInfo) -> Result<(), PeerHoodError> {
        if self.services.iter().any(|s| s.name == service.name) {
            return Err(PeerHoodError::ServiceAlreadyRegistered(service.name));
        }
        self.generation += 1;
        self.services.push(service);
        Ok(())
    }

    /// Removes a service by name, returning it if it was registered.
    pub fn unregister(&mut self, name: &str) -> Option<ServiceInfo> {
        let idx = self.services.iter().position(|s| s.name == name)?;
        self.generation += 1;
        Some(self.services.remove(idx))
    }

    /// Looks up a registered service by name.
    pub fn find(&self, name: &str) -> Option<&ServiceInfo> {
        self.services.iter().find(|s| s.name == name)
    }

    /// All registered services, in registration order.
    pub fn list(&self) -> &[ServiceInfo] {
        &self.services
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// True if no service is registered.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_find_unregister() {
        let mut reg = ServiceRegistry::new();
        assert!(reg.is_empty());
        reg.register(ServiceInfo::new("echo", "v1", 10)).unwrap();
        reg.register(ServiceInfo::new("picture-analysis", "v1", 11)).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.find("echo").unwrap().port, ServicePort(10));
        assert!(reg.find("missing").is_none());
        let removed = reg.unregister("echo").unwrap();
        assert_eq!(removed.name, "echo");
        assert!(reg.unregister("echo").is_none());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut reg = ServiceRegistry::new();
        reg.register(ServiceInfo::new("echo", "v1", 10)).unwrap();
        let err = reg.register(ServiceInfo::new("echo", "v2", 20)).unwrap_err();
        assert_eq!(err, PeerHoodError::ServiceAlreadyRegistered("echo".into()));
        // The original registration is untouched.
        assert_eq!(reg.find("echo").unwrap().attribute, "v1");
    }

    #[test]
    fn display_formats_name_port_attribute() {
        let s = ServiceInfo::new("echo", "test", 42);
        assert_eq!(s.to_string(), "echo:42 (test)");
    }

    #[test]
    fn list_preserves_registration_order() {
        let mut reg = ServiceRegistry::new();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            reg.register(ServiceInfo::new(*name, "", i as u16)).unwrap();
        }
        let names: Vec<&str> = reg.list().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
