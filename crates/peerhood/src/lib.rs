//! # peerhood — mobile peer-to-peer middleware
//!
//! A Rust reproduction of the PeerHood middleware as extended by the thesis
//! *"Addressing mobility issues in mobile environment"* (2008): an
//! unstructured peer-to-peer neighbourhood for mixed fixed/mobile devices
//! with
//!
//! * **dynamic device discovery** (Ch. 3) — the per-device storage becomes an
//!   ad-hoc routing table (bridge + jump count) propagated hop by hop, giving
//!   every node total environment awareness at the cost of one
//!   request/response per neighbour per cycle,
//! * **interconnection** (Ch. 4) — a hidden bridge service on every node
//!   relays connections between devices that are not in direct radio range,
//! * **task-migration support under mobility** (Ch. 5) — per-connection
//!   quality monitoring, routing handover, service reconnection and result
//!   routing.
//!
//! The middleware runs on top of the [`simnet`] substrate: a
//! [`node::PeerHoodNode`] implements [`simnet::NodeAgent`] and hosts any
//! number of [`application::Application`]s — one middleware stack shared by
//! several programs on the same device, exactly as the thesis describes.
//! Nodes are assembled with the fluent builder (configuration →
//! applications → relay flag) and callbacks are routed per application
//! through the typed [`node::PeerHoodEvent`] dispatch layer.
//!
//! ## Quick start
//!
//! ```
//! use peerhood::prelude::*;
//! use simnet::prelude::*;
//!
//! // Two devices four metres apart: a mobile client and a fixed server.
//! // Each node is built with the fluent builder; `IdleApplication` stands
//! // in for real applications here (see the `migration` crate for real
//! // workloads, and add several `.app(...)` calls to host more than one).
//! let mut world = World::new(WorldConfig::ideal(7));
//! let client = world.add_node(
//!     "client",
//!     MobilityModel::stationary(Point::new(0.0, 0.0)),
//!     &[RadioTech::Bluetooth],
//!     Box::new(
//!         PeerHoodNode::builder()
//!             .config(PeerHoodConfig::mobile_device("client"))
//!             .app(IdleApplication)
//!             .build(),
//!     ),
//! );
//! world.add_node(
//!     "server",
//!     MobilityModel::stationary(Point::new(4.0, 0.0)),
//!     &[RadioTech::Bluetooth],
//!     // A pure relay: middleware only, no applications.
//!     Box::new(PeerHoodNode::relay(PeerHoodConfig::static_device("server"))),
//! );
//! // Run a minute of simulated time: the daemons discover each other.
//! world.run_for(SimDuration::from_secs(60));
//! let known = world
//!     .with_agent::<PeerHoodNode, _>(client, |node, _| node.storage_stats().known_devices)
//!     .unwrap();
//! assert_eq!(known, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod application;
pub mod bridge;
pub mod config;
pub mod connection;
pub mod daemon;
pub mod device;
pub mod engine;
pub mod error;
pub mod gnutella;
pub mod handover;
pub mod hostile;
pub mod ids;
pub mod node;
pub mod plugin;
pub mod proto;
pub mod quality;
pub mod resilience;
pub mod route;
pub mod security;
pub mod service;
pub mod storage;
pub mod wire;

/// Re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::application::{Application, IdleApplication};
    pub use crate::config::{DiscoveryMode, PeerHoodConfig, SecurityConfig};
    pub use crate::connection::{ConnState, ConnectionSnapshot};
    pub use crate::device::{DeviceInfo, MobilityClass};
    pub use crate::error::PeerHoodError;
    pub use crate::handover::HandoverTarget;
    pub use crate::hostile::{ProtocolForge, HOSTILE_BASE};
    pub use crate::ids::{ConnectionId, DeviceAddress};
    pub use crate::node::{AppId, PeerHoodApi, PeerHoodEvent, PeerHoodNode, PeerHoodNodeBuilder};
    pub use crate::resilience::{AdaptiveRate, BreakerState, ResilienceConfig, ResilienceStats};
    pub use crate::security::{SecurityStats, AUTH_TRAILER_LEN};
    pub use crate::service::ServiceInfo;
    pub use crate::storage::{StorageStats, StoredDevice};
}

pub use prelude::*;
