//! Device descriptions and the static/hybrid/dynamic mobility classes.

use std::fmt;
use std::rc::Rc;

use serde::{Deserialize, Serialize};
use simnet::{NodeId, RadioTech};

use crate::ids::{Checksum, DeviceAddress};

/// The mobility classification of §3.4.3.
///
/// Static terminals (mains-powered PCs) are preferred as bridge nodes; hybrid
/// devices are low-mobility or resource-conscious devices; dynamic devices
/// are battery-powered phones whose links can break at any moment. The
/// numeric values `{0, 1, 3}` are exactly the comparison values the thesis
/// configures in the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MobilityClass {
    /// Fixed, mains-powered device (value 0).
    Static,
    /// Low-mobility or resource-limiting device (value 1).
    Hybrid,
    /// Fully mobile battery-powered device (value 3).
    Dynamic,
}

impl MobilityClass {
    /// The comparison value used during route selection ({static, hybrid,
    /// dynamic} = {0, 1, 3}).
    pub fn value(self) -> u8 {
        match self {
            MobilityClass::Static => 0,
            MobilityClass::Hybrid => 1,
            MobilityClass::Dynamic => 3,
        }
    }

    /// Decodes a wire value back into a class.
    pub fn from_value(value: u8) -> Option<MobilityClass> {
        Some(match value {
            0 => MobilityClass::Static,
            1 => MobilityClass::Hybrid,
            3 => MobilityClass::Dynamic,
            _ => return None,
        })
    }

    /// True for devices that should be preferred as bridges.
    pub fn prefers_bridge_role(self) -> bool {
        matches!(self, MobilityClass::Static)
    }
}

impl fmt::Display for MobilityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MobilityClass::Static => "static",
            MobilityClass::Hybrid => "hybrid",
            MobilityClass::Dynamic => "dynamic",
        };
        f.write_str(s)
    }
}

/// Everything a PeerHood device advertises about itself during discovery:
/// address, human-readable name, mobility class, checksum (daemon pid) and
/// the radio technologies it supports.
///
/// The name and technology list are interned behind `Rc`s: a device
/// description is cloned on every protocol hop (connect requests, neighbour
/// exports, storage upserts), and at metropolis scale those clones must be
/// reference-count bumps, not string copies. Both equality and the wire
/// encoding compare/serialise the *contents*, so the sharing is invisible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceInfo {
    /// Unique device address.
    pub address: DeviceAddress,
    /// Human-readable device name.
    pub name: Rc<str>,
    /// Mobility classification configured in the daemon.
    pub mobility: MobilityClass,
    /// Daemon process-id checksum.
    pub checksum: Checksum,
    /// Radio technologies the device's plugins cover.
    pub techs: Rc<[RadioTech]>,
}

impl DeviceInfo {
    /// Builds a device description for the device whose radio is `node`.
    pub fn new(node: NodeId, name: impl Into<String>, mobility: MobilityClass, techs: &[RadioTech]) -> Self {
        DeviceInfo {
            address: DeviceAddress::from_node(node),
            name: name.into().into(),
            mobility,
            checksum: Checksum(1000 + node.as_raw() as u32),
            techs: techs.into(),
        }
    }

    /// The simulator node that owns this device.
    pub fn node_id(&self) -> NodeId {
        self.address.node_id()
    }

    /// True if the device has a plugin for the given technology.
    pub fn supports(&self, tech: RadioTech) -> bool {
        self.techs.contains(&tech)
    }

    /// The technology both this device and `other` support, preferring the
    /// order of this device's plugin list (used when choosing how to reach a
    /// neighbour).
    pub fn common_tech(&self, other: &DeviceInfo) -> Option<RadioTech> {
        self.techs.iter().copied().find(|t| other.supports(*t))
    }
}

impl fmt::Display for DeviceInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] ({})", self.name, self.address, self.mobility)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobility_values_match_the_paper() {
        assert_eq!(MobilityClass::Static.value(), 0);
        assert_eq!(MobilityClass::Hybrid.value(), 1);
        assert_eq!(MobilityClass::Dynamic.value(), 3);
    }

    #[test]
    fn mobility_roundtrip_and_ordering() {
        for class in [MobilityClass::Static, MobilityClass::Hybrid, MobilityClass::Dynamic] {
            assert_eq!(MobilityClass::from_value(class.value()), Some(class));
        }
        assert_eq!(MobilityClass::from_value(2), None);
        assert!(MobilityClass::Static < MobilityClass::Hybrid);
        assert!(MobilityClass::Hybrid < MobilityClass::Dynamic);
        assert!(MobilityClass::Static.prefers_bridge_role());
        assert!(!MobilityClass::Dynamic.prefers_bridge_role());
    }

    #[test]
    fn device_info_basics() {
        let info = DeviceInfo::new(
            NodeId::from_raw(3),
            "laptop",
            MobilityClass::Hybrid,
            &[RadioTech::Bluetooth, RadioTech::Wlan],
        );
        assert_eq!(info.node_id(), NodeId::from_raw(3));
        assert!(info.supports(RadioTech::Bluetooth));
        assert!(!info.supports(RadioTech::Gprs));
        assert!(info.to_string().contains("laptop"));
        assert_eq!(info.checksum, Checksum(1003));
    }

    #[test]
    fn common_tech_prefers_own_order() {
        let a = DeviceInfo::new(
            NodeId::from_raw(1),
            "a",
            MobilityClass::Static,
            &[RadioTech::Wlan, RadioTech::Bluetooth],
        );
        let b = DeviceInfo::new(
            NodeId::from_raw(2),
            "b",
            MobilityClass::Dynamic,
            &[RadioTech::Bluetooth, RadioTech::Wlan],
        );
        assert_eq!(a.common_tech(&b), Some(RadioTech::Wlan));
        assert_eq!(b.common_tech(&a), Some(RadioTech::Bluetooth));
        let c = DeviceInfo::new(NodeId::from_raw(3), "c", MobilityClass::Static, &[RadioTech::Gprs]);
        assert_eq!(a.common_tech(&c), None);
    }
}
