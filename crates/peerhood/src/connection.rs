//! Application-level connections and the connection table.
//!
//! The original library keeps an `iThreadList` of `ThreadInfo` records, one
//! per virtual connection (Fig. 2.5). This module is its equivalent: every
//! logical PeerHood connection — direct or bridged, outgoing or incoming —
//! has an [`AppConnection`] entry that survives handovers, link breaks and
//! re-establishments, because the entry is keyed by the end-to-end
//! [`ConnectionId`] rather than by the underlying radio link.

use serde::{Deserialize, Serialize};
use simnet::{LinkId, SimTime};

use crate::device::DeviceInfo;
use crate::handover::HandoverMonitor;
use crate::ids::{ConnectionId, DeviceAddress};

/// Establishment state of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnState {
    /// A physical link towards the peer (or bridge) is being set up.
    Connecting,
    /// The link exists and the PH_CONNECT / PH_BRIDGE command has been sent;
    /// waiting for the end-to-end PH_OK.
    AwaitingAccept,
    /// The end-to-end acknowledgement arrived; data can flow.
    Established,
    /// The connection is down (link broke or the peer closed). The entry is
    /// kept so that result routing or reconnection can revive it.
    Closed,
    /// Establishment failed and will not be retried.
    Failed,
}

/// Direction and shape of a connection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnKind {
    /// We initiated the connection and reach the peer directly.
    OutgoingDirect,
    /// We initiated the connection and reach the peer through a bridge node.
    OutgoingBridged {
        /// The first bridge we connect to.
        bridge: DeviceAddress,
    },
    /// The peer initiated the connection to one of our registered services.
    Incoming {
        /// The full parameters the client sent at connection start (used for
        /// result routing, §5.3 option 2).
        client: DeviceInfo,
    },
}

impl ConnKind {
    /// True for connections we initiated.
    pub fn is_outgoing(&self) -> bool {
        !matches!(self, ConnKind::Incoming { .. })
    }

    /// The device we physically connect to first (the bridge for bridged
    /// connections, the peer itself otherwise). `None` for incoming
    /// connections.
    pub fn first_hop(&self, remote: DeviceAddress) -> Option<DeviceAddress> {
        match self {
            ConnKind::OutgoingDirect => Some(remote),
            ConnKind::OutgoingBridged { bridge } => Some(*bridge),
            ConnKind::Incoming { .. } => None,
        }
    }
}

/// One logical PeerHood connection.
#[derive(Debug, Clone)]
pub struct AppConnection {
    /// End-to-end identity.
    pub id: ConnectionId,
    /// The remote application device (server for outgoing, client for
    /// incoming connections).
    pub remote: DeviceAddress,
    /// The service the connection targets.
    pub service: String,
    /// Direction / shape.
    pub kind: ConnKind,
    /// Establishment state.
    pub state: ConnState,
    /// The radio link currently carrying the connection, if any.
    pub link: Option<LinkId>,
    /// The §5.3 "sending" flag: while `true` the client still needs the
    /// connection and the handover machinery keeps it alive; when the
    /// application clears it, a broken connection is left for the server to
    /// re-establish (result routing).
    pub sending: bool,
    /// Handover monitoring state (outgoing, monitored connections only).
    pub monitor: Option<HandoverMonitor>,
    /// Payloads queued while the connection is down, flushed on
    /// re-establishment (used by the server to return results after a
    /// disconnect, Fig. 5.10).
    pub outbox: Vec<Vec<u8>>,
    /// Number of reconnect attempts made to flush the outbox.
    pub reconnect_attempts: u32,
    /// True while a service-reconnection (to a *different* provider) is in
    /// progress, so that establishment fires the right callback.
    pub reconnecting: bool,
    /// When the connection entry was created.
    pub created_at: SimTime,
    /// When the connection was last established end-to-end.
    pub established_at: Option<SimTime>,
    /// Consecutive monitor epochs this entry spent closed, link-less and
    /// with an empty outbox. Drives the epoch-compaction of
    /// closed-but-revivable records when
    /// [`HandoverConfig::closed_retention`](crate::config::HandoverConfig::closed_retention)
    /// is set; any sign of life resets it to zero.
    pub idle_epochs: u32,
}

impl AppConnection {
    /// Creates a new outgoing connection entry in the `Connecting` state.
    pub fn outgoing(
        id: ConnectionId,
        remote: DeviceAddress,
        service: impl Into<String>,
        kind: ConnKind,
        now: SimTime,
    ) -> Self {
        AppConnection {
            id,
            remote,
            service: service.into(),
            kind,
            state: ConnState::Connecting,
            link: None,
            sending: true,
            monitor: None,
            outbox: Vec::new(),
            reconnect_attempts: 0,
            reconnecting: false,
            created_at: now,
            established_at: None,
            idle_epochs: 0,
        }
    }

    /// Creates an established incoming connection entry.
    pub fn incoming(
        id: ConnectionId,
        client: DeviceInfo,
        service: impl Into<String>,
        link: LinkId,
        now: SimTime,
    ) -> Self {
        AppConnection {
            id,
            remote: client.address,
            service: service.into(),
            kind: ConnKind::Incoming { client },
            state: ConnState::Established,
            link: Some(link),
            sending: true,
            monitor: None,
            outbox: Vec::new(),
            reconnect_attempts: 0,
            reconnecting: false,
            created_at: now,
            established_at: Some(now),
            idle_epochs: 0,
        }
    }

    /// True if data can currently be written.
    pub fn is_established(&self) -> bool {
        self.state == ConnState::Established && self.link.is_some()
    }

    /// True for connections we initiated.
    pub fn is_outgoing(&self) -> bool {
        self.kind.is_outgoing()
    }

    /// Marks the connection established over `link`.
    pub fn establish(&mut self, link: LinkId, now: SimTime) {
        self.link = Some(link);
        self.state = ConnState::Established;
        self.established_at = Some(now);
        self.idle_epochs = 0;
    }

    /// Marks the connection down, detaching the link.
    pub fn mark_closed(&mut self) {
        self.link = None;
        if self.state != ConnState::Failed {
            self.state = ConnState::Closed;
        }
    }
}

/// Read-only snapshot handed to applications.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionSnapshot {
    /// End-to-end identity.
    pub id: ConnectionId,
    /// Remote application device.
    pub remote: DeviceAddress,
    /// Target service name.
    pub service: String,
    /// Establishment state.
    pub state: ConnState,
    /// Whether a bridge is involved on our first hop.
    pub bridged: bool,
    /// The device the route physically connects to first: the bridge for
    /// bridged connections, the remote itself for direct ones, `None` for
    /// incoming connections. Tracks handovers, so tests can assert which
    /// bridge actually carries the session.
    pub first_hop: Option<DeviceAddress>,
    /// Current value of the "sending" flag.
    pub sending: bool,
    /// Number of routing-handover attempts performed so far.
    pub handover_attempts: u32,
}

impl From<&AppConnection> for ConnectionSnapshot {
    fn from(c: &AppConnection) -> Self {
        ConnectionSnapshot {
            id: c.id,
            remote: c.remote,
            service: c.service.clone(),
            state: c.state,
            bridged: matches!(c.kind, ConnKind::OutgoingBridged { .. }),
            first_hop: c.kind.first_hop(c.remote),
            sending: c.sending,
            handover_attempts: c.monitor.as_ref().map(|m| m.attempts).unwrap_or(0),
        }
    }
}

/// The table of all logical connections of one node (the `iThreadList`).
#[derive(Debug, Clone, Default)]
pub struct ConnectionTable {
    connections: std::collections::BTreeMap<ConnectionId, AppConnection>,
    next_counter: u32,
}

impl ConnectionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ConnectionTable::default()
    }

    /// Allocates the next locally unique connection id for `initiator`.
    pub fn allocate_id(&mut self, initiator: DeviceAddress) -> ConnectionId {
        let id = ConnectionId::new(initiator, self.next_counter);
        self.next_counter += 1;
        id
    }

    /// Inserts a connection entry.
    pub fn insert(&mut self, connection: AppConnection) {
        self.connections.insert(connection.id, connection);
    }

    /// Looks up a connection.
    pub fn get(&self, id: ConnectionId) -> Option<&AppConnection> {
        self.connections.get(&id)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: ConnectionId) -> Option<&mut AppConnection> {
        self.connections.get_mut(&id)
    }

    /// Removes an entry.
    pub fn remove(&mut self, id: ConnectionId) -> Option<AppConnection> {
        self.connections.remove(&id)
    }

    /// The connection currently carried by `link`, if any.
    pub fn by_link(&self, link: LinkId) -> Option<&AppConnection> {
        self.connections.values().find(|c| c.link == Some(link))
    }

    /// Mutable variant of [`ConnectionTable::by_link`].
    pub fn by_link_mut(&mut self, link: LinkId) -> Option<&mut AppConnection> {
        self.connections.values_mut().find(|c| c.link == Some(link))
    }

    /// All connection ids (in id order).
    pub fn ids(&self) -> Vec<ConnectionId> {
        self.connections.keys().copied().collect()
    }

    /// Iterates over the connections.
    pub fn iter(&self) -> impl Iterator<Item = &AppConnection> {
        self.connections.values()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.connections.len()
    }

    /// True if no connection exists.
    pub fn is_empty(&self) -> bool {
        self.connections.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MobilityClass;
    use simnet::{NodeId, RadioTech};

    fn addr(n: u64) -> DeviceAddress {
        DeviceAddress::from_node_raw(n)
    }

    fn client_info(n: u64) -> DeviceInfo {
        DeviceInfo::new(
            NodeId::from_raw(n),
            "client",
            MobilityClass::Dynamic,
            &[RadioTech::Bluetooth],
        )
    }

    #[test]
    fn id_allocation_is_unique_and_embeds_initiator() {
        let mut table = ConnectionTable::new();
        let a = table.allocate_id(addr(7));
        let b = table.allocate_id(addr(7));
        assert_ne!(a, b);
        assert_eq!(a.initiator(), addr(7));
    }

    #[test]
    fn outgoing_lifecycle() {
        let mut conn = AppConnection::outgoing(
            ConnectionId::new(addr(1), 0),
            addr(9),
            "echo",
            ConnKind::OutgoingBridged { bridge: addr(5) },
            SimTime::ZERO,
        );
        assert!(conn.is_outgoing());
        assert!(!conn.is_established());
        assert_eq!(conn.kind.first_hop(conn.remote), Some(addr(5)));
        conn.establish(LinkId(3), SimTime::from_secs(4));
        assert!(conn.is_established());
        assert_eq!(conn.established_at, Some(SimTime::from_secs(4)));
        conn.mark_closed();
        assert_eq!(conn.state, ConnState::Closed);
        assert!(conn.link.is_none());
    }

    #[test]
    fn failed_state_is_sticky_across_mark_closed() {
        let mut conn = AppConnection::outgoing(
            ConnectionId::new(addr(1), 0),
            addr(9),
            "echo",
            ConnKind::OutgoingDirect,
            SimTime::ZERO,
        );
        conn.state = ConnState::Failed;
        conn.mark_closed();
        assert_eq!(conn.state, ConnState::Failed);
    }

    #[test]
    fn incoming_connection_records_client_parameters() {
        let conn = AppConnection::incoming(
            ConnectionId::new(addr(2), 0),
            client_info(2),
            "picture-analysis",
            LinkId(1),
            SimTime::ZERO,
        );
        assert!(!conn.is_outgoing());
        assert!(conn.is_established());
        assert_eq!(conn.remote, addr(2));
        match &conn.kind {
            ConnKind::Incoming { client } => assert_eq!(client.address, addr(2)),
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(conn.kind.first_hop(conn.remote), None);
    }

    #[test]
    fn table_lookup_by_id_and_link() {
        let mut table = ConnectionTable::new();
        let id = table.allocate_id(addr(1));
        let mut conn = AppConnection::outgoing(id, addr(9), "echo", ConnKind::OutgoingDirect, SimTime::ZERO);
        conn.establish(LinkId(42), SimTime::ZERO);
        table.insert(conn);
        assert_eq!(table.len(), 1);
        assert!(table.get(id).is_some());
        assert_eq!(table.by_link(LinkId(42)).unwrap().id, id);
        assert!(table.by_link(LinkId(1)).is_none());
        table.by_link_mut(LinkId(42)).unwrap().sending = false;
        assert!(!table.get(id).unwrap().sending);
        assert_eq!(table.ids(), vec![id]);
        assert!(table.remove(id).is_some());
        assert!(table.is_empty());
    }

    #[test]
    fn snapshot_reflects_connection() {
        let mut conn = AppConnection::outgoing(
            ConnectionId::new(addr(1), 3),
            addr(9),
            "echo",
            ConnKind::OutgoingBridged { bridge: addr(4) },
            SimTime::ZERO,
        );
        conn.sending = false;
        let snap = ConnectionSnapshot::from(&conn);
        assert!(snap.bridged);
        assert!(!snap.sending);
        assert_eq!(snap.state, ConnState::Connecting);
        assert_eq!(snap.handover_attempts, 0);
        assert_eq!(snap.service, "echo");
    }
}
