//! Protocol hardening: frame authentication, replay suppression and the
//! counters behind the hostile-city security scorecard.
//!
//! The adversary model (see `simnet::adversary`) injects syntactically
//! valid frames from compromised nodes: replayed session Accepts,
//! connection requests carrying foreign connection ids, forged neighbour
//! reports and spoofed service advertisements. This module supplies the
//! per-node defences the [`SecurityConfig`](crate::config::SecurityConfig)
//! tiers toggle:
//!
//! * **frame auth** — an opt-in 16-byte `[seq | MAC]` trailer appended
//!   *outside* the wire codec (the frame format itself is unchanged, so
//!   `WIRE_VERSION` stays at 1). The MAC is a keyed FNV-1a over the shared
//!   key, the sender's device address, the sequence number and the frame
//!   bytes; the sender address is derived from the radio the frame arrived
//!   on, so a replayed frame fails verification at any node other than its
//!   original destination-pair, and a tampered frame fails by content.
//! * **replay windows** — a per-sender monotonic sequence number checked
//!   against a 64-entry sliding-window bitmap, which kills byte-exact
//!   replays that would otherwise still carry a valid MAC.
//! * **[`SecurityStats`]** — every defence counts what it rejected, and the
//!   scorecard sums these across the city.
//!
//! The MAC is a simulation stand-in measuring the *cost and rejection
//! behaviour* of authenticated framing, not a cryptographic primitive.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::config::SecurityConfig;
use crate::ids::DeviceAddress;

/// Bytes the frame-auth trailer appends to every frame: an 8-byte
/// big-endian sequence number followed by the 8-byte MAC.
pub const AUTH_TRAILER_LEN: usize = 16;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut digest: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        digest ^= b as u64;
        digest = digest.wrapping_mul(FNV_PRIME);
    }
    digest
}

/// The keyed MAC over `(key, sender, seq, frame)`.
fn frame_mac(key: u64, sender: DeviceAddress, seq: u64, frame: &[u8]) -> u64 {
    let mut digest = fnv_fold(FNV_OFFSET, &key.to_be_bytes());
    digest = fnv_fold(digest, &sender.octets());
    digest = fnv_fold(digest, &seq.to_be_bytes());
    fnv_fold(digest, frame)
}

/// Why an inbound frame was rejected before decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthReject {
    /// Too short to carry a trailer, or the MAC did not verify (forged,
    /// tampered, or replayed through a different sender).
    BadMac,
    /// The MAC verified but the sequence number was already seen (or is
    /// older than the replay window) — a byte-exact replay.
    Replayed,
}

/// Per-sender replay suppression: the highest sequence number accepted and
/// a 64-entry bitmap of recently seen ones below it.
#[derive(Debug, Clone, Copy, Default)]
struct ReplayWindow {
    highest: u64,
    seen: u64,
}

impl ReplayWindow {
    /// Accepts a sequence number exactly once; duplicates and numbers older
    /// than the 64-entry window are rejected.
    fn accept(&mut self, seq: u64) -> bool {
        if seq > self.highest {
            let shift = seq - self.highest;
            self.seen = if shift >= 64 { 0 } else { self.seen << shift };
            self.seen |= 1;
            self.highest = seq;
            return true;
        }
        let age = self.highest - seq;
        if age >= 64 {
            return false;
        }
        let bit = 1u64 << age;
        if self.seen & bit != 0 {
            return false;
        }
        self.seen |= bit;
        true
    }
}

/// Counters of everything the hardening layer did — the per-node raw
/// material of the E19 security scorecard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecurityStats {
    /// Outbound frames that received an auth trailer.
    pub frames_authenticated: u64,
    /// Trailer bytes added to outbound frames (the bandwidth overhead).
    pub auth_bytes: u64,
    /// Inbound frames dropped because their MAC did not verify.
    pub auth_rejected: u64,
    /// Inbound frames dropped by the per-sender replay window.
    pub replay_rejected: u64,
    /// Connection requests rejected because their connection id was
    /// allocated by a different device than the requester.
    pub foreign_conn_rejected: u64,
    /// Connection requests rejected because their reply context did not
    /// refer back to a connection this node initiated.
    pub bad_reply_context: u64,
    /// Session Accepts dropped because the session was not awaiting one.
    pub duplicate_accepts: u64,
    /// Frames dropped because their connection id did not match the
    /// connection classified on the arrival link.
    pub conn_mismatch_dropped: u64,
    /// Neighbour reports ignored because the reporter's reputation was
    /// exhausted.
    pub reports_skipped: u64,
    /// Reputation penalties recorded against misbehaving peers.
    pub penalties_recorded: u64,
}

impl SecurityStats {
    /// Adds another node's counters into this one (scorecard aggregation).
    pub fn absorb(&mut self, other: &SecurityStats) {
        self.frames_authenticated += other.frames_authenticated;
        self.auth_bytes += other.auth_bytes;
        self.auth_rejected += other.auth_rejected;
        self.replay_rejected += other.replay_rejected;
        self.foreign_conn_rejected += other.foreign_conn_rejected;
        self.bad_reply_context += other.bad_reply_context;
        self.duplicate_accepts += other.duplicate_accepts;
        self.conn_mismatch_dropped += other.conn_mismatch_dropped;
        self.reports_skipped += other.reports_skipped;
        self.penalties_recorded += other.penalties_recorded;
    }

    /// Mirrors the counters into a telemetry sink under the `security`
    /// subsystem (same shape as
    /// [`ResilienceStats::export_gauges`](crate::resilience::ResilienceStats::export_gauges)).
    pub fn export_gauges(&self, tel: &mut simnet::Telemetry, label: Option<&str>) {
        tel.set_counter("security", "frames_authenticated", label, self.frames_authenticated);
        tel.set_counter("security", "auth_bytes", label, self.auth_bytes);
        tel.set_counter("security", "auth_rejected", label, self.auth_rejected);
        tel.set_counter("security", "replay_rejected", label, self.replay_rejected);
        tel.set_counter("security", "foreign_conn_rejected", label, self.foreign_conn_rejected);
        tel.set_counter("security", "bad_reply_context", label, self.bad_reply_context);
        tel.set_counter("security", "duplicate_accepts", label, self.duplicate_accepts);
        tel.set_counter("security", "conn_mismatch_dropped", label, self.conn_mismatch_dropped);
        tel.set_counter("security", "reports_skipped", label, self.reports_skipped);
        tel.set_counter("security", "penalties_recorded", label, self.penalties_recorded);
    }

    /// Hostile frames this node demonstrably refused: every rejection a
    /// defence produced, across all tiers.
    pub fn frames_rejected(&self) -> u64 {
        self.auth_rejected
            + self.replay_rejected
            + self.foreign_conn_rejected
            + self.bad_reply_context
            + self.duplicate_accepts
            + self.conn_mismatch_dropped
    }
}

/// Per-node runtime of the hardening layer: the enabled defences, the
/// outbound sequence counter, the per-sender replay windows and the
/// counters.
#[derive(Debug)]
pub struct Security {
    config: SecurityConfig,
    send_seq: u64,
    windows: BTreeMap<DeviceAddress, ReplayWindow>,
    /// Counters (read by [`SecurityStats`] consumers via `stats()`).
    pub stats: SecurityStats,
}

impl Security {
    /// Builds the runtime for the given configuration.
    pub fn new(config: SecurityConfig) -> Self {
        Security {
            config,
            send_seq: 0,
            windows: BTreeMap::new(),
            stats: SecurityStats::default(),
        }
    }

    /// The configuration this runtime enforces.
    pub fn config(&self) -> &SecurityConfig {
        &self.config
    }

    /// Whether outbound frames must carry the auth trailer.
    pub fn frame_auth(&self) -> bool {
        self.config.frame_auth
    }

    /// Whether the protocol sanity checks are active.
    pub fn sanity_checks(&self) -> bool {
        self.config.sanity_checks
    }

    /// Whether reporter reputation is tracked.
    pub fn reputation(&self) -> bool {
        self.config.reputation
    }

    /// The counters so far.
    pub fn stats(&self) -> SecurityStats {
        self.stats
    }

    /// Appends the `[seq | MAC]` trailer to an outbound frame. The caller
    /// guarantees `frame` holds exactly the encoded wire frame.
    pub fn append_trailer(&mut self, sender: DeviceAddress, frame: &mut Vec<u8>) {
        self.send_seq += 1;
        let seq = self.send_seq;
        let mac = frame_mac(self.config.auth_key, sender, seq, frame);
        frame.extend_from_slice(&seq.to_be_bytes());
        frame.extend_from_slice(&mac.to_be_bytes());
        self.stats.frames_authenticated += 1;
        self.stats.auth_bytes += AUTH_TRAILER_LEN as u64;
    }

    /// Verifies and strips the trailer of an inbound frame from `sender`
    /// (the radio the frame physically arrived from). Returns the frame
    /// bytes without the trailer, or the rejection reason; counters are
    /// updated either way.
    pub fn verify_and_strip<'a>(&mut self, sender: DeviceAddress, frame: &'a [u8]) -> Result<&'a [u8], AuthReject> {
        let Some(body_len) = frame.len().checked_sub(AUTH_TRAILER_LEN) else {
            self.stats.auth_rejected += 1;
            return Err(AuthReject::BadMac);
        };
        let (body, trailer) = frame.split_at(body_len);
        let seq = u64::from_be_bytes(trailer[..8].try_into().expect("8-byte seq"));
        let mac = u64::from_be_bytes(trailer[8..].try_into().expect("8-byte mac"));
        if frame_mac(self.config.auth_key, sender, seq, body) != mac {
            self.stats.auth_rejected += 1;
            return Err(AuthReject::BadMac);
        }
        if !self.windows.entry(sender).or_default().accept(seq) {
            self.stats.replay_rejected += 1;
            return Err(AuthReject::Replayed);
        }
        Ok(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(raw: u64) -> DeviceAddress {
        DeviceAddress::from_node_raw(raw)
    }

    fn auth_security() -> Security {
        Security::new(SecurityConfig::auth())
    }

    #[test]
    fn trailer_roundtrips_and_strips() {
        let mut sender = auth_security();
        let mut receiver = auth_security();
        let mut frame = b"hello frame".to_vec();
        sender.append_trailer(addr(1), &mut frame);
        assert_eq!(frame.len(), 11 + AUTH_TRAILER_LEN);
        let body = receiver.verify_and_strip(addr(1), &frame).expect("valid frame");
        assert_eq!(body, b"hello frame");
        assert_eq!(sender.stats.frames_authenticated, 1);
        assert_eq!(sender.stats.auth_bytes, AUTH_TRAILER_LEN as u64);
        assert_eq!(receiver.stats.frames_rejected(), 0);
    }

    #[test]
    fn tampered_and_misattributed_frames_fail_the_mac() {
        let mut sender = auth_security();
        let mut receiver = auth_security();
        let mut frame = b"payload".to_vec();
        sender.append_trailer(addr(1), &mut frame);
        // Content tampering after the MAC was computed.
        let mut tampered = frame.clone();
        tampered[0] ^= 0xFF;
        assert_eq!(receiver.verify_and_strip(addr(1), &tampered), Err(AuthReject::BadMac));
        // The identical bytes replayed from a different radio: the sender
        // address is bound into the MAC, so the replay fails too.
        assert_eq!(receiver.verify_and_strip(addr(2), &frame), Err(AuthReject::BadMac));
        // Truncated garbage.
        assert_eq!(receiver.verify_and_strip(addr(1), b"tiny"), Err(AuthReject::BadMac));
        assert_eq!(receiver.stats.auth_rejected, 3);
    }

    #[test]
    fn wrong_key_fails() {
        let mut sender = auth_security();
        let mut other = Security::new(SecurityConfig {
            auth_key: 0xDEAD_BEEF,
            ..SecurityConfig::auth()
        });
        let mut frame = b"x".to_vec();
        sender.append_trailer(addr(1), &mut frame);
        assert_eq!(other.verify_and_strip(addr(1), &frame), Err(AuthReject::BadMac));
    }

    #[test]
    fn byte_exact_replays_hit_the_window() {
        let mut sender = auth_security();
        let mut receiver = auth_security();
        let mut frame = b"once".to_vec();
        sender.append_trailer(addr(1), &mut frame);
        assert!(receiver.verify_and_strip(addr(1), &frame).is_ok());
        assert_eq!(receiver.verify_and_strip(addr(1), &frame), Err(AuthReject::Replayed));
        assert_eq!(receiver.stats.replay_rejected, 1);
    }

    #[test]
    fn out_of_order_delivery_inside_the_window_is_accepted() {
        let mut sender = auth_security();
        let mut receiver = auth_security();
        let frames: Vec<Vec<u8>> = (0..5)
            .map(|i| {
                let mut f = vec![i as u8];
                sender.append_trailer(addr(1), &mut f);
                f
            })
            .collect();
        // Deliver 4, 0, 2, 1, 3 — all distinct, all inside the window.
        for &i in &[4usize, 0, 2, 1, 3] {
            assert!(
                receiver.verify_and_strip(addr(1), &frames[i]).is_ok(),
                "frame {i} must be accepted out of order"
            );
        }
        // Second delivery of any of them is a replay.
        assert_eq!(
            receiver.verify_and_strip(addr(1), &frames[2]),
            Err(AuthReject::Replayed)
        );
    }

    #[test]
    fn ancient_sequence_numbers_fall_off_the_window() {
        let mut w = ReplayWindow::default();
        assert!(w.accept(1));
        assert!(w.accept(100));
        assert!(!w.accept(1), "replay of an accepted seq rejected");
        assert!(!w.accept(30), "older than the 64-entry window");
        assert!(w.accept(99), "inside the window and unseen");
    }

    #[test]
    fn windows_are_per_sender() {
        let mut a = auth_security();
        let mut b = auth_security();
        let mut receiver = auth_security();
        let mut fa = b"from-a".to_vec();
        let mut fb = b"from-b".to_vec();
        a.append_trailer(addr(1), &mut fa);
        b.append_trailer(addr(2), &mut fb);
        // Both carry seq=1 but from different senders: both accepted.
        assert!(receiver.verify_and_strip(addr(1), &fa).is_ok());
        assert!(receiver.verify_and_strip(addr(2), &fb).is_ok());
    }

    #[test]
    fn stats_absorb_sums_everything() {
        let mut total = SecurityStats::default();
        let a = SecurityStats {
            frames_authenticated: 2,
            auth_bytes: 32,
            auth_rejected: 1,
            replay_rejected: 1,
            foreign_conn_rejected: 1,
            bad_reply_context: 1,
            duplicate_accepts: 1,
            conn_mismatch_dropped: 1,
            reports_skipped: 1,
            penalties_recorded: 1,
        };
        total.absorb(&a);
        total.absorb(&a);
        assert_eq!(total.frames_authenticated, 4);
        assert_eq!(total.frames_rejected(), 12);
        assert_eq!(total.reports_skipped, 2);
    }
}
