//! Gnutella-style flooding, the comparison point of §3.2.
//!
//! The thesis motivates its dynamic discovery by contrasting it with the
//! Gnutella network: flooding a query to every neighbour with a hop limit
//! reaches the whole network but generates "huge network traffic", which a
//! battery-powered device cannot afford. This module provides an analytic
//! graph model of both schemes so experiment E2 can compare message volumes
//! on identical topologies.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// An undirected graph of devices used for traffic modelling.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    adjacency: Vec<Vec<usize>>,
}

impl Topology {
    /// Creates a topology with `nodes` isolated nodes.
    pub fn new(nodes: usize) -> Self {
        Topology {
            adjacency: vec![Vec::new(); nodes],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// True if the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Adds an undirected edge (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a < self.len() && b < self.len(), "edge endpoint out of range");
        if a == b {
            return;
        }
        if !self.adjacency[a].contains(&b) {
            self.adjacency[a].push(b);
        }
        if !self.adjacency[b].contains(&a) {
            self.adjacency[b].push(a);
        }
    }

    /// Builds a topology by connecting every pair of positions closer than
    /// `range`.
    pub fn from_positions(positions: &[(f64, f64)], range: f64) -> Self {
        let mut t = Topology::new(positions.len());
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                let dx = positions[i].0 - positions[j].0;
                let dy = positions[i].1 - positions[j].1;
                if (dx * dx + dy * dy).sqrt() <= range {
                    t.add_edge(i, j);
                }
            }
        }
        t
    }

    /// Neighbours of a node.
    pub fn neighbors(&self, node: usize) -> &[usize] {
        &self.adjacency[node]
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(|n| n.len()).sum::<usize>() / 2
    }

    /// Nodes reachable from `origin` within `max_hops` hops (including the
    /// origin itself), via breadth-first search.
    pub fn reachable_within(&self, origin: usize, max_hops: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.len()];
        let mut queue = VecDeque::new();
        dist[origin] = 0;
        queue.push_back(origin);
        let mut out = vec![origin];
        while let Some(u) = queue.pop_front() {
            if dist[u] == max_hops {
                continue;
            }
            for &v in &self.adjacency[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    out.push(v);
                    queue.push_back(v);
                }
            }
        }
        out
    }

    /// Hop distance between two nodes, or `None` if unreachable.
    pub fn hop_distance(&self, from: usize, to: usize) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.len()];
        let mut queue = VecDeque::new();
        dist[from] = 0;
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    if v == to {
                        return Some(dist[v]);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }
}

/// Result of one flooded Gnutella query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FloodStats {
    /// Query messages transmitted (every forward over every edge counts).
    pub messages: u64,
    /// Distinct nodes the query reached (excluding the origin).
    pub nodes_reached: u64,
    /// Messages that arrived at a node which had already seen the query
    /// (pure overhead).
    pub duplicate_messages: u64,
}

/// Simulates one Gnutella query flood from `origin` with the given TTL
/// (hop limit). Every node that receives the query for the first time
/// forwards it to all of its neighbours except the sender, as the original
/// protocol does.
pub fn gnutella_flood(topology: &Topology, origin: usize, ttl: usize) -> FloodStats {
    let mut stats = FloodStats::default();
    let mut seen = vec![false; topology.len()];
    seen[origin] = true;
    // Frontier entries: (node, arrived_from, remaining_ttl)
    let mut frontier: VecDeque<(usize, usize, usize)> = VecDeque::new();
    for &n in topology.neighbors(origin) {
        stats.messages += 1;
        frontier.push_back((n, origin, ttl));
    }
    while let Some((node, from, ttl_left)) = frontier.pop_front() {
        if seen[node] {
            stats.duplicate_messages += 1;
            continue;
        }
        seen[node] = true;
        stats.nodes_reached += 1;
        if ttl_left <= 1 {
            continue;
        }
        for &next in topology.neighbors(node) {
            if next == from {
                continue;
            }
            stats.messages += 1;
            frontier.push_back((next, node, ttl_left - 1));
        }
    }
    stats
}

/// Per-discovery-cycle traffic of PeerHood's dynamic device discovery on the
/// same topology: every node inquires once and exchanges one
/// request/response pair with each direct neighbour ("the inquiry petition is
/// not repeated like Gnutella ... but only sent to the direct neighbours",
/// §3.3). Returns the number of protocol messages per full cycle.
pub fn peerhood_cycle_messages(topology: &Topology) -> u64 {
    // Each undirected edge carries one (request, response) pair in each
    // direction per cycle: 4 messages per edge.
    4 * topology.edge_count() as u64
}

/// Messages needed for *every* node to issue one Gnutella search (the
/// traffic required for everyone to achieve total knowledge by querying).
pub fn gnutella_full_search_messages(topology: &Topology, ttl: usize) -> u64 {
    (0..topology.len())
        .map(|origin| gnutella_flood(topology, origin, ttl).messages)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 5-node line: 0 - 1 - 2 - 3 - 4.
    fn line() -> Topology {
        let mut t = Topology::new(5);
        for i in 0..4 {
            t.add_edge(i, i + 1);
        }
        t
    }

    /// A 4-node star centred on node 0.
    fn star() -> Topology {
        let mut t = Topology::new(4);
        for i in 1..4 {
            t.add_edge(0, i);
        }
        t
    }

    #[test]
    fn topology_edges_are_undirected_and_deduplicated() {
        let mut t = Topology::new(3);
        t.add_edge(0, 1);
        t.add_edge(1, 0);
        t.add_edge(1, 1);
        assert_eq!(t.edge_count(), 1);
        assert_eq!(t.neighbors(0), &[1]);
        assert_eq!(t.neighbors(1), &[0]);
        assert!(t.neighbors(2).is_empty());
    }

    #[test]
    fn from_positions_links_close_pairs() {
        let t = Topology::from_positions(&[(0.0, 0.0), (5.0, 0.0), (50.0, 0.0)], 10.0);
        assert_eq!(t.edge_count(), 1);
        assert_eq!(t.neighbors(0), &[1]);
        assert!(t.neighbors(2).is_empty());
    }

    #[test]
    fn reachability_and_distance_on_a_line() {
        let t = line();
        assert_eq!(t.hop_distance(0, 4), Some(4));
        assert_eq!(t.hop_distance(2, 2), Some(0));
        assert_eq!(t.reachable_within(0, 2).len(), 3);
        assert_eq!(t.reachable_within(0, 10).len(), 5);
        let disconnected = Topology::new(2);
        assert_eq!(disconnected.hop_distance(0, 1), None);
    }

    #[test]
    fn flood_reaches_everything_with_enough_ttl() {
        let t = line();
        let stats = gnutella_flood(&t, 0, 10);
        assert_eq!(stats.nodes_reached, 4);
        // One message per hop along the line, no duplicates.
        assert_eq!(stats.messages, 4);
        assert_eq!(stats.duplicate_messages, 0);
    }

    #[test]
    fn flood_respects_ttl() {
        let t = line();
        let stats = gnutella_flood(&t, 0, 2);
        assert_eq!(stats.nodes_reached, 2);
        assert_eq!(stats.messages, 2);
    }

    #[test]
    fn flood_counts_duplicates_in_cycles() {
        // A triangle: the query sent both ways around arrives twice at the
        // far node.
        let mut t = Topology::new(3);
        t.add_edge(0, 1);
        t.add_edge(1, 2);
        t.add_edge(0, 2);
        let stats = gnutella_flood(&t, 0, 5);
        assert_eq!(stats.nodes_reached, 2);
        assert!(stats.duplicate_messages >= 1, "triangle must produce duplicates");
        assert!(stats.messages > stats.nodes_reached);
    }

    #[test]
    fn star_flood_from_centre_is_cheap() {
        let t = star();
        let stats = gnutella_flood(&t, 0, 5);
        assert_eq!(stats.nodes_reached, 3);
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.duplicate_messages, 0);
    }

    #[test]
    fn peerhood_cycle_traffic_is_linear_in_edges() {
        assert_eq!(peerhood_cycle_messages(&line()), 16);
        assert_eq!(peerhood_cycle_messages(&star()), 12);
        assert_eq!(peerhood_cycle_messages(&Topology::new(10)), 0);
    }

    #[test]
    fn gnutella_everyone_searching_costs_more_than_one_peerhood_cycle_on_dense_graphs() {
        // A modestly dense random-geometric-style graph: a 4x4 grid with
        // diagonals, where flooding produces duplicate traffic.
        let mut t = Topology::new(16);
        for y in 0..4 {
            for x in 0..4 {
                let i = y * 4 + x;
                if x < 3 {
                    t.add_edge(i, i + 1);
                }
                if y < 3 {
                    t.add_edge(i, i + 4);
                }
                if x < 3 && y < 3 {
                    t.add_edge(i, i + 5);
                }
            }
        }
        let gnutella = gnutella_full_search_messages(&t, 7);
        let peerhood = peerhood_cycle_messages(&t);
        assert!(
            gnutella > peerhood,
            "gnutella {gnutella} should exceed peerhood {peerhood} on a dense graph"
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let mut t = Topology::new(2);
        t.add_edge(0, 5);
    }
}
