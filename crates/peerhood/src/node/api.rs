//! The handle applications (and scenario drivers) use to act on the
//! middleware.
//!
//! A [`PeerHoodApi`] is passed into every
//! [`Application`](crate::application::Application) callback and can also be
//! borrowed by scenario drivers through
//! [`PeerHoodNode::with_api`](super::PeerHoodNode::with_api). It carries the
//! identity of the application it acts for, so services registered and
//! connections opened through it are owned by — and their callbacks routed
//! to — that application.

use simnet::{NodeCtx, SimDuration, SimTime};

use crate::connection::{AppConnection, ConnKind, ConnectionSnapshot};
use crate::error::PeerHoodError;
use crate::handover::HandoverMonitor;
use crate::ids::{ConnectionId, DeviceAddress};
use crate::proto::Message;
use crate::service::ServiceInfo;
use crate::storage::{StorageStats, StoredDevice};

use super::pending::PendingPurpose;
use super::{token, AppId, Core, KIND_APP};

/// Handle applications (and scenario drivers) use to act on the middleware.
///
/// The handle's application identity determines where callbacks are routed
/// (services registered and connections opened through it belong to that
/// application). It is **routing, not sandboxing**: applications on one
/// device are mutually trusted, as in the original library where they share
/// one daemon, so mutating operations (`send`, `close`, `set_sending`,
/// `unregister_service`) accept any connection or service on the node.
pub struct PeerHoodApi<'a, 'w> {
    pub(crate) core: &'a mut Core,
    pub(crate) ctx: &'a mut NodeCtx<'w>,
    /// The application this handle acts for; `None` for driver-side use on a
    /// node without applications.
    pub(crate) app: Option<AppId>,
}

impl<'a, 'w> PeerHoodApi<'a, 'w> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// The application this handle acts for (`None` when borrowed by a
    /// scenario driver on a node without applications).
    pub fn app_id(&self) -> Option<AppId> {
        self.app
    }

    /// This device's address.
    pub fn my_address(&self) -> DeviceAddress {
        self.core.my_address()
    }

    /// This device's full advertised description.
    pub fn my_info(&self) -> crate::device::DeviceInfo {
        self.core.my_info()
    }

    /// Registers an application service with the daemon, making it
    /// discoverable by the whole PeerHood network. Incoming connections to
    /// the service are routed to the registering application.
    ///
    /// # Errors
    ///
    /// Fails if a service with the same name is already registered.
    pub fn register_service(&mut self, service: ServiceInfo) -> Result<(), PeerHoodError> {
        let name = service.name.clone();
        self.core.daemon.register_service(service)?;
        if let Some(app) = self.app {
            self.core.service_owner.insert(name, app);
        }
        Ok(())
    }

    /// Unregisters an application service.
    pub fn unregister_service(&mut self, name: &str) -> Option<ServiceInfo> {
        let removed = self.core.daemon.unregister_service(name);
        if removed.is_some() {
            self.core.service_owner.remove(name);
        }
        removed
    }

    /// `GetDeviceList`: every remote device currently in the storage.
    ///
    /// Returns owned snapshots; middleware-internal code iterates the
    /// storage directly (see
    /// [`DeviceStorage::devices`](crate::storage::DeviceStorage::devices))
    /// without this copy.
    pub fn device_list(&self) -> Vec<StoredDevice> {
        self.core.daemon.storage().devices().cloned().collect()
    }

    /// `GetServiceList`: every `(device, service)` pair currently known.
    pub fn service_list(&self) -> Vec<(DeviceAddress, ServiceInfo)> {
        self.core
            .daemon
            .storage()
            .devices()
            .flat_map(|d| d.services.iter().cloned().map(move |s| (d.info.address, s)))
            .collect()
    }

    /// Storage statistics.
    pub fn storage_stats(&self) -> StorageStats {
        self.core.daemon.stats()
    }

    /// Connects to a named service on a specific device. Returns the
    /// connection id immediately; establishment is reported through
    /// [`Application::on_connected`](crate::application::Application::on_connected)
    /// on the owning application.
    ///
    /// # Errors
    ///
    /// Fails if the device is unknown or no route to it exists.
    pub fn connect_to(&mut self, target: DeviceAddress, service: &str) -> Result<ConnectionId, PeerHoodError> {
        self.core.op_connect_to(self.ctx, self.app, target, service)
    }

    /// Connects to the best-known provider of a named service.
    ///
    /// # Errors
    ///
    /// Fails if no known device offers the service.
    pub fn connect_to_service(&mut self, service: &str) -> Result<ConnectionId, PeerHoodError> {
        self.core.op_connect_to_service(self.ctx, self.app, service)
    }

    /// Writes application data on a connection. On a server-side connection
    /// whose client has disconnected, the payload is queued and delivered
    /// through result routing once the client is reachable again (§5.3).
    ///
    /// # Errors
    ///
    /// Fails if the connection is unknown, if an outgoing connection is not
    /// currently established, or — on a node built with
    /// `trusted_apps(false)` — with [`PeerHoodError::NotOwner`] when the
    /// connection belongs to a different application.
    pub fn send(&mut self, conn: ConnectionId, payload: Vec<u8>) -> Result<(), PeerHoodError> {
        self.check_owner(conn)?;
        self.core.op_send(self.ctx, conn, payload)
    }

    /// Sets the §5.3 "sending" flag: while `false`, the handover machinery
    /// leaves a broken connection alone and waits for the server to return
    /// results.
    ///
    /// # Errors
    ///
    /// Fails if the connection is unknown, or — on a node built with
    /// `trusted_apps(false)` — with [`PeerHoodError::NotOwner`] when the
    /// connection belongs to a different application.
    pub fn set_sending(&mut self, conn: ConnectionId, sending: bool) -> Result<(), PeerHoodError> {
        self.check_owner(conn)?;
        self.core.op_set_sending(conn, sending)
    }

    /// Closes a connection and forgets it. Closing an unknown (e.g. already
    /// closed) connection is a no-op.
    ///
    /// # Errors
    ///
    /// On a node built with `trusted_apps(false)`, returns
    /// [`PeerHoodError::NotOwner`] when the connection belongs to a
    /// different application; the connection is left untouched.
    pub fn close(&mut self, conn: ConnectionId) -> Result<(), PeerHoodError> {
        self.check_owner(conn)?;
        self.core.op_close(self.ctx, conn);
        Ok(())
    }

    /// Ownership gate for mutating per-connection operations: enforced only
    /// on nodes built with `trusted_apps(false)`, and only between two
    /// *applications* — a driver-side handle (no application identity) and
    /// unowned connections pass, preserving the scenario-driver escape
    /// hatch.
    fn check_owner(&self, conn: ConnectionId) -> Result<(), PeerHoodError> {
        if self.core.trusted_apps {
            return Ok(());
        }
        match (self.app, self.core.owner_of(conn)) {
            (Some(acting), Some(owner)) if acting != owner => Err(PeerHoodError::NotOwner(conn)),
            _ => Ok(()),
        }
    }

    /// Snapshot of one connection.
    pub fn connection(&self, conn: ConnectionId) -> Option<ConnectionSnapshot> {
        self.core.connections.get(conn).map(ConnectionSnapshot::from)
    }

    /// Snapshots of all connections.
    pub fn connections(&self) -> Vec<ConnectionSnapshot> {
        self.core.connections.iter().map(ConnectionSnapshot::from).collect()
    }

    /// Samples the link quality of an established connection.
    pub fn connection_quality(&mut self, conn: ConnectionId) -> Option<u8> {
        let link = self.core.connections.get(conn)?.link?;
        self.ctx.link_quality(link)
    }

    /// Schedules an application timer delivered through
    /// [`Application::on_timer`](crate::application::Application::on_timer)
    /// to the scheduling application.
    pub fn schedule_timer(&mut self, after: SimDuration, token_value: u64) {
        let key = self.core.next_app_timer;
        self.core.next_app_timer += 1;
        self.core.app_timers.insert(key, (self.app, token_value));
        self.ctx.schedule(after, token(KIND_APP, key));
    }

    /// The bridge service load of this node (0-100).
    pub fn bridge_load_percent(&self) -> u8 {
        self.core.bridge.load_percent()
    }
}

// ---------------------------------------------------------------------
// Operations invoked through the PeerHoodApi
// ---------------------------------------------------------------------

impl Core {
    pub(crate) fn op_connect_to(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        owner: Option<AppId>,
        target: DeviceAddress,
        service: &str,
    ) -> Result<ConnectionId, PeerHoodError> {
        let entry = self
            .daemon
            .storage()
            .get(target)
            .ok_or(PeerHoodError::UnknownDevice(target))?;
        let route = entry.route.clone();
        let target_info = entry.info.clone();
        let kind = if route.is_direct() {
            ConnKind::OutgoingDirect
        } else {
            let bridge = route.bridge.ok_or(PeerHoodError::NoRoute(target))?;
            ConnKind::OutgoingBridged { bridge }
        };
        // The circuit breaker gates the dial towards the first physical hop
        // before any connection state is allocated: a refused dial costs
        // nothing — no id, no table entry, no radio attempt.
        let gate_hop = kind.first_hop(target).unwrap_or(target);
        if !self.resilience.allow_dial(gate_hop, ctx.now()) {
            return Err(PeerHoodError::CircuitOpen(gate_hop));
        }
        let conn = self.connections.allocate_id(self.my_address());
        let mut connection = AppConnection::outgoing(conn, target, service, kind.clone(), ctx.now());
        if self.config.handover.enabled {
            connection.monitor = Some(HandoverMonitor::new(
                self.config.monitor.quality_threshold,
                self.config.monitor.low_count_limit,
                self.config.handover.target,
            ));
        }
        self.connections.insert(connection);
        if let Some(owner) = owner {
            self.conn_owner.insert(conn, owner);
        }
        let first_hop = kind.first_hop(target).unwrap_or(target);
        let hop_info = if first_hop == target {
            Some(target_info)
        } else {
            self.daemon.storage().get(first_hop).map(|e| e.info.clone())
        };
        let tech = self.tech_for(hop_info.as_ref());
        let attempt = ctx.connect(first_hop.node_id(), tech);
        self.pending.insert(attempt, PendingPurpose::AppConnect { conn });
        Ok(conn)
    }

    pub(crate) fn op_connect_to_service(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        owner: Option<AppId>,
        service: &str,
    ) -> Result<ConnectionId, PeerHoodError> {
        let provider = self
            .daemon
            .storage()
            .best_service_provider(service)
            .map(|(d, _)| d.info.address)
            .ok_or_else(|| PeerHoodError::ServiceNotFound(service.to_string()))?;
        self.op_connect_to(ctx, owner, provider, service)
    }

    pub(crate) fn op_send(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        conn: ConnectionId,
        payload: Vec<u8>,
    ) -> Result<(), PeerHoodError> {
        let (established, outgoing, link) = match self.connections.get(conn) {
            Some(c) => (c.is_established(), c.is_outgoing(), c.link),
            None => return Err(PeerHoodError::UnknownConnection(conn)),
        };
        // Backpressure: the per-app outbound bucket sheds sends that exceed
        // the rate, with an explicit error the caller can react to.
        let owner = self.owner_of(conn);
        if !self.resilience.allow_outbound(owner, ctx.now()) {
            return Err(PeerHoodError::Overloaded(conn));
        }
        if established {
            if let Some(link) = link {
                self.send_frame(ctx, link, &Message::Data { conn_id: conn, payload });
                return Ok(());
            }
        }
        if !outgoing {
            // Server side with a broken connection: queue the result and
            // start result routing (§5.3 / Fig. 5.10). The outbox cap bounds
            // how much a dead client's results may occupy; shed results are
            // reported to the owning application instead of queued silently.
            if let Some(cap) = self.resilience.outbox_cap() {
                let len = self.connections.get(conn).map(|c| c.outbox.len()).unwrap_or(0);
                if len >= cap {
                    self.resilience.note_queue_shed();
                    self.events.push_back(super::PeerHoodEvent::Shed {
                        app: owner,
                        conn,
                        dropped_bytes: payload.len(),
                    });
                    return Err(PeerHoodError::Overloaded(conn));
                }
            }
            if let Some(c) = self.connections.get_mut(conn) {
                c.outbox.push(payload);
            }
            self.try_reply_reconnect(ctx, conn);
            return Ok(());
        }
        Err(PeerHoodError::InvalidConnectionState(conn))
    }

    pub(crate) fn op_close(&mut self, ctx: &mut NodeCtx<'_>, conn: ConnectionId) {
        if let Some(c) = self.connections.remove(conn) {
            if let Some(link) = c.link {
                self.send_frame(ctx, link, &Message::Disconnect { conn_id: conn });
                ctx.close(link);
                self.engine.remove(link);
            }
        }
        self.conn_owner.remove(&conn);
    }

    pub(crate) fn op_set_sending(&mut self, conn: ConnectionId, sending: bool) -> Result<(), PeerHoodError> {
        match self.connections.get_mut(conn) {
            Some(c) => {
                c.sending = sending;
                Ok(())
            }
            None => Err(PeerHoodError::UnknownConnection(conn)),
        }
    }
}
