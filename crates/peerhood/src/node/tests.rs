//! Unit tests for the node host: end-to-end middleware behaviour plus the
//! multi-application dispatch layer (routing, builder defaults, event
//! trace).

use std::any::Any;

use simnet::{MobilityModel, Point, RadioTech, SimDuration, World, WorldConfig};

use crate::application::Application;
use crate::config::PeerHoodConfig;
use crate::device::{DeviceInfo, MobilityClass};
use crate::error::PeerHoodError;
use crate::ids::{ConnectionId, DeviceAddress};
use crate::proto::NeighborRecord;
use crate::service::ServiceInfo;

use super::{AppId, PeerHoodApi, PeerHoodEvent, PeerHoodNode, PendingPurpose};

/// A scriptable test application that records every callback and echoes
/// received data back when asked to.
#[derive(Default)]
struct TestApp {
    service: Option<&'static str>,
    echo: bool,
    connected: Vec<ConnectionId>,
    peer_connected: Vec<(ConnectionId, String)>,
    data: Vec<(ConnectionId, Vec<u8>)>,
    disconnected: Vec<(ConnectionId, bool)>,
    changed: Vec<ConnectionId>,
    failed: Vec<(ConnectionId, PeerHoodError)>,
    discovered: Vec<DeviceAddress>,
    timers: Vec<u64>,
}

impl TestApp {
    fn server(service: &'static str, echo: bool) -> Self {
        TestApp {
            service: Some(service),
            echo,
            ..TestApp::default()
        }
    }
}

impl Application for TestApp {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn on_start(&mut self, api: &mut PeerHoodApi<'_, '_>) {
        if let Some(name) = self.service {
            api.register_service(ServiceInfo::new(name, "test", 10)).unwrap();
        }
    }
    fn on_peer_connected(
        &mut self,
        _api: &mut PeerHoodApi<'_, '_>,
        conn: ConnectionId,
        _client: DeviceInfo,
        service: &str,
    ) {
        self.peer_connected.push((conn, service.to_string()));
    }
    fn on_connected(&mut self, _api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId) {
        self.connected.push(conn);
    }
    fn on_connect_failed(&mut self, _api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, error: PeerHoodError) {
        self.failed.push((conn, error));
    }
    fn on_data(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, payload: Vec<u8>) {
        if self.echo {
            let mut reply = payload.clone();
            reply.reverse();
            let _ = api.send(conn, reply);
        }
        self.data.push((conn, payload));
    }
    fn on_disconnected(&mut self, _api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, graceful: bool) {
        self.disconnected.push((conn, graceful));
    }
    fn on_connection_changed(&mut self, _api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId) {
        self.changed.push(conn);
    }
    fn on_device_discovered(&mut self, _api: &mut PeerHoodApi<'_, '_>, address: DeviceAddress) {
        self.discovered.push(address);
    }
    fn on_timer(&mut self, _api: &mut PeerHoodApi<'_, '_>, token: u64) {
        self.timers.push(token);
    }
}

fn peerhood(name: &str, mobility: MobilityClass, app: TestApp) -> Box<PeerHoodNode> {
    Box::new(
        PeerHoodNode::builder()
            .config(PeerHoodConfig::new(name, mobility))
            .app(app)
            .build(),
    )
}

fn fast_discovery_config(name: &str, mobility: MobilityClass) -> PeerHoodConfig {
    let mut cfg = PeerHoodConfig::new(name, mobility);
    cfg.discovery.inquiry_interval = SimDuration::from_secs(3);
    cfg
}

fn bt() -> [RadioTech; 1] {
    [RadioTech::Bluetooth]
}

#[test]
fn discovery_connect_and_echo_between_direct_neighbors() {
    let mut world = World::new(WorldConfig::ideal(41));
    let client = world.add_node(
        "client",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        peerhood("client", MobilityClass::Dynamic, TestApp::default()),
    );
    let server = world.add_node(
        "server",
        MobilityModel::stationary(Point::new(4.0, 0.0)),
        &bt(),
        peerhood("server", MobilityClass::Static, TestApp::server("echo", true)),
    );
    // Let a couple of discovery cycles run.
    world.run_for(SimDuration::from_secs(40));
    let stats = world
        .with_agent::<PeerHoodNode, _>(client, |n, _| n.storage_stats())
        .unwrap();
    assert_eq!(stats.known_devices, 1, "client should have found the server");
    assert_eq!(stats.known_services, 1);
    // The discovery fan-out callback fired for the newly learned device.
    world
        .with_agent::<PeerHoodNode, _>(client, |n, _| {
            let discovered = n.with_app(|app: &TestApp| app.discovered.clone()).unwrap();
            assert!(!discovered.is_empty(), "on_device_discovered must fire");
        })
        .unwrap();

    // Connect to the echo service and exchange data.
    let conn = world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            n.with_api(ctx, |api| api.connect_to_service("echo")).unwrap()
        })
        .unwrap()
        .expect("service should be connectable");
    world.run_for(SimDuration::from_secs(5));
    world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            assert_eq!(n.app::<TestApp>().unwrap().connected, vec![conn]);
            n.with_api(ctx, |api| api.send(conn, b"hello".to_vec()).unwrap());
        })
        .unwrap();
    world.run_for(SimDuration::from_secs(5));
    world
        .with_agent::<PeerHoodNode, _>(server, |n, _| {
            let app = n.app::<TestApp>().unwrap();
            assert_eq!(app.peer_connected.len(), 1);
            assert_eq!(app.data.len(), 1);
            assert_eq!(app.data[0].1, b"hello".to_vec());
        })
        .unwrap();
    world
        .with_agent::<PeerHoodNode, _>(client, |n, _| {
            let app = n.app::<TestApp>().unwrap();
            assert_eq!(app.data.len(), 1);
            assert_eq!(app.data[0].1, b"olleh".to_vec());
        })
        .unwrap();
    // The server sees the session too.
    let server_conns = world
        .with_agent::<PeerHoodNode, _>(server, |n, _| n.connections())
        .unwrap();
    assert_eq!(server_conns.len(), 1);
    assert_eq!(server_conns[0].id, conn);
}

#[test]
fn bridged_connection_relays_data_between_remote_devices() {
    // A --- B --- C in a line; A and C are out of each other's Bluetooth
    // range and must interconnect through B (Fig. 4.1).
    let mut world = World::new(WorldConfig::ideal(42));
    let a = world.add_node(
        "a",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(
            PeerHoodNode::builder()
                .config(fast_discovery_config("a", MobilityClass::Dynamic))
                .app(TestApp::default())
                .build(),
        ),
    );
    let b = world.add_node(
        "b",
        MobilityModel::stationary(Point::new(8.0, 0.0)),
        &bt(),
        Box::new(PeerHoodNode::relay(fast_discovery_config("b", MobilityClass::Static))),
    );
    let c = world.add_node(
        "c",
        MobilityModel::stationary(Point::new(16.0, 0.0)),
        &bt(),
        Box::new(
            PeerHoodNode::builder()
                .config(fast_discovery_config("c", MobilityClass::Static))
                .app(TestApp::server("echo", true))
                .build(),
        ),
    );
    assert!(!world.in_range(a, c, RadioTech::Bluetooth));
    // Dynamic discovery needs a couple of cycles to propagate C to A.
    world.run_for(SimDuration::from_secs(120));
    let a_stats = world
        .with_agent::<PeerHoodNode, _>(a, |n, _| n.storage_stats())
        .unwrap();
    assert_eq!(a_stats.known_devices, 2, "A must learn about both B and C");
    assert_eq!(a_stats.max_jumps, 1);
    let c_addr = world
        .with_agent::<PeerHoodNode, _>(c, |n, _| n.device_address().unwrap())
        .unwrap();
    let route = world
        .with_agent::<PeerHoodNode, _>(a, |n, _| {
            n.known_devices()
                .into_iter()
                .find(|d| d.info.address == c_addr)
                .map(|d| d.route.clone())
        })
        .unwrap()
        .expect("route to C");
    assert_eq!(route.jumps, 1);
    assert_eq!(route.bridge, Some(DeviceAddress::from_node(b)));

    // Connect A -> C through the bridge and exchange data.
    let conn = world
        .with_agent::<PeerHoodNode, _>(a, |n, ctx| {
            n.with_api(ctx, |api| api.connect_to(c_addr, "echo")).unwrap()
        })
        .unwrap()
        .expect("bridge connection should start");
    world.run_for(SimDuration::from_secs(10));
    world
        .with_agent::<PeerHoodNode, _>(a, |n, ctx| {
            assert_eq!(n.app::<TestApp>().unwrap().connected, vec![conn]);
            n.with_api(ctx, |api| api.send(conn, b"ping across".to_vec()).unwrap());
        })
        .unwrap();
    world.run_for(SimDuration::from_secs(10));
    world
        .with_agent::<PeerHoodNode, _>(c, |n, _| {
            let app = n.app::<TestApp>().unwrap();
            assert_eq!(app.data.len(), 1);
            assert_eq!(app.data[0].1, b"ping across".to_vec());
        })
        .unwrap();
    world
        .with_agent::<PeerHoodNode, _>(a, |n, _| {
            let app = n.app::<TestApp>().unwrap();
            assert_eq!(app.data.len(), 1, "echo should travel back through the bridge");
        })
        .unwrap();
    // The bridge actually relayed traffic.
    let (pairs, relayed_msgs, relayed_bytes) = world.with_agent::<PeerHoodNode, _>(b, |n, _| n.bridge_stats()).unwrap();
    assert_eq!(pairs, 1);
    assert!(relayed_msgs >= 2);
    assert!(relayed_bytes > 0);
}

#[test]
fn connecting_to_an_unknown_service_fails_cleanly() {
    let mut world = World::new(WorldConfig::ideal(43));
    let client = world.add_node(
        "client",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        peerhood("client", MobilityClass::Dynamic, TestApp::default()),
    );
    let _server = world.add_node(
        "server",
        MobilityModel::stationary(Point::new(4.0, 0.0)),
        &bt(),
        peerhood("server", MobilityClass::Static, TestApp::server("echo", false)),
    );
    world.run_for(SimDuration::from_secs(40));
    // The service name is unknown network-wide.
    let err = world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            n.with_api(ctx, |api| api.connect_to_service("no-such-service"))
                .unwrap()
        })
        .unwrap()
        .unwrap_err();
    assert_eq!(err, PeerHoodError::ServiceNotFound("no-such-service".into()));
    // Connecting to a device that exists but with a wrong service name is
    // rejected by the remote engine.
    let server_addr = world
        .with_agent::<PeerHoodNode, _>(client, |n, _| n.known_devices()[0].info.address)
        .unwrap();
    let conn = world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            n.with_api(ctx, |api| api.connect_to(server_addr, "wrong")).unwrap()
        })
        .unwrap()
        .unwrap();
    world.run_for(SimDuration::from_secs(5));
    world
        .with_agent::<PeerHoodNode, _>(client, |n, _| {
            let app = n.app::<TestApp>().unwrap();
            assert_eq!(app.failed.len(), 1);
            assert_eq!(app.failed[0].0, conn);
            assert!(app.connected.is_empty());
        })
        .unwrap();
}

// ---------------------------------------------------------------------
// Multi-application dispatch layer
// ---------------------------------------------------------------------

#[test]
fn builder_defaults_and_relay_flag() {
    let node = PeerHoodNode::builder().build();
    assert!(node.app_ids().is_empty(), "no apps by default");
    assert!(node.config().bridge.enabled, "bridge untouched by default");
    assert!(!node.event_trace_enabled());
    assert_eq!(node.device_address(), None, "no address before start");

    let relayless = PeerHoodNode::builder()
        .config(PeerHoodConfig::static_device("pc"))
        .relay(false)
        .build();
    assert!(!relayless.config().bridge.enabled, ".relay(false) disables the bridge");

    let traced = PeerHoodNode::builder().event_trace(true).build();
    assert!(traced.event_trace_enabled());

    let two = PeerHoodNode::builder()
        .app(TestApp::default())
        .app(TestApp::server("x", false))
        .build();
    assert_eq!(two.app_ids(), vec![AppId(0), AppId(1)]);
    assert_eq!(two.app_by_id::<TestApp>(AppId(1)).unwrap().service, Some("x"));
}

#[test]
fn two_services_on_one_device_route_to_the_right_app() {
    // One server device hosts two independent services ("echo" and "print"),
    // each owned by its own application. Two client connections, one per
    // service, must be routed to the right app.
    let mut world = World::new(WorldConfig::ideal(44));
    let client = world.add_node(
        "client",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(
            PeerHoodNode::builder()
                .config(PeerHoodConfig::new("client", MobilityClass::Dynamic))
                .app(TestApp::default())
                .build(),
        ),
    );
    let server = world.add_node(
        "server",
        MobilityModel::stationary(Point::new(4.0, 0.0)),
        &bt(),
        Box::new(
            PeerHoodNode::builder()
                .config(PeerHoodConfig::new("server", MobilityClass::Static))
                .app(TestApp::server("echo", true))
                .app(TestApp::server("print", false))
                .build(),
        ),
    );
    world.run_for(SimDuration::from_secs(40));
    let stats = world
        .with_agent::<PeerHoodNode, _>(client, |n, _| n.storage_stats())
        .unwrap();
    assert_eq!(stats.known_services, 2, "both services must be advertised");

    let echo_conn = world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            n.with_api(ctx, |api| api.connect_to_service("echo")).unwrap()
        })
        .unwrap()
        .unwrap();
    let print_conn = world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            n.with_api(ctx, |api| api.connect_to_service("print")).unwrap()
        })
        .unwrap()
        .unwrap();
    world.run_for(SimDuration::from_secs(5));
    world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            n.with_api(ctx, |api| {
                api.send(echo_conn, b"to echo".to_vec()).unwrap();
                api.send(print_conn, b"to print".to_vec()).unwrap();
            });
        })
        .unwrap();
    world.run_for(SimDuration::from_secs(5));
    world
        .with_agent::<PeerHoodNode, _>(server, |n, _| {
            // The service-owning app got exactly its own connection and data.
            let echo_app = n.app_by_id::<TestApp>(AppId(0)).unwrap();
            assert_eq!(echo_app.peer_connected.len(), 1);
            assert_eq!(echo_app.peer_connected[0].1, "echo");
            assert_eq!(echo_app.data.len(), 1);
            assert_eq!(echo_app.data[0].1, b"to echo".to_vec());
            let print_app = n.app_by_id::<TestApp>(AppId(1)).unwrap();
            assert_eq!(print_app.peer_connected.len(), 1);
            assert_eq!(print_app.peer_connected[0].1, "print");
            assert_eq!(print_app.data.len(), 1);
            assert_eq!(print_app.data[0].1, b"to print".to_vec());
            // Connection ownership is queryable.
            assert_eq!(n.connection_owner(echo_conn), Some(AppId(0)));
            assert_eq!(n.connection_owner(print_conn), Some(AppId(1)));
        })
        .unwrap();
    // The echo reply reached the client (whose single app owns both
    // connections).
    world
        .with_agent::<PeerHoodNode, _>(client, |n, _| {
            let app = n.app::<TestApp>().unwrap();
            assert_eq!(app.data.len(), 1);
            assert_eq!(app.data[0].1, b"ohce ot".to_vec());
            assert_eq!(n.connection_owner(echo_conn), Some(AppId(0)));
        })
        .unwrap();
}

/// Builds a two-node world (client with two apps, echo server) and returns
/// `(world, client, conn)` where `conn` is an established connection owned
/// by the client's app 0.
fn ownership_world(trusted: bool) -> (World, simnet::NodeId, ConnectionId) {
    let mut world = World::new(WorldConfig::ideal(47));
    let client = world.add_node(
        "client",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(
            PeerHoodNode::builder()
                .config(PeerHoodConfig::new("client", MobilityClass::Dynamic))
                .app(TestApp::default())
                .app(TestApp::default())
                .trusted_apps(trusted)
                .build(),
        ),
    );
    world.add_node(
        "server",
        MobilityModel::stationary(Point::new(3.0, 0.0)),
        &bt(),
        peerhood("server", MobilityClass::Static, TestApp::server("echo", true)),
    );
    world.run_for(SimDuration::from_secs(40));
    let conn = world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            n.with_api_for(Some(AppId(0)), ctx, |api| api.connect_to_service("echo"))
                .unwrap()
        })
        .unwrap()
        .unwrap();
    world.run_for(SimDuration::from_secs(5));
    (world, client, conn)
}

#[test]
fn untrusted_apps_cannot_touch_each_others_connections() {
    let (mut world, client, conn) = ownership_world(false);
    world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            assert_eq!(n.connection_owner(conn), Some(AppId(0)));
            // App 1 is neither owner nor trusted: send and close refuse.
            n.with_api_for(Some(AppId(1)), ctx, |api| {
                assert_eq!(api.send(conn, b"sneaky".to_vec()), Err(PeerHoodError::NotOwner(conn)));
                assert_eq!(api.close(conn), Err(PeerHoodError::NotOwner(conn)));
                assert_eq!(api.set_sending(conn, false), Err(PeerHoodError::NotOwner(conn)));
            });
        })
        .unwrap();
    world.run_for(SimDuration::from_secs(2));
    world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            // The refused close left the connection alive; the owner still
            // works, and a driver-side handle (no app identity) is the
            // documented escape hatch.
            assert_eq!(
                n.connection(conn).unwrap().state,
                crate::connection::ConnState::Established
            );
            n.with_api_for(Some(AppId(0)), ctx, |api| {
                api.send(conn, b"mine".to_vec()).unwrap();
            });
            n.with_api_for(None, ctx, |api| {
                api.send(conn, b"driver".to_vec()).unwrap();
            });
        })
        .unwrap();
}

#[test]
fn trusted_apps_default_preserves_the_shared_daemon_model() {
    let (mut world, client, conn) = ownership_world(true);
    world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            // Any co-hosted app may act on the connection, as in the
            // original library where applications share one daemon.
            n.with_api_for(Some(AppId(1)), ctx, |api| {
                api.send(conn, b"shared".to_vec()).unwrap();
                api.close(conn).unwrap();
            });
            assert!(n.connection(conn).is_none(), "the trusted close must stick");
        })
        .unwrap();
}

#[test]
fn timers_are_routed_to_the_scheduling_app() {
    let mut world = World::new(WorldConfig::ideal(45));
    let node = world.add_node(
        "dev",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(
            PeerHoodNode::builder()
                .config(PeerHoodConfig::static_device("dev"))
                .app(TestApp::default())
                .app(TestApp::default())
                .build(),
        ),
    );
    world.run_for(SimDuration::from_secs(1));
    world
        .with_agent::<PeerHoodNode, _>(node, |n, ctx| {
            n.with_api_for(Some(AppId(1)), ctx, |api| {
                api.schedule_timer(SimDuration::from_secs(1), 77);
            });
        })
        .unwrap();
    world.run_for(SimDuration::from_secs(5));
    world
        .with_agent::<PeerHoodNode, _>(node, |n, _| {
            assert!(n.app_by_id::<TestApp>(AppId(0)).unwrap().timers.is_empty());
            assert_eq!(n.app_by_id::<TestApp>(AppId(1)).unwrap().timers, vec![77]);
        })
        .unwrap();
}

#[test]
fn event_trace_records_the_dispatch_stream() {
    let mut world = World::new(WorldConfig::ideal(46));
    let client = world.add_node(
        "client",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(
            PeerHoodNode::builder()
                .config(PeerHoodConfig::new("client", MobilityClass::Dynamic))
                .app(TestApp::default())
                .event_trace(true)
                .build(),
        ),
    );
    let server = world.add_node(
        "server",
        MobilityModel::stationary(Point::new(4.0, 0.0)),
        &bt(),
        Box::new(
            PeerHoodNode::builder()
                .config(PeerHoodConfig::new("server", MobilityClass::Static))
                .app(TestApp::server("echo", true))
                .event_trace(true)
                .build(),
        ),
    );
    world.run_for(SimDuration::from_secs(40));
    let conn = world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            n.with_api(ctx, |api| api.connect_to_service("echo")).unwrap()
        })
        .unwrap()
        .unwrap();
    world.run_for(SimDuration::from_secs(5));
    world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            n.with_api(ctx, |api| api.send(conn, b"ping".to_vec()).unwrap());
        })
        .unwrap();
    world.run_for(SimDuration::from_secs(5));

    // The client trace shows the typed lifecycle without any downcasting.
    let trace = world
        .with_agent::<PeerHoodNode, _>(client, |n, _| n.take_event_trace())
        .unwrap();
    assert!(
        matches!(trace.first(), Some(PeerHoodEvent::Started { app: AppId(0) })),
        "trace starts with Started, got {:?}",
        trace.first()
    );
    assert!(
        trace
            .iter()
            .any(|e| matches!(e, PeerHoodEvent::DeviceDiscovered { .. })),
        "discovery must be traced"
    );
    assert!(
        trace
            .iter()
            .any(|e| matches!(e, PeerHoodEvent::Connected { conn: c, .. } if *c == conn)),
        "establishment must be traced"
    );
    assert!(
        trace
            .iter()
            .any(|e| matches!(e, PeerHoodEvent::Data { conn: c, payload, .. } if *c == conn && payload == b"gnip")),
        "echoed data must be traced"
    );
    // Draining empties the buffer but keeps recording.
    let empty = world
        .with_agent::<PeerHoodNode, _>(client, |n, _| n.take_event_trace())
        .unwrap();
    assert!(empty.is_empty());

    // The server side traces the incoming connection with its service name.
    let server_trace = world
        .with_agent::<PeerHoodNode, _>(server, |n, _| n.take_event_trace())
        .unwrap();
    assert!(
        server_trace.iter().any(
            |e| matches!(e, PeerHoodEvent::PeerConnected { service, app: Some(AppId(0)), .. } if service == "echo")
        ),
        "incoming connection must be traced with its owning app"
    );
}

// ---------------------------------------------------------------------
// Handover route-recording regression (the seed bug fixed in PR 3)
// ---------------------------------------------------------------------

/// The routing handover must record the bridge the replacement route was
/// actually built through. The seed implementation recovered the bridge from
/// the monitor's *current* candidate at Accept time — a candidate refreshed
/// while the switch was in flight could then masquerade as the connection's
/// `ConnKind` bridge, poisoning later handover exclusion and LinkPeer-target
/// routing. This test reproduces exactly that interleaving: it lets a switch
/// begin towards one bridge, then (inside the multi-second setup window)
/// makes the *other* bridge the storage's best candidate, and asserts the
/// established connection records the bridge that really carries it.
#[test]
fn handover_records_the_bridge_actually_used_not_the_refreshed_candidate() {
    // Ideal radios (no faults, no noise) but a fixed 2 s connection setup,
    // so there is a deterministic window while the replacement route is in
    // flight.
    let mut cfg = WorldConfig::ideal(47);
    cfg.radio.bluetooth.setup_min_s = 2.0;
    cfg.radio.bluetooth.setup_max_s = 2.0;
    let mut world = World::new(cfg);
    let client = world.add_node(
        "client",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        peerhood("client", MobilityClass::Dynamic, TestApp::default()),
    );
    let server = world.add_node(
        "server",
        // Close enough that the direct link's natural quality stays above
        // the 230 threshold — only the injected decay may trigger a switch.
        MobilityModel::stationary(Point::new(5.0, 0.0)),
        &bt(),
        peerhood("server", MobilityClass::Static, TestApp::server("echo", false)),
    );
    let bridges = [
        Point::new(2.5, 3.5),  // in range of both client and server
        Point::new(2.5, -4.0), // slightly farther, so scores differ
    ]
    .map(|p| {
        world.add_node(
            "bridge",
            MobilityModel::stationary(p),
            &bt(),
            Box::new(PeerHoodNode::relay(fast_discovery_config(
                "bridge",
                MobilityClass::Static,
            ))),
        )
    });
    let bridge_addrs = bridges.map(DeviceAddress::from_node);
    // Let dynamic discovery converge: the client must know the server
    // directly and both bridges must have reported it as their neighbour.
    world.run_for(SimDuration::from_secs(180));
    let server_addr = DeviceAddress::from_node(server);
    let conn = world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            n.with_api(ctx, |api| api.connect_to(server_addr, "echo")).unwrap()
        })
        .unwrap()
        .expect("direct connection must start");
    world.run_for(SimDuration::from_secs(10));
    let link = world
        .with_agent::<PeerHoodNode, _>(client, |n, _| n.connection_link(conn))
        .unwrap()
        .expect("connection established");
    assert!(
        world
            .with_agent::<PeerHoodNode, _>(client, |n, _| n.connection(conn).unwrap().first_hop)
            .unwrap()
            == Some(server_addr),
        "the initial route is direct"
    );

    // Degrade the direct link so the HandoverThread triggers a switch.
    world.set_link_quality_override(link, 240.0, 20.0);
    let mut in_flight_via = None;
    for _ in 0..300 {
        world.run_for(SimDuration::from_millis(100));
        in_flight_via = world
            .with_agent::<PeerHoodNode, _>(client, |n, _| {
                n.core_mut().and_then(|core| {
                    core.pending.values().find_map(|p| match p {
                        PendingPurpose::Handover { conn: c, via } if *c == conn => Some(*via),
                        _ => None,
                    })
                })
            })
            .unwrap();
        if in_flight_via.is_some() {
            break;
        }
    }
    let in_flight_via = in_flight_via.expect("a routing handover must start");
    let decoy = if in_flight_via == bridge_addrs[0] {
        bridge_addrs[1]
    } else {
        bridge_addrs[0]
    };

    // While the replacement connection is still being set up, make the
    // *other* bridge the storage's best candidate: a perfect-quality report
    // of the server. The next monitor pass (still inside the 2 s window)
    // refreshes the monitor's candidate to the decoy — the exact
    // interleaving under which the seed code recorded the wrong bridge.
    world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            let now = ctx.now();
            let core = n.core_mut().expect("client core running");
            let server_info = core
                .daemon
                .storage()
                .get(server_addr)
                .expect("server known")
                .info
                .clone();
            core.daemon.storage_mut().integrate_neighbor_report(
                decoy,
                255,
                MobilityClass::Static,
                &[NeighborRecord {
                    info: server_info,
                    jumps: 0,
                    hop_qualities: vec![255],
                    services: vec![].into(),
                }],
                crate::config::DiscoveryMode::Dynamic,
                now,
            );
        })
        .unwrap();

    world.run_for(SimDuration::from_secs(30));
    let (completions, snapshot) = world
        .with_agent::<PeerHoodNode, _>(client, |n, _| (n.handover_completions(), n.connection(conn).unwrap()))
        .unwrap();
    assert!(completions >= 1, "the degraded link must be substituted");
    assert!(snapshot.bridged, "the replacement route goes through a bridge");
    // The recorded first hop must be the bridge that actually relays the
    // session, not whichever candidate the monitor held at Accept time.
    let carrier: Vec<DeviceAddress> = bridges
        .iter()
        .filter(|b| {
            world
                .with_agent::<PeerHoodNode, _>(**b, |n, _| n.bridge_stats().0)
                .unwrap_or(0)
                >= 1
        })
        .map(|b| DeviceAddress::from_node(*b))
        .collect();
    assert_eq!(carrier.len(), 1, "exactly one bridge carries the session");
    assert_eq!(
        snapshot.first_hop,
        Some(carrier[0]),
        "ConnKind must record the bridge actually in use"
    );
}

// ---------------------------------------------------------------------
// Crash & restart lifecycle (fault injection)
// ---------------------------------------------------------------------

/// A crashed peer must surface as a non-graceful `Disconnected` to the
/// owning application, age out of the daemon storage within one discovery
/// cycle, and — after the node restarts — be rediscovered with its services
/// re-advertised by the reborn daemon.
#[test]
fn crashed_peer_expires_and_reborn_daemon_readvertises() {
    let mut world = World::new(WorldConfig::ideal(48));
    let client = world.add_node(
        "client",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(
            PeerHoodNode::builder()
                .config(PeerHoodConfig::new("client", MobilityClass::Dynamic))
                .app(TestApp::default())
                .event_trace(true)
                .build(),
        ),
    );
    let server = world.add_node(
        "server",
        MobilityModel::stationary(Point::new(4.0, 0.0)),
        &bt(),
        peerhood("server", MobilityClass::Static, TestApp::server("echo", false)),
    );
    world.run_for(SimDuration::from_secs(40));
    let conn = world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            n.with_api(ctx, |api| api.connect_to_service("echo")).unwrap()
        })
        .unwrap()
        .expect("echo service reachable");
    world.run_for(SimDuration::from_secs(5));
    world
        .with_agent::<PeerHoodNode, _>(client, |n, _| {
            assert_eq!(n.app::<TestApp>().unwrap().connected, vec![conn]);
            let _ = n.take_event_trace();
        })
        .unwrap();

    world.crash_node(server);
    // Within one discovery cycle: the app sees the non-graceful disconnect
    // and the crashed neighbour is erased from the storage (DeviceLost).
    world.run_for(SimDuration::from_secs(30));
    world
        .with_agent::<PeerHoodNode, _>(client, |n, _| {
            let app = n.app::<TestApp>().unwrap();
            assert_eq!(app.disconnected, vec![(conn, false)], "crash is not a graceful close");
            assert_eq!(n.storage_stats().known_devices, 0, "the crashed neighbour must age out");
            let trace = n.take_event_trace();
            assert!(
                trace.iter().any(|e| matches!(e, PeerHoodEvent::DeviceLost { .. })),
                "the expiry must fan out as DeviceLost"
            );
        })
        .unwrap();

    world.restart_node(server);
    world.run_for(SimDuration::from_secs(40));
    world
        .with_agent::<PeerHoodNode, _>(client, |n, _| {
            let stats = n.storage_stats();
            assert_eq!(stats.known_devices, 1, "the restarted server must be rediscovered");
            assert_eq!(stats.known_services, 1, "the reborn daemon re-advertises its service");
        })
        .unwrap();
    // The middleware came back cold: no connections survive on the server.
    let server_conns = world
        .with_agent::<PeerHoodNode, _>(server, |n, _| n.connections().len())
        .unwrap();
    assert_eq!(server_conns, 0, "the reborn core starts with an empty connection table");
    // A fresh end-to-end session works against the reborn daemon.
    let conn2 = world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            n.with_api(ctx, |api| api.connect_to_service("echo")).unwrap()
        })
        .unwrap()
        .expect("reconnect to the reborn service");
    world.run_for(SimDuration::from_secs(5));
    world
        .with_agent::<PeerHoodNode, _>(client, |n, _| {
            assert!(n.app::<TestApp>().unwrap().connected.contains(&conn2));
        })
        .unwrap();
}

// ---------------------------------------------------------------------
// Resilience pipeline
// ---------------------------------------------------------------------

/// Drives `sessions` connect→talk→close rounds from a fresh client world
/// against a server built with the given `closed_retention`, returning the
/// server's final connection-table size. The server keeps every closed
/// session revivable by default; the retention bounds that working set.
fn churn_sessions(closed_retention: Option<SimDuration>, sessions: usize) -> usize {
    let mut world = World::new(WorldConfig::ideal(77));
    let client = world.add_node(
        "client",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        peerhood("client", MobilityClass::Dynamic, TestApp::default()),
    );
    let mut server_cfg = PeerHoodConfig::new("server", MobilityClass::Static);
    server_cfg.handover.closed_retention = closed_retention;
    let server = world.add_node(
        "server",
        MobilityModel::stationary(Point::new(4.0, 0.0)),
        &bt(),
        Box::new(
            PeerHoodNode::builder()
                .config(server_cfg)
                .app(TestApp::server("echo", true))
                .build(),
        ),
    );
    world.run_for(SimDuration::from_secs(40));
    for _ in 0..sessions {
        let conn = world
            .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
                n.with_api(ctx, |api| api.connect_to_service("echo")).unwrap()
            })
            .unwrap()
            .expect("echo service reachable");
        world.run_for(SimDuration::from_secs(5));
        world
            .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
                n.with_api(ctx, |api| api.close(conn)).unwrap().unwrap();
            })
            .unwrap();
        world.run_for(SimDuration::from_secs(5));
    }
    // Let the retention window elapse fully after the last session.
    world.run_for(SimDuration::from_secs(30));
    world
        .with_agent::<PeerHoodNode, _>(server, |n, _| n.connections().len())
        .unwrap()
}

/// Satellite of the resilience PR: the epoch-compaction recipe applied to
/// closed-but-revivable connections. Without a retention the server-side
/// table grows one `Closed` entry per churned session, forever; with
/// `closed_retention` set the long-churn working set stays bounded.
#[test]
fn closed_retention_bounds_the_connection_table_under_churn() {
    let unbounded = churn_sessions(None, 8);
    assert_eq!(
        unbounded, 8,
        "without retention every churned session leaves a revivable Closed entry"
    );
    let bounded = churn_sessions(Some(SimDuration::from_secs(10)), 8);
    assert!(
        bounded <= 2,
        "with a 10 s retention the working set must stay bounded, got {bounded}"
    );
}

/// The per-peer circuit breaker on the client refuses dials towards a
/// crashed server once consecutive failures trip it, surfacing
/// `CircuitOpen` synchronously instead of burning radio attempts.
#[test]
fn circuit_breaker_blocks_dials_to_a_dead_peer() {
    let mut resilience = crate::resilience::ResilienceConfig::default();
    resilience.breaker.enabled = true;
    let mut world = World::new(WorldConfig::ideal(53));
    let client = world.add_node(
        "client",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(
            PeerHoodNode::builder()
                .config(PeerHoodConfig::new("client", MobilityClass::Dynamic).with_resilience(resilience))
                .app(TestApp::default())
                .build(),
        ),
    );
    let server = world.add_node(
        "server",
        MobilityModel::stationary(Point::new(4.0, 0.0)),
        &bt(),
        peerhood("server", MobilityClass::Static, TestApp::server("echo", false)),
    );
    world.run_for(SimDuration::from_secs(40));
    let server_addr = world
        .with_agent::<PeerHoodNode, _>(server, |n, _| n.device_address().unwrap())
        .unwrap();
    world.crash_node(server);

    let mut circuit_open = false;
    for _ in 0..8 {
        let result = world
            .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
                n.with_api(ctx, |api| api.connect_to(server_addr, "echo")).unwrap()
            })
            .unwrap();
        match result {
            Err(PeerHoodError::CircuitOpen(hop)) => {
                assert_eq!(hop, server_addr);
                circuit_open = true;
                break;
            }
            Err(PeerHoodError::UnknownDevice(_)) => break, // aged out first
            _ => {}
        }
        world.run_for(SimDuration::from_secs(8));
    }
    assert!(circuit_open, "repeated dial failures must trip the breaker");
    let stats = world
        .with_agent::<PeerHoodNode, _>(client, |n, _| n.resilience_stats())
        .unwrap();
    assert!(stats.breaker_trips >= 1, "the trip must be counted, got {stats:?}");
    assert!(stats.breaker_blocked >= 1, "the refused dial must be counted");
}
