//! The multi-application node host.
//!
//! A [`PeerHoodNode`] hosts any number of
//! [`Application`](crate::application::Application)s on one middleware stack
//! — exactly like several programs using the PeerHood library on one device.
//! Nodes are assembled with the fluent [`PeerHoodNodeBuilder`]
//! (configuration → applications → relay flag):
//!
//! ```
//! use peerhood::prelude::*;
//!
//! let node = PeerHoodNode::builder()
//!     .config(PeerHoodConfig::static_device("pc"))
//!     .app(IdleApplication)
//!     .relay(true)
//!     .build();
//! assert_eq!(node.app_ids().len(), 1);
//! ```
//!
//! Callbacks are routed per application: the app that registered a service
//! receives its incoming connections, the app that opened a connection
//! receives its data and handover callbacks, and discovery events fan out to
//! every app. The same typed [`PeerHoodEvent`] stream can be recorded for
//! scenario drivers through [`PeerHoodNode::subscribe_event_trace`].

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use simnet::{
    AttemptId, ConnectError, DisconnectReason, IncomingConnection, InquiryHit, LinkId, NodeAgent, NodeCtx, NodeId,
    Payload, RadioTech, TimerToken,
};

use crate::application::Application;
use crate::config::PeerHoodConfig;
use crate::connection::ConnectionSnapshot;
use crate::device::DeviceInfo;
use crate::engine::LinkRole;
use crate::ids::{ConnectionId, DeviceAddress};
use crate::storage::{StorageStats, StoredDevice};

use super::{AppId, Core, PeerHoodApi, PeerHoodEvent};

/// Maximum number of events the trace retains between drains; when full the
/// oldest events are dropped so a subscribed-but-never-drained trace cannot
/// grow without bound (Data events clone their payloads into the trace).
pub const EVENT_TRACE_CAP: usize = 65_536;

/// A complete PeerHood device: middleware plus its hosted applications.
pub struct PeerHoodNode {
    /// Shared configuration — clone the `Rc` across a fleet of nodes
    /// (builder [`config_shared`](PeerHoodNodeBuilder::config_shared)) and
    /// thousands of devices reference one allocation.
    config: Rc<PeerHoodConfig>,
    core: Option<Core>,
    apps: BTreeMap<AppId, Box<dyn Application>>,
    trusted_apps: bool,
    /// When `Some`, every dispatched [`PeerHoodEvent`] is also recorded here
    /// for scenario drivers (see [`PeerHoodNode::subscribe_event_trace`]).
    /// Bounded to [`EVENT_TRACE_CAP`] entries (oldest dropped first).
    trace: Option<VecDeque<PeerHoodEvent>>,
}

/// Fluent constructor for [`PeerHoodNode`]: configuration → applications →
/// relay flag.
pub struct PeerHoodNodeBuilder {
    config: Rc<PeerHoodConfig>,
    apps: Vec<Box<dyn Application>>,
    relay: Option<bool>,
    resilience: Option<crate::resilience::ResilienceConfig>,
    trusted_apps: bool,
    trace: bool,
}

impl PeerHoodNodeBuilder {
    /// Replaces the node configuration (defaults to
    /// [`PeerHoodConfig::default`]).
    pub fn config(mut self, config: PeerHoodConfig) -> Self {
        self.config = Rc::new(config);
        self
    }

    /// Replaces the node configuration with an already-shared one. Scenario
    /// drivers building large fleets pass the same `Rc` to every node, so
    /// the configuration (device names aside, see
    /// [`PeerHoodConfig::device_name`]) is stored once for the whole world.
    pub fn config_shared(mut self, config: Rc<PeerHoodConfig>) -> Self {
        self.config = config;
        self
    }

    /// Adds an application to the node. Applications receive increasing
    /// [`AppId`]s in the order they are added, starting at zero.
    pub fn app<A: Application>(self, app: A) -> Self {
        self.app_boxed(Box::new(app))
    }

    /// Adds an already-boxed application (for callers that assemble nodes
    /// from `Box<dyn Application>` values).
    pub fn app_boxed(mut self, app: Box<dyn Application>) -> Self {
        self.apps.push(app);
        self
    }

    /// Sets whether this node relays other devices' connections — i.e.
    /// whether the hidden bridge service of Ch. 4 runs. When not called, the
    /// configuration's `bridge.enabled` value is left untouched.
    pub fn relay(mut self, relay: bool) -> Self {
        self.relay = Some(relay);
        self
    }

    /// Replaces the node's resilience-pipeline configuration (circuit
    /// breakers, backpressure, admission control). When not called, the
    /// configuration's `resilience` value — every layer off by default — is
    /// left untouched.
    pub fn resilience(mut self, resilience: crate::resilience::ResilienceConfig) -> Self {
        self.resilience = Some(resilience);
        self
    }

    /// Controls whether co-hosted applications trust each other with every
    /// connection on the node.
    ///
    /// The default (`true`) matches the original library's same-device trust
    /// model: any application (or a scenario driver) may `send`/`close` any
    /// connection. Built with `trusted_apps(false)`, those operations return
    /// [`PeerHoodError::NotOwner`](crate::error::PeerHoodError::NotOwner)
    /// when invoked by an application on a connection owned by a *different*
    /// application (driver-side handles with no application identity are
    /// exempt — that is the driver escape hatch).
    pub fn trusted_apps(mut self, trusted: bool) -> Self {
        self.trusted_apps = trusted;
        self
    }

    /// Enables the typed event trace from the start (equivalent to calling
    /// [`PeerHoodNode::subscribe_event_trace`] on the built node).
    pub fn event_trace(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// Builds the node.
    pub fn build(self) -> PeerHoodNode {
        let mut config = self.config;
        if let Some(relay) = self.relay {
            if config.bridge.enabled != relay {
                // Copy-on-write: only fork the shared configuration when the
                // relay flag actually diverges from it.
                Rc::make_mut(&mut config).bridge.enabled = relay;
            }
        }
        if let Some(resilience) = self.resilience {
            if config.resilience != resilience {
                Rc::make_mut(&mut config).resilience = resilience;
            }
        }
        let apps = self
            .apps
            .into_iter()
            .enumerate()
            .map(|(i, app)| (AppId(i as u32), app))
            .collect();
        PeerHoodNode {
            config,
            core: None,
            apps,
            trusted_apps: self.trusted_apps,
            trace: if self.trace { Some(VecDeque::new()) } else { None },
        }
    }
}

impl PeerHoodNode {
    /// Starts building a node (configuration → applications → relay flag).
    pub fn builder() -> PeerHoodNodeBuilder {
        PeerHoodNodeBuilder {
            config: Rc::new(PeerHoodConfig::default()),
            apps: Vec::new(),
            relay: None,
            resilience: None,
            trusted_apps: true,
            trace: false,
        }
    }

    /// Creates a node that only runs the middleware (daemon, discovery and
    /// the hidden bridge service) without applications — a pure relay.
    /// Shorthand for `PeerHoodNode::builder().config(config).build()`.
    pub fn relay(config: PeerHoodConfig) -> Self {
        PeerHoodNode::builder().config(config).build()
    }

    /// The configuration this node was created with.
    pub fn config(&self) -> &PeerHoodConfig {
        &self.config
    }

    /// This device's address (available after the node has started).
    pub fn device_address(&self) -> Option<DeviceAddress> {
        self.core.as_ref().map(|c| c.daemon.info().address)
    }

    /// Storage statistics of the daemon.
    pub fn storage_stats(&self) -> StorageStats {
        self.core.as_ref().map(|c| c.daemon.stats()).unwrap_or_default()
    }

    /// Snapshot of every known remote device.
    pub fn known_devices(&self) -> Vec<StoredDevice> {
        self.core
            .as_ref()
            .map(|c| c.daemon.storage().device_list().into_iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Snapshot of one connection.
    pub fn connection(&self, conn: ConnectionId) -> Option<ConnectionSnapshot> {
        self.core
            .as_ref()
            .and_then(|c| c.connections.get(conn))
            .map(ConnectionSnapshot::from)
    }

    /// Snapshots of every connection.
    pub fn connections(&self) -> Vec<ConnectionSnapshot> {
        self.core
            .as_ref()
            .map(|c| c.connections.iter().map(ConnectionSnapshot::from).collect())
            .unwrap_or_default()
    }

    /// The radio link currently carrying a connection, if any. Scenario
    /// drivers use this to install the §5.2.1 artificial quality decay on the
    /// link under a live connection.
    pub fn connection_link(&self, conn: ConnectionId) -> Option<LinkId> {
        self.core
            .as_ref()
            .and_then(|c| c.connections.get(conn))
            .and_then(|c| c.link)
    }

    /// The application owning a connection, if any.
    pub fn connection_owner(&self, conn: ConnectionId) -> Option<AppId> {
        self.core.as_ref().and_then(|c| c.owner_of(conn))
    }

    /// Number of connection pairs currently relayed by this node's bridge
    /// service, plus the totals it has relayed.
    pub fn bridge_stats(&self) -> (usize, u64, u64) {
        self.core
            .as_ref()
            .map(|c| {
                (
                    c.bridge.len(),
                    c.bridge.total_relayed_messages(),
                    c.bridge.total_relayed_bytes(),
                )
            })
            .unwrap_or((0, 0, 0))
    }

    /// Snapshot of the resilience pipeline's per-layer counters and breaker
    /// population.
    pub fn resilience_stats(&self) -> crate::resilience::ResilienceStats {
        self.core.as_ref().map(|c| c.resilience.stats()).unwrap_or_default()
    }

    /// Snapshot of the protocol-hardening counters (frame auth, replay
    /// windows, sanity checks and reporter reputation).
    pub fn security_stats(&self) -> crate::security::SecurityStats {
        self.core.as_ref().map(|c| c.security.stats()).unwrap_or_default()
    }

    /// Number of routing handovers successfully completed by this node.
    pub fn handover_completions(&self) -> u64 {
        self.core.as_ref().map(|c| c.handover_completions).unwrap_or(0)
    }

    /// Number of server-initiated reply reconnections completed (result
    /// routing, §5.3).
    pub fn reply_reconnections(&self) -> u64 {
        self.core.as_ref().map(|c| c.reply_reconnections).unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Application registry access
    // ------------------------------------------------------------------

    /// Ids of all hosted applications, in registration order.
    pub fn app_ids(&self) -> Vec<AppId> {
        self.apps.keys().copied().collect()
    }

    /// Typed access to the first hosted application of type `T`.
    pub fn app<T: Application>(&self) -> Option<&T> {
        self.apps.values().find_map(|a| a.as_any().downcast_ref::<T>())
    }

    /// Mutable typed access to the first hosted application of type `T`.
    pub fn app_mut<T: Application>(&mut self) -> Option<&mut T> {
        self.apps.values_mut().find_map(|a| a.as_any_mut().downcast_mut::<T>())
    }

    /// Typed access to a specific application by id.
    pub fn app_by_id<T: Application>(&self, id: AppId) -> Option<&T> {
        self.apps.get(&id).and_then(|a| a.as_any().downcast_ref::<T>())
    }

    /// Runs a closure against the first hosted application of type `T` —
    /// the typed inspection hook scenario drivers use instead of chaining
    /// `app::<T>().unwrap()`.
    pub fn with_app<T: Application, R>(&self, f: impl FnOnce(&T) -> R) -> Option<R> {
        self.app::<T>().map(f)
    }

    /// Mutable variant of [`PeerHoodNode::with_app`].
    pub fn with_app_mut<T: Application, R>(&mut self, f: impl FnOnce(&mut T) -> R) -> Option<R> {
        self.app_mut::<T>().map(f)
    }

    // ------------------------------------------------------------------
    // Event trace
    // ------------------------------------------------------------------

    /// Starts recording every dispatched [`PeerHoodEvent`] so scenario
    /// drivers can assert on middleware behaviour without downcasting to
    /// concrete application types. Already-recorded events are kept.
    pub fn subscribe_event_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(VecDeque::new());
        }
    }

    /// True when the event trace is being recorded.
    pub fn event_trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Drains and returns the recorded events (empty when the trace is not
    /// subscribed). At most [`EVENT_TRACE_CAP`] events are retained between
    /// drains — drain periodically in long scenarios, or the oldest events
    /// (including their cloned `Data` payloads) are dropped.
    pub fn take_event_trace(&mut self) -> Vec<PeerHoodEvent> {
        self.trace.as_mut().map(|t| t.drain(..).collect()).unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Driver-side API access and event dispatch
    // ------------------------------------------------------------------

    /// Runs a closure with the [`PeerHoodApi`], letting scenario drivers
    /// invoke application-level operations directly ("now connect to that
    /// service"). Operations act on behalf of the first hosted application
    /// (so the resulting callbacks are routed to it); on a node without
    /// applications they are unowned. Pending application callbacks are
    /// delivered afterwards.
    ///
    /// Returns `None` if the node has not started yet.
    pub fn with_api<R>(&mut self, ctx: &mut NodeCtx<'_>, f: impl FnOnce(&mut PeerHoodApi<'_, '_>) -> R) -> Option<R> {
        let app = self.apps.keys().next().copied();
        self.with_api_for(app, ctx, f)
    }

    /// Like [`PeerHoodNode::with_api`], but acting on behalf of a specific
    /// hosted application.
    pub fn with_api_for<R>(
        &mut self,
        app: Option<AppId>,
        ctx: &mut NodeCtx<'_>,
        f: impl FnOnce(&mut PeerHoodApi<'_, '_>) -> R,
    ) -> Option<R> {
        let result = {
            let core = self.core.as_mut()?;
            let mut api = PeerHoodApi { core, ctx, app };
            Some(f(&mut api))
        };
        self.drain_events(ctx);
        result
    }

    /// White-box access to the middleware state for protocol regression
    /// tests (e.g. interfering with the handover machinery mid-switch).
    #[cfg(test)]
    pub(crate) fn core_mut(&mut self) -> Option<&mut Core> {
        self.core.as_mut()
    }

    fn drain_events(&mut self, ctx: &mut NodeCtx<'_>) {
        while let Some(event) = self.core.as_mut().and_then(|c| c.events.pop_front()) {
            if let Some(trace) = self.trace.as_mut() {
                if trace.len() == EVENT_TRACE_CAP {
                    trace.pop_front();
                }
                trace.push_back(event.clone());
            }
            let core = match self.core.as_mut() {
                Some(c) => c,
                None => break,
            };
            let apps = &mut self.apps;
            match event {
                PeerHoodEvent::Started { app } => {
                    Self::deliver(apps, core, ctx, Some(app), |a, api| a.on_start(api));
                }
                PeerHoodEvent::DeviceDiscovered { address } => {
                    let ids: Vec<AppId> = apps.keys().copied().collect();
                    for id in ids {
                        Self::deliver(apps, core, ctx, Some(id), |a, api| a.on_device_discovered(api, address));
                    }
                }
                PeerHoodEvent::DeviceLost { address } => {
                    let ids: Vec<AppId> = apps.keys().copied().collect();
                    for id in ids {
                        Self::deliver(apps, core, ctx, Some(id), |a, api| a.on_device_lost(api, address));
                    }
                }
                PeerHoodEvent::PeerConnected {
                    app,
                    conn,
                    client,
                    service,
                } => {
                    Self::deliver(apps, core, ctx, app, |a, api| {
                        a.on_peer_connected(api, conn, client, &service)
                    });
                }
                PeerHoodEvent::Connected { app, conn } => {
                    Self::deliver(apps, core, ctx, app, |a, api| a.on_connected(api, conn));
                }
                PeerHoodEvent::ConnectFailed { app, conn, error } => {
                    Self::deliver(apps, core, ctx, app, |a, api| a.on_connect_failed(api, conn, error));
                }
                PeerHoodEvent::Data { app, conn, payload } => {
                    Self::deliver(apps, core, ctx, app, |a, api| a.on_data(api, conn, payload));
                }
                PeerHoodEvent::Disconnected { app, conn, graceful } => {
                    Self::deliver(apps, core, ctx, app, |a, api| a.on_disconnected(api, conn, graceful));
                }
                PeerHoodEvent::ConnectionChanged { app, conn } => {
                    Self::deliver(apps, core, ctx, app, |a, api| a.on_connection_changed(api, conn));
                }
                PeerHoodEvent::ServiceReconnected { app, conn, provider } => {
                    Self::deliver(apps, core, ctx, app, |a, api| {
                        a.on_service_reconnected(api, conn, provider)
                    });
                }
                PeerHoodEvent::ReconnectRequired { app, conn, candidates } => {
                    let mut asked = false;
                    Self::deliver(apps, core, ctx, app, |a, api| {
                        asked = true;
                        if a.on_reconnect_required(api, conn, &candidates) {
                            api.core.start_service_reconnection(api.ctx, conn, &candidates);
                        } else {
                            api.core.abandon_connection(conn);
                        }
                    });
                    if !asked {
                        // No application can approve the restart: the
                        // connection is abandoned.
                        core.abandon_connection(conn);
                    }
                }
                PeerHoodEvent::Shed {
                    app,
                    conn,
                    dropped_bytes,
                } => {
                    Self::deliver(apps, core, ctx, app, |a, api| a.on_shed(api, conn, dropped_bytes));
                }
                PeerHoodEvent::Timer { app, token } => {
                    Self::deliver(apps, core, ctx, app, |a, api| a.on_timer(api, token));
                }
            }
        }
    }

    /// Resolves an event's target application and invokes one callback on it
    /// with a correctly-scoped [`PeerHoodApi`]. Does nothing when the event
    /// has no (living) target.
    fn deliver(
        apps: &mut BTreeMap<AppId, Box<dyn Application>>,
        core: &mut Core,
        ctx: &mut NodeCtx<'_>,
        app: Option<AppId>,
        f: impl FnOnce(&mut dyn Application, &mut PeerHoodApi<'_, '_>),
    ) {
        let id = match app {
            Some(id) => id,
            None => return,
        };
        if let Some(a) = apps.get_mut(&id) {
            let mut api = PeerHoodApi {
                core,
                ctx,
                app: Some(id),
            };
            f(a.as_mut(), &mut api);
        }
    }
}

impl NodeAgent for PeerHoodNode {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let info = DeviceInfo::new(
            ctx.node_id(),
            self.config.device_name.clone(),
            self.config.mobility,
            &self.config.techs,
        );
        let mut core = Core::new(info, Rc::clone(&self.config), self.trusted_apps);
        core.start(ctx);
        for id in self.apps.keys() {
            core.events.push_back(PeerHoodEvent::Started { app: *id });
        }
        self.core = Some(core);
        self.drain_events(ctx);
    }

    fn on_restart(&mut self, ctx: &mut NodeCtx<'_>) {
        // A crash wipes the middleware state — daemon storage, connection
        // table, bridge pairs, pending attempts — exactly like killing and
        // relaunching the real daemon. The reborn daemon starts its
        // discovery cycles from scratch and re-advertises its services;
        // hosted applications receive `on_start` again.
        self.core = None;
        self.on_start(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: TimerToken) {
        if let Some(core) = self.core.as_mut() {
            core.handle_timer(ctx, timer);
        }
        self.drain_events(ctx);
    }

    fn on_inquiry_complete(&mut self, ctx: &mut NodeCtx<'_>, tech: RadioTech, hits: Vec<InquiryHit>) {
        if let Some(core) = self.core.as_mut() {
            core.handle_inquiry_complete(ctx, tech, hits);
        }
        self.drain_events(ctx);
    }

    fn on_incoming_connection(&mut self, ctx: &mut NodeCtx<'_>, incoming: IncomingConnection) -> bool {
        match self.core.as_mut() {
            Some(core) => {
                // Admission control runs before any middleware state is
                // allocated: a rejected dialer sees `ConnectError::Rejected`
                // straight from the radio layer — the cheapest possible
                // answer, no protocol exchange, no engine entry.
                let peer = DeviceAddress::from_node(incoming.from);
                let active = core.engine.incoming_unidentified()
                    + core
                        .connections
                        .iter()
                        .filter(|c| !c.is_outgoing() && c.is_established())
                        .count();
                if !core.resilience.admit(peer, ctx.now(), active) {
                    return false;
                }
                core.engine.set_role(incoming.link, LinkRole::IncomingUnidentified);
                true
            }
            None => false,
        }
    }

    fn on_connected(&mut self, ctx: &mut NodeCtx<'_>, attempt: AttemptId, link: LinkId, peer: NodeId, tech: RadioTech) {
        if let Some(core) = self.core.as_mut() {
            core.handle_connected(ctx, attempt, link, peer, tech);
        }
        self.drain_events(ctx);
    }

    fn on_connect_failed(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        attempt: AttemptId,
        peer: NodeId,
        tech: RadioTech,
        error: ConnectError,
    ) {
        if let Some(core) = self.core.as_mut() {
            core.handle_connect_failed(ctx, attempt, peer, tech, error);
        }
        self.drain_events(ctx);
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, from: NodeId, payload: Payload) {
        if let Some(core) = self.core.as_mut() {
            core.handle_message(ctx, link, from, payload);
        }
        self.drain_events(ctx);
    }

    fn on_disconnected(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, peer: NodeId, reason: DisconnectReason) {
        if let Some(core) = self.core.as_mut() {
            core.handle_disconnected(ctx, link, peer, reason);
        }
        self.drain_events(ctx);
    }
}
