//! The physical connection-attempt ledger.
//!
//! Every radio-level connect the node starts is recorded with a
//! [`PendingPurpose`] so the success and failure callbacks can resume the
//! right protocol flow: a daemon information fetch, the first hop of an
//! application connection, a bridge leg, a handover replacement route or a
//! server-initiated reply reconnection (§5.3).

use simnet::{AttemptId, ConnectError, LinkId, NodeCtx, NodeId, RadioTech};

use crate::connection::{ConnKind, ConnState};
use crate::error::{ErrorCode, PeerHoodError};
use crate::ids::{ConnectionId, DeviceAddress};
use crate::proto::Message;

use super::{token, Core, PeerHoodEvent, KIND_RETRY};

/// Why a physical connection attempt was started.
#[derive(Debug, Clone)]
pub enum PendingPurpose {
    /// Daemon information fetch towards a device found by an inquiry.
    DaemonFetch {
        /// The device being interrogated.
        peer: DeviceAddress,
        /// The radio the inquiry ran on.
        tech: RadioTech,
        /// Quality sampled during the inquiry.
        quality: u8,
    },
    /// First hop of an outgoing application connection.
    AppConnect {
        /// The logical connection being established.
        conn: ConnectionId,
    },
    /// Downstream leg of a relayed bridge pair.
    BridgeLeg {
        /// The relayed connection.
        conn: ConnectionId,
    },
    /// Replacement route being built by the handover machinery.
    Handover {
        /// The connection being re-routed.
        conn: ConnectionId,
        /// The bridge the replacement route goes through.
        via: DeviceAddress,
    },
    /// Server re-connecting to a client to deliver queued results (§5.3).
    ReplyConnect {
        /// The waiting server-side connection.
        conn: ConnectionId,
    },
}

impl Core {
    pub(crate) fn handle_connected(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        attempt: AttemptId,
        link: LinkId,
        _peer: NodeId,
        _tech: RadioTech,
    ) {
        let purpose = match self.pending.remove(&attempt) {
            Some(p) => p,
            None => return,
        };
        // The radio link came up: the circuit breaker towards that physical
        // hop records the success (closing a half-open breaker).
        self.resilience.record_dial_success(DeviceAddress::from_node(_peer));
        match purpose {
            PendingPurpose::DaemonFetch { peer, tech, quality } => {
                self.engine
                    .set_role(link, crate::engine::LinkRole::DaemonFetch { peer, tech, quality });
                let requester = self.my_info();
                self.send_frame(ctx, link, &Message::InquiryRequest { requester });
            }
            PendingPurpose::AppConnect { conn } => {
                let (message, ok) = match self.connections.get_mut(conn) {
                    Some(c) => {
                        c.link = Some(link);
                        c.state = ConnState::AwaitingAccept;
                        let client = self.daemon.info().clone();
                        let msg = match &c.kind {
                            ConnKind::OutgoingDirect => Message::ConnectRequest {
                                conn_id: conn,
                                service: c.service.clone(),
                                client,
                                reply_context: None,
                            },
                            ConnKind::OutgoingBridged { .. } => Message::BridgeRequest {
                                conn_id: conn,
                                destination: c.remote,
                                service: c.service.clone(),
                                client,
                                reply_context: None,
                            },
                            ConnKind::Incoming { .. } => Message::ConnectRequest {
                                conn_id: conn,
                                service: c.service.clone(),
                                client,
                                reply_context: Some(conn),
                            },
                        };
                        (msg, true)
                    }
                    None => (Message::Disconnect { conn_id: conn }, false),
                };
                if ok {
                    self.engine.set_role(link, crate::engine::LinkRole::AppConnection(conn));
                    self.send_frame(ctx, link, &message);
                } else {
                    ctx.close(link);
                }
            }
            PendingPurpose::BridgeLeg { conn } => {
                let peer_addr = DeviceAddress::from_node(_peer);
                let message = match self.bridge.get_mut(conn) {
                    Some(pair) => {
                        pair.downstream = Some(link);
                        if peer_addr == pair.destination {
                            Message::ConnectRequest {
                                conn_id: conn,
                                service: pair.service.clone(),
                                client: pair.client.clone(),
                                reply_context: pair.reply_context,
                            }
                        } else {
                            Message::BridgeRequest {
                                conn_id: conn,
                                destination: pair.destination,
                                service: pair.service.clone(),
                                client: pair.client.clone(),
                                reply_context: pair.reply_context,
                            }
                        }
                    }
                    None => {
                        ctx.close(link);
                        return;
                    }
                };
                self.engine
                    .set_role(link, crate::engine::LinkRole::BridgeDownstream(conn));
                self.send_frame(ctx, link, &message);
            }
            PendingPurpose::Handover { conn, via } => {
                let message = match self.connections.get(conn) {
                    Some(c) => {
                        let target = self.handover_destination(c);
                        if via == target {
                            Message::ConnectRequest {
                                conn_id: conn,
                                service: c.service.clone(),
                                client: self.daemon.info().clone(),
                                reply_context: None,
                            }
                        } else {
                            Message::BridgeRequest {
                                conn_id: conn,
                                destination: target,
                                service: c.service.clone(),
                                client: self.daemon.info().clone(),
                                reply_context: None,
                            }
                        }
                    }
                    None => {
                        ctx.close(link);
                        return;
                    }
                };
                self.engine
                    .set_role(link, crate::engine::LinkRole::HandoverPending { conn, via });
                self.send_frame(ctx, link, &message);
            }
            PendingPurpose::ReplyConnect { conn } => {
                let message = match self.connections.get_mut(conn) {
                    Some(c) => {
                        c.link = Some(link);
                        c.state = ConnState::AwaitingAccept;
                        let first_hop_is_client = DeviceAddress::from_node(_peer) == c.remote;
                        let client = self.daemon.info().clone();
                        if first_hop_is_client {
                            Message::ConnectRequest {
                                conn_id: conn,
                                service: c.service.clone(),
                                client,
                                reply_context: Some(conn),
                            }
                        } else {
                            Message::BridgeRequest {
                                conn_id: conn,
                                destination: c.remote,
                                service: c.service.clone(),
                                client,
                                reply_context: Some(conn),
                            }
                        }
                    }
                    None => {
                        ctx.close(link);
                        return;
                    }
                };
                self.engine.set_role(link, crate::engine::LinkRole::AppConnection(conn));
                self.send_frame(ctx, link, &message);
            }
        }
    }

    pub(crate) fn handle_connect_failed(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        attempt: AttemptId,
        _peer: NodeId,
        tech: RadioTech,
        _error: ConnectError,
    ) {
        let purpose = match self.pending.remove(&attempt) {
            Some(p) => p,
            None => return,
        };
        // Dial failures towards a physical hop feed its circuit breaker,
        // whatever protocol flow the attempt belonged to.
        self.resilience
            .record_dial_failure(DeviceAddress::from_node(_peer), ctx.now());
        match purpose {
            PendingPurpose::DaemonFetch { .. } => {
                self.note_fetch_finished(ctx, tech);
            }
            PendingPurpose::AppConnect { conn } => {
                if let Some(c) = self.connections.get_mut(conn) {
                    c.state = ConnState::Failed;
                    c.link = None;
                }
                self.events.push_back(PeerHoodEvent::ConnectFailed {
                    app: self.owner_of(conn),
                    conn,
                    error: PeerHoodError::Remote(_error.to_string()),
                });
            }
            PendingPurpose::BridgeLeg { conn } => {
                // A next hop that was advertised as a route but cannot be
                // dialled is how forged neighbour reports manifest at the
                // bridge: the reputation layer charges the hop so repeated
                // phantom routes eventually stop being followed.
                self.note_peer_misbehaved(DeviceAddress::from_node(_peer));
                self.fail_bridge_pair(ctx, conn, ErrorCode::DownstreamFailed);
            }
            PendingPurpose::Handover { conn, .. } => {
                self.handover_attempt_failed(ctx, conn);
            }
            PendingPurpose::ReplyConnect { conn } => {
                if let Some(c) = self.connections.get_mut(conn) {
                    c.state = ConnState::Closed;
                    c.link = None;
                }
                self.schedule_reply_retry(ctx, conn);
            }
        }
    }

    pub(crate) fn schedule_reply_retry(&mut self, ctx: &mut NodeCtx<'_>, conn: ConnectionId) {
        let attempts = match self.connections.get_mut(conn) {
            Some(c) => {
                c.reconnect_attempts += 1;
                c.reconnect_attempts
            }
            None => return,
        };
        if attempts > self.config.handover.max_reply_attempts {
            self.events.push_back(PeerHoodEvent::Disconnected {
                app: self.owner_of(conn),
                conn,
                graceful: false,
            });
            return;
        }
        let token_payload = self.next_retry_token;
        self.next_retry_token += 1;
        self.retry_conns.insert(token_payload, conn);
        ctx.schedule(
            self.config.handover.reply_retry_interval,
            token(KIND_RETRY, token_payload),
        );
    }

    pub(crate) fn try_reply_reconnect(&mut self, ctx: &mut NodeCtx<'_>, conn: ConnectionId) {
        let (established, remote, has_outbox) = match self.connections.get(conn) {
            Some(c) => (c.is_established(), c.remote, !c.outbox.is_empty()),
            None => return,
        };
        if established || !has_outbox {
            return;
        }
        // Fig. 5.10: look the client up in the device storage and reconnect.
        let route = match self.daemon.storage().get(remote) {
            Some(entry) => entry.route.clone(),
            None => {
                self.schedule_reply_retry(ctx, conn);
                return;
            }
        };
        let first_hop = if route.is_direct() {
            remote
        } else {
            match route.bridge {
                Some(b) => b,
                None => remote,
            }
        };
        // An open breaker towards the hop turns the dial into a scheduled
        // retry: the bounded retry budget is not burned on a hop known bad.
        if !self.resilience.allow_dial(first_hop, ctx.now()) {
            self.schedule_reply_retry(ctx, conn);
            return;
        }
        let tech = self.tech_for(self.daemon.storage().get(first_hop).map(|e| &e.info));
        if let Some(c) = self.connections.get_mut(conn) {
            c.state = ConnState::Connecting;
        }
        let attempt = ctx.connect(first_hop.node_id(), tech);
        self.pending.insert(attempt, PendingPurpose::ReplyConnect { conn });
    }
}
