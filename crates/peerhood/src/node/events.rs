//! The typed middleware→application event vocabulary.
//!
//! Every callback an [`Application`](crate::application::Application)
//! receives is described by a [`PeerHoodEvent`] first: the protocol layer
//! pushes events onto the host's queue while the middleware state is being
//! updated, and the host delivers them to the owning application once the
//! state is consistent again. Scenario drivers can subscribe to the same
//! stream (see [`PeerHoodNode::subscribe_event_trace`]) and assert on it
//! directly, without downcasting to concrete application types.
//!
//! [`PeerHoodNode::subscribe_event_trace`]: crate::node::PeerHoodNode::subscribe_event_trace

use std::fmt;

use crate::device::DeviceInfo;
use crate::error::PeerHoodError;
use crate::ids::{ConnectionId, DeviceAddress};

/// Identity of one application hosted on a [`PeerHoodNode`].
///
/// Ids are assigned in registration order by the
/// [builder](crate::node::PeerHoodNodeBuilder), starting at zero, and are
/// stable for the lifetime of the node.
///
/// [`PeerHoodNode`]: crate::node::PeerHoodNode
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(pub u32);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// A middleware event, routed to the owning application (or fanned out to
/// every application for node-wide events).
///
/// The `app` field identifies the application the event is delivered to;
/// `None` means no application owns the subject (for example a connection a
/// scenario driver opened through
/// [`PeerHoodNode::with_api`](crate::node::PeerHoodNode::with_api) on a
/// relay node) — such events still appear in the event trace but trigger no
/// callback.
#[derive(Debug, Clone, PartialEq)]
pub enum PeerHoodEvent {
    /// The node started; delivered to `app` as
    /// [`on_start`](crate::application::Application::on_start).
    Started {
        /// The application being started.
        app: AppId,
    },
    /// A remote client connected to one of `app`'s registered services.
    PeerConnected {
        /// The service-owning application.
        app: Option<AppId>,
        /// The new incoming connection.
        conn: ConnectionId,
        /// The connecting client's advertised device description.
        client: DeviceInfo,
        /// Name of the contacted service.
        service: String,
    },
    /// An outgoing connection completed its end-to-end establishment.
    Connected {
        /// The connection-owning application.
        app: Option<AppId>,
        /// The established connection.
        conn: ConnectionId,
    },
    /// An outgoing connection could not be established.
    ConnectFailed {
        /// The connection-owning application.
        app: Option<AppId>,
        /// The failed connection.
        conn: ConnectionId,
        /// Why establishment failed.
        error: PeerHoodError,
    },
    /// Application data arrived on a connection.
    Data {
        /// The connection-owning application.
        app: Option<AppId>,
        /// The carrying connection.
        conn: ConnectionId,
        /// The received payload.
        payload: Vec<u8>,
    },
    /// A connection went down for good.
    Disconnected {
        /// The connection-owning application.
        app: Option<AppId>,
        /// The lost connection.
        conn: ConnectionId,
        /// True when the peer closed deliberately.
        graceful: bool,
    },
    /// The route under a live connection was replaced (routing handover,
    /// reply-channel re-establishment or client re-attachment).
    ConnectionChanged {
        /// The connection-owning application.
        app: Option<AppId>,
        /// The re-routed connection.
        conn: ConnectionId,
    },
    /// A service reconnection to a different provider completed; the task
    /// must restart.
    ServiceReconnected {
        /// The connection-owning application.
        app: Option<AppId>,
        /// The surviving logical connection.
        conn: ConnectionId,
        /// The new provider.
        provider: DeviceAddress,
    },
    /// Routing handover is impossible; the middleware asks the owning
    /// application for permission to reconnect to another provider.
    ReconnectRequired {
        /// The connection-owning application (asked for permission).
        app: Option<AppId>,
        /// The broken connection.
        conn: ConnectionId,
        /// Alternative providers of the same service.
        candidates: Vec<DeviceAddress>,
    },
    /// The resilience pipeline shed load on a connection (an inbound payload
    /// dropped by the rate limit or a queued result dropped by the outbox
    /// cap). Surfaced so overload is always explicit, never silent.
    Shed {
        /// The connection-owning application.
        app: Option<AppId>,
        /// The connection the shed work belonged to.
        conn: ConnectionId,
        /// Size of the dropped payload.
        dropped_bytes: usize,
    },
    /// An application timer fired.
    Timer {
        /// The application that scheduled the timer.
        app: Option<AppId>,
        /// The token passed to
        /// [`schedule_timer`](crate::node::PeerHoodApi::schedule_timer).
        token: u64,
    },
    /// Dynamic discovery learned about a new remote device; fanned out to
    /// every application on the node.
    DeviceDiscovered {
        /// The newly known device.
        address: DeviceAddress,
    },
    /// A known device aged out of the storage; fanned out to every
    /// application on the node.
    DeviceLost {
        /// The removed device.
        address: DeviceAddress,
    },
}

impl PeerHoodEvent {
    /// The connection the event concerns, if any.
    pub fn connection(&self) -> Option<ConnectionId> {
        match self {
            PeerHoodEvent::PeerConnected { conn, .. }
            | PeerHoodEvent::Connected { conn, .. }
            | PeerHoodEvent::ConnectFailed { conn, .. }
            | PeerHoodEvent::Data { conn, .. }
            | PeerHoodEvent::Disconnected { conn, .. }
            | PeerHoodEvent::ConnectionChanged { conn, .. }
            | PeerHoodEvent::ServiceReconnected { conn, .. }
            | PeerHoodEvent::ReconnectRequired { conn, .. }
            | PeerHoodEvent::Shed { conn, .. } => Some(*conn),
            _ => None,
        }
    }

    /// The application the event targets, if it targets exactly one.
    pub fn app(&self) -> Option<AppId> {
        match self {
            PeerHoodEvent::Started { app } => Some(*app),
            PeerHoodEvent::PeerConnected { app, .. }
            | PeerHoodEvent::Connected { app, .. }
            | PeerHoodEvent::ConnectFailed { app, .. }
            | PeerHoodEvent::Data { app, .. }
            | PeerHoodEvent::Disconnected { app, .. }
            | PeerHoodEvent::ConnectionChanged { app, .. }
            | PeerHoodEvent::ServiceReconnected { app, .. }
            | PeerHoodEvent::ReconnectRequired { app, .. }
            | PeerHoodEvent::Shed { app, .. }
            | PeerHoodEvent::Timer { app, .. } => *app,
            PeerHoodEvent::DeviceDiscovered { .. } | PeerHoodEvent::DeviceLost { .. } => None,
        }
    }
}
