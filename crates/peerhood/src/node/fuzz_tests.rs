//! The state-machine-coverage fuzz harness (hostile-city tentpole).
//!
//! Every protocol transition — each [`LinkRole`] the engine can classify a
//! link into, crossed with each `PH_*` wire command — is exercised with a
//! syntactically valid hostile frame injected straight into
//! `Core::handle_message`. The harness asserts three things:
//!
//! 1. **coverage** — all role x command pairs are fed (the `role_tag` and
//!    `command_tag` guards are wildcard-free matches, so adding a link role
//!    or a protocol command fails compilation until the corpus learns it),
//! 2. **tier behaviour** — with `defenses=off` nothing is counted as
//!    rejected and session hijacks land; with `sanity` every hijack class
//!    trips its counter; with `auth` no unauthenticated frame even reaches
//!    the codec,
//! 3. **no panics** — hostile input never brings the state machines down,
//!    including frames produced by the randomized [`ProtocolForge`].

use std::collections::BTreeSet;

use simnet::{FrameForge, LinkId, MobilityModel, NodeId, Point, RadioTech, SimDuration, SimRng, World, WorldConfig};

use crate::application::Application;
use crate::config::{PeerHoodConfig, SecurityConfig};
use crate::connection::{AppConnection, ConnKind};
use crate::device::{DeviceInfo, MobilityClass};
use crate::engine::LinkRole;
use crate::error::ErrorCode;
use crate::hostile::{ProtocolForge, HOSTILE_BASE};
use crate::ids::{ConnectionId, DeviceAddress};
use crate::proto::{Message, NeighborRecord};
use crate::service::ServiceInfo;
use crate::wire;

use super::{PeerHoodApi, PeerHoodNode};

/// Wildcard-free role classifier: a new [`LinkRole`] variant breaks the
/// harness at compile time until the matrix below covers it.
fn role_tag(role: &LinkRole) -> &'static str {
    match role {
        LinkRole::IncomingUnidentified => "IncomingUnidentified",
        LinkRole::DaemonFetch { .. } => "DaemonFetch",
        LinkRole::DaemonServe => "DaemonServe",
        LinkRole::AppConnection(_) => "AppConnection",
        LinkRole::HandoverPending { .. } => "HandoverPending",
        LinkRole::BridgeUpstream(_) => "BridgeUpstream",
        LinkRole::BridgeDownstream(_) => "BridgeDownstream",
    }
}

/// Wildcard-free command classifier: a new [`Message`] variant breaks the
/// harness at compile time until the hostile corpus covers it.
fn command_tag(message: &Message) -> &'static str {
    match message {
        Message::InquiryRequest { .. } => "PH_INQUIRY",
        Message::InquiryResponse { .. } => "PH_INQUIRY_RESP",
        Message::ConnectRequest { .. } => "PH_CONNECT",
        Message::BridgeRequest { .. } => "PH_BRIDGE",
        Message::Accept { .. } => "PH_OK",
        Message::Error { .. } => "PH_ERROR",
        Message::Data { .. } => "PH_DATA",
        Message::Disconnect { .. } => "PH_DISCONNECT",
    }
}

const ALL_ROLES: [&str; 7] = [
    "IncomingUnidentified",
    "DaemonFetch",
    "DaemonServe",
    "AppConnection",
    "HandoverPending",
    "BridgeUpstream",
    "BridgeDownstream",
];

const ALL_COMMANDS: [&str; 8] = [
    "PH_INQUIRY",
    "PH_INQUIRY_RESP",
    "PH_CONNECT",
    "PH_BRIDGE",
    "PH_OK",
    "PH_ERROR",
    "PH_DATA",
    "PH_DISCONNECT",
];

/// A service-hosting application so hostile connect requests have a real
/// target; echoes data for the auth interop test.
#[derive(Default)]
struct FuzzApp {
    service: Option<&'static str>,
    echo: bool,
    data: Vec<Vec<u8>>,
    connected: Vec<ConnectionId>,
}

impl Application for FuzzApp {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn on_start(&mut self, api: &mut PeerHoodApi<'_, '_>) {
        if let Some(name) = self.service {
            api.register_service(ServiceInfo::new(name, "fuzz", 10)).unwrap();
        }
    }
    fn on_connected(&mut self, _api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId) {
        self.connected.push(conn);
    }
    fn on_data(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, payload: Vec<u8>) {
        if self.echo {
            let mut reply = payload.clone();
            reply.reverse();
            let _ = api.send(conn, reply);
        }
        self.data.push(payload);
    }
}

fn attacker_node() -> NodeId {
    NodeId::from_raw(0xA77)
}

fn attacker_info() -> DeviceInfo {
    DeviceInfo::new(
        attacker_node(),
        "attacker",
        MobilityClass::Static,
        &[RadioTech::Bluetooth],
    )
}

/// An address no real node in the harness worlds owns.
fn phantom_addr() -> DeviceAddress {
    DeviceAddress::from_node_raw(HOSTILE_BASE + 0x123)
}

/// A connection id whose packed allocator is the phantom, never the sender.
fn foreign_conn() -> ConnectionId {
    ConnectionId::new(phantom_addr(), 9)
}

/// A forged neighbour report: the attacker advertises the target service and
/// a fan of phantom neighbours at perfect quality (§3.4.3 route poisoning).
fn poisoned_response() -> Message {
    Message::InquiryResponse {
        device: attacker_info(),
        services: vec![ServiceInfo::new("svc", "spoofed", 1)],
        neighbors: vec![NeighborRecord {
            info: DeviceInfo::new(
                NodeId::from_raw(HOSTILE_BASE + 0x42),
                "phantom",
                MobilityClass::Static,
                &[RadioTech::Bluetooth],
            ),
            jumps: 0,
            hop_qualities: vec![200],
            services: vec![].into(),
        }],
        bridge_load_percent: 0,
    }
}

fn victim_world(tier: SecurityConfig) -> (World, NodeId) {
    let mut world = World::new(WorldConfig::ideal(0xF0_22));
    let cfg = PeerHoodConfig::new("victim", MobilityClass::Static).with_security(tier);
    let victim = world.add_node(
        "victim",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &[RadioTech::Bluetooth],
        Box::new(
            PeerHoodNode::builder()
                .config(cfg)
                .app(FuzzApp {
                    service: Some("svc"),
                    ..FuzzApp::default()
                })
                .build(),
        ),
    );
    world.run_for(SimDuration::from_secs(1));
    (world, victim)
}

/// What one full hostile matrix did to a victim under a given tier.
struct MatrixOutcome {
    covered: BTreeSet<(String, String)>,
    stats: crate::security::SecurityStats,
    /// Connection-table entries whose id was allocated by the phantom — a
    /// successfully hijacked/pre-poisoned session.
    hijacked: usize,
    /// Whether the phantom neighbour made it into the device storage.
    poisoned: bool,
    /// Total hostile frames injected.
    injected: u64,
}

/// Feeds every role x command pair (plus the forged-reply-context variant)
/// into a fresh victim and reports what stuck.
fn run_matrix(tier: SecurityConfig) -> MatrixOutcome {
    let (mut world, victim) = victim_world(tier);
    let mut covered = BTreeSet::new();
    let mut injected = 0u64;
    // LinkIds far above anything the world allocates in a 1-second run.
    let mut next_link = 0x4000u64;
    let mut next_counter = 100u32;
    for role_idx in 0..ALL_ROLES.len() {
        for cmd in ALL_COMMANDS {
            next_link += 2;
            next_counter += 1;
            let link = LinkId(next_link);
            let aux = LinkId(next_link + 1);
            world
                .with_agent::<PeerHoodNode, _>(victim, |n, ctx| {
                    let now = ctx.now();
                    let core = n.core_mut().expect("node started");
                    let attacker_addr = DeviceAddress::from_node(attacker_node());
                    // Each job gets a fresh session id so state torn down by
                    // one command cannot mask the next.
                    let session = ConnectionId::new(attacker_addr, next_counter);
                    let dest = DeviceAddress::from_node_raw(0xBEEF);
                    let role = match ALL_ROLES[role_idx] {
                        "IncomingUnidentified" => LinkRole::IncomingUnidentified,
                        "DaemonFetch" => LinkRole::DaemonFetch {
                            peer: attacker_addr,
                            tech: RadioTech::Bluetooth,
                            quality: 200,
                        },
                        "DaemonServe" => LinkRole::DaemonServe,
                        "AppConnection" => LinkRole::AppConnection(session),
                        "HandoverPending" => LinkRole::HandoverPending {
                            conn: session,
                            via: dest,
                        },
                        "BridgeUpstream" => LinkRole::BridgeUpstream(session),
                        "BridgeDownstream" => LinkRole::BridgeDownstream(session),
                        other => panic!("unknown role tag {other}"),
                    };
                    // Install the middleware state that classifies `link`
                    // into `role`, exactly as the real flows would.
                    match role {
                        LinkRole::IncomingUnidentified => {}
                        LinkRole::DaemonFetch { .. } | LinkRole::DaemonServe => {
                            core.engine.set_role(link, role);
                        }
                        LinkRole::AppConnection(conn) => {
                            core.connections
                                .insert(AppConnection::incoming(conn, attacker_info(), "svc", link, now));
                            core.engine.set_role(link, role);
                        }
                        LinkRole::HandoverPending { conn, via } => {
                            core.connections.insert(AppConnection::outgoing(
                                conn,
                                via,
                                "svc",
                                ConnKind::OutgoingDirect,
                                now,
                            ));
                            core.engine.set_role(link, role);
                        }
                        LinkRole::BridgeUpstream(conn) => {
                            core.bridge
                                .insert_pending(conn, link, dest, "svc", attacker_info(), None);
                            core.bridge.get_mut(conn).unwrap().downstream = Some(aux);
                            core.engine.set_role(link, role);
                        }
                        LinkRole::BridgeDownstream(conn) => {
                            core.bridge
                                .insert_pending(conn, aux, dest, "svc", attacker_info(), None);
                            core.bridge.get_mut(conn).unwrap().downstream = Some(link);
                            core.engine.set_role(link, role);
                        }
                    }
                    // The hostile frame for this command. Session-scoped
                    // commands use the classified session id (replay shape);
                    // the rest present the phantom's foreign id (splice
                    // shape). Data towards a bridge leg keeps the session id
                    // so the relay fast path itself is exercised.
                    let on_bridge = matches!(role, LinkRole::BridgeUpstream(_) | LinkRole::BridgeDownstream(_));
                    let message = match cmd {
                        "PH_INQUIRY" => Message::InquiryRequest {
                            requester: attacker_info(),
                        },
                        "PH_INQUIRY_RESP" => poisoned_response(),
                        "PH_CONNECT" => Message::ConnectRequest {
                            conn_id: foreign_conn(),
                            service: "svc".into(),
                            client: attacker_info(),
                            reply_context: None,
                        },
                        "PH_BRIDGE" => Message::BridgeRequest {
                            conn_id: foreign_conn(),
                            destination: phantom_addr(),
                            service: "svc".into(),
                            client: attacker_info(),
                            reply_context: None,
                        },
                        "PH_OK" => Message::Accept { conn_id: session },
                        "PH_ERROR" => Message::Error {
                            conn_id: session,
                            code: ErrorCode::ServiceUnavailable,
                            detail: "forged".into(),
                        },
                        "PH_DATA" => Message::Data {
                            conn_id: if on_bridge { session } else { foreign_conn() },
                            payload: b"hostile".to_vec(),
                        },
                        "PH_DISCONNECT" => Message::Disconnect { conn_id: session },
                        other => panic!("unknown command {other}"),
                    };
                    assert_eq!(command_tag(&message), cmd, "corpus entry mislabelled");
                    covered.insert((role_tag(&role).to_string(), cmd.to_string()));
                    injected += 1;
                    core.handle_message(ctx, link, attacker_node(), wire::encode(&message).into());
                })
                .unwrap();
        }
    }
    // The forged-reply-context variant of PH_CONNECT: a reply that refers
    // back to a session the victim never initiated.
    next_link += 2;
    world
        .with_agent::<PeerHoodNode, _>(victim, |n, ctx| {
            let core = n.core_mut().expect("node started");
            let message = Message::ConnectRequest {
                conn_id: ConnectionId::new(DeviceAddress::from_node(attacker_node()), 999),
                service: "svc".into(),
                client: attacker_info(),
                reply_context: Some(foreign_conn()),
            };
            injected += 1;
            core.handle_message(ctx, LinkId(next_link), attacker_node(), wire::encode(&message).into());
        })
        .unwrap();
    // Let queued events drain through the normal dispatch path.
    world.run_for(SimDuration::from_secs(2));
    let (stats, hijacked, poisoned) = world
        .with_agent::<PeerHoodNode, _>(victim, |n, _| {
            let stats = n.security_stats();
            let core = n.core_mut().expect("node started");
            let hijacked = core
                .connections
                .ids()
                .iter()
                .filter(|c| c.initiator() == phantom_addr())
                .count();
            let poisoned = core.daemon.storage().get(phantom_addr()).is_some()
                || core
                    .daemon
                    .storage()
                    .get(DeviceAddress::from_node_raw(HOSTILE_BASE + 0x42))
                    .is_some();
            (stats, hijacked, poisoned)
        })
        .unwrap();
    MatrixOutcome {
        covered,
        stats,
        hijacked,
        poisoned,
        injected,
    }
}

#[test]
fn every_protocol_transition_has_a_hostile_input_test() {
    let outcome = run_matrix(SecurityConfig::sanity());
    let mut expected = BTreeSet::new();
    for role in ALL_ROLES {
        for cmd in ALL_COMMANDS {
            expected.insert((role.to_string(), cmd.to_string()));
        }
    }
    let missing: Vec<_> = expected.difference(&outcome.covered).collect();
    assert!(missing.is_empty(), "uncovered protocol transitions: {missing:?}");
    assert_eq!(outcome.covered.len(), ALL_ROLES.len() * ALL_COMMANDS.len());
}

#[test]
fn defenses_off_accepts_what_sanity_rejects() {
    let off = run_matrix(SecurityConfig::off());
    // With everything disabled no defence fires...
    assert_eq!(off.stats.frames_rejected(), 0);
    assert_eq!(off.stats.penalties_recorded, 0);
    // ...and the hostile frames actually land: the phantom pre-poisons a
    // session and the forged report reaches the routing table.
    assert!(
        off.hijacked >= 1,
        "foreign connect request must be accepted with defenses off"
    );
    assert!(
        off.poisoned,
        "forged neighbour report must poison the storage with defenses off"
    );

    let sanity = run_matrix(SecurityConfig::sanity());
    assert!(
        sanity.stats.foreign_conn_rejected >= 1,
        "foreign conn ids must be rejected"
    );
    assert!(
        sanity.stats.bad_reply_context >= 1,
        "forged reply contexts must be rejected"
    );
    assert!(sanity.stats.duplicate_accepts >= 1, "replayed Accepts must be counted");
    assert!(
        sanity.stats.conn_mismatch_dropped >= 1,
        "spliced frames must be dropped"
    );
    assert!(
        sanity.stats.penalties_recorded >= 1,
        "caught attackers must be penalized"
    );
    assert_eq!(sanity.hijacked, 0, "no foreign session may survive the sanity tier");
    assert!(
        sanity.stats.frames_rejected() < off.injected,
        "sanity rejects selectively, not wholesale"
    );
}

#[test]
fn auth_rejects_every_raw_hostile_frame_before_decode() {
    let outcome = run_matrix(SecurityConfig::auth());
    // Nothing the attacker sent carried a valid trailer, so nothing reaches
    // the codec: no hijack, no poisoning, and the only counter that moves is
    // the MAC rejection (plus the reputation penalties it feeds).
    assert_eq!(outcome.stats.auth_rejected, outcome.injected);
    assert_eq!(outcome.stats.foreign_conn_rejected, 0);
    assert_eq!(outcome.stats.conn_mismatch_dropped, 0);
    assert_eq!(outcome.hijacked, 0);
    assert!(!outcome.poisoned);
    assert_eq!(outcome.stats.penalties_recorded, outcome.injected);
}

#[test]
fn forge_corpus_never_panics_any_tier() {
    for tier in [SecurityConfig::off(), SecurityConfig::sanity(), SecurityConfig::auth()] {
        let (mut world, victim) = victim_world(tier);
        let mut rng = SimRng::new(0xF0_26E);
        let mut forge = ProtocolForge::new("svc");
        // Sniffed traffic for the forge to replay: a legitimate-looking
        // session frame captured off the air.
        let sniffed = vec![wire::encode(&Message::Accept {
            conn_id: ConnectionId::new(DeviceAddress::from_node(attacker_node()), 7),
        })
        .into()];
        let mut fed = 0u32;
        let mut link = 0x8000u64;
        while fed < 64 {
            if let Some(frame) = forge.forge(attacker_node(), victim, &sniffed, &mut rng) {
                link += 1;
                world
                    .with_agent::<PeerHoodNode, _>(victim, |n, ctx| {
                        n.core_mut()
                            .expect("node started")
                            .handle_message(ctx, LinkId(link), attacker_node(), frame);
                    })
                    .unwrap();
                fed += 1;
            }
        }
        world.run_for(SimDuration::from_secs(2));
    }
}

#[test]
fn authenticated_stacks_interoperate() {
    // Two honest nodes running the full auth tier must still discover each
    // other, connect and exchange data — the defence may cost bytes, never
    // sessions.
    let mut world = World::new(WorldConfig::ideal(0xA07));
    let mut client_cfg = PeerHoodConfig::new("client", MobilityClass::Dynamic).with_security(SecurityConfig::auth());
    client_cfg.discovery.inquiry_interval = SimDuration::from_secs(3);
    let mut server_cfg = PeerHoodConfig::new("server", MobilityClass::Static).with_security(SecurityConfig::auth());
    server_cfg.discovery.inquiry_interval = SimDuration::from_secs(3);
    let client = world.add_node(
        "client",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &[RadioTech::Bluetooth],
        Box::new(
            PeerHoodNode::builder()
                .config(client_cfg)
                .app(FuzzApp::default())
                .build(),
        ),
    );
    let server = world.add_node(
        "server",
        MobilityModel::stationary(Point::new(4.0, 0.0)),
        &[RadioTech::Bluetooth],
        Box::new(
            PeerHoodNode::builder()
                .config(server_cfg)
                .app(FuzzApp {
                    service: Some("echo"),
                    echo: true,
                    ..FuzzApp::default()
                })
                .build(),
        ),
    );
    world.run_for(SimDuration::from_secs(40));
    let conn = world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            n.with_api(ctx, |api| api.connect_to_service("echo")).unwrap()
        })
        .unwrap()
        .expect("auth peers must still connect");
    world.run_for(SimDuration::from_secs(5));
    world
        .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
            assert_eq!(n.app::<FuzzApp>().unwrap().connected, vec![conn]);
            n.with_api(ctx, |api| api.send(conn, b"ping".to_vec()).unwrap());
        })
        .unwrap();
    world.run_for(SimDuration::from_secs(5));
    for node in [client, server] {
        world
            .with_agent::<PeerHoodNode, _>(node, |n, _| {
                let stats = n.security_stats();
                assert!(stats.frames_authenticated > 0, "every frame must carry a trailer");
                assert_eq!(stats.frames_rejected(), 0, "honest traffic must never be rejected");
                assert_eq!(
                    stats.auth_bytes,
                    stats.frames_authenticated * crate::security::AUTH_TRAILER_LEN as u64
                );
            })
            .unwrap();
    }
    world
        .with_agent::<PeerHoodNode, _>(client, |n, _| {
            let app = n.app::<FuzzApp>().unwrap();
            assert_eq!(app.data, vec![b"gnip".to_vec()], "the echo must survive frame auth");
        })
        .unwrap();
}
