//! Wire-message handling, discovery cycles, bridge relaying and handover.
//!
//! These are the protocol state machines of the middleware: everything that
//! reacts to a decoded [`Message`] on a classified link, plus the
//! timer-driven inquiry loop and the quality-monitoring pass of the
//! HandoverThread (§5.2.1). They mutate the shared [`Core`] and queue typed
//! [`PeerHoodEvent`]s for the host to dispatch.

use simnet::{DisconnectReason, InquiryHit, LinkId, NodeCtx, NodeId, Payload, RadioTech, SimDuration};

use crate::bridge::BridgeSide;
use crate::connection::{AppConnection, ConnKind, ConnState};
use crate::device::DeviceInfo;
use crate::engine::LinkRole;
use crate::error::{ErrorCode, PeerHoodError};
use crate::handover::{HandoverMonitor, HandoverTarget};
use crate::ids::{ConnectionId, DeviceAddress};
use crate::proto::Message;
use crate::wire;

use super::pending::PendingPurpose;
use super::{token, Core, PeerHoodEvent, KIND_APP, KIND_INQUIRY, KIND_MONITOR, KIND_RETRY, KIND_SHIFT, PAYLOAD_MASK};

impl Core {
    pub(crate) fn send_frame(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, message: &Message) {
        // Encode into the node's reusable scratch buffer; the frame handed
        // to the world is a shared allocation the delivery pipeline carries
        // end to end without further copies. The auth trailer (when enabled)
        // is appended to the scratch bytes before the single share-copy.
        self.scratch.clear();
        wire::encode_into(message, &mut self.scratch);
        if self.security.frame_auth() {
            let sender = self.daemon.info().address;
            self.security.append_trailer(sender, &mut self.scratch);
        }
        let frame = wire::Frame::copy_from_slice(&self.scratch);
        let _ = ctx.send(link, frame);
    }

    /// Sends an already-encoded frame. With frame authentication on, the
    /// trailer is per-send and per-hop: cached frames (the inquiry response)
    /// and relayed frames (the bridge fast path) get a fresh sequence number
    /// and MAC here instead of carrying a stale one.
    pub(crate) fn transmit_frame(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, frame: wire::Frame) {
        if self.security.frame_auth() {
            let sender = self.daemon.info().address;
            let mut bytes = frame.to_vec();
            self.security.append_trailer(sender, &mut bytes);
            let _ = ctx.send(link, wire::Frame::from(bytes));
        } else {
            let _ = ctx.send(link, frame);
        }
    }

    /// Records a reputation penalty against a peer one of the defences
    /// caught misbehaving (no-op unless reporter reputation is enabled).
    pub(crate) fn note_peer_misbehaved(&mut self, peer: DeviceAddress) {
        if self.security.reputation() {
            self.daemon.storage_mut().penalize_reporter(peer);
            self.security.stats.penalties_recorded += 1;
        }
    }

    /// The encoded response to an inquiry request. Encoded once and then
    /// reused — served to every neighbour that asks — until the device
    /// storage, the service registry or the bridge load actually changes
    /// (tracked by generation counters, so the cached bytes are always
    /// exactly what a fresh encode would produce).
    fn inquiry_response_frame(&mut self) -> wire::Frame {
        let key = (
            self.daemon.storage().generation(),
            self.daemon.registry().generation(),
            self.bridge.load_percent(),
        );
        if let Some((cached_key, frame)) = &self.inquiry_frame {
            if *cached_key == key {
                self.resilience.note_inquiry_served(true);
                return frame.clone();
            }
        }
        let response = self
            .daemon
            .build_inquiry_response(self.config.discovery.max_export_jumps, key.2);
        let frame = wire::encode_frame(&response, &mut self.scratch);
        self.inquiry_frame = Some((key, frame.clone()));
        self.resilience.note_inquiry_served(false);
        frame
    }

    pub(crate) fn start(&mut self, ctx: &mut NodeCtx<'_>) {
        // Stagger the plugin inquiry loops a little so co-located devices do
        // not scan in lock-step.
        for (idx, _tech) in self.config.techs.clone().iter().enumerate() {
            let jitter = SimDuration::from_millis(ctx.rng().range(0u64..2_000));
            ctx.schedule(jitter, token(KIND_INQUIRY, idx as u64));
        }
        ctx.schedule(self.config.monitor.interval, token(KIND_MONITOR, 0));
    }

    pub(crate) fn handle_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: simnet::TimerToken) {
        let kind = timer.0 >> KIND_SHIFT;
        let payload = timer.0 & PAYLOAD_MASK;
        match kind {
            KIND_INQUIRY => {
                let tech = match self.config.techs.get(payload as usize).copied() {
                    Some(t) => t,
                    None => return,
                };
                if let Some(plugin) = self.daemon.plugins_mut().get_mut(tech) {
                    if plugin.cycle_active {
                        // The previous cycle is still fetching; retry shortly.
                        ctx.schedule(SimDuration::from_secs(2), timer);
                        return;
                    }
                    plugin.begin_cycle(ctx.now());
                }
                ctx.start_inquiry(tech);
            }
            KIND_MONITOR => {
                self.compact_closed_connections(ctx);
                self.monitor_pass(ctx);
                ctx.schedule(self.config.monitor.interval, token(KIND_MONITOR, 0));
            }
            KIND_APP => {
                if let Some((app, token_value)) = self.app_timers.remove(&payload) {
                    self.events.push_back(PeerHoodEvent::Timer {
                        app,
                        token: token_value,
                    });
                }
            }
            KIND_RETRY => {
                if let Some(conn) = self.retry_conns.remove(&payload) {
                    self.try_reply_reconnect(ctx, conn);
                }
            }
            _ => {}
        }
    }

    fn schedule_next_inquiry(&mut self, ctx: &mut NodeCtx<'_>, tech: RadioTech) {
        if let Some(idx) = self.config.techs.iter().position(|t| *t == tech) {
            // Random per-cycle jitter keeps co-located devices from scanning
            // in lock-step, which together with the Bluetooth inquiry
            // asymmetry (§3.4.2) would otherwise make them mutually
            // invisible for long stretches.
            let base = self.config.discovery.inquiry_interval;
            let jitter = SimDuration::from_millis(ctx.rng().range(0u64..=base.as_millis().max(1)));
            ctx.schedule(base + jitter, token(KIND_INQUIRY, idx as u64));
        }
    }

    pub(crate) fn handle_inquiry_complete(&mut self, ctx: &mut NodeCtx<'_>, tech: RadioTech, hits: Vec<InquiryHit>) {
        let now = ctx.now();
        let service_check = self.config.discovery.service_check_interval;
        let mut fetches: Vec<(NodeId, DeviceAddress, u8)> = Vec::new();
        for hit in &hits {
            let addr = DeviceAddress::from_node(hit.node);
            if let Some(plugin) = self.daemon.plugins_mut().get_mut(tech) {
                plugin.note_responder(addr);
            }
            if self
                .daemon
                .storage_mut()
                .note_inquiry_hit(addr, hit.quality, now, service_check)
            {
                fetches.push((hit.node, addr, hit.quality));
            }
        }
        for (node, addr, quality) in fetches {
            // A flapping or dead neighbour trips its breaker; while the
            // breaker holds, the daemon stops burning multi-second connect
            // attempts on it — the hit stays in the storage and the fetch
            // resumes once a half-open probe succeeds.
            if !self.resilience.allow_dial(addr, now) {
                continue;
            }
            if let Some(plugin) = self.daemon.plugins_mut().get_mut(tech) {
                plugin.note_fetch_started();
            }
            let attempt = ctx.connect(node, tech);
            self.pending.insert(
                attempt,
                PendingPurpose::DaemonFetch {
                    peer: addr,
                    tech,
                    quality,
                },
            );
        }
        // If nothing needs fetching the cycle completes immediately.
        let cycle_done = self
            .daemon
            .plugins()
            .get(tech)
            .map(|p| p.pending_fetches == 0)
            .unwrap_or(true);
        if cycle_done {
            self.finish_discovery_cycle(ctx, tech);
        }
    }

    fn finish_discovery_cycle(&mut self, ctx: &mut NodeCtx<'_>, tech: RadioTech) {
        let now = ctx.now();
        let removed = self.daemon.complete_cycle(tech, &self.config, now);
        for address in removed {
            self.events.push_back(PeerHoodEvent::DeviceLost { address });
        }
        self.schedule_next_inquiry(ctx, tech);
    }

    pub(crate) fn note_fetch_finished(&mut self, ctx: &mut NodeCtx<'_>, tech: RadioTech) {
        let done = self
            .daemon
            .plugins_mut()
            .get_mut(tech)
            .map(|p| p.cycle_active && p.note_fetch_finished())
            .unwrap_or(false);
        if done {
            self.finish_discovery_cycle(ctx, tech);
        }
    }

    pub(crate) fn handle_message(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, from: NodeId, payload: Payload) {
        // Frame authentication happens before the codec ever sees the bytes:
        // the trailer is verified against the radio the frame physically
        // arrived from and stripped, so the rest of the stack (including the
        // bridge relay fast path) always works on bare wire frames.
        let payload = if self.security.frame_auth() {
            let sender = DeviceAddress::from_node(from);
            match self.security.verify_and_strip(sender, payload.as_slice()) {
                Ok(body) => Payload::copy_from_slice(body),
                Err(_) => {
                    self.note_peer_misbehaved(sender);
                    return;
                }
            }
        } else {
            payload
        };
        let message = match wire::decode(&payload) {
            Ok(m) => m,
            Err(_) => return,
        };
        let role = self.engine.role(link).unwrap_or(LinkRole::IncomingUnidentified);
        match role {
            LinkRole::IncomingUnidentified => self.identify_incoming(ctx, link, from, message),
            LinkRole::DaemonFetch { tech, quality, .. } => {
                self.handle_fetch_response(ctx, link, tech, quality, message)
            }
            LinkRole::DaemonServe => {
                // The requester normally just closes; ignore anything else.
            }
            LinkRole::AppConnection(conn) => self.handle_app_message(ctx, link, conn, message),
            LinkRole::HandoverPending { conn, via } => self.handle_handover_message(ctx, link, conn, via, message),
            LinkRole::BridgeUpstream(conn) => {
                self.handle_bridge_message(ctx, link, conn, BridgeSide::Upstream, message, &payload)
            }
            LinkRole::BridgeDownstream(conn) => {
                self.handle_bridge_message(ctx, link, conn, BridgeSide::Downstream, message, &payload)
            }
        }
    }

    fn identify_incoming(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, from: NodeId, message: Message) {
        match message {
            Message::InquiryRequest { requester: _ } => {
                let frame = self.inquiry_response_frame();
                self.engine.set_role(link, LinkRole::DaemonServe);
                self.transmit_frame(ctx, link, frame);
            }
            Message::ConnectRequest {
                conn_id,
                service,
                client,
                reply_context,
            } => self.handle_connect_request(ctx, link, conn_id, service, client, reply_context),
            Message::BridgeRequest {
                conn_id,
                destination,
                service,
                client,
                reply_context,
            } => self.handle_bridge_request(ctx, link, from, conn_id, destination, service, client, reply_context),
            _ => {
                // Anything else on an unidentified link is a protocol error.
                ctx.close(link);
                self.engine.remove(link);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_connect_request(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        link: LinkId,
        conn_id: ConnectionId,
        service: String,
        client: DeviceInfo,
        reply_context: Option<ConnectionId>,
    ) {
        let now = ctx.now();
        if self.security.sanity_checks() {
            if let Some(orig) = reply_context {
                // A §5.3 reply connection refers back to a session *this*
                // device initiated (the connection id packs its allocator);
                // anything else is a forged or replayed reply context.
                if orig.initiator() != self.my_address() {
                    self.security.stats.bad_reply_context += 1;
                    self.note_peer_misbehaved(client.address);
                    ctx.close(link);
                    self.engine.remove(link);
                    return;
                }
            } else if self.connections.get(conn_id).is_none()
                && self.bridge.get(conn_id).is_none()
                && conn_id.initiator() != client.address
            {
                // A brand-new session's connection id is allocated by its
                // client: a fresh request whose id claims a different
                // allocator is a replayed or forged frame trying to hijack
                // or pre-poison someone else's session.
                self.security.stats.foreign_conn_rejected += 1;
                self.note_peer_misbehaved(client.address);
                ctx.close(link);
                self.engine.remove(link);
                return;
            }
        }
        // Case 1: the server is calling back with the result of a migrated
        // task — attach the link to the waiting session (§5.3).
        if let Some(orig) = reply_context {
            if self.connections.get(orig).is_some() {
                if let Some(c) = self.connections.get_mut(orig) {
                    if let Some(old) = c.link.take() {
                        if old != link {
                            ctx.close(old);
                            self.engine.remove(old);
                        }
                    }
                    c.establish(link, now);
                }
                self.engine.set_role(link, LinkRole::AppConnection(orig));
                self.send_frame(ctx, link, &Message::Accept { conn_id });
                self.events.push_back(PeerHoodEvent::ConnectionChanged {
                    app: self.owner_of(orig),
                    conn: orig,
                });
                return;
            }
        }
        // Case 2: re-establishment of a session this device already knows
        // (server side of a routing handover or client re-attachment).
        if self.connections.get(conn_id).is_some() {
            if let Some(c) = self.connections.get_mut(conn_id) {
                if let Some(old) = c.link.take() {
                    if old != link {
                        ctx.close(old);
                        self.engine.remove(old);
                    }
                }
                c.establish(link, now);
            }
            self.engine.set_role(link, LinkRole::AppConnection(conn_id));
            self.send_frame(ctx, link, &Message::Accept { conn_id });
            self.events.push_back(PeerHoodEvent::ConnectionChanged {
                app: self.owner_of(conn_id),
                conn: conn_id,
            });
            self.flush_outbox(ctx, conn_id);
            return;
        }
        // Case 3: splice of an existing bridge pair's upstream leg (the
        // per-hop handover of §5.2.1's monitoring-limitation discussion).
        if self.bridge.get(conn_id).is_some() {
            let old_upstream = self.bridge.get(conn_id).map(|p| p.upstream);
            if let Some(pair) = self.bridge.get_mut(conn_id) {
                pair.upstream = link;
            }
            if let Some(old) = old_upstream {
                if old != link {
                    ctx.close(old);
                    self.engine.remove(old);
                }
            }
            self.engine.set_role(link, LinkRole::BridgeUpstream(conn_id));
            self.send_frame(ctx, link, &Message::Accept { conn_id });
            return;
        }
        // Case 4: a brand-new incoming connection to one of our services.
        if self.daemon.registry().find(&service).is_some() {
            let connection = AppConnection::incoming(conn_id, client.clone(), service.clone(), link, now);
            self.connections.insert(connection);
            self.engine.set_role(link, LinkRole::AppConnection(conn_id));
            self.send_frame(ctx, link, &Message::Accept { conn_id });
            // Route the new connection to the application that registered
            // the service.
            let owner = self.service_owner.get(&service).copied();
            if let Some(owner) = owner {
                self.conn_owner.insert(conn_id, owner);
            }
            self.events.push_back(PeerHoodEvent::PeerConnected {
                app: owner,
                conn: conn_id,
                client,
                service,
            });
        } else {
            self.send_frame(
                ctx,
                link,
                &Message::Error {
                    conn_id,
                    code: ErrorCode::ServiceUnavailable,
                    detail: format!("no service named {service}"),
                },
            );
            ctx.close(link);
            self.engine.remove(link);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_bridge_request(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        link: LinkId,
        from: NodeId,
        conn_id: ConnectionId,
        destination: DeviceAddress,
        service: String,
        client: DeviceInfo,
        reply_context: Option<ConnectionId>,
    ) {
        // A bridge request whose destination is this very device behaves like
        // a direct connect request (defensive; bridges normally convert it).
        if destination == self.my_address() {
            self.handle_connect_request(ctx, link, conn_id, service, client, reply_context);
            return;
        }
        if !self.config.bridge.enabled || !self.bridge.has_capacity() {
            self.bridge.record_refusal();
            self.send_frame(
                ctx,
                link,
                &Message::Error {
                    conn_id,
                    code: ErrorCode::BridgeBusy,
                    detail: "bridge service unavailable or at capacity".into(),
                },
            );
            ctx.close(link);
            self.engine.remove(link);
            return;
        }
        // Select the next hop from the device storage (Fig. 4.4: "get devices
        // list, find given address").
        let next_hop = match self.daemon.storage().get(destination) {
            Some(entry) => {
                if entry.route.is_direct() {
                    Some((destination, self.tech_for(Some(&entry.info))))
                } else {
                    entry.route.bridge.map(|b| {
                        let tech = self.tech_for(self.daemon.storage().get(b).map(|e| &e.info));
                        (b, tech)
                    })
                }
            }
            None => None,
        };
        // Routing-loop sanity check (§3.4.3 hardening): if the best route to
        // the destination goes back through the very node that sent us this
        // request, relaying would only bounce the frame between the two of us
        // until bridge capacity runs out. Forged neighbour reports manufacture
        // exactly such cycles (the "provider" a hostile advertises resolves
        // back to the hostile itself), so treat the reflection as no route and
        // let the originator's reputation layer charge its bridge.
        let next_hop = match next_hop {
            Some((hop, _)) if self.security.sanity_checks() && hop.node_id() == from => None,
            other => other,
        };
        let (hop, tech) = match next_hop {
            Some(h) => h,
            None => {
                self.bridge.record_refusal();
                self.send_frame(
                    ctx,
                    link,
                    &Message::Error {
                        conn_id,
                        code: ErrorCode::NoRouteToDestination,
                        detail: format!("no route to {destination}"),
                    },
                );
                ctx.close(link);
                self.engine.remove(link);
                return;
            }
        };
        self.bridge
            .insert_pending(conn_id, link, destination, service, client, reply_context);
        self.engine.set_role(link, LinkRole::BridgeUpstream(conn_id));
        let attempt = ctx.connect(hop.node_id(), tech);
        self.pending
            .insert(attempt, PendingPurpose::BridgeLeg { conn: conn_id });
    }

    fn handle_fetch_response(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        link: LinkId,
        tech: RadioTech,
        quality: u8,
        message: Message,
    ) {
        if let Message::InquiryResponse {
            device,
            services,
            neighbors,
            bridge_load_percent,
        } = message
        {
            let now = ctx.now();
            // Reporter reputation (§3.4.3 hardening): a responder whose
            // penalty count crossed the configured limit keeps its *direct*
            // storage entry — we did just talk to it — but its neighbour
            // report is gossip and is no longer integrated into the routing
            // table, so a compromised node cannot keep poisoning route
            // candidates after being caught.
            let neighbors: &[_] =
                if self.security.reputation() && self.daemon.storage().reporter_blocked(device.address) {
                    self.security.stats.reports_skipped += 1;
                    &[]
                } else {
                    &neighbors
                };
            let discovered = self.daemon.process_inquiry_response(
                device,
                services,
                neighbors,
                bridge_load_percent,
                quality,
                &self.config,
                now,
            );
            for address in discovered {
                self.events.push_back(PeerHoodEvent::DeviceDiscovered { address });
            }
            ctx.close(link);
            self.engine.remove(link);
            self.note_fetch_finished(ctx, tech);
        }
    }

    fn handle_app_message(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, conn: ConnectionId, message: Message) {
        // Stale links must not affect the session (the connection may already
        // have been handed over to a different link).
        let is_current = self
            .connections
            .get(conn)
            .map(|c| c.link == Some(link))
            .unwrap_or(false);
        if !is_current {
            if matches!(message, Message::Disconnect { .. }) {
                ctx.close(link);
                self.engine.remove(link);
            }
            return;
        }
        if self.security.sanity_checks() && message.connection_id().is_some_and(|id| id != conn) {
            // The frame decodes but names a different session than the one
            // classified on this link: a spliced or tampered frame. Drop it
            // before it can touch the session state.
            self.security.stats.conn_mismatch_dropped += 1;
            return;
        }
        match message {
            Message::Accept { .. } => {
                let now = ctx.now();
                let (fire, reconnected_to) = match self.connections.get_mut(conn) {
                    Some(c) if c.state == ConnState::AwaitingAccept => {
                        c.establish(link, now);
                        if c.reconnecting {
                            c.reconnecting = false;
                            (true, Some(c.remote))
                        } else {
                            (true, None)
                        }
                    }
                    _ => (false, None),
                };
                if !fire && self.security.sanity_checks() {
                    // An Accept for a session that is not awaiting one is a
                    // replay; the state machine already ignores it, and the
                    // counter feeds the scorecard.
                    self.security.stats.duplicate_accepts += 1;
                }
                if fire {
                    let is_incoming = self.connections.get(conn).map(|c| !c.is_outgoing()).unwrap_or(false);
                    let app = self.owner_of(conn);
                    if is_incoming {
                        // Server reply channel established: deliver queued results.
                        self.reply_reconnections += 1;
                        self.events.push_back(PeerHoodEvent::ConnectionChanged { app, conn });
                        self.flush_outbox(ctx, conn);
                    } else if let Some(provider) = reconnected_to {
                        self.events
                            .push_back(PeerHoodEvent::ServiceReconnected { app, conn, provider });
                    } else {
                        self.events.push_back(PeerHoodEvent::Connected { app, conn });
                    }
                }
            }
            Message::Error { code, detail, .. } => {
                let outgoing = self.connections.get(conn).map(|c| c.is_outgoing()).unwrap_or(true);
                // Reputation (§3.4.3 hardening): a failed outgoing attempt
                // points back at whoever vouched for it. A bridged attempt
                // dying downstream means the bridge advertised a next hop it
                // cannot actually reach (a poisoned route manifesting at the
                // client); a provider refusing a service it advertised means
                // the device we physically dialed spoofed its service list
                // (or, for a bridged dial, routed us to a spoofer).
                if outgoing {
                    let blame = match (&code, self.connections.get(conn)) {
                        (ErrorCode::DownstreamFailed | ErrorCode::NoRouteToDestination, Some(c)) => match &c.kind {
                            ConnKind::OutgoingBridged { bridge } => Some(*bridge),
                            _ => None,
                        },
                        (ErrorCode::ServiceUnavailable, Some(c)) => c.kind.first_hop(c.remote),
                        _ => None,
                    };
                    if let Some(peer) = blame {
                        self.note_peer_misbehaved(peer);
                    }
                }
                if let Some(c) = self.connections.get_mut(conn) {
                    c.link = None;
                    c.state = if outgoing { ConnState::Failed } else { ConnState::Closed };
                }
                ctx.close(link);
                self.engine.remove(link);
                if outgoing {
                    self.events.push_back(PeerHoodEvent::ConnectFailed {
                        app: self.owner_of(conn),
                        conn,
                        error: PeerHoodError::Remote(format!("{code}: {detail}")),
                    });
                } else {
                    self.schedule_reply_retry(ctx, conn);
                }
            }
            Message::Data { payload, .. } => {
                // Backpressure: payloads beyond the owning app's inbound rate
                // are shed here, before the event queue — the overloaded app
                // sees an explicit Shed event instead of a silent drop.
                let app = self.owner_of(conn);
                if !self.resilience.allow_inbound(app, ctx.now()) {
                    self.events.push_back(PeerHoodEvent::Shed {
                        app,
                        conn,
                        dropped_bytes: payload.len(),
                    });
                    return;
                }
                self.events.push_back(PeerHoodEvent::Data { app, conn, payload });
            }
            Message::Disconnect { .. } => {
                if let Some(c) = self.connections.get_mut(conn) {
                    c.mark_closed();
                }
                ctx.close(link);
                self.engine.remove(link);
                self.events.push_back(PeerHoodEvent::Disconnected {
                    app: self.owner_of(conn),
                    conn,
                    graceful: true,
                });
            }
            _ => {}
        }
    }

    fn handle_handover_message(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        link: LinkId,
        conn: ConnectionId,
        via: DeviceAddress,
        message: Message,
    ) {
        match message {
            Message::Accept { .. } => {
                let now = ctx.now();
                let old_link = self.connections.get(conn).and_then(|c| c.link);
                if let Some(c) = self.connections.get_mut(conn) {
                    if let Some(old) = old_link {
                        if old != link {
                            ctx.close(old);
                        }
                    }
                    c.establish(link, now);
                    // Record the route actually built. `via` travelled with
                    // the link role from the moment the switch began, so a
                    // candidate refreshed (or consumed) while the replacement
                    // connection was in flight can no longer masquerade as
                    // the bridge in use — and a direct re-route to the
                    // destination correctly sheds the bridged kind.
                    c.kind = if via == c.remote {
                        ConnKind::OutgoingDirect
                    } else {
                        ConnKind::OutgoingBridged { bridge: via }
                    };
                    if let Some(monitor) = c.monitor.as_mut() {
                        monitor.switch_succeeded();
                    }
                }
                if let Some(old) = old_link {
                    if old != link {
                        self.engine.remove(old);
                    }
                }
                self.engine.set_role(link, LinkRole::AppConnection(conn));
                self.handover_completions += 1;
                self.events.push_back(PeerHoodEvent::ConnectionChanged {
                    app: self.owner_of(conn),
                    conn,
                });
            }
            Message::Error { .. } => {
                ctx.close(link);
                self.engine.remove(link);
                self.handover_attempt_failed(ctx, conn);
            }
            _ => {}
        }
    }

    fn handle_bridge_message(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        link: LinkId,
        conn: ConnectionId,
        side: BridgeSide,
        message: Message,
        raw: &Payload,
    ) {
        // Ignore traffic on legs that are no longer part of the pair.
        let current = match self.bridge.get(conn) {
            Some(pair) => match side {
                BridgeSide::Upstream => pair.upstream == link,
                BridgeSide::Downstream => pair.downstream == Some(link),
            },
            None => false,
        };
        if !current {
            return;
        }
        match message {
            Message::Accept { .. } if side == BridgeSide::Downstream => {
                if let Some(pair) = self.bridge.get_mut(conn) {
                    pair.established = true;
                }
                if let Some(upstream) = self.bridge.get(conn).map(|p| p.upstream) {
                    self.send_frame(ctx, upstream, &Message::Accept { conn_id: conn });
                }
            }
            Message::Error { code, detail, .. } if side == BridgeSide::Downstream => {
                if let Some(pair) = self.bridge.remove(conn) {
                    self.send_frame(
                        ctx,
                        pair.upstream,
                        &Message::Error {
                            conn_id: conn,
                            code,
                            detail,
                        },
                    );
                    ctx.close(pair.upstream);
                    ctx.close(link);
                    self.engine.remove(pair.upstream);
                    self.engine.remove(link);
                }
            }
            Message::Data { conn_id, payload } => {
                if let Some((_, other, _)) = self.bridge.relay_target(link) {
                    self.bridge.record_relay(conn, payload.len());
                    if conn_id == conn {
                        // The relayed frame would re-encode to exactly the
                        // received bytes, so forward the original shared
                        // frame: a bridge chain of any length carries one
                        // allocation end to end. (With frame auth on, `raw`
                        // arrives already stripped and the relay re-MACs it
                        // for the next hop inside `transmit_frame`.)
                        self.transmit_frame(ctx, other, raw.clone());
                    } else {
                        // Defensive path (e.g. a corrupted-but-decodable
                        // frame whose conn id no longer matches the pair):
                        // rewrite the id exactly as before.
                        self.send_frame(ctx, other, &Message::Data { conn_id: conn, payload });
                    }
                }
            }
            Message::Disconnect { .. } => {
                if let Some(pair) = self.bridge.remove(conn) {
                    let other = match side {
                        BridgeSide::Upstream => pair.downstream,
                        BridgeSide::Downstream => Some(pair.upstream),
                    };
                    if let Some(other) = other {
                        self.send_frame(ctx, other, &Message::Disconnect { conn_id: conn });
                        ctx.close(other);
                        self.engine.remove(other);
                    }
                    ctx.close(link);
                    self.engine.remove(link);
                }
            }
            _ => {}
        }
    }

    pub(crate) fn fail_bridge_pair(&mut self, ctx: &mut NodeCtx<'_>, conn: ConnectionId, code: ErrorCode) {
        if let Some(pair) = self.bridge.remove(conn) {
            self.send_frame(
                ctx,
                pair.upstream,
                &Message::Error {
                    conn_id: conn,
                    code,
                    detail: "bridge leg failed".into(),
                },
            );
            ctx.close(pair.upstream);
            self.engine.remove(pair.upstream);
            if let Some(down) = pair.downstream {
                ctx.close(down);
                self.engine.remove(down);
            }
        }
    }

    pub(crate) fn handle_disconnected(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        link: LinkId,
        peer: NodeId,
        reason: DisconnectReason,
    ) {
        if reason == DisconnectReason::PeerFailed {
            // The peer's whole stack died, not just this link: flag its
            // storage entry so it ages out within one discovery cycle
            // instead of surviving the full missed-loop tolerance. If the
            // device actually comes back it answers the next inquiry and the
            // flag is reset.
            self.daemon
                .storage_mut()
                .mark_suspect(DeviceAddress::from_node(peer), self.config.discovery.max_missed_loops);
            // A crashed peer counts as a dial failure towards it.
            self.resilience
                .record_dial_failure(DeviceAddress::from_node(peer), ctx.now());
        } else if reason == DisconnectReason::OutOfRange {
            // A physically broken link feeds the flap detector: a neighbour
            // whose links keep breaking trips its breaker even though every
            // individual dial succeeds.
            self.resilience
                .record_link_break(DeviceAddress::from_node(peer), ctx.now());
        }
        let role = match self.engine.remove(link) {
            Some(r) => r,
            None => return,
        };
        match role {
            LinkRole::IncomingUnidentified | LinkRole::DaemonServe => {}
            LinkRole::DaemonFetch { tech, .. } => {
                self.note_fetch_finished(ctx, tech);
            }
            LinkRole::AppConnection(conn) => self.app_link_lost(ctx, conn, link, reason),
            LinkRole::HandoverPending { conn, .. } => self.handover_attempt_failed(ctx, conn),
            LinkRole::BridgeUpstream(conn) => {
                let matches = self.bridge.get(conn).map(|p| p.upstream == link).unwrap_or(false);
                if matches {
                    if let Some(pair) = self.bridge.remove(conn) {
                        if let Some(down) = pair.downstream {
                            self.send_frame(ctx, down, &Message::Disconnect { conn_id: conn });
                            ctx.close(down);
                            self.engine.remove(down);
                        }
                    }
                }
            }
            LinkRole::BridgeDownstream(conn) => {
                let matches = self
                    .bridge
                    .get(conn)
                    .map(|p| p.downstream == Some(link))
                    .unwrap_or(false);
                if matches {
                    self.fail_bridge_pair(ctx, conn, ErrorCode::DownstreamFailed);
                }
            }
        }
    }

    fn app_link_lost(&mut self, ctx: &mut NodeCtx<'_>, conn: ConnectionId, link: LinkId, reason: DisconnectReason) {
        let is_current = self
            .connections
            .get(conn)
            .map(|c| c.link == Some(link))
            .unwrap_or(false);
        if !is_current {
            return;
        }
        let graceful = reason == DisconnectReason::PeerClosed;
        if let Some(c) = self.connections.get_mut(conn) {
            c.mark_closed();
        }
        let (outgoing, sending) = match self.connections.get(conn) {
            Some(c) => (c.is_outgoing(), c.sending),
            None => return,
        };
        if graceful || !outgoing || !sending || !self.config.handover.enabled {
            self.events.push_back(PeerHoodEvent::Disconnected {
                app: self.owner_of(conn),
                conn,
                graceful,
            });
            return;
        }
        // The connection broke while still needed: try routing handover
        // first, then service reconnection (Fig. 5.5 / §5.2.2).
        if self.try_routing_handover(ctx, conn) {
            return;
        }
        self.propose_service_reconnection(conn);
    }

    pub(crate) fn handover_destination(&self, c: &AppConnection) -> DeviceAddress {
        match self.config.handover.target {
            HandoverTarget::FinalDestination => c.remote,
            HandoverTarget::LinkPeer => c.kind.first_hop(c.remote).unwrap_or(c.remote),
        }
    }

    fn refresh_handover_candidates(&mut self, conn: ConnectionId) {
        let (target, exclude) = match self.connections.get(conn) {
            Some(c) => (self.handover_destination(c), c.kind.first_hop(c.remote)),
            None => return,
        };
        // The candidate ranking is a pure function of the device storage
        // (generation-tracked), the target and the excluded bridge: when
        // none of them moved since the monitor's last refresh — the
        // steady-state monitoring pass — skip the walk-and-sort entirely.
        let key = (self.daemon.storage().generation(), target, exclude);
        if self
            .connections
            .get(conn)
            .and_then(|c| c.monitor.as_ref())
            .and_then(|m| m.refresh_key())
            == Some(key)
        {
            return;
        }
        let mut candidates = self.daemon.storage().handover_candidates(target);
        // Fall back on the stored multi-hop route towards the target if no
        // direct neighbour reports it.
        if candidates.is_empty() {
            if let Some(entry) = self.daemon.storage().get(target) {
                if let Some(bridge) = entry.route.bridge {
                    let ours = entry.route.first_hop_quality();
                    let theirs = entry.route.hop_qualities.get(1).copied().unwrap_or(0);
                    candidates.push((bridge, ours, theirs));
                }
            }
        }
        if let Some(c) = self.connections.get_mut(conn) {
            if let Some(monitor) = c.monitor.as_mut() {
                monitor.refresh_candidates(&candidates, exclude);
                monitor.note_refreshed(key);
            }
        }
    }

    fn try_routing_handover(&mut self, ctx: &mut NodeCtx<'_>, conn: ConnectionId) -> bool {
        // If a replacement route is already being established, let it resolve
        // instead of stacking a second recovery on top of it.
        if self
            .connections
            .get(conn)
            .and_then(|c| c.monitor.as_ref())
            .map(|m| m.is_switching())
            .unwrap_or(false)
        {
            return true;
        }
        self.refresh_handover_candidates(conn);
        let max_attempts = self.config.handover.max_routing_attempts;
        let candidate = match self.connections.get_mut(conn) {
            Some(c) => match c.monitor.as_mut() {
                Some(m) if !m.attempts_exhausted(max_attempts) => m.begin_switch(),
                _ => None,
            },
            None => None,
        };
        let candidate = match candidate {
            Some(c) => c,
            None => return false,
        };
        // A candidate behind an open breaker is treated like a failed switch
        // attempt, so recovery falls through to the next candidate or to
        // service reconnection instead of dialling a hop known bad.
        if !self.resilience.allow_dial(candidate.bridge, ctx.now()) {
            if let Some(m) = self.connections.get_mut(conn).and_then(|c| c.monitor.as_mut()) {
                m.switch_failed();
            }
            return false;
        }
        let tech = self.tech_for(self.daemon.storage().get(candidate.bridge).map(|e| &e.info));
        let attempt = ctx.connect(candidate.bridge.node_id(), tech);
        self.pending.insert(
            attempt,
            PendingPurpose::Handover {
                conn,
                via: candidate.bridge,
            },
        );
        true
    }

    pub(crate) fn handover_attempt_failed(&mut self, ctx: &mut NodeCtx<'_>, conn: ConnectionId) {
        if let Some(c) = self.connections.get_mut(conn) {
            if let Some(m) = c.monitor.as_mut() {
                m.switch_failed();
            }
        }
        let still_connected = self.connections.get(conn).map(|c| c.is_established()).unwrap_or(false);
        if still_connected {
            // The old route is still up; keep monitoring.
            return;
        }
        // The connection is down and the handover attempt failed: retry or
        // fall back to service reconnection.
        if self.try_routing_handover(ctx, conn) {
            return;
        }
        self.propose_service_reconnection(conn);
    }

    fn propose_service_reconnection(&mut self, conn: ConnectionId) {
        let (service, remote, sending) = match self.connections.get(conn) {
            Some(c) => (c.service.clone(), c.remote, c.sending),
            None => return,
        };
        let app = self.owner_of(conn);
        if !self.config.handover.allow_service_reconnection || !sending {
            self.events.push_back(PeerHoodEvent::Disconnected {
                app,
                conn,
                graceful: false,
            });
            return;
        }
        let candidates: Vec<DeviceAddress> = self
            .daemon
            .storage()
            .service_providers(&service)
            .map(|(d, _)| d.info.address)
            .filter(|a| *a != remote)
            .collect();
        if candidates.is_empty() {
            self.events.push_back(PeerHoodEvent::Disconnected {
                app,
                conn,
                graceful: false,
            });
        } else {
            self.events
                .push_back(PeerHoodEvent::ReconnectRequired { app, conn, candidates });
        }
    }

    pub(crate) fn start_service_reconnection(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        conn: ConnectionId,
        candidates: &[DeviceAddress],
    ) {
        let provider = candidates
            .iter()
            .copied()
            .find(|a| self.daemon.storage().get(*a).is_some());
        let provider = match provider {
            Some(p) => p,
            None => {
                self.abandon_connection(conn);
                return;
            }
        };
        let route = match self.daemon.storage().get(provider) {
            Some(entry) => entry.route.clone(),
            None => {
                self.abandon_connection(conn);
                return;
            }
        };
        let kind = if route.is_direct() {
            ConnKind::OutgoingDirect
        } else {
            match route.bridge {
                Some(bridge) => ConnKind::OutgoingBridged { bridge },
                None => ConnKind::OutgoingDirect,
            }
        };
        let monitor_cfg = self.config.monitor.clone();
        let handover_target = self.config.handover.target;
        let first_hop = kind.first_hop(provider).unwrap_or(provider);
        if !self.resilience.allow_dial(first_hop, ctx.now()) {
            self.abandon_connection(conn);
            return;
        }
        let tech = self.tech_for(self.daemon.storage().get(first_hop).map(|e| &e.info));
        if let Some(c) = self.connections.get_mut(conn) {
            c.remote = provider;
            c.kind = kind;
            c.state = ConnState::Connecting;
            c.link = None;
            c.reconnecting = true;
            c.monitor = Some(HandoverMonitor::new(
                monitor_cfg.quality_threshold,
                monitor_cfg.low_count_limit,
                handover_target,
            ));
        } else {
            return;
        }
        let attempt = ctx.connect(first_hop.node_id(), tech);
        self.pending.insert(attempt, PendingPurpose::AppConnect { conn });
    }

    pub(crate) fn abandon_connection(&mut self, conn: ConnectionId) {
        if let Some(c) = self.connections.get_mut(conn) {
            c.mark_closed();
        }
        self.events.push_back(PeerHoodEvent::Disconnected {
            app: self.owner_of(conn),
            conn,
            graceful: false,
        });
    }

    /// Epoch-compaction of closed-but-revivable connection records — the
    /// simulator's retired-link recipe applied to the connection table.
    /// `Closed`/`Failed` entries are deliberately kept so result routing or
    /// reconnection can revive them, which under long churn grows the table
    /// without bound. When `handover.closed_retention` is set, each monitor
    /// tick counts an *idle epoch* for entries that are down, link-less and
    /// outbox-empty; any sign of life resets the counter, and entries idle
    /// past the retention are dropped. The default (`None`) keeps the
    /// original keep-forever behaviour byte for byte.
    fn compact_closed_connections(&mut self, _ctx: &mut NodeCtx<'_>) {
        let retention = match self.config.handover.closed_retention {
            Some(r) => r,
            None => return,
        };
        let interval = self.config.monitor.interval.as_micros().max(1);
        let max_epochs = (retention.as_micros() / interval).max(1) as u32;
        for conn in self.connections.ids() {
            let remove = match self.connections.get_mut(conn) {
                Some(c) => {
                    let idle = matches!(c.state, ConnState::Closed | ConnState::Failed)
                        && c.link.is_none()
                        && c.outbox.is_empty();
                    if idle {
                        c.idle_epochs += 1;
                        c.idle_epochs > max_epochs
                    } else {
                        c.idle_epochs = 0;
                        false
                    }
                }
                None => false,
            };
            if remove {
                self.connections.remove(conn);
                self.conn_owner.remove(&conn);
            }
        }
    }

    fn monitor_pass(&mut self, ctx: &mut NodeCtx<'_>) {
        if !self.config.handover.enabled {
            return;
        }
        let ids = self.connections.ids();
        for conn in ids {
            let (established, outgoing, sending, link) = match self.connections.get(conn) {
                Some(c) => (c.is_established(), c.is_outgoing(), c.sending, c.link),
                None => continue,
            };
            if !established || !outgoing || !sending {
                continue;
            }
            // State 0: keep the alternative-route candidate fresh.
            self.refresh_handover_candidates(conn);
            // State 1: sample quality and count consecutive low readings.
            let quality = link.and_then(|l| ctx.link_quality(l));
            let trigger = match self.connections.get_mut(conn).and_then(|c| c.monitor.as_mut()) {
                Some(m) => m.record_quality(quality),
                None => false,
            };
            if trigger {
                // State 2: establish the replacement route.
                let max_attempts = self.config.handover.max_routing_attempts;
                let candidate = self.connections.get_mut(conn).and_then(|c| {
                    c.monitor
                        .as_mut()
                        .filter(|m| !m.attempts_exhausted(max_attempts))
                        .and_then(|m| m.begin_switch())
                });
                if let Some(candidate) = candidate {
                    if !self.resilience.allow_dial(candidate.bridge, ctx.now()) {
                        // The candidate's breaker is open: abort this switch
                        // (the old route is still up) and keep monitoring.
                        if let Some(m) = self.connections.get_mut(conn).and_then(|c| c.monitor.as_mut()) {
                            m.switch_failed();
                        }
                        continue;
                    }
                    let tech = self.tech_for(self.daemon.storage().get(candidate.bridge).map(|e| &e.info));
                    let attempt = ctx.connect(candidate.bridge.node_id(), tech);
                    self.pending.insert(
                        attempt,
                        PendingPurpose::Handover {
                            conn,
                            via: candidate.bridge,
                        },
                    );
                }
            }
        }
    }

    pub(crate) fn flush_outbox(&mut self, ctx: &mut NodeCtx<'_>, conn: ConnectionId) {
        let (link, payloads) = match self.connections.get_mut(conn) {
            Some(c) if c.is_established() => (c.link, std::mem::take(&mut c.outbox)),
            _ => return,
        };
        if let Some(link) = link {
            for payload in payloads {
                self.send_frame(ctx, link, &Message::Data { conn_id: conn, payload });
            }
        }
    }
}
