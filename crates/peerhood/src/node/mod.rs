//! The PeerHood node: glue between the middleware and the simulated radio.
//!
//! [`PeerHoodNode`] implements [`simnet::NodeAgent`] and owns the whole
//! middleware stack of one device — daemon, engine, connection table, bridge
//! service and handover machinery — plus the registry of
//! [`Application`](crate::application::Application)s running on top of it.
//! Applications act on the middleware through [`PeerHoodApi`] and receive
//! their callbacks through the typed [`PeerHoodEvent`] dispatch layer.
//!
//! The module is split by responsibility:
//!
//! * [`host`] — the node itself: application registry, fluent
//!   [`PeerHoodNodeBuilder`], event dispatch and the
//!   [`simnet::NodeAgent`] implementation,
//! * [`api`] — the [`PeerHoodApi`] handle applications and scenario drivers
//!   use to act on the middleware,
//! * [`events`] — the [`PeerHoodEvent`] vocabulary and [`AppId`],
//! * [`pending`] — the physical connection-attempt ledger (why each radio
//!   connect was started, and what to do when it succeeds or fails),
//! * [`protocol`] — wire-message handling, discovery cycles, bridge
//!   relaying, quality monitoring and handover.
//!
//! The original implementation runs these pieces as threads (inquiry thread,
//! advertisement thread, roaming/handover threads, the bridge main loop);
//! here every thread becomes a timer or a radio event handled on the
//! simulator's event loop, which keeps the protocol behaviour identical but
//! deterministic.

use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use simnet::{AttemptId, RadioTech, TimerToken};

use crate::bridge::BridgeService;
use crate::config::PeerHoodConfig;
use crate::connection::ConnectionTable;
use crate::daemon::Daemon;
use crate::device::DeviceInfo;
use crate::engine::Engine;
use crate::ids::{ConnectionId, DeviceAddress};

pub mod api;
pub mod events;
pub mod host;
pub mod pending;
pub mod protocol;

#[cfg(test)]
mod fuzz_tests;
#[cfg(test)]
mod tests;

pub use api::PeerHoodApi;
pub use events::{AppId, PeerHoodEvent};
pub use host::{PeerHoodNode, PeerHoodNodeBuilder};
pub use pending::PendingPurpose;

const KIND_SHIFT: u64 = 56;
const KIND_INQUIRY: u64 = 1;
const KIND_MONITOR: u64 = 2;
const KIND_APP: u64 = 3;
const KIND_RETRY: u64 = 4;
const PAYLOAD_MASK: u64 = (1 << KIND_SHIFT) - 1;

fn token(kind: u64, payload: u64) -> TimerToken {
    TimerToken((kind << KIND_SHIFT) | (payload & PAYLOAD_MASK))
}

/// Everything the node owns once started: the middleware state shared by the
/// protocol, pending-attempt and API layers.
pub(crate) struct Core {
    /// Shared with the host (and, via
    /// [`PeerHoodNodeBuilder::config_shared`], potentially with thousands of
    /// sibling nodes): one configuration allocation per fleet, not per node.
    pub(crate) config: Rc<PeerHoodConfig>,
    pub(crate) daemon: Daemon,
    pub(crate) engine: Engine,
    pub(crate) connections: ConnectionTable,
    pub(crate) bridge: BridgeService,
    pub(crate) pending: BTreeMap<AttemptId, PendingPurpose>,
    pub(crate) retry_conns: BTreeMap<u64, ConnectionId>,
    pub(crate) next_retry_token: u64,
    /// In-flight application timers, keyed by the sequential payload carried
    /// in the simulator timer. The indirection preserves the full 64-bit
    /// application token and the scheduling [`AppId`].
    pub(crate) app_timers: BTreeMap<u64, (Option<AppId>, u64)>,
    pub(crate) next_app_timer: u64,
    /// Typed events queued during protocol processing and dispatched by the
    /// host once the middleware state is consistent.
    pub(crate) events: VecDeque<PeerHoodEvent>,
    /// Which application registered each local service (incoming connections
    /// to that service are routed to it).
    pub(crate) service_owner: BTreeMap<String, AppId>,
    /// Which application owns each logical connection (all per-connection
    /// callbacks are routed to it).
    pub(crate) conn_owner: BTreeMap<ConnectionId, AppId>,
    pub(crate) handover_completions: u64,
    pub(crate) reply_reconnections: u64,
    /// When false, `send`/`close` through a [`PeerHoodApi`] enforce
    /// connection ownership (see [`PeerHoodNodeBuilder::trusted_apps`]).
    pub(crate) trusted_apps: bool,
    /// Reusable encode buffer: every outgoing frame is written here first,
    /// then copied once into a shared [`wire::Frame`](crate::wire::Frame) —
    /// the steady-state send path performs no buffer growth.
    pub(crate) scratch: Vec<u8>,
    /// Cached encoded inquiry-response frame, keyed by (storage generation,
    /// registry generation, bridge load). While nothing changes — the common
    /// case between discovery cycles — every inquiry served on any link
    /// reuses the same allocation instead of re-exporting and re-encoding
    /// the whole neighbourhood per neighbour.
    pub(crate) inquiry_frame: Option<((u64, u64, u8), crate::wire::Frame)>,
    /// The resilience pipeline: circuit breakers, backpressure and admission
    /// control interposed on the data path (no-op when every layer is
    /// disabled, the default).
    pub(crate) resilience: crate::resilience::Resilience,
    /// The protocol-hardening layer: frame authentication, replay windows
    /// and the sanity-check counters (no-op when every defence is disabled,
    /// the default).
    pub(crate) security: crate::security::Security,
}

impl Core {
    pub(crate) fn new(info: DeviceInfo, config: Rc<PeerHoodConfig>, trusted_apps: bool) -> Self {
        Core {
            daemon: Daemon::new(info, &config),
            engine: Engine::new(),
            connections: ConnectionTable::new(),
            bridge: BridgeService::new(config.bridge.max_connections),
            pending: BTreeMap::new(),
            retry_conns: BTreeMap::new(),
            next_retry_token: 0,
            app_timers: BTreeMap::new(),
            next_app_timer: 0,
            events: VecDeque::new(),
            service_owner: BTreeMap::new(),
            conn_owner: BTreeMap::new(),
            handover_completions: 0,
            reply_reconnections: 0,
            trusted_apps,
            scratch: Vec::with_capacity(256),
            inquiry_frame: None,
            resilience: crate::resilience::Resilience::new(config.resilience.clone()),
            security: crate::security::Security::new(config.security.clone()),
            config,
        }
    }

    pub(crate) fn my_address(&self) -> DeviceAddress {
        self.daemon.info().address
    }

    pub(crate) fn my_info(&self) -> DeviceInfo {
        self.daemon.info().clone()
    }

    /// The application owning a connection, if any.
    pub(crate) fn owner_of(&self, conn: ConnectionId) -> Option<AppId> {
        self.conn_owner.get(&conn).copied()
    }

    /// Radio technology to use towards a device (first configured technology
    /// the target also supports, falling back to our primary one).
    pub(crate) fn tech_for(&self, target: Option<&DeviceInfo>) -> RadioTech {
        let primary = self.config.techs.first().copied().unwrap_or(RadioTech::Bluetooth);
        match target {
            Some(info) => self
                .config
                .techs
                .iter()
                .copied()
                .find(|t| info.supports(*t))
                .unwrap_or(primary),
            None => primary,
        }
    }
}
