//! The device storage: PeerHood's view of its environment.
//!
//! `CDeviceStorage` in the original implementation stores every known remote
//! device together with its services. The thesis turns it into an ad-hoc
//! routing table by adding the bridge address and jump count (§3.3), plus the
//! link-quality and mobility parameters used for best-route selection. The
//! storage also remembers *who reported seeing whom* — exactly the
//! information the routing-handover controller walks in state 0 ("find
//! connected device from neighbours of each DeviceList element", Fig. 5.5).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use simnet::{SimDuration, SimTime};

use crate::config::DiscoveryMode;
use crate::device::{DeviceInfo, MobilityClass};
use crate::ids::DeviceAddress;
use crate::proto::NeighborRecord;
use crate::route::{candidate_replaces, RouteInfo};
use crate::service::ServiceInfo;

/// One entry of the device storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredDevice {
    /// The device's advertised parameters.
    pub info: DeviceInfo,
    /// Best known route to the device.
    pub route: RouteInfo,
    /// Services the device offers.
    pub services: Vec<ServiceInfo>,
    /// Last time the entry was confirmed (directly or via a neighbour
    /// report).
    pub last_seen: SimTime,
    /// Last time the full information was fetched over a daemon connection;
    /// used to honour the service-checking interval of §3.5.
    pub last_fetched: SimTime,
    /// Consecutive inquiry loops a *direct* neighbour has missed.
    pub missed_loops: u32,
}

impl StoredDevice {
    /// True if the device is a direct neighbour (0 jumps).
    pub fn is_direct(&self) -> bool {
        self.route.is_direct()
    }

    /// True if the device offers a service with the given name.
    pub fn offers(&self, service: &str) -> bool {
        self.services.iter().any(|s| s.name == service)
    }
}

/// Summary statistics about the storage contents, used by the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StorageStats {
    /// Total number of known remote devices.
    pub known_devices: usize,
    /// Number of direct (0-jump) neighbours.
    pub direct_neighbors: usize,
    /// Largest jump count among stored routes.
    pub max_jumps: u8,
    /// Total number of known remote services.
    pub known_services: usize,
}

/// PeerHood's per-device environment knowledge.
#[derive(Debug, Clone)]
pub struct DeviceStorage {
    own_address: DeviceAddress,
    quality_threshold: u8,
    devices: BTreeMap<DeviceAddress, StoredDevice>,
    /// responder -> (neighbour -> quality the responder reported for it)
    reported_neighbors: BTreeMap<DeviceAddress, BTreeMap<DeviceAddress, u8>>,
}

impl DeviceStorage {
    /// Creates an empty storage for the device with the given address.
    pub fn new(own_address: DeviceAddress, quality_threshold: u8) -> Self {
        DeviceStorage {
            own_address,
            quality_threshold,
            devices: BTreeMap::new(),
            reported_neighbors: BTreeMap::new(),
        }
    }

    /// The owning device's address (never stored as an entry).
    pub fn own_address(&self) -> DeviceAddress {
        self.own_address
    }

    /// Number of known remote devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True if no remote device is known.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Looks up a device by address.
    pub fn get(&self, address: DeviceAddress) -> Option<&StoredDevice> {
        self.devices.get(&address)
    }

    /// All known devices in address order.
    pub fn device_list(&self) -> Vec<&StoredDevice> {
        self.devices.values().collect()
    }

    /// All known direct neighbours.
    pub fn direct_neighbors(&self) -> Vec<&StoredDevice> {
        self.devices.values().filter(|d| d.is_direct()).collect()
    }

    /// Every `(device, service)` pair whose service name matches `name`,
    /// best route first.
    pub fn find_service_providers(&self, name: &str) -> Vec<(&StoredDevice, &ServiceInfo)> {
        let mut providers: Vec<(&StoredDevice, &ServiceInfo)> = self
            .devices
            .values()
            .filter_map(|d| d.services.iter().find(|s| s.name == name).map(|s| (d, s)))
            .collect();
        providers.sort_by(|(a, _), (b, _)| {
            a.route
                .jumps
                .cmp(&b.route.jumps)
                .then(a.route.nearest_mobility.value().cmp(&b.route.nearest_mobility.value()))
                .then(b.route.quality_sum().cmp(&a.route.quality_sum()))
        });
        providers
    }

    /// Storage statistics.
    pub fn stats(&self) -> StorageStats {
        StorageStats {
            known_devices: self.devices.len(),
            direct_neighbors: self.devices.values().filter(|d| d.is_direct()).count(),
            max_jumps: self.devices.values().map(|d| d.route.jumps).max().unwrap_or(0),
            known_services: self.devices.values().map(|d| d.services.len()).sum(),
        }
    }

    /// Records or refreshes a **direct** neighbour observed by an inquiry and
    /// information fetch. Returns `true` when the device was not known
    /// before.
    pub fn upsert_direct(&mut self, info: DeviceInfo, quality: u8, services: Vec<ServiceInfo>, now: SimTime) -> bool {
        if info.address == self.own_address {
            return false;
        }
        let route = RouteInfo::direct(quality, info.mobility);
        match self.devices.get_mut(&info.address) {
            Some(existing) => {
                // A direct observation always supersedes an indirect route
                // and refreshes a direct one.
                if existing.route.jumps > 0 || candidate_replaces(&route, &existing.route, self.quality_threshold) {
                    existing.route = route;
                } else if existing.route.is_direct() {
                    existing.route.hop_qualities = vec![quality];
                }
                existing.info = info;
                existing.services = services;
                existing.last_seen = now;
                existing.last_fetched = now;
                existing.missed_loops = 0;
                false
            }
            None => {
                self.devices.insert(
                    info.address,
                    StoredDevice {
                        info,
                        route,
                        services,
                        last_seen: now,
                        last_fetched: now,
                        missed_loops: 0,
                    },
                );
                true
            }
        }
    }

    /// Marks a direct neighbour as having answered the current inquiry loop
    /// without re-fetching its full information (the cheap path of Fig. 3.12
    /// when the service-checking interval has not elapsed yet).
    pub fn mark_responded(&mut self, address: DeviceAddress, quality: u8, now: SimTime) {
        if let Some(entry) = self.devices.get_mut(&address) {
            entry.last_seen = now;
            entry.missed_loops = 0;
            if entry.route.is_direct() {
                entry.route.hop_qualities = vec![quality];
            }
        }
    }

    /// True if the device's full information should be re-fetched according
    /// to the service-checking interval.
    pub fn needs_recheck(&self, address: DeviceAddress, now: SimTime, interval: SimDuration) -> bool {
        match self.devices.get(&address) {
            None => true,
            Some(entry) => now.saturating_since(entry.last_fetched) >= interval,
        }
    }

    /// Integrates the neighbourhood information received from `responder`
    /// (the `AnalyzeNeighbourhoodDevices` step of Fig. 3.13).
    ///
    /// Records describing this device itself are skipped ("own device
    /// comparison filter"); each remaining record is inserted with an
    /// incremented jump count and `responder` as bridge, and replaces an
    /// existing route only if it wins the jump → mobility → quality
    /// comparison chain. Returns the addresses of newly learned devices
    /// (existing entries whose route merely improved are not reported).
    pub fn integrate_neighbor_report(
        &mut self,
        responder: DeviceAddress,
        responder_quality: u8,
        responder_mobility: MobilityClass,
        records: &[NeighborRecord],
        mode: DiscoveryMode,
        now: SimTime,
    ) -> Vec<DeviceAddress> {
        let mut added = Vec::new();
        for record in records {
            // Own-device filter: avoid a route to ourselves through a
            // neighbour.
            if record.info.address == self.own_address {
                continue;
            }
            if let Some(max) = mode.max_learned_jumps() {
                // The stored route would have `record.jumps + 1` jumps; skip
                // anything that would exceed the mode's vision (DirectOnly
                // accepts nothing from reports, TwoHop only the responder's
                // direct neighbours).
                if record.jumps.saturating_add(1) > max {
                    continue;
                }
            }
            // Remember that `responder` claims to reach this device directly
            // (used by routing handover, Fig. 5.5 state 0).
            if record.jumps == 0 {
                self.reported_neighbors
                    .entry(responder)
                    .or_default()
                    .insert(record.info.address, record.hop_qualities.first().copied().unwrap_or(0));
            }

            let mut hop_qualities = Vec::with_capacity(record.hop_qualities.len() + 1);
            hop_qualities.push(responder_quality);
            hop_qualities.extend_from_slice(&record.hop_qualities);
            let candidate = RouteInfo::via(
                responder,
                record.jumps.saturating_add(1),
                hop_qualities,
                responder_mobility,
            );

            match self.devices.get_mut(&record.info.address) {
                None => {
                    self.devices.insert(
                        record.info.address,
                        StoredDevice {
                            info: record.info.clone(),
                            route: candidate,
                            services: record.services.clone(),
                            last_seen: now,
                            last_fetched: now,
                            missed_loops: 0,
                        },
                    );
                    added.push(record.info.address);
                }
                Some(existing) => {
                    existing.last_seen = now;
                    // Merge any newly advertised services.
                    for svc in &record.services {
                        if !existing.services.iter().any(|s| s.name == svc.name) {
                            existing.services.push(svc.clone());
                        }
                    }
                    if candidate_replaces(&candidate, &existing.route, self.quality_threshold) {
                        existing.route = candidate;
                    }
                }
            }
        }
        added
    }

    /// Ages the storage after one inquiry loop: direct neighbours that did
    /// not answer accumulate missed loops and are erased after the limit;
    /// indirect entries are erased when stale or when their bridge has
    /// disappeared (Fig. 3.12's "make older" / "erase stored device").
    ///
    /// Returns the addresses that were removed.
    pub fn age_cycle(
        &mut self,
        responded: &[DeviceAddress],
        now: SimTime,
        max_missed_loops: u32,
        stale_timeout: SimDuration,
    ) -> Vec<DeviceAddress> {
        let mut removed = Vec::new();
        // Pass 1: age direct neighbours and drop stale indirect entries.
        let mut to_remove: Vec<DeviceAddress> = Vec::new();
        for (addr, entry) in self.devices.iter_mut() {
            if entry.is_direct() {
                if responded.contains(addr) {
                    entry.missed_loops = 0;
                } else {
                    entry.missed_loops += 1;
                    if entry.missed_loops > max_missed_loops {
                        to_remove.push(*addr);
                    }
                }
            } else if now.saturating_since(entry.last_seen) > stale_timeout {
                to_remove.push(*addr);
            }
        }
        for addr in to_remove {
            self.devices.remove(&addr);
            self.reported_neighbors.remove(&addr);
            removed.push(addr);
        }
        // Pass 2 (repeated): drop indirect entries whose bridge is gone.
        loop {
            let orphaned: Vec<DeviceAddress> = self
                .devices
                .iter()
                .filter(|(_, e)| {
                    e.route
                        .bridge
                        .map(|bridge| !self.devices.contains_key(&bridge))
                        .unwrap_or(false)
                })
                .map(|(addr, _)| *addr)
                .collect();
            if orphaned.is_empty() {
                break;
            }
            for addr in orphaned {
                self.devices.remove(&addr);
                self.reported_neighbors.remove(&addr);
                removed.push(addr);
            }
        }
        removed
    }

    /// Flags a device as suspected dead (its node crashed under a live
    /// link): its missed-loop counter jumps straight to the tolerance, so
    /// the next inquiry cycle it stays silent through removes it — i.e. a
    /// crashed neighbour ages out within one discovery cycle instead of
    /// `max_missed_loops` of them. A device that answers an inquiry after
    /// all resets the counter through [`DeviceStorage::mark_responded`] /
    /// [`DeviceStorage::upsert_direct`] and stays.
    pub fn mark_suspect(&mut self, address: DeviceAddress, max_missed_loops: u32) {
        if let Some(entry) = self.devices.get_mut(&address) {
            entry.missed_loops = entry.missed_loops.max(max_missed_loops);
        }
    }

    /// Removes a device outright (e.g. after repeated connection failures).
    pub fn remove(&mut self, address: DeviceAddress) -> Option<StoredDevice> {
        self.reported_neighbors.remove(&address);
        self.devices.remove(&address)
    }

    /// Exports the storage as neighbourhood information for an inquiry
    /// response (Fig. 3.5), limited to entries within `max_jumps`.
    pub fn export_neighbors(&self, max_jumps: u8) -> Vec<NeighborRecord> {
        self.devices
            .values()
            .filter(|d| d.route.jumps <= max_jumps)
            .map(|d| NeighborRecord {
                info: d.info.clone(),
                jumps: d.route.jumps,
                hop_qualities: d.route.hop_qualities.clone(),
                services: d.services.clone(),
            })
            .collect()
    }

    /// Direct neighbours that have reported `target` as *their* direct
    /// neighbour, together with the quality they reported — the candidate
    /// bridges for a routing handover towards `target` (Fig. 5.5 state 0).
    /// Sorted best first (our quality to the bridge + its reported quality to
    /// the target).
    pub fn handover_candidates(&self, target: DeviceAddress) -> Vec<(DeviceAddress, u8, u8)> {
        let mut candidates: Vec<(DeviceAddress, u8, u8)> = self
            .devices
            .values()
            .filter(|d| d.is_direct() && d.info.address != target)
            .filter_map(|d| {
                let reported = self
                    .reported_neighbors
                    .get(&d.info.address)
                    .and_then(|m| m.get(&target))
                    .copied()?;
                Some((d.info.address, d.route.first_hop_quality(), reported))
            })
            .collect();
        candidates.sort_by_key(|(_, ours, theirs)| std::cmp::Reverse(*ours as u32 + *theirs as u32));
        candidates
    }

    /// The quality `responder` last reported for `neighbor`, if any.
    pub fn reported_quality(&self, responder: DeviceAddress, neighbor: DeviceAddress) -> Option<u8> {
        self.reported_neighbors
            .get(&responder)
            .and_then(|m| m.get(&neighbor))
            .copied()
    }

    /// Clears every entry (used when the daemon restarts).
    pub fn clear(&mut self) {
        self.devices.clear();
        self.reported_neighbors.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NodeId, RadioTech};

    fn addr(n: u64) -> DeviceAddress {
        DeviceAddress::from_node_raw(n)
    }

    fn info(n: u64, mobility: MobilityClass) -> DeviceInfo {
        DeviceInfo::new(
            NodeId::from_raw(n),
            format!("dev{n}"),
            mobility,
            &[RadioTech::Bluetooth],
        )
    }

    fn record(n: u64, jumps: u8, quality: u8, services: Vec<ServiceInfo>) -> NeighborRecord {
        NeighborRecord {
            info: info(n, MobilityClass::Dynamic),
            jumps,
            hop_qualities: vec![quality; jumps as usize + 1],
            services,
        }
    }

    fn storage() -> DeviceStorage {
        DeviceStorage::new(addr(0), 230)
    }

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn upsert_direct_inserts_and_refreshes() {
        let mut s = storage();
        s.upsert_direct(
            info(1, MobilityClass::Static),
            250,
            vec![ServiceInfo::new("echo", "", 1)],
            T0,
        );
        assert_eq!(s.len(), 1);
        let d = s.get(addr(1)).unwrap();
        assert!(d.is_direct());
        assert_eq!(d.route.first_hop_quality(), 250);
        assert!(d.offers("echo"));

        // Refresh with a new quality and services.
        s.upsert_direct(info(1, MobilityClass::Static), 200, vec![], SimTime::from_secs(5));
        let d = s.get(addr(1)).unwrap();
        assert_eq!(d.route.first_hop_quality(), 200);
        assert!(d.services.is_empty());
        assert_eq!(d.last_fetched, SimTime::from_secs(5));
    }

    #[test]
    fn own_device_is_never_stored() {
        let mut s = storage();
        s.upsert_direct(info(0, MobilityClass::Static), 255, vec![], T0);
        assert!(s.is_empty());
        let n = s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Static,
            &[record(0, 0, 250, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        assert!(n.is_empty());
        assert!(s.get(addr(0)).is_none());
    }

    #[test]
    fn dynamic_discovery_learns_remote_devices_with_incremented_jumps() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        // Device 1 reports: device 2 directly (jump 0) and device 3 at one jump.
        let added = s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Static,
            &[
                record(2, 0, 235, vec![ServiceInfo::new("print", "", 5)]),
                record(3, 1, 231, vec![]),
            ],
            DiscoveryMode::Dynamic,
            T0,
        );
        assert_eq!(added, vec![addr(2), addr(3)]);
        let d2 = s.get(addr(2)).unwrap();
        assert_eq!(d2.route.jumps, 1);
        assert_eq!(d2.route.bridge, Some(addr(1)));
        assert_eq!(d2.route.hop_qualities, vec![240, 235]);
        let d3 = s.get(addr(3)).unwrap();
        assert_eq!(d3.route.jumps, 2);
        assert_eq!(d3.route.bridge, Some(addr(1)));
        // Figure 3.6's table: the storage knows the whole network with
        // routing information.
        assert_eq!(s.stats().known_devices, 3);
        assert_eq!(s.stats().max_jumps, 2);
        assert_eq!(s.stats().known_services, 1);
    }

    #[test]
    fn two_hop_mode_only_learns_responders_direct_neighbors() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Static,
            &[
                record(2, 0, 235, vec![]),
                record(3, 1, 231, vec![]),
                record(4, 2, 231, vec![]),
            ],
            DiscoveryMode::TwoHop,
            T0,
        );
        assert!(s.get(addr(2)).is_some());
        assert!(s.get(addr(3)).is_none());
        assert!(s.get(addr(4)).is_none());
    }

    #[test]
    fn direct_only_mode_ignores_reports() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Static,
            &[record(2, 0, 235, vec![])],
            DiscoveryMode::DirectOnly,
            T0,
        );
        assert!(s.get(addr(2)).is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn suspect_neighbour_ages_out_within_one_cycle() {
        // A crashed neighbour (PeerFailed on a live link) is flagged suspect
        // and must disappear after the very next inquiry cycle it stays
        // silent through — not after the full missed-loop tolerance.
        let max_missed = 5;
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.upsert_direct(info(2, MobilityClass::Static), 240, vec![], T0);
        s.mark_suspect(addr(1), max_missed);
        // Marking an unknown device is a no-op.
        s.mark_suspect(addr(9), max_missed);
        let removed = s.age_cycle(
            &[addr(2)],
            SimTime::from_secs(10),
            max_missed,
            SimDuration::from_secs(600),
        );
        assert_eq!(removed, vec![addr(1)], "the suspect must age out in one cycle");
        assert!(s.get(addr(2)).is_some(), "unsuspected neighbours keep their tolerance");
    }

    #[test]
    fn suspect_neighbour_that_answers_again_is_kept() {
        let max_missed = 5;
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.mark_suspect(addr(1), max_missed);
        // The device answers the next inquiry after all (it was a link
        // glitch, not a crash): the cheap responded path clears the flag.
        s.mark_responded(addr(1), 245, SimTime::from_secs(5));
        let removed = s.age_cycle(
            &[addr(1)],
            SimTime::from_secs(10),
            max_missed,
            SimDuration::from_secs(600),
        );
        assert!(removed.is_empty());
        assert_eq!(s.get(addr(1)).unwrap().missed_loops, 0);
    }

    #[test]
    fn direct_observation_supersedes_indirect_route() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Static,
            &[record(2, 0, 235, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        assert_eq!(s.get(addr(2)).unwrap().route.jumps, 1);
        // Now we meet device 2 directly.
        s.upsert_direct(info(2, MobilityClass::Dynamic), 231, vec![], SimTime::from_secs(10));
        let d2 = s.get(addr(2)).unwrap();
        assert!(d2.is_direct());
        assert_eq!(d2.route.bridge, None);
    }

    #[test]
    fn better_routes_replace_worse_ones() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Dynamic), 240, vec![], T0);
        s.upsert_direct(info(5, MobilityClass::Static), 245, vec![], T0);
        // First learn target 9 through the dynamic bridge 1.
        s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Dynamic,
            &[record(9, 0, 250, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        assert_eq!(s.get(addr(9)).unwrap().route.bridge, Some(addr(1)));
        // Then learn the same target through the static bridge 5 with the
        // same jump count: mobility preference replaces the route, but the
        // device is not reported as newly learned.
        let added = s.integrate_neighbor_report(
            addr(5),
            245,
            MobilityClass::Static,
            &[record(9, 0, 240, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        assert!(added.is_empty());
        assert_eq!(s.get(addr(9)).unwrap().route.bridge, Some(addr(5)));
        // A worse candidate (more jumps) does not replace it back.
        let added = s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Dynamic,
            &[record(9, 3, 255, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        assert!(added.is_empty());
        assert_eq!(s.get(addr(9)).unwrap().route.bridge, Some(addr(5)));
    }

    #[test]
    fn aging_removes_silent_direct_neighbors_after_limit() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.upsert_direct(info(2, MobilityClass::Static), 240, vec![], T0);
        // Device 1 keeps answering, device 2 goes silent.
        for loop_idx in 0..3 {
            let removed = s.age_cycle(
                &[addr(1)],
                SimTime::from_secs(10 * (loop_idx + 1)),
                3,
                SimDuration::from_secs(1000),
            );
            assert!(removed.is_empty(), "removed too early at loop {loop_idx}");
        }
        let removed = s.age_cycle(&[addr(1)], SimTime::from_secs(40), 3, SimDuration::from_secs(1000));
        assert_eq!(removed, vec![addr(2)]);
        assert!(s.get(addr(2)).is_none());
        assert!(s.get(addr(1)).is_some());
    }

    #[test]
    fn aging_cascades_to_routes_through_removed_bridges() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Static,
            &[record(2, 0, 235, vec![]), record(3, 1, 232, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        assert_eq!(s.len(), 3);
        // Bridge 1 disappears: after enough missed loops, 2 and 3 (reachable
        // only through it) must disappear too.
        let mut removed_total = Vec::new();
        for i in 0..5 {
            removed_total.extend(s.age_cycle(&[], SimTime::from_secs(10 * (i + 1)), 3, SimDuration::from_secs(10_000)));
        }
        assert!(removed_total.contains(&addr(1)));
        assert!(removed_total.contains(&addr(2)));
        assert!(removed_total.contains(&addr(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn stale_indirect_entries_expire() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Static,
            &[record(2, 0, 235, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        // Device 1 keeps responding but never mentions device 2 again; after
        // the stale timeout device 2 is dropped.
        let removed = s.age_cycle(&[addr(1)], SimTime::from_secs(300), 3, SimDuration::from_secs(180));
        assert_eq!(removed, vec![addr(2)]);
        assert!(s.get(addr(1)).is_some());
    }

    #[test]
    fn needs_recheck_honours_interval() {
        let mut s = storage();
        assert!(s.needs_recheck(addr(1), T0, SimDuration::from_secs(60)));
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        assert!(!s.needs_recheck(addr(1), SimTime::from_secs(30), SimDuration::from_secs(60)));
        assert!(s.needs_recheck(addr(1), SimTime::from_secs(61), SimDuration::from_secs(60)));
    }

    #[test]
    fn mark_responded_refreshes_without_fetch() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.mark_responded(addr(1), 200, SimTime::from_secs(20));
        let d = s.get(addr(1)).unwrap();
        assert_eq!(d.route.first_hop_quality(), 200);
        assert_eq!(d.last_seen, SimTime::from_secs(20));
        assert_eq!(d.last_fetched, T0);
        // Marking an unknown device is a no-op.
        s.mark_responded(addr(9), 100, SimTime::from_secs(20));
        assert!(s.get(addr(9)).is_none());
    }

    #[test]
    fn service_provider_lookup_sorts_by_route_preference() {
        let mut s = storage();
        let svc = |p| vec![ServiceInfo::new("analysis", "", p)];
        s.upsert_direct(info(1, MobilityClass::Dynamic), 240, svc(1), T0);
        s.upsert_direct(info(2, MobilityClass::Static), 235, svc(2), T0);
        s.integrate_neighbor_report(
            addr(2),
            235,
            MobilityClass::Static,
            &[record(3, 0, 255, svc(3))],
            DiscoveryMode::Dynamic,
            T0,
        );
        let providers = s.find_service_providers("analysis");
        assert_eq!(providers.len(), 3);
        // Direct routes come first; among them the static device wins; the
        // one-jump provider is last.
        assert_eq!(providers[0].0.info.address, addr(2));
        assert_eq!(providers[1].0.info.address, addr(1));
        assert_eq!(providers[2].0.info.address, addr(3));
        assert!(s.find_service_providers("nothing").is_empty());
    }

    #[test]
    fn export_neighbors_respects_jump_limit() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Static,
            &[record(2, 0, 235, vec![]), record(3, 3, 232, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        let all = s.export_neighbors(8);
        assert_eq!(all.len(), 3);
        let limited = s.export_neighbors(1);
        assert_eq!(limited.len(), 2, "the 4-jump entry must be excluded");
        // Exported jump counts are the exporter's own view.
        let d2 = limited.iter().find(|r| r.info.address == addr(2)).unwrap();
        assert_eq!(d2.jumps, 1);
    }

    #[test]
    fn handover_candidates_come_from_reported_neighbors() {
        let mut s = storage();
        // Two direct neighbours; both claim to see the target (device 9).
        s.upsert_direct(info(1, MobilityClass::Static), 250, vec![], T0);
        s.upsert_direct(info(2, MobilityClass::Static), 231, vec![], T0);
        s.upsert_direct(info(9, MobilityClass::Static), 238, vec![], T0);
        s.integrate_neighbor_report(
            addr(1),
            250,
            MobilityClass::Static,
            &[record(9, 0, 252, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        s.integrate_neighbor_report(
            addr(2),
            231,
            MobilityClass::Static,
            &[record(9, 0, 249, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        let candidates = s.handover_candidates(addr(9));
        assert_eq!(candidates.len(), 2);
        // Device 1 has the better combined quality and is listed first.
        assert_eq!(candidates[0].0, addr(1));
        assert_eq!(candidates[0].1, 250);
        assert_eq!(candidates[0].2, 252);
        assert_eq!(candidates[1].0, addr(2));
        assert_eq!(s.reported_quality(addr(1), addr(9)), Some(252));
        assert_eq!(s.reported_quality(addr(9), addr(1)), None);
        // The target itself is never its own handover candidate.
        assert!(candidates.iter().all(|(a, _, _)| *a != addr(9)));
    }

    #[test]
    fn remove_and_clear() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        assert!(s.remove(addr(1)).is_some());
        assert!(s.remove(addr(1)).is_none());
        s.upsert_direct(info(2, MobilityClass::Static), 240, vec![], T0);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.own_address(), addr(0));
    }
}
