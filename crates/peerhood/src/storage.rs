//! The device storage: PeerHood's view of its environment.
//!
//! `CDeviceStorage` in the original implementation stores every known remote
//! device together with its services. The thesis turns it into an ad-hoc
//! routing table by adding the bridge address and jump count (§3.3), plus the
//! link-quality and mobility parameters used for best-route selection. The
//! storage also remembers *who reported seeing whom* — exactly the
//! information the routing-handover controller walks in state 0 ("find
//! connected device from neighbours of each DeviceList element", Fig. 5.5).

use std::collections::BTreeMap;
use std::rc::Rc;

use serde::{Deserialize, Serialize};
use simnet::{SimDuration, SimTime};

use crate::config::DiscoveryMode;
use crate::device::{DeviceInfo, MobilityClass};
use crate::ids::DeviceAddress;
use crate::proto::NeighborRecord;
use crate::quality::route_acceptable;
use crate::route::{candidate_replaces, RouteInfo};
use crate::service::ServiceInfo;

/// One entry of the device storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredDevice {
    /// The device's advertised parameters.
    pub info: DeviceInfo,
    /// Best known route to the device.
    pub route: RouteInfo,
    /// Services the device offers. Shared with the [`NeighborRecord`]s the
    /// list arrived in (and leaves through): cloning an entry or exporting
    /// the neighbourhood bumps a reference count instead of copying strings.
    pub services: Rc<[ServiceInfo]>,
    /// Last time the entry was confirmed (directly or via a neighbour
    /// report).
    pub last_seen: SimTime,
    /// Last time the full information was fetched over a daemon connection;
    /// used to honour the service-checking interval of §3.5.
    pub last_fetched: SimTime,
    /// Consecutive inquiry loops a *direct* neighbour has missed.
    pub missed_loops: u32,
}

impl StoredDevice {
    /// True if the device is a direct neighbour (0 jumps).
    pub fn is_direct(&self) -> bool {
        self.route.is_direct()
    }

    /// True if the device offers a service with the given name.
    pub fn offers(&self, service: &str) -> bool {
        self.services.iter().any(|s| s.name == service)
    }
}

/// Summary statistics about the storage contents, used by the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StorageStats {
    /// Total number of known remote devices.
    pub known_devices: usize,
    /// Number of direct (0-jump) neighbours.
    pub direct_neighbors: usize,
    /// Largest jump count among stored routes.
    pub max_jumps: u8,
    /// Total number of known remote services.
    pub known_services: usize,
}

/// PeerHood's per-device environment knowledge.
#[derive(Debug, Clone)]
pub struct DeviceStorage {
    own_address: DeviceAddress,
    quality_threshold: u8,
    devices: BTreeMap<DeviceAddress, StoredDevice>,
    /// responder -> (neighbour -> quality the responder reported for it)
    reported_neighbors: BTreeMap<DeviceAddress, BTreeMap<DeviceAddress, u8>>,
    /// Bumped on every mutation; lets callers (the node's cached inquiry
    /// response frame) detect staleness without diffing contents.
    generation: u64,
    /// Set by [`DeviceStorage::remove`] (which defers its orphan cascade to
    /// the next aging cycle); lets [`DeviceStorage::age_cycle`] skip the
    /// orphaned-bridge scan when nothing could possibly be orphaned.
    maybe_orphans: bool,
    /// Reporter-reputation penalties (security hardening): devices whose
    /// frames triggered security rejections, or whose bridge routes failed
    /// to dial, accrue penalties here. Empty unless the reputation defence
    /// records any.
    reputation: BTreeMap<DeviceAddress, u32>,
    /// Penalty count at which a reporter's neighbour reports are ignored.
    /// `None` (the default) disables the defence entirely.
    reputation_limit: Option<u32>,
}

impl DeviceStorage {
    /// Creates an empty storage for the device with the given address.
    pub fn new(own_address: DeviceAddress, quality_threshold: u8) -> Self {
        DeviceStorage {
            own_address,
            quality_threshold,
            devices: BTreeMap::new(),
            reported_neighbors: BTreeMap::new(),
            generation: 0,
            maybe_orphans: false,
            reputation: BTreeMap::new(),
            reputation_limit: None,
        }
    }

    /// Arms (or disarms) the reporter-reputation defence: with a limit set,
    /// neighbour reports from devices whose penalty count has reached it
    /// are skipped by the daemon.
    pub fn set_reputation_limit(&mut self, limit: Option<u32>) {
        self.reputation_limit = limit;
    }

    /// Records one reputation penalty against `peer` and returns its new
    /// penalty count.
    pub fn penalize_reporter(&mut self, peer: DeviceAddress) -> u32 {
        let count = self.reputation.entry(peer).or_insert(0);
        *count = count.saturating_add(1);
        *count
    }

    /// The penalty count accrued by `peer`.
    pub fn reporter_penalty(&self, peer: DeviceAddress) -> u32 {
        self.reputation.get(&peer).copied().unwrap_or(0)
    }

    /// True when the reputation defence is armed and `peer` has exhausted
    /// its penalty budget — its neighbour reports must be ignored.
    pub fn reporter_blocked(&self, peer: DeviceAddress) -> bool {
        match self.reputation_limit {
            Some(limit) => self.reporter_penalty(peer) >= limit,
            None => false,
        }
    }

    /// The owning device's address (never stored as an entry).
    pub fn own_address(&self) -> DeviceAddress {
        self.own_address
    }

    /// Monotonic mutation counter: unchanged generation ⇒ unchanged
    /// contents, so derived artefacts (e.g. the encoded inquiry-response
    /// frame) can be cached and reused until it moves.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of known remote devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True if no remote device is known.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Looks up a device by address.
    pub fn get(&self, address: DeviceAddress) -> Option<&StoredDevice> {
        self.devices.get(&address)
    }

    /// All known devices in address order, without allocating.
    pub fn devices(&self) -> impl Iterator<Item = &StoredDevice> + '_ {
        self.devices.values()
    }

    /// All known devices in address order (thin [`DeviceStorage::devices`]
    /// shim kept for tests and drivers that want a `Vec`).
    pub fn device_list(&self) -> Vec<&StoredDevice> {
        self.devices().collect()
    }

    /// All known direct neighbours, in address order, without allocating.
    pub fn direct_neighbors_iter(&self) -> impl Iterator<Item = &StoredDevice> + '_ {
        self.devices.values().filter(|d| d.is_direct())
    }

    /// All known direct neighbours (thin
    /// [`DeviceStorage::direct_neighbors_iter`] shim kept for tests).
    pub fn direct_neighbors(&self) -> Vec<&StoredDevice> {
        self.direct_neighbors_iter().collect()
    }

    /// Comparison chain of the provider-selection sort: jumps, then nearest
    /// mobility, then (descending) quality sum.
    fn provider_order(a: &StoredDevice, b: &StoredDevice) -> std::cmp::Ordering {
        a.route
            .jumps
            .cmp(&b.route.jumps)
            .then(a.route.nearest_mobility.value().cmp(&b.route.nearest_mobility.value()))
            .then(b.route.quality_sum().cmp(&a.route.quality_sum()))
    }

    /// Every `(device, service)` pair whose service name matches `name`,
    /// best route first. (The ranking requires a sort, so the iterator is
    /// backed by one internally collected vector; it exists so call sites
    /// can stream the ranked results without a second allocation.)
    pub fn service_providers<'a>(&'a self, name: &str) -> impl Iterator<Item = (&'a StoredDevice, &'a ServiceInfo)> {
        let mut providers: Vec<(&StoredDevice, &ServiceInfo)> = self
            .devices
            .values()
            .filter_map(|d| d.services.iter().find(|s| s.name == name).map(|s| (d, s)))
            .collect();
        providers.sort_by(|(a, _), (b, _)| Self::provider_order(a, b));
        providers.into_iter()
    }

    /// The best-ranked provider of `name` — exactly
    /// `find_service_providers(name).first()`, but found in one allocation-
    /// free pass (a strict-minimum scan keeps the stable sort's tie-breaking:
    /// first in address order wins among equals).
    pub fn best_service_provider(&self, name: &str) -> Option<(&StoredDevice, &ServiceInfo)> {
        let mut best: Option<(&StoredDevice, &ServiceInfo)> = None;
        for d in self.devices.values() {
            if let Some(s) = d.services.iter().find(|s| s.name == name) {
                let wins = match best {
                    Some((b, _)) => Self::provider_order(d, b) == std::cmp::Ordering::Less,
                    None => true,
                };
                if wins {
                    best = Some((d, s));
                }
            }
        }
        best
    }

    /// Every `(device, service)` pair whose service name matches `name`,
    /// best route first (thin [`DeviceStorage::service_providers`] shim kept
    /// for tests).
    pub fn find_service_providers(&self, name: &str) -> Vec<(&StoredDevice, &ServiceInfo)> {
        self.service_providers(name).collect()
    }

    /// Storage statistics.
    pub fn stats(&self) -> StorageStats {
        StorageStats {
            known_devices: self.devices.len(),
            direct_neighbors: self.devices.values().filter(|d| d.is_direct()).count(),
            max_jumps: self.devices.values().map(|d| d.route.jumps).max().unwrap_or(0),
            known_services: self.devices.values().map(|d| d.services.len()).sum(),
        }
    }

    /// Records or refreshes a **direct** neighbour observed by an inquiry and
    /// information fetch. Returns `true` when the device was not known
    /// before.
    pub fn upsert_direct(
        &mut self,
        info: DeviceInfo,
        quality: u8,
        services: impl Into<Rc<[ServiceInfo]>>,
        now: SimTime,
    ) -> bool {
        if info.address == self.own_address {
            return false;
        }
        let services = services.into();
        self.generation += 1;
        let route = RouteInfo::direct(quality, info.mobility);
        match self.devices.get_mut(&info.address) {
            Some(existing) => {
                // A direct observation always supersedes an indirect route
                // and refreshes a direct one.
                if existing.route.jumps > 0 || candidate_replaces(&route, &existing.route, self.quality_threshold) {
                    existing.route = route;
                } else if existing.route.is_direct() {
                    Self::set_single_hop_quality(&mut existing.route.hop_qualities, quality);
                }
                existing.info = info;
                existing.services = services;
                existing.last_seen = now;
                existing.last_fetched = now;
                existing.missed_loops = 0;
                false
            }
            None => {
                self.devices.insert(
                    info.address,
                    StoredDevice {
                        info,
                        route,
                        services,
                        last_seen: now,
                        last_fetched: now,
                        missed_loops: 0,
                    },
                );
                true
            }
        }
    }

    /// Marks a direct neighbour as having answered the current inquiry loop
    /// without re-fetching its full information (the cheap path of Fig. 3.12
    /// when the service-checking interval has not elapsed yet).
    pub fn mark_responded(&mut self, address: DeviceAddress, quality: u8, now: SimTime) {
        if let Some(entry) = self.devices.get_mut(&address) {
            entry.last_seen = now;
            entry.missed_loops = 0;
            // `last_seen`/`missed_loops` are invisible to the generation's
            // consumers (exports and handover candidates), so the counter
            // only moves when the exported hop quality actually changes —
            // keeping the encode-once inquiry-response cache warm across
            // steady cycles.
            if entry.route.is_direct() && entry.route.hop_qualities != [quality] {
                self.generation += 1;
                Self::set_single_hop_quality(&mut entry.route.hop_qualities, quality);
            }
        }
    }

    /// Rewrites a hop-quality list to the single entry `[quality]`, reusing
    /// the existing allocation when it already holds exactly one hop (the
    /// steady state of a direct route refreshed every inquiry cycle).
    fn set_single_hop_quality(hop_qualities: &mut Vec<u8>, quality: u8) {
        hop_qualities.clear();
        hop_qualities.push(quality);
    }

    /// True if the device's full information should be re-fetched according
    /// to the service-checking interval.
    pub fn needs_recheck(&self, address: DeviceAddress, now: SimTime, interval: SimDuration) -> bool {
        match self.devices.get(&address) {
            None => true,
            Some(entry) => now.saturating_since(entry.last_fetched) >= interval,
        }
    }

    /// Processes one inquiry hit in a single lookup: when the device is
    /// unknown or stale per the service-checking interval, returns `true`
    /// (the caller starts a full fetch, exactly as
    /// [`DeviceStorage::needs_recheck`] would have said); otherwise applies
    /// the cheap [`DeviceStorage::mark_responded`] refresh and returns
    /// `false`. Behaviour is identical to calling the two methods
    /// separately — this just avoids walking the map twice per hit on the
    /// discovery hot path.
    pub fn note_inquiry_hit(
        &mut self,
        address: DeviceAddress,
        quality: u8,
        now: SimTime,
        interval: SimDuration,
    ) -> bool {
        match self.devices.get_mut(&address) {
            None => true,
            Some(entry) => {
                if now.saturating_since(entry.last_fetched) >= interval {
                    return true;
                }
                entry.last_seen = now;
                entry.missed_loops = 0;
                if entry.route.is_direct() && entry.route.hop_qualities != [quality] {
                    self.generation += 1;
                    Self::set_single_hop_quality(&mut entry.route.hop_qualities, quality);
                }
                false
            }
        }
    }

    /// Integrates the neighbourhood information received from `responder`
    /// (the `AnalyzeNeighbourhoodDevices` step of Fig. 3.13).
    ///
    /// Records describing this device itself are skipped ("own device
    /// comparison filter"); each remaining record is inserted with an
    /// incremented jump count and `responder` as bridge, and replaces an
    /// existing route only if it wins the jump → mobility → quality
    /// comparison chain. Returns the addresses of newly learned devices
    /// (existing entries whose route merely improved are not reported).
    pub fn integrate_neighbor_report(
        &mut self,
        responder: DeviceAddress,
        responder_quality: u8,
        responder_mobility: MobilityClass,
        records: &[NeighborRecord],
        mode: DiscoveryMode,
        now: SimTime,
    ) -> Vec<DeviceAddress> {
        let mut added = Vec::new();
        self.generation += 1;
        for record in records {
            // Own-device filter: avoid a route to ourselves through a
            // neighbour.
            if record.info.address == self.own_address {
                continue;
            }
            if let Some(max) = mode.max_learned_jumps() {
                // The stored route would have `record.jumps + 1` jumps; skip
                // anything that would exceed the mode's vision (DirectOnly
                // accepts nothing from reports, TwoHop only the responder's
                // direct neighbours).
                if record.jumps.saturating_add(1) > max {
                    continue;
                }
            }
            // Remember that `responder` claims to reach this device directly
            // (used by routing handover, Fig. 5.5 state 0).
            if record.jumps == 0 {
                self.reported_neighbors
                    .entry(responder)
                    .or_default()
                    .insert(record.info.address, record.hop_qualities.first().copied().unwrap_or(0));
            }

            // The candidate route is `[responder_quality] ++ record hops`
            // through `responder`. Its hop-quality vector is only
            // materialised when the candidate actually wins (or the device
            // is new) — in the steady state, where every report re-announces
            // an already-known route that does not beat the stored one, this
            // loop allocates nothing.
            let cand_jumps = record.jumps.saturating_add(1);
            let build_candidate = || {
                let mut hop_qualities = Vec::with_capacity(record.hop_qualities.len() + 1);
                hop_qualities.push(responder_quality);
                hop_qualities.extend_from_slice(&record.hop_qualities);
                RouteInfo::via(responder, cand_jumps, hop_qualities, responder_mobility)
            };

            match self.devices.get_mut(&record.info.address) {
                None => {
                    self.devices.insert(
                        record.info.address,
                        StoredDevice {
                            info: record.info.clone(),
                            route: build_candidate(),
                            services: record.services.clone(),
                            last_seen: now,
                            last_fetched: now,
                            missed_loops: 0,
                        },
                    );
                    added.push(record.info.address);
                }
                Some(existing) => {
                    existing.last_seen = now;
                    // Merge any newly advertised services. The list is
                    // shared, so it is rebuilt (copy-on-write) only when a
                    // genuinely new service appears — the steady state, where
                    // reports repeat known services, touches nothing.
                    let fresh: Vec<&ServiceInfo> = record
                        .services
                        .iter()
                        .filter(|svc| !existing.services.iter().any(|s| s.name == svc.name))
                        .collect();
                    if !fresh.is_empty() {
                        let mut merged: Vec<ServiceInfo> = Vec::with_capacity(existing.services.len() + fresh.len());
                        merged.extend(existing.services.iter().cloned());
                        merged.extend(fresh.into_iter().cloned());
                        existing.services = merged.into();
                    }
                    // The `candidate_replaces` comparison chain of Fig. 3.13,
                    // evaluated without building the candidate: jumps, then
                    // nearest mobility, then the Fig. 3.9 quality rule over
                    // the prefixed hop list.
                    let current = &existing.route;
                    let replaces = if cand_jumps != current.jumps {
                        cand_jumps < current.jumps
                    } else if responder_mobility.value() != current.nearest_mobility.value() {
                        responder_mobility.value() < current.nearest_mobility.value()
                    } else {
                        let threshold = self.quality_threshold;
                        let cand_ok =
                            responder_quality >= threshold && record.hop_qualities.iter().all(|&q| q >= threshold);
                        let curr_ok = route_acceptable(&current.hop_qualities, threshold);
                        match (cand_ok, curr_ok) {
                            (true, false) => true,
                            (false, _) => false,
                            (true, true) => {
                                let cand_sum = responder_quality as u32
                                    + record.hop_qualities.iter().map(|&q| q as u32).sum::<u32>();
                                cand_sum > current.quality_sum()
                            }
                        }
                    };
                    if replaces {
                        existing.route = build_candidate();
                    }
                }
            }
        }
        added
    }

    /// Ages the storage after one inquiry loop: direct neighbours that did
    /// not answer accumulate missed loops and are erased after the limit;
    /// indirect entries are erased when stale or when their bridge has
    /// disappeared (Fig. 3.12's "make older" / "erase stored device").
    ///
    /// Returns the addresses that were removed.
    pub fn age_cycle(
        &mut self,
        responded: &[DeviceAddress],
        now: SimTime,
        max_missed_loops: u32,
        stale_timeout: SimDuration,
    ) -> Vec<DeviceAddress> {
        let mut removed = Vec::new();
        // Pass 1: age direct neighbours and drop stale indirect entries.
        // Missed-loop counters are invisible to the generation's consumers,
        // so the counter is bumped further down, only when an entry is
        // actually removed.
        let mut to_remove: Vec<DeviceAddress> = Vec::new();
        for (addr, entry) in self.devices.iter_mut() {
            if entry.is_direct() {
                if responded.contains(addr) {
                    entry.missed_loops = 0;
                } else {
                    entry.missed_loops += 1;
                    if entry.missed_loops > max_missed_loops {
                        to_remove.push(*addr);
                    }
                }
            } else if now.saturating_since(entry.last_seen) > stale_timeout {
                to_remove.push(*addr);
            }
        }
        for addr in to_remove {
            self.devices.remove(&addr);
            self.reported_neighbors.remove(&addr);
            removed.push(addr);
        }
        // Pass 2 (repeated): drop indirect entries whose bridge is gone.
        // Orphans can only exist when something was removed — in pass 1
        // just now, or earlier through `remove` (which defers its cascade
        // here); every other mutation only adds or improves entries. The
        // steady-state cycle with nothing to age skips the scan.
        if removed.is_empty() && !self.maybe_orphans {
            return removed;
        }
        self.generation += 1;
        self.maybe_orphans = false;
        loop {
            let orphaned: Vec<DeviceAddress> = self
                .devices
                .iter()
                .filter(|(_, e)| {
                    e.route
                        .bridge
                        .map(|bridge| !self.devices.contains_key(&bridge))
                        .unwrap_or(false)
                })
                .map(|(addr, _)| *addr)
                .collect();
            if orphaned.is_empty() {
                break;
            }
            for addr in orphaned {
                self.devices.remove(&addr);
                self.reported_neighbors.remove(&addr);
                removed.push(addr);
            }
        }
        removed
    }

    /// Flags a device as suspected dead (its node crashed under a live
    /// link): its missed-loop counter jumps straight to the tolerance, so
    /// the next inquiry cycle it stays silent through removes it — i.e. a
    /// crashed neighbour ages out within one discovery cycle instead of
    /// `max_missed_loops` of them. A device that answers an inquiry after
    /// all resets the counter through [`DeviceStorage::mark_responded`] /
    /// [`DeviceStorage::upsert_direct`] and stays.
    pub fn mark_suspect(&mut self, address: DeviceAddress, max_missed_loops: u32) {
        if let Some(entry) = self.devices.get_mut(&address) {
            self.generation += 1;
            entry.missed_loops = entry.missed_loops.max(max_missed_loops);
        }
    }

    /// Removes a device outright (e.g. after repeated connection failures).
    /// Routes through the removed device are cascaded away by the next
    /// [`DeviceStorage::age_cycle`].
    pub fn remove(&mut self, address: DeviceAddress) -> Option<StoredDevice> {
        self.generation += 1;
        self.maybe_orphans = true;
        self.reported_neighbors.remove(&address);
        self.devices.remove(&address)
    }

    /// Exports the storage as neighbourhood information for an inquiry
    /// response (Fig. 3.5), limited to entries within `max_jumps`, without
    /// allocating the record list. Each yielded record shares its service
    /// list with the storage entry.
    pub fn export_neighbors_iter(&self, max_jumps: u8) -> impl Iterator<Item = NeighborRecord> + '_ {
        self.devices
            .values()
            .filter(move |d| d.route.jumps <= max_jumps)
            .map(|d| NeighborRecord {
                info: d.info.clone(),
                jumps: d.route.jumps,
                hop_qualities: d.route.hop_qualities.clone(),
                services: d.services.clone(),
            })
    }

    /// Exports the storage as neighbourhood information for an inquiry
    /// response (thin [`DeviceStorage::export_neighbors_iter`] shim kept for
    /// tests and for building owned [`Message`](crate::proto::Message)s).
    pub fn export_neighbors(&self, max_jumps: u8) -> Vec<NeighborRecord> {
        self.export_neighbors_iter(max_jumps).collect()
    }

    /// Direct neighbours that have reported `target` as *their* direct
    /// neighbour, together with the quality they reported — the candidate
    /// bridges for a routing handover towards `target` (Fig. 5.5 state 0).
    /// Best first (our quality to the bridge + its reported quality to the
    /// target); like [`DeviceStorage::service_providers`] the ranking needs
    /// one internal sort, after which the results stream without copies.
    pub fn handover_candidates_iter(&self, target: DeviceAddress) -> impl Iterator<Item = (DeviceAddress, u8, u8)> {
        // Walk the (much smaller) reporter table instead of the whole device
        // storage: a candidate must have filed a neighbour report, and both
        // maps iterate in address order, so the result list is identical to
        // the historical full-storage scan.
        let mut candidates: Vec<(DeviceAddress, u8, u8)> = self
            .reported_neighbors
            .iter()
            .filter(|(responder, _)| **responder != target)
            .filter_map(|(responder, seen)| {
                let reported = seen.get(&target).copied()?;
                let d = self.devices.get(responder).filter(|d| d.is_direct())?;
                Some((*responder, d.route.first_hop_quality(), reported))
            })
            .collect();
        candidates.sort_by_key(|(_, ours, theirs)| std::cmp::Reverse(*ours as u32 + *theirs as u32));
        candidates.into_iter()
    }

    /// Handover candidate bridges, best first (thin
    /// [`DeviceStorage::handover_candidates_iter`] shim kept for tests).
    pub fn handover_candidates(&self, target: DeviceAddress) -> Vec<(DeviceAddress, u8, u8)> {
        self.handover_candidates_iter(target).collect()
    }

    /// The quality `responder` last reported for `neighbor`, if any.
    pub fn reported_quality(&self, responder: DeviceAddress, neighbor: DeviceAddress) -> Option<u8> {
        self.reported_neighbors
            .get(&responder)
            .and_then(|m| m.get(&neighbor))
            .copied()
    }

    /// Clears every entry (used when the daemon restarts). Reputation
    /// penalties are in-memory state and die with the restart too; the
    /// armed/disarmed limit is configuration and survives.
    pub fn clear(&mut self) {
        self.generation += 1;
        self.devices.clear();
        self.reported_neighbors.clear();
        self.reputation.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NodeId, RadioTech};

    fn addr(n: u64) -> DeviceAddress {
        DeviceAddress::from_node_raw(n)
    }

    fn info(n: u64, mobility: MobilityClass) -> DeviceInfo {
        DeviceInfo::new(
            NodeId::from_raw(n),
            format!("dev{n}"),
            mobility,
            &[RadioTech::Bluetooth],
        )
    }

    fn record(n: u64, jumps: u8, quality: u8, services: Vec<ServiceInfo>) -> NeighborRecord {
        NeighborRecord {
            info: info(n, MobilityClass::Dynamic),
            jumps,
            hop_qualities: vec![quality; jumps as usize + 1],
            services: services.into(),
        }
    }

    fn storage() -> DeviceStorage {
        DeviceStorage::new(addr(0), 230)
    }

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn upsert_direct_inserts_and_refreshes() {
        let mut s = storage();
        s.upsert_direct(
            info(1, MobilityClass::Static),
            250,
            vec![ServiceInfo::new("echo", "", 1)],
            T0,
        );
        assert_eq!(s.len(), 1);
        let d = s.get(addr(1)).unwrap();
        assert!(d.is_direct());
        assert_eq!(d.route.first_hop_quality(), 250);
        assert!(d.offers("echo"));

        // Refresh with a new quality and services.
        s.upsert_direct(info(1, MobilityClass::Static), 200, vec![], SimTime::from_secs(5));
        let d = s.get(addr(1)).unwrap();
        assert_eq!(d.route.first_hop_quality(), 200);
        assert!(d.services.is_empty());
        assert_eq!(d.last_fetched, SimTime::from_secs(5));
    }

    #[test]
    fn own_device_is_never_stored() {
        let mut s = storage();
        s.upsert_direct(info(0, MobilityClass::Static), 255, vec![], T0);
        assert!(s.is_empty());
        let n = s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Static,
            &[record(0, 0, 250, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        assert!(n.is_empty());
        assert!(s.get(addr(0)).is_none());
    }

    #[test]
    fn dynamic_discovery_learns_remote_devices_with_incremented_jumps() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        // Device 1 reports: device 2 directly (jump 0) and device 3 at one jump.
        let added = s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Static,
            &[
                record(2, 0, 235, vec![ServiceInfo::new("print", "", 5)]),
                record(3, 1, 231, vec![]),
            ],
            DiscoveryMode::Dynamic,
            T0,
        );
        assert_eq!(added, vec![addr(2), addr(3)]);
        let d2 = s.get(addr(2)).unwrap();
        assert_eq!(d2.route.jumps, 1);
        assert_eq!(d2.route.bridge, Some(addr(1)));
        assert_eq!(d2.route.hop_qualities, vec![240, 235]);
        let d3 = s.get(addr(3)).unwrap();
        assert_eq!(d3.route.jumps, 2);
        assert_eq!(d3.route.bridge, Some(addr(1)));
        // Figure 3.6's table: the storage knows the whole network with
        // routing information.
        assert_eq!(s.stats().known_devices, 3);
        assert_eq!(s.stats().max_jumps, 2);
        assert_eq!(s.stats().known_services, 1);
    }

    #[test]
    fn two_hop_mode_only_learns_responders_direct_neighbors() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Static,
            &[
                record(2, 0, 235, vec![]),
                record(3, 1, 231, vec![]),
                record(4, 2, 231, vec![]),
            ],
            DiscoveryMode::TwoHop,
            T0,
        );
        assert!(s.get(addr(2)).is_some());
        assert!(s.get(addr(3)).is_none());
        assert!(s.get(addr(4)).is_none());
    }

    #[test]
    fn reputation_penalties_block_reporters_only_when_armed() {
        let mut s = storage();
        // Unarmed: penalties accrue but never block.
        assert_eq!(s.penalize_reporter(addr(9)), 1);
        assert_eq!(s.penalize_reporter(addr(9)), 2);
        assert_eq!(s.reporter_penalty(addr(9)), 2);
        assert!(!s.reporter_blocked(addr(9)), "unarmed defence blocks nobody");
        // Armed at 3: one more penalty crosses the limit.
        s.set_reputation_limit(Some(3));
        assert!(!s.reporter_blocked(addr(9)));
        s.penalize_reporter(addr(9));
        assert!(s.reporter_blocked(addr(9)));
        assert!(!s.reporter_blocked(addr(10)), "other peers unaffected");
        // A daemon restart wipes the in-memory penalties but stays armed.
        s.clear();
        assert_eq!(s.reporter_penalty(addr(9)), 0);
        assert!(!s.reporter_blocked(addr(9)));
    }

    #[test]
    fn direct_only_mode_ignores_reports() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Static,
            &[record(2, 0, 235, vec![])],
            DiscoveryMode::DirectOnly,
            T0,
        );
        assert!(s.get(addr(2)).is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn suspect_neighbour_ages_out_within_one_cycle() {
        // A crashed neighbour (PeerFailed on a live link) is flagged suspect
        // and must disappear after the very next inquiry cycle it stays
        // silent through — not after the full missed-loop tolerance.
        let max_missed = 5;
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.upsert_direct(info(2, MobilityClass::Static), 240, vec![], T0);
        s.mark_suspect(addr(1), max_missed);
        // Marking an unknown device is a no-op.
        s.mark_suspect(addr(9), max_missed);
        let removed = s.age_cycle(
            &[addr(2)],
            SimTime::from_secs(10),
            max_missed,
            SimDuration::from_secs(600),
        );
        assert_eq!(removed, vec![addr(1)], "the suspect must age out in one cycle");
        assert!(s.get(addr(2)).is_some(), "unsuspected neighbours keep their tolerance");
    }

    #[test]
    fn suspect_neighbour_that_answers_again_is_kept() {
        let max_missed = 5;
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.mark_suspect(addr(1), max_missed);
        // The device answers the next inquiry after all (it was a link
        // glitch, not a crash): the cheap responded path clears the flag.
        s.mark_responded(addr(1), 245, SimTime::from_secs(5));
        let removed = s.age_cycle(
            &[addr(1)],
            SimTime::from_secs(10),
            max_missed,
            SimDuration::from_secs(600),
        );
        assert!(removed.is_empty());
        assert_eq!(s.get(addr(1)).unwrap().missed_loops, 0);
    }

    #[test]
    fn direct_observation_supersedes_indirect_route() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Static,
            &[record(2, 0, 235, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        assert_eq!(s.get(addr(2)).unwrap().route.jumps, 1);
        // Now we meet device 2 directly.
        s.upsert_direct(info(2, MobilityClass::Dynamic), 231, vec![], SimTime::from_secs(10));
        let d2 = s.get(addr(2)).unwrap();
        assert!(d2.is_direct());
        assert_eq!(d2.route.bridge, None);
    }

    #[test]
    fn better_routes_replace_worse_ones() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Dynamic), 240, vec![], T0);
        s.upsert_direct(info(5, MobilityClass::Static), 245, vec![], T0);
        // First learn target 9 through the dynamic bridge 1.
        s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Dynamic,
            &[record(9, 0, 250, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        assert_eq!(s.get(addr(9)).unwrap().route.bridge, Some(addr(1)));
        // Then learn the same target through the static bridge 5 with the
        // same jump count: mobility preference replaces the route, but the
        // device is not reported as newly learned.
        let added = s.integrate_neighbor_report(
            addr(5),
            245,
            MobilityClass::Static,
            &[record(9, 0, 240, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        assert!(added.is_empty());
        assert_eq!(s.get(addr(9)).unwrap().route.bridge, Some(addr(5)));
        // A worse candidate (more jumps) does not replace it back.
        let added = s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Dynamic,
            &[record(9, 3, 255, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        assert!(added.is_empty());
        assert_eq!(s.get(addr(9)).unwrap().route.bridge, Some(addr(5)));
    }

    #[test]
    fn aging_removes_silent_direct_neighbors_after_limit() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.upsert_direct(info(2, MobilityClass::Static), 240, vec![], T0);
        // Device 1 keeps answering, device 2 goes silent.
        for loop_idx in 0..3 {
            let removed = s.age_cycle(
                &[addr(1)],
                SimTime::from_secs(10 * (loop_idx + 1)),
                3,
                SimDuration::from_secs(1000),
            );
            assert!(removed.is_empty(), "removed too early at loop {loop_idx}");
        }
        let removed = s.age_cycle(&[addr(1)], SimTime::from_secs(40), 3, SimDuration::from_secs(1000));
        assert_eq!(removed, vec![addr(2)]);
        assert!(s.get(addr(2)).is_none());
        assert!(s.get(addr(1)).is_some());
    }

    #[test]
    fn aging_cascades_to_routes_through_removed_bridges() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Static,
            &[record(2, 0, 235, vec![]), record(3, 1, 232, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        assert_eq!(s.len(), 3);
        // Bridge 1 disappears: after enough missed loops, 2 and 3 (reachable
        // only through it) must disappear too.
        let mut removed_total = Vec::new();
        for i in 0..5 {
            removed_total.extend(s.age_cycle(&[], SimTime::from_secs(10 * (i + 1)), 3, SimDuration::from_secs(10_000)));
        }
        assert!(removed_total.contains(&addr(1)));
        assert!(removed_total.contains(&addr(2)));
        assert!(removed_total.contains(&addr(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn stale_indirect_entries_expire() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Static,
            &[record(2, 0, 235, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        // Device 1 keeps responding but never mentions device 2 again; after
        // the stale timeout device 2 is dropped.
        let removed = s.age_cycle(&[addr(1)], SimTime::from_secs(300), 3, SimDuration::from_secs(180));
        assert_eq!(removed, vec![addr(2)]);
        assert!(s.get(addr(1)).is_some());
    }

    #[test]
    fn needs_recheck_honours_interval() {
        let mut s = storage();
        assert!(s.needs_recheck(addr(1), T0, SimDuration::from_secs(60)));
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        assert!(!s.needs_recheck(addr(1), SimTime::from_secs(30), SimDuration::from_secs(60)));
        assert!(s.needs_recheck(addr(1), SimTime::from_secs(61), SimDuration::from_secs(60)));
    }

    #[test]
    fn mark_responded_refreshes_without_fetch() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.mark_responded(addr(1), 200, SimTime::from_secs(20));
        let d = s.get(addr(1)).unwrap();
        assert_eq!(d.route.first_hop_quality(), 200);
        assert_eq!(d.last_seen, SimTime::from_secs(20));
        assert_eq!(d.last_fetched, T0);
        // Marking an unknown device is a no-op.
        s.mark_responded(addr(9), 100, SimTime::from_secs(20));
        assert!(s.get(addr(9)).is_none());
    }

    #[test]
    fn service_provider_lookup_sorts_by_route_preference() {
        let mut s = storage();
        let svc = |p| vec![ServiceInfo::new("analysis", "", p)];
        s.upsert_direct(info(1, MobilityClass::Dynamic), 240, svc(1), T0);
        s.upsert_direct(info(2, MobilityClass::Static), 235, svc(2), T0);
        s.integrate_neighbor_report(
            addr(2),
            235,
            MobilityClass::Static,
            &[record(3, 0, 255, svc(3))],
            DiscoveryMode::Dynamic,
            T0,
        );
        let providers = s.find_service_providers("analysis");
        assert_eq!(providers.len(), 3);
        // Direct routes come first; among them the static device wins; the
        // one-jump provider is last.
        assert_eq!(providers[0].0.info.address, addr(2));
        assert_eq!(providers[1].0.info.address, addr(1));
        assert_eq!(providers[2].0.info.address, addr(3));
        assert!(s.find_service_providers("nothing").is_empty());
    }

    #[test]
    fn export_neighbors_respects_jump_limit() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        s.integrate_neighbor_report(
            addr(1),
            240,
            MobilityClass::Static,
            &[record(2, 0, 235, vec![]), record(3, 3, 232, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        let all = s.export_neighbors(8);
        assert_eq!(all.len(), 3);
        let limited = s.export_neighbors(1);
        assert_eq!(limited.len(), 2, "the 4-jump entry must be excluded");
        // Exported jump counts are the exporter's own view.
        let d2 = limited.iter().find(|r| r.info.address == addr(2)).unwrap();
        assert_eq!(d2.jumps, 1);
    }

    #[test]
    fn handover_candidates_come_from_reported_neighbors() {
        let mut s = storage();
        // Two direct neighbours; both claim to see the target (device 9).
        s.upsert_direct(info(1, MobilityClass::Static), 250, vec![], T0);
        s.upsert_direct(info(2, MobilityClass::Static), 231, vec![], T0);
        s.upsert_direct(info(9, MobilityClass::Static), 238, vec![], T0);
        s.integrate_neighbor_report(
            addr(1),
            250,
            MobilityClass::Static,
            &[record(9, 0, 252, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        s.integrate_neighbor_report(
            addr(2),
            231,
            MobilityClass::Static,
            &[record(9, 0, 249, vec![])],
            DiscoveryMode::Dynamic,
            T0,
        );
        let candidates = s.handover_candidates(addr(9));
        assert_eq!(candidates.len(), 2);
        // Device 1 has the better combined quality and is listed first.
        assert_eq!(candidates[0].0, addr(1));
        assert_eq!(candidates[0].1, 250);
        assert_eq!(candidates[0].2, 252);
        assert_eq!(candidates[1].0, addr(2));
        assert_eq!(s.reported_quality(addr(1), addr(9)), Some(252));
        assert_eq!(s.reported_quality(addr(9), addr(1)), None);
        // The target itself is never its own handover candidate.
        assert!(candidates.iter().all(|(a, _, _)| *a != addr(9)));
    }

    #[test]
    fn remove_and_clear() {
        let mut s = storage();
        s.upsert_direct(info(1, MobilityClass::Static), 240, vec![], T0);
        assert!(s.remove(addr(1)).is_some());
        assert!(s.remove(addr(1)).is_none());
        s.upsert_direct(info(2, MobilityClass::Static), 240, vec![], T0);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.own_address(), addr(0));
    }
}
