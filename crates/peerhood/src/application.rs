//! The application callback interface.
//!
//! PeerHood applications sit on top of the library and are driven entirely by
//! callbacks (the original uses an application callback class registered with
//! the Engine, §4.1). An application implements [`Application`] and interacts
//! with the middleware through the [`PeerHoodApi`] handle it receives in
//! every callback: registering services, listing the environment, opening
//! connections, writing data, and controlling the §5.3 "sending" flag.

use std::any::Any;

use crate::device::DeviceInfo;
use crate::error::PeerHoodError;
use crate::ids::{ConnectionId, DeviceAddress};
use crate::node::PeerHoodApi;

/// Behaviour of a PeerHood application running on one device.
///
/// All methods have empty default implementations so applications only
/// implement the callbacks they care about. The `as_any` methods allow
/// scenario drivers and tests to downcast to the concrete application type
/// and inspect its state.
pub trait Application: Any {
    /// Upcast for immutable downcasting.
    fn as_any(&self) -> &dyn Any;
    /// Upcast for mutable downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Called once when the PeerHood node starts. Typical applications
    /// register their services here.
    fn on_start(&mut self, api: &mut PeerHoodApi<'_, '_>) {
        let _ = api;
    }

    /// A remote client connected to one of this application's registered
    /// services.
    fn on_peer_connected(
        &mut self,
        api: &mut PeerHoodApi<'_, '_>,
        conn: ConnectionId,
        client: DeviceInfo,
        service: &str,
    ) {
        let _ = (api, conn, client, service);
    }

    /// An outgoing connection initiated with [`PeerHoodApi::connect_to`]
    /// received its end-to-end acknowledgement and is ready for data.
    fn on_connected(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId) {
        let _ = (api, conn);
    }

    /// An outgoing connection could not be established.
    fn on_connect_failed(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, error: PeerHoodError) {
        let _ = (api, conn, error);
    }

    /// Application data arrived on a connection.
    fn on_data(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, payload: Vec<u8>) {
        let _ = (api, conn, payload);
    }

    /// A connection went down and the middleware is not (or no longer)
    /// trying to recover it. `graceful` is true when the peer closed the
    /// connection deliberately.
    fn on_disconnected(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, graceful: bool) {
        let _ = (api, conn, graceful);
    }

    /// The underlying route of a connection was replaced while preserving the
    /// session — a completed routing handover, a server reply-channel
    /// re-establishment or a client re-attachment (the `ChangeConnection`
    /// callback of Fig. 5.5).
    fn on_connection_changed(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId) {
        let _ = (api, conn);
    }

    /// Routing handover is impossible and the middleware proposes to
    /// reconnect to a different provider of the same service (§5.2.2 notes
    /// the user should be asked for permission because the task restarts from
    /// zero). Return `true` to allow the reconnection.
    fn on_reconnect_required(
        &mut self,
        api: &mut PeerHoodApi<'_, '_>,
        conn: ConnectionId,
        candidates: &[DeviceAddress],
    ) -> bool {
        let _ = (api, conn, candidates);
        true
    }

    /// A service reconnection to `provider` completed. The application must
    /// restart its task (re-send the migrated data) on the same connection
    /// id.
    fn on_service_reconnected(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, provider: DeviceAddress) {
        let _ = (api, conn, provider);
    }

    /// The resilience pipeline shed load belonging to this application: an
    /// inbound payload was dropped by the rate limit or a queued result by
    /// the outbox cap. The connection itself stays up; the application can
    /// slow down, resynchronise or close it.
    fn on_shed(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, dropped_bytes: usize) {
        let _ = (api, conn, dropped_bytes);
    }

    /// An application timer scheduled with [`PeerHoodApi::schedule_timer`]
    /// fired.
    fn on_timer(&mut self, api: &mut PeerHoodApi<'_, '_>, token: u64) {
        let _ = (api, token);
    }

    /// Dynamic discovery learned about a new remote device. Fanned out to
    /// every application hosted on the node.
    fn on_device_discovered(&mut self, api: &mut PeerHoodApi<'_, '_>, address: DeviceAddress) {
        let _ = (api, address);
    }

    /// A known remote device aged out of the storage. Fanned out to every
    /// application hosted on the node.
    fn on_device_lost(&mut self, api: &mut PeerHoodApi<'_, '_>, address: DeviceAddress) {
        let _ = (api, address);
    }
}

/// A no-op application, useful for pure bridge/relay devices that only run
/// the daemon and the hidden bridge service.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdleApplication;

impl Application for IdleApplication {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_application_downcasts() {
        let mut app = IdleApplication;
        assert!(app.as_any().downcast_ref::<IdleApplication>().is_some());
        assert!(app.as_any_mut().downcast_mut::<IdleApplication>().is_some());
    }
}
