//! The bridge (interconnection) service of Ch. 4.
//!
//! Every PeerHood device runs a hidden bridge service started with the
//! daemon. It accepts PH_BRIDGE requests, opens a second connection towards
//! the next hop (or the final destination), pairs the two legs — the
//! original keeps them as *even* and *odd* entries of one connection list —
//! and from then on relays every payload between them without interpreting
//! it, with the exception of disconnects, which tear the pair down
//! (Fig. 4.4).
//!
//! This module holds the pair table; the node glue performs the actual
//! connects and sends.

use serde::{Deserialize, Serialize};
use simnet::LinkId;

use crate::device::DeviceInfo;
use crate::ids::{ConnectionId, DeviceAddress};

/// Which side of a relayed pair a link belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BridgeSide {
    /// The leg towards the original requester (the *even* entry).
    Upstream,
    /// The leg towards the destination (the *odd* entry).
    Downstream,
}

impl BridgeSide {
    /// The opposite side.
    pub fn other(self) -> BridgeSide {
        match self {
            BridgeSide::Upstream => BridgeSide::Downstream,
            BridgeSide::Downstream => BridgeSide::Upstream,
        }
    }
}

/// One relayed connection: a pair of legs identified by the end-to-end
/// connection id.
#[derive(Debug, Clone)]
pub struct BridgePair {
    /// End-to-end connection identity.
    pub conn_id: ConnectionId,
    /// Link towards the requester.
    pub upstream: LinkId,
    /// Link towards the destination (absent while the downstream leg is still
    /// being established).
    pub downstream: Option<LinkId>,
    /// Final destination device.
    pub destination: DeviceAddress,
    /// Target service on the destination.
    pub service: String,
    /// The original client's parameters, forwarded unchanged.
    pub client: DeviceInfo,
    /// Forwarded reply-context (result routing).
    pub reply_context: Option<ConnectionId>,
    /// True once the end-to-end PH_OK has passed through.
    pub established: bool,
    /// Bytes relayed through this pair (for the experiments' accounting).
    pub relayed_bytes: u64,
    /// Messages relayed through this pair.
    pub relayed_messages: u64,
}

/// The bridge service state: the capacity-limited pair table.
#[derive(Debug, Clone, Default)]
pub struct BridgeService {
    pairs: std::collections::BTreeMap<ConnectionId, BridgePair>,
    max_connections: usize,
    total_relayed_messages: u64,
    total_relayed_bytes: u64,
    refused: u64,
}

impl BridgeService {
    /// Creates a bridge service with the given capacity.
    pub fn new(max_connections: usize) -> Self {
        BridgeService {
            pairs: std::collections::BTreeMap::new(),
            max_connections,
            total_relayed_messages: 0,
            total_relayed_bytes: 0,
            refused: 0,
        }
    }

    /// Number of active pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no pair is active.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// True if a further pair can be accepted.
    pub fn has_capacity(&self) -> bool {
        self.pairs.len() < self.max_connections
    }

    /// Load as a percentage of capacity (advertised during discovery so that
    /// loaded bridges are de-preferred, §4).
    pub fn load_percent(&self) -> u8 {
        if self.max_connections == 0 {
            return 100;
        }
        ((self.pairs.len() * 100) / self.max_connections).min(100) as u8
    }

    /// Records a refused request (capacity or routing failure).
    pub fn record_refusal(&mut self) {
        self.refused += 1;
    }

    /// Number of refused bridge requests.
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// Total messages relayed by this node.
    pub fn total_relayed_messages(&self) -> u64 {
        self.total_relayed_messages
    }

    /// Total payload bytes relayed by this node.
    pub fn total_relayed_bytes(&self) -> u64 {
        self.total_relayed_bytes
    }

    /// Registers a new pair whose downstream leg is not yet connected.
    pub fn insert_pending(
        &mut self,
        conn_id: ConnectionId,
        upstream: LinkId,
        destination: DeviceAddress,
        service: impl Into<String>,
        client: DeviceInfo,
        reply_context: Option<ConnectionId>,
    ) {
        self.pairs.insert(
            conn_id,
            BridgePair {
                conn_id,
                upstream,
                downstream: None,
                destination,
                service: service.into(),
                client,
                reply_context,
                established: false,
                relayed_bytes: 0,
                relayed_messages: 0,
            },
        );
    }

    /// Looks up a pair by connection id.
    pub fn get(&self, conn_id: ConnectionId) -> Option<&BridgePair> {
        self.pairs.get(&conn_id)
    }

    /// Mutable lookup by connection id.
    pub fn get_mut(&mut self, conn_id: ConnectionId) -> Option<&mut BridgePair> {
        self.pairs.get_mut(&conn_id)
    }

    /// Finds the pair one of whose legs is `link`, together with which side
    /// the link is.
    pub fn by_link(&self, link: LinkId) -> Option<(&BridgePair, BridgeSide)> {
        self.pairs.values().find_map(|p| {
            if p.upstream == link {
                Some((p, BridgeSide::Upstream))
            } else if p.downstream == Some(link) {
                Some((p, BridgeSide::Downstream))
            } else {
                None
            }
        })
    }

    /// The link on the opposite side of `link` within its pair, if the pair
    /// is complete.
    pub fn relay_target(&self, link: LinkId) -> Option<(ConnectionId, LinkId, BridgeSide)> {
        let (pair, side) = self.by_link(link)?;
        let other = match side {
            BridgeSide::Upstream => pair.downstream?,
            BridgeSide::Downstream => pair.upstream,
        };
        Some((pair.conn_id, other, side))
    }

    /// Accounts one relayed payload.
    pub fn record_relay(&mut self, conn_id: ConnectionId, bytes: usize) {
        if let Some(pair) = self.pairs.get_mut(&conn_id) {
            pair.relayed_messages += 1;
            pair.relayed_bytes += bytes as u64;
        }
        self.total_relayed_messages += 1;
        self.total_relayed_bytes += bytes as u64;
    }

    /// Removes a pair, returning it.
    pub fn remove(&mut self, conn_id: ConnectionId) -> Option<BridgePair> {
        self.pairs.remove(&conn_id)
    }

    /// Connection ids of every active pair.
    pub fn pair_ids(&self) -> Vec<ConnectionId> {
        self.pairs.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MobilityClass;
    use simnet::{NodeId, RadioTech};

    fn addr(n: u64) -> DeviceAddress {
        DeviceAddress::from_node_raw(n)
    }

    fn conn(n: u64, c: u32) -> ConnectionId {
        ConnectionId::new(addr(n), c)
    }

    fn client() -> DeviceInfo {
        DeviceInfo::new(
            NodeId::from_raw(1),
            "client",
            MobilityClass::Dynamic,
            &[RadioTech::Bluetooth],
        )
    }

    fn service_with_one_pair() -> (BridgeService, ConnectionId) {
        let mut b = BridgeService::new(4);
        let id = conn(1, 0);
        b.insert_pending(id, LinkId(10), addr(9), "echo", client(), None);
        (b, id)
    }

    #[test]
    fn capacity_and_load() {
        let mut b = BridgeService::new(2);
        assert!(b.has_capacity());
        assert_eq!(b.load_percent(), 0);
        b.insert_pending(conn(1, 0), LinkId(1), addr(9), "s", client(), None);
        assert_eq!(b.load_percent(), 50);
        b.insert_pending(conn(1, 1), LinkId(2), addr(9), "s", client(), None);
        assert!(!b.has_capacity());
        assert_eq!(b.load_percent(), 100);
        b.record_refusal();
        assert_eq!(b.refused(), 1);
        let zero_cap = BridgeService::new(0);
        assert_eq!(zero_cap.load_percent(), 100);
    }

    #[test]
    fn pending_pair_has_no_relay_target_until_downstream_connects() {
        let (mut b, id) = service_with_one_pair();
        assert!(b.relay_target(LinkId(10)).is_none());
        b.get_mut(id).unwrap().downstream = Some(LinkId(20));
        let (cid, other, side) = b.relay_target(LinkId(10)).unwrap();
        assert_eq!(cid, id);
        assert_eq!(other, LinkId(20));
        assert_eq!(side, BridgeSide::Upstream);
        let (_, other, side) = b.relay_target(LinkId(20)).unwrap();
        assert_eq!(other, LinkId(10));
        assert_eq!(side, BridgeSide::Downstream);
        assert!(b.relay_target(LinkId(99)).is_none());
    }

    #[test]
    fn by_link_identifies_sides() {
        let (mut b, id) = service_with_one_pair();
        b.get_mut(id).unwrap().downstream = Some(LinkId(20));
        assert_eq!(b.by_link(LinkId(10)).unwrap().1, BridgeSide::Upstream);
        assert_eq!(b.by_link(LinkId(20)).unwrap().1, BridgeSide::Downstream);
        assert!(b.by_link(LinkId(5)).is_none());
        assert_eq!(BridgeSide::Upstream.other(), BridgeSide::Downstream);
        assert_eq!(BridgeSide::Downstream.other(), BridgeSide::Upstream);
    }

    #[test]
    fn relay_accounting() {
        let (mut b, id) = service_with_one_pair();
        b.record_relay(id, 100);
        b.record_relay(id, 50);
        // Unknown pair still counts towards node totals (defensive).
        b.record_relay(conn(2, 0), 10);
        let pair = b.get(id).unwrap();
        assert_eq!(pair.relayed_messages, 2);
        assert_eq!(pair.relayed_bytes, 150);
        assert_eq!(b.total_relayed_messages(), 3);
        assert_eq!(b.total_relayed_bytes(), 160);
    }

    #[test]
    fn remove_frees_capacity() {
        let (mut b, id) = service_with_one_pair();
        assert_eq!(b.len(), 1);
        assert_eq!(b.pair_ids(), vec![id]);
        let pair = b.remove(id).unwrap();
        assert_eq!(pair.destination, addr(9));
        assert!(b.is_empty());
        assert!(b.remove(id).is_none());
    }
}
