//! Configuration of a PeerHood node.
//!
//! The defaults follow the values used or implied by the thesis: a Bluetooth
//! inquiry cycle slightly over ten seconds, a longer service-checking
//! interval for already-known devices (§3.5), the 230 link-quality threshold
//! with three tolerated low samples before handover (§5.2.1), and a bridge
//! service that is enabled on every device but capacity-limited to avoid the
//! "bottle neck" situation (§4).

use serde::{Deserialize, Serialize};
use simnet::{RadioTech, SimDuration, QUALITY_LOW_THRESHOLD};

use crate::device::MobilityClass;

/// Which device-discovery algorithm the daemon runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiscoveryMode {
    /// Only devices inside the node's own radio coverage are stored (the
    /// original PeerHood behaviour before neighbourhood fetching).
    DirectOnly,
    /// Direct neighbours plus their direct neighbours (the previous PeerHood
    /// version's neighbourhood-information fetching, §3.1): a two-jump
    /// vision.
    TwoHop,
    /// The thesis' dynamic device discovery: the full storage is propagated
    /// with bridge addresses and jump counts, giving total environment
    /// awareness (§3.3).
    Dynamic,
}

impl DiscoveryMode {
    /// Maximum jump count accepted from a neighbour report (`None` means
    /// unlimited).
    pub fn max_learned_jumps(self) -> Option<u8> {
        match self {
            DiscoveryMode::DirectOnly => Some(0),
            // Accept only the responder's direct neighbours: they end up at
            // one jump from us, a two-hop vision in total.
            DiscoveryMode::TwoHop => Some(1),
            DiscoveryMode::Dynamic => None,
        }
    }
}

impl std::fmt::Display for DiscoveryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DiscoveryMode::DirectOnly => "direct-only",
            DiscoveryMode::TwoHop => "two-hop",
            DiscoveryMode::Dynamic => "dynamic",
        };
        f.write_str(s)
    }
}

/// Device-discovery tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoveryConfig {
    /// Discovery algorithm.
    pub mode: DiscoveryMode,
    /// Pause between consecutive inquiry cycles of one plugin.
    pub inquiry_interval: SimDuration,
    /// How often the full information of an already-known device is
    /// re-fetched (the "service checking interval" of §3.5).
    pub service_check_interval: SimDuration,
    /// Number of consecutive inquiry cycles a direct neighbour may miss
    /// before it is removed from the storage (the "make older" step of
    /// Fig. 3.12).
    pub max_missed_loops: u32,
    /// Indirectly-learned devices are dropped if they have not been
    /// re-reported within this time.
    pub stale_timeout: SimDuration,
    /// Maximum jump count exported in inquiry responses (bounds storage and
    /// transfer size in very large networks).
    pub max_export_jumps: u8,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            mode: DiscoveryMode::Dynamic,
            inquiry_interval: SimDuration::from_secs(12),
            service_check_interval: SimDuration::from_secs(60),
            max_missed_loops: 5,
            stale_timeout: SimDuration::from_secs(180),
            max_export_jumps: 8,
        }
    }
}

/// Connection-quality monitoring tuning (the HandoverThread's state 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// How often the quality of each monitored connection is sampled.
    pub interval: SimDuration,
    /// The "signal low" threshold (the thesis uses 230).
    pub quality_threshold: u8,
    /// Number of consecutive low samples tolerated before handover starts
    /// (the thesis uses 3: the fourth low sample triggers).
    pub low_count_limit: u32,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            interval: SimDuration::from_secs(1),
            quality_threshold: QUALITY_LOW_THRESHOLD,
            low_count_limit: 3,
        }
    }
}

/// Handover behaviour (Ch. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HandoverConfig {
    /// Master switch for the HandoverThread.
    pub enabled: bool,
    /// Maximum routing-handover attempts per connection before giving up and
    /// falling back to service reconnection (§5.2.2).
    pub max_routing_attempts: u32,
    /// Whether the middleware may reconnect to a *different* provider of the
    /// same service when routing handover is impossible.
    pub allow_service_reconnection: bool,
    /// What the replacement route aims at: the thesis' implementation
    /// re-routes towards the current link peer (which produces the chain
    /// growth of Fig. 5.6/5.7), the default re-routes towards the final
    /// destination.
    pub target: crate::handover::HandoverTarget,
    /// Maximum number of reconnect attempts made by a server trying to
    /// return results to a disconnected client (result routing, §5.3).
    pub max_reply_attempts: u32,
    /// Delay between those reconnect attempts.
    pub reply_retry_interval: SimDuration,
    /// How long a closed-but-revivable connection record (kept for result
    /// routing and reconnection) is retained once fully idle. `None` (the
    /// default) keeps records forever — the original behaviour; setting a
    /// retention bounds the working set under long churn via the same
    /// epoch-compaction recipe the simulator uses for retired links.
    pub closed_retention: Option<SimDuration>,
}

impl Default for HandoverConfig {
    fn default() -> Self {
        HandoverConfig {
            enabled: true,
            max_routing_attempts: 2,
            allow_service_reconnection: true,
            target: crate::handover::HandoverTarget::FinalDestination,
            max_reply_attempts: 5,
            reply_retry_interval: SimDuration::from_secs(15),
            closed_retention: None,
        }
    }
}

/// Bridge (interconnection) service behaviour (Ch. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BridgeConfig {
    /// Whether the hidden bridge service runs on this device. The thesis
    /// suggests switching it off on battery-constrained "dynamic" devices.
    pub enabled: bool,
    /// Maximum number of relayed connection pairs accepted simultaneously.
    pub max_connections: usize,
}

impl Default for BridgeConfig {
    fn default() -> Self {
        BridgeConfig {
            enabled: true,
            max_connections: 8,
        }
    }
}

/// Protocol-hardening behaviour (the defences exercised by the
/// `simnet::adversary` hostile-city experiments). Every defence is
/// individually toggleable and **off by default** — the default stack is
/// byte-identical to a build without this module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SecurityConfig {
    /// Protocol sanity checks: reject connection requests whose connection
    /// id was allocated by a different device, reply contexts that do not
    /// refer back to us, duplicate session Accepts and frames whose
    /// connection id does not match the link they arrive on.
    pub sanity_checks: bool,
    /// Reporter-reputation weighting: neighbour reports from devices that
    /// have produced security rejections (or dead bridge routes) are
    /// discounted and eventually ignored.
    pub reputation: bool,
    /// Security rejections a reporter may accrue before its neighbour
    /// reports are ignored entirely (only meaningful with `reputation`).
    pub reputation_limit: u32,
    /// Keyed frame authentication: every frame carries a 16-byte
    /// seq+MAC trailer; frames failing verification (forged, replayed or
    /// tampered) are dropped before decoding.
    pub frame_auth: bool,
    /// Shared authentication key (a deployment would provision real key
    /// material; the simulation models the cost and the rejection
    /// behaviour, not the cryptography).
    pub auth_key: u64,
}

impl SecurityConfig {
    /// Every defence off (the default; the thesis' stack).
    pub fn off() -> Self {
        SecurityConfig {
            sanity_checks: false,
            reputation: false,
            reputation_limit: 3,
            frame_auth: false,
            auth_key: 0x5EC0_4EED_0000_0001,
        }
    }

    /// Stateless/stateful protocol checks plus reporter reputation, but no
    /// per-frame authentication cost.
    pub fn sanity() -> Self {
        SecurityConfig {
            sanity_checks: true,
            reputation: true,
            ..SecurityConfig::off()
        }
    }

    /// All defences on, including the keyed frame-auth trailer.
    pub fn auth() -> Self {
        SecurityConfig {
            frame_auth: true,
            ..SecurityConfig::sanity()
        }
    }

    /// Whether any defence that keeps per-node state is enabled.
    pub fn any_enabled(&self) -> bool {
        self.sanity_checks || self.reputation || self.frame_auth
    }
}

impl Default for SecurityConfig {
    fn default() -> Self {
        SecurityConfig::off()
    }
}

/// Full configuration of a PeerHood node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerHoodConfig {
    /// Human-readable device name.
    pub device_name: String,
    /// Mobility class advertised by the daemon (§3.4.3).
    pub mobility: MobilityClass,
    /// Radio plugins to start, in preference order.
    pub techs: Vec<RadioTech>,
    /// Discovery tuning.
    pub discovery: DiscoveryConfig,
    /// Connection-monitoring tuning.
    pub monitor: MonitorConfig,
    /// Handover behaviour.
    pub handover: HandoverConfig,
    /// Bridge service behaviour.
    pub bridge: BridgeConfig,
    /// Resilience pipeline (circuit breakers, backpressure, admission
    /// control); every layer disabled by default.
    pub resilience: crate::resilience::ResilienceConfig,
    /// Protocol hardening (sanity checks, reporter reputation, frame
    /// authentication); every defence disabled by default.
    pub security: SecurityConfig,
}

impl PeerHoodConfig {
    /// A configuration with all defaults for the given name and mobility
    /// class, using Bluetooth only (the thesis' implementation choice).
    pub fn new(device_name: impl Into<String>, mobility: MobilityClass) -> Self {
        PeerHoodConfig {
            device_name: device_name.into(),
            mobility,
            techs: vec![RadioTech::Bluetooth],
            discovery: DiscoveryConfig::default(),
            monitor: MonitorConfig::default(),
            handover: HandoverConfig::default(),
            bridge: BridgeConfig::default(),
            resilience: crate::resilience::ResilienceConfig::default(),
            security: SecurityConfig::default(),
        }
    }

    /// Typical configuration for a mains-powered fixed terminal.
    pub fn static_device(device_name: impl Into<String>) -> Self {
        PeerHoodConfig::new(device_name, MobilityClass::Static)
    }

    /// Typical configuration for a battery-powered mobile terminal.
    pub fn mobile_device(device_name: impl Into<String>) -> Self {
        let mut cfg = PeerHoodConfig::new(device_name, MobilityClass::Dynamic);
        // The thesis discusses disabling the bridge service on dynamic
        // devices; the default keeps it on but a scenario can flip it.
        cfg.bridge.max_connections = 4;
        cfg
    }

    /// Replaces the discovery mode (builder-style).
    pub fn with_discovery_mode(mut self, mode: DiscoveryMode) -> Self {
        self.discovery.mode = mode;
        self
    }

    /// Replaces the plugin list (builder-style).
    pub fn with_techs(mut self, techs: &[RadioTech]) -> Self {
        self.techs = techs.to_vec();
        self
    }

    /// Enables or disables the bridge service (builder-style).
    pub fn with_bridge_enabled(mut self, enabled: bool) -> Self {
        self.bridge.enabled = enabled;
        self
    }

    /// Enables or disables handover (builder-style).
    pub fn with_handover_enabled(mut self, enabled: bool) -> Self {
        self.handover.enabled = enabled;
        self
    }

    /// Replaces the resilience-pipeline configuration (builder-style).
    pub fn with_resilience(mut self, resilience: crate::resilience::ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Replaces the protocol-hardening configuration (builder-style).
    pub fn with_security(mut self, security: SecurityConfig) -> Self {
        self.security = security;
        self
    }
}

impl Default for PeerHoodConfig {
    fn default() -> Self {
        PeerHoodConfig::new("peerhood-device", MobilityClass::Dynamic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_thesis() {
        let cfg = PeerHoodConfig::default();
        assert_eq!(cfg.monitor.quality_threshold, 230);
        assert_eq!(cfg.monitor.low_count_limit, 3);
        assert_eq!(cfg.discovery.mode, DiscoveryMode::Dynamic);
        assert_eq!(cfg.techs, vec![RadioTech::Bluetooth]);
        assert!(cfg.bridge.enabled);
        assert!(cfg.handover.enabled);
    }

    #[test]
    fn discovery_mode_jump_limits() {
        assert_eq!(DiscoveryMode::DirectOnly.max_learned_jumps(), Some(0));
        assert_eq!(DiscoveryMode::TwoHop.max_learned_jumps(), Some(1));
        assert_eq!(DiscoveryMode::Dynamic.max_learned_jumps(), None);
    }

    #[test]
    fn builders_modify_the_right_fields() {
        let cfg = PeerHoodConfig::static_device("pc")
            .with_discovery_mode(DiscoveryMode::TwoHop)
            .with_techs(&[RadioTech::Bluetooth, RadioTech::Gprs])
            .with_bridge_enabled(false)
            .with_handover_enabled(false);
        assert_eq!(cfg.mobility, MobilityClass::Static);
        assert_eq!(cfg.discovery.mode, DiscoveryMode::TwoHop);
        assert_eq!(cfg.techs.len(), 2);
        assert!(!cfg.bridge.enabled);
        assert!(!cfg.handover.enabled);
    }

    #[test]
    fn mobile_profile_limits_bridge_capacity() {
        let mobile = PeerHoodConfig::mobile_device("phone");
        let fixed = PeerHoodConfig::static_device("pc");
        assert!(mobile.bridge.max_connections < fixed.bridge.max_connections);
        assert_eq!(mobile.mobility, MobilityClass::Dynamic);
    }

    #[test]
    fn security_tiers_nest() {
        let off = SecurityConfig::off();
        assert!(!off.any_enabled(), "the default stack runs no defence");
        assert_eq!(SecurityConfig::default(), off);
        let sanity = SecurityConfig::sanity();
        assert!(sanity.sanity_checks && sanity.reputation && !sanity.frame_auth);
        let auth = SecurityConfig::auth();
        assert!(auth.sanity_checks && auth.reputation && auth.frame_auth);
        assert_eq!(PeerHoodConfig::default().with_security(auth.clone()).security, auth);
    }

    #[test]
    fn display_of_modes() {
        assert_eq!(DiscoveryMode::Dynamic.to_string(), "dynamic");
        assert_eq!(DiscoveryMode::DirectOnly.to_string(), "direct-only");
        assert_eq!(DiscoveryMode::TwoHop.to_string(), "two-hop");
    }
}
