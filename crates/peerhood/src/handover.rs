//! Per-connection handover state (the HandoverThread of §5.2).
//!
//! The thesis' HandoverThread has three states (Fig. 5.5):
//!
//! * **State 0** — walk the device list and find, among the direct
//!   neighbours, the ones that report the connected device as *their* direct
//!   neighbour; remember the best-quality alternative route.
//! * **State 1** — monitor the link quality of the existing connection; after
//!   more than three consecutive "signal low" samples, move to state 2.
//! * **State 2** — create a new bridge connection through the stored route,
//!   and once it is confirmed substitute the old connection and notify the
//!   application through the `ChangeConnection` callback.
//!
//! This module holds the pure per-connection state machine; the node glue in
//! [`crate::node`] drives it from the monitor timer and the connection
//! events.

use serde::{Deserialize, Serialize};

use crate::ids::DeviceAddress;
use crate::quality::LowSignalCounter;

/// What the handover machinery aims the replacement route at.
///
/// The thesis' implementation re-routes towards the *current link peer*,
/// which is what produces the "monitoring limitation" chains of Fig. 5.6/5.7.
/// Re-routing towards the final destination avoids the problem; experiment
/// E11 compares the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum HandoverTarget {
    /// Re-route towards the device the degrading link currently points at
    /// (the thesis' behaviour; chains can grow).
    LinkPeer,
    /// Re-route towards the connection's final destination (chains stay
    /// minimal).
    #[default]
    FinalDestination,
}

/// A candidate alternative route found in state 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HandoverCandidate {
    /// The direct neighbour to use as bridge.
    pub bridge: DeviceAddress,
    /// Our measured quality towards the bridge.
    pub quality_to_bridge: u8,
    /// The quality the bridge reported towards the target.
    pub bridge_to_target: u8,
}

impl HandoverCandidate {
    /// Combined score used to pick the best candidate (the sum rule of
    /// Fig. 3.8 applied to the two hops).
    pub fn score(&self) -> u32 {
        self.quality_to_bridge as u32 + self.bridge_to_target as u32
    }
}

/// The state-machine phase a monitored connection is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HandoverPhase {
    /// States 0+1: tracking candidates and watching quality.
    Monitoring,
    /// State 2: a replacement bridge connection is being established.
    Switching,
}

/// Handover monitoring state attached to an outgoing connection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HandoverMonitor {
    /// Quality watcher (state 1).
    pub counter: LowSignalCounter,
    /// Best known alternative route (state 0).
    pub candidate: Option<HandoverCandidate>,
    /// Routing-handover attempts performed so far on this connection.
    pub attempts: u32,
    /// Current phase.
    pub phase: HandoverPhase,
    /// Target semantics in force.
    pub target: HandoverTarget,
    /// Opaque key of the inputs the candidate was last refreshed from
    /// (storage generation, target, excluded bridge). Lets the monitoring
    /// pass skip recomputing the candidate list when nothing it derives
    /// from has changed — the steady-state common case. `None` until the
    /// first refresh; dies with the monitor, so a replacement monitor
    /// always recomputes.
    refresh_key: Option<(u64, DeviceAddress, Option<DeviceAddress>)>,
}

impl HandoverMonitor {
    /// Creates a monitor with the given threshold, tolerated low count and
    /// target semantics.
    pub fn new(quality_threshold: u8, low_count_limit: u32, target: HandoverTarget) -> Self {
        HandoverMonitor {
            counter: LowSignalCounter::new(quality_threshold, low_count_limit),
            candidate: None,
            attempts: 0,
            phase: HandoverPhase::Monitoring,
            target,
            refresh_key: None,
        }
    }

    /// The key of the last refresh, if any (see
    /// [`HandoverMonitor::note_refreshed`]).
    pub fn refresh_key(&self) -> Option<(u64, DeviceAddress, Option<DeviceAddress>)> {
        self.refresh_key
    }

    /// Records that the candidate list was just recomputed from inputs
    /// identified by `key`; while the caller observes the same key it may
    /// skip the recomputation ([`HandoverMonitor::refresh_candidates`] is a
    /// pure function of its inputs).
    pub fn note_refreshed(&mut self, key: (u64, DeviceAddress, Option<DeviceAddress>)) {
        self.refresh_key = Some(key);
    }

    /// State 0: refresh the best candidate from the list produced by
    /// [`crate::storage::DeviceStorage::handover_candidates`], excluding the
    /// bridge currently in use (there is no point re-routing through it).
    pub fn refresh_candidates(&mut self, candidates: &[(DeviceAddress, u8, u8)], exclude: Option<DeviceAddress>) {
        self.candidate = candidates
            .iter()
            .filter(|(bridge, _, _)| Some(*bridge) != exclude)
            .map(|(bridge, ours, theirs)| HandoverCandidate {
                bridge: *bridge,
                quality_to_bridge: *ours,
                bridge_to_target: *theirs,
            })
            .max_by_key(HandoverCandidate::score);
    }

    /// State 1: record a quality sample. Returns `true` if the connection has
    /// degraded past the tolerance and a switch should start (provided a
    /// candidate exists and no switch is already running).
    pub fn record_quality(&mut self, quality: Option<u8>) -> bool {
        if self.phase == HandoverPhase::Switching {
            return false;
        }
        match quality {
            Some(q) => self.counter.record(q),
            None => self.counter.record_missing(),
        }
    }

    /// Moves to state 2, consuming the stored candidate. Returns the
    /// candidate to switch through, or `None` if none is known.
    pub fn begin_switch(&mut self) -> Option<HandoverCandidate> {
        if self.phase == HandoverPhase::Switching {
            return None;
        }
        let candidate = self.candidate?;
        self.phase = HandoverPhase::Switching;
        self.attempts += 1;
        Some(candidate)
    }

    /// Called when the replacement connection was confirmed: return to
    /// monitoring with a cleared low counter.
    pub fn switch_succeeded(&mut self) {
        self.phase = HandoverPhase::Monitoring;
        self.counter.reset();
        self.candidate = None;
    }

    /// Called when the replacement connection could not be established:
    /// return to monitoring (the old link may still limp along, or the
    /// disconnection path will take over).
    pub fn switch_failed(&mut self) {
        self.phase = HandoverPhase::Monitoring;
    }

    /// True while a switch is in progress.
    pub fn is_switching(&self) -> bool {
        self.phase == HandoverPhase::Switching
    }

    /// True once the configured number of routing attempts has been used up.
    pub fn attempts_exhausted(&self, max_attempts: u32) -> bool {
        self.attempts >= max_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> DeviceAddress {
        DeviceAddress::from_node_raw(n)
    }

    fn monitor() -> HandoverMonitor {
        HandoverMonitor::new(230, 3, HandoverTarget::FinalDestination)
    }

    #[test]
    fn candidate_selection_prefers_best_combined_quality_and_excludes_current_bridge() {
        let mut m = monitor();
        let candidates = vec![(addr(1), 240, 230), (addr(2), 250, 252), (addr(3), 255, 255)];
        m.refresh_candidates(&candidates, Some(addr(3)));
        let c = m.candidate.unwrap();
        assert_eq!(c.bridge, addr(2));
        assert_eq!(c.score(), 502);
        // Without the exclusion the best is device 3.
        m.refresh_candidates(&candidates, None);
        assert_eq!(m.candidate.unwrap().bridge, addr(3));
        // No candidates at all.
        m.refresh_candidates(&[], None);
        assert!(m.candidate.is_none());
    }

    #[test]
    fn quality_monitoring_triggers_after_tolerance() {
        let mut m = monitor();
        assert!(!m.record_quality(Some(240)));
        assert!(!m.record_quality(Some(229)));
        assert!(!m.record_quality(Some(220)));
        assert!(!m.record_quality(Some(210)));
        // Fourth consecutive low sample exceeds the limit of 3.
        assert!(m.record_quality(Some(205)));
    }

    #[test]
    fn missing_samples_count_as_low() {
        let mut m = monitor();
        for _ in 0..3 {
            assert!(!m.record_quality(None));
        }
        assert!(m.record_quality(None));
    }

    #[test]
    fn switch_lifecycle() {
        let mut m = monitor();
        m.refresh_candidates(&[(addr(5), 240, 245)], None);
        let c = m.begin_switch().unwrap();
        assert_eq!(c.bridge, addr(5));
        assert!(m.is_switching());
        assert_eq!(m.attempts, 1);
        // While switching, further low samples do not re-trigger.
        assert!(!m.record_quality(Some(10)));
        // A second begin_switch while switching is refused.
        assert!(m.begin_switch().is_none());
        m.switch_succeeded();
        assert!(!m.is_switching());
        assert_eq!(m.counter.consecutive_low(), 0);
        assert!(m.candidate.is_none());
    }

    #[test]
    fn switch_without_candidate_is_refused() {
        let mut m = monitor();
        assert!(m.begin_switch().is_none());
        assert!(!m.is_switching());
        assert_eq!(m.attempts, 0);
    }

    #[test]
    fn failed_switch_returns_to_monitoring_and_counts_attempt() {
        let mut m = monitor();
        m.refresh_candidates(&[(addr(5), 240, 245)], None);
        m.begin_switch().unwrap();
        m.switch_failed();
        assert!(!m.is_switching());
        assert_eq!(m.attempts, 1);
        assert!(!m.attempts_exhausted(2));
        m.refresh_candidates(&[(addr(6), 240, 245)], None);
        m.begin_switch().unwrap();
        assert!(m.attempts_exhausted(2));
    }

    #[test]
    fn default_target_is_final_destination() {
        assert_eq!(HandoverTarget::default(), HandoverTarget::FinalDestination);
        let m = HandoverMonitor::new(230, 3, HandoverTarget::LinkPeer);
        assert_eq!(m.target, HandoverTarget::LinkPeer);
    }
}
