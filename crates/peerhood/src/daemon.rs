//! The PeerHood daemon: device storage, service registry and discovery
//! plugins (Fig. 2.3).
//!
//! The daemon is the always-running process that searches for remote devices
//! and their services, stores what it learns, and answers other devices'
//! inquiries with its own information plus its exported neighbourhood
//! (Fig. 3.5). The library accesses it for device and service lists. In the
//! reproduction the daemon is a plain struct owned by the node; the inquiry
//! and advertisement "threads" are timer-driven radio operations performed by
//! the node glue, which calls into the methods here for all protocol
//! decisions.

use simnet::{RadioTech, SimTime};

use crate::config::PeerHoodConfig;
use crate::device::DeviceInfo;
use crate::error::PeerHoodError;
use crate::ids::DeviceAddress;
use crate::plugin::PluginSet;
use crate::proto::{Message, NeighborRecord};
use crate::service::{ServiceInfo, ServiceRegistry};
use crate::storage::{DeviceStorage, StorageStats};

/// The hidden service name under which the bridge service is registered.
pub const BRIDGE_SERVICE_NAME: &str = "__peerhood_bridge__";

/// The daemon state of one PeerHood node.
#[derive(Debug, Clone)]
pub struct Daemon {
    info: DeviceInfo,
    storage: DeviceStorage,
    registry: ServiceRegistry,
    plugins: PluginSet,
}

impl Daemon {
    /// Creates a daemon for the device described by `info`, using the
    /// thresholds from `config`.
    pub fn new(info: DeviceInfo, config: &PeerHoodConfig) -> Self {
        let mut registry = ServiceRegistry::new();
        if config.bridge.enabled {
            // The hidden bridge service is part of every PeerHood package and
            // is started with the daemon (§4).
            registry
                .register(ServiceInfo::new(BRIDGE_SERVICE_NAME, "hidden", 1))
                .expect("bridge service registers into an empty registry");
        }
        let mut storage = DeviceStorage::new(info.address, config.monitor.quality_threshold);
        // Arm reporter reputation when the security tier asks for it: the
        // limit lives in the storage (next to the penalty counts it gates)
        // so route integration can consult it without a config reference.
        storage.set_reputation_limit(config.security.reputation.then_some(config.security.reputation_limit));
        Daemon {
            storage,
            registry,
            plugins: PluginSet::new(&config.techs),
            info,
        }
    }

    /// The local device description advertised to the network.
    pub fn info(&self) -> &DeviceInfo {
        &self.info
    }

    /// Read access to the device storage.
    pub fn storage(&self) -> &DeviceStorage {
        &self.storage
    }

    /// Mutable access to the device storage.
    pub fn storage_mut(&mut self) -> &mut DeviceStorage {
        &mut self.storage
    }

    /// Read access to the local service registry.
    pub fn registry(&self) -> &ServiceRegistry {
        &self.registry
    }

    /// Registers an application service (it becomes discoverable network
    /// wide).
    ///
    /// # Errors
    ///
    /// Returns an error if a service with the same name already exists.
    pub fn register_service(&mut self, service: ServiceInfo) -> Result<(), PeerHoodError> {
        self.registry.register(service)
    }

    /// Unregisters an application service.
    pub fn unregister_service(&mut self, name: &str) -> Option<ServiceInfo> {
        self.registry.unregister(name)
    }

    /// Services to advertise in inquiry responses: everything registered
    /// except the hidden bridge service.
    pub fn advertised_services(&self) -> Vec<ServiceInfo> {
        self.registry
            .list()
            .iter()
            .filter(|s| s.name != BRIDGE_SERVICE_NAME)
            .cloned()
            .collect()
    }

    /// Read access to the plugin set.
    pub fn plugins(&self) -> &PluginSet {
        &self.plugins
    }

    /// Mutable access to the plugin set.
    pub fn plugins_mut(&mut self) -> &mut PluginSet {
        &mut self.plugins
    }

    /// Storage statistics (for the experiments).
    pub fn stats(&self) -> StorageStats {
        self.storage.stats()
    }

    /// Builds the response to a received [`Message::InquiryRequest`]: own
    /// device information, advertised services and the exported
    /// neighbourhood, plus the current bridge load (§4's "bottle neck"
    /// mitigation).
    pub fn build_inquiry_response(&self, max_export_jumps: u8, bridge_load_percent: u8) -> Message {
        Message::InquiryResponse {
            device: self.info.clone(),
            services: self.advertised_services(),
            neighbors: self.storage.export_neighbors(max_export_jumps),
            bridge_load_percent,
        }
    }

    /// Processes a received [`Message::InquiryResponse`] from a device found
    /// at `quality` during the last inquiry: stores the device as a direct
    /// neighbour and integrates its exported neighbourhood (Fig. 3.13).
    /// Returns the addresses of newly learned devices (the responder first
    /// when it was unknown), which the node fans out as
    /// `DeviceDiscovered` events.
    ///
    /// The quality used for route comparison is de-rated by the advertised
    /// bridge load (a fully loaded bridge loses up to half of its advertised
    /// quality) so that loaded bridges are avoided.
    #[allow(clippy::too_many_arguments)]
    pub fn process_inquiry_response(
        &mut self,
        device: DeviceInfo,
        services: Vec<ServiceInfo>,
        neighbors: &[NeighborRecord],
        bridge_load_percent: u8,
        quality: u8,
        config: &PeerHoodConfig,
        now: SimTime,
    ) -> Vec<DeviceAddress> {
        let effective_quality = Self::derate_quality(quality, bridge_load_percent);
        let mobility = device.mobility;
        let address = device.address;
        let mut added = Vec::new();
        if self.storage.upsert_direct(device, effective_quality, services, now) {
            added.push(address);
        }
        added.extend(self.storage.integrate_neighbor_report(
            address,
            effective_quality,
            mobility,
            neighbors,
            config.discovery.mode,
            now,
        ));
        added
    }

    /// De-rates a measured quality by the peer's advertised bridge load: at
    /// 100 % load the advertised quality drops by half.
    pub fn derate_quality(quality: u8, bridge_load_percent: u8) -> u8 {
        let load = bridge_load_percent.min(100) as u32;
        let q = quality as u32;
        (q - q * load / 200) as u8
    }

    /// Completes one inquiry cycle for `tech`: ages the storage with the set
    /// of devices that answered and returns the removed addresses.
    pub fn complete_cycle(&mut self, tech: RadioTech, config: &PeerHoodConfig, now: SimTime) -> Vec<DeviceAddress> {
        let responders = match self.plugins.get_mut(tech) {
            Some(plugin) => plugin.finish_cycle(),
            None => Vec::new(),
        };
        self.storage.age_cycle(
            &responders,
            now,
            config.discovery.max_missed_loops,
            config.discovery.stale_timeout,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiscoveryMode;
    use crate::device::MobilityClass;
    use simnet::NodeId;

    fn config() -> PeerHoodConfig {
        PeerHoodConfig::new("test", MobilityClass::Static)
    }

    fn info(n: u64) -> DeviceInfo {
        DeviceInfo::new(
            NodeId::from_raw(n),
            format!("d{n}"),
            MobilityClass::Static,
            &[RadioTech::Bluetooth],
        )
    }

    fn daemon() -> Daemon {
        Daemon::new(info(0), &config())
    }

    #[test]
    fn bridge_service_is_hidden_but_registered() {
        let d = daemon();
        assert!(d.registry().find(BRIDGE_SERVICE_NAME).is_some());
        assert!(d.advertised_services().is_empty());
        // Disabling the bridge omits the hidden service.
        let no_bridge = Daemon::new(info(0), &config().with_bridge_enabled(false));
        assert!(no_bridge.registry().find(BRIDGE_SERVICE_NAME).is_none());
    }

    #[test]
    fn register_and_advertise_services() {
        let mut d = daemon();
        d.register_service(ServiceInfo::new("echo", "v1", 10)).unwrap();
        assert_eq!(d.advertised_services().len(), 1);
        assert!(d.register_service(ServiceInfo::new("echo", "v2", 11)).is_err());
        assert!(d.unregister_service("echo").is_some());
        assert!(d.advertised_services().is_empty());
    }

    #[test]
    fn inquiry_response_contains_storage_export() {
        let mut d = daemon();
        d.register_service(ServiceInfo::new("echo", "v1", 10)).unwrap();
        d.storage_mut()
            .upsert_direct(info(2), 240, vec![ServiceInfo::new("print", "", 3)], SimTime::ZERO);
        match d.build_inquiry_response(8, 25) {
            Message::InquiryResponse {
                device,
                services,
                neighbors,
                bridge_load_percent,
            } => {
                assert_eq!(device.address, info(0).address);
                assert_eq!(services.len(), 1);
                assert_eq!(neighbors.len(), 1);
                assert_eq!(neighbors[0].info.address, info(2).address);
                assert_eq!(bridge_load_percent, 25);
            }
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn process_inquiry_response_updates_storage() {
        let mut d = daemon();
        let cfg = config();
        let responder = info(1);
        let neighbors = vec![NeighborRecord {
            info: info(2),
            jumps: 0,
            hop_qualities: vec![250],
            services: vec![].into(),
        }];
        let added = d.process_inquiry_response(
            responder.clone(),
            vec![ServiceInfo::new("echo", "", 1)],
            &neighbors,
            0,
            245,
            &cfg,
            SimTime::ZERO,
        );
        assert_eq!(added, vec![responder.address, info(2).address]);
        assert_eq!(d.stats().known_devices, 2);
        let stored = d.storage().get(responder.address).unwrap();
        assert!(stored.is_direct());
        assert!(stored.offers("echo"));
        assert_eq!(d.storage().get(info(2).address).unwrap().route.jumps, 1);
    }

    #[test]
    fn quality_derating_by_bridge_load() {
        assert_eq!(Daemon::derate_quality(240, 0), 240);
        assert_eq!(Daemon::derate_quality(240, 100), 120);
        assert_eq!(Daemon::derate_quality(240, 50), 180);
        assert_eq!(Daemon::derate_quality(240, 255), 120);
        assert_eq!(Daemon::derate_quality(0, 100), 0);
    }

    #[test]
    fn loaded_bridges_influence_route_choice() {
        let mut d = daemon();
        let mut cfg = config();
        cfg.discovery.mode = DiscoveryMode::Dynamic;
        // Two potential bridges report the same target with identical raw
        // quality, but one is fully loaded.
        let target = NeighborRecord {
            info: info(9),
            jumps: 0,
            hop_qualities: vec![250],
            services: vec![].into(),
        };
        d.process_inquiry_response(
            info(1),
            vec![],
            std::slice::from_ref(&target),
            100,
            245,
            &cfg,
            SimTime::ZERO,
        );
        d.process_inquiry_response(info(2), vec![], &[target], 0, 245, &cfg, SimTime::ZERO);
        let route = &d.storage().get(info(9).address).unwrap().route;
        assert_eq!(route.bridge, Some(info(2).address), "the unloaded bridge must win");
    }

    #[test]
    fn complete_cycle_ages_and_removes_silent_devices() {
        let mut d = daemon();
        let cfg = config();
        d.storage_mut().upsert_direct(info(1), 240, vec![], SimTime::ZERO);
        d.storage_mut().upsert_direct(info(2), 240, vec![], SimTime::ZERO);
        // Device 1 answers every cycle, device 2 never does. The default
        // configuration tolerates five missed loops, so the sixth silent
        // cycle removes it.
        for cycle in 0..8 {
            let now = SimTime::from_secs(10 * (cycle + 1));
            if let Some(p) = d.plugins_mut().get_mut(RadioTech::Bluetooth) {
                p.begin_cycle(now);
                p.note_responder(info(1).address);
            }
            let removed = d.complete_cycle(RadioTech::Bluetooth, &cfg, now);
            if cycle < 5 {
                assert!(removed.is_empty(), "cycle {cycle} removed {removed:?}");
            }
        }
        assert!(d.storage().get(info(1).address).is_some());
        assert!(d.storage().get(info(2).address).is_none());
        assert_eq!(d.plugins().get(RadioTech::Bluetooth).unwrap().cycles_completed, 8);
    }
}
