//! The protocol forge: what this middleware's Byzantine adversary says.
//!
//! `simnet::adversary` decides *when* a compromised node tampers with or
//! injects a frame (on the adversary RNG stream); this module decides *what*
//! the hostile bytes contain, because that requires knowledge of the wire
//! protocol. Every frame the forge produces is **syntactically valid** — it
//! decodes cleanly — so an undefended stack accepts and acts on it; the
//! point of the [`SecurityConfig`](crate::config::SecurityConfig) tiers is
//! to reject these frames *semantically* (sanity checks, reputation) or
//! *cryptographically* (frame auth).
//!
//! The attack repertoire mirrors the scorecard columns of the hostile-city
//! experiment:
//!
//! * **byte-exact replays** of sniffed frames (killed by the replay window),
//! * **replayed session Accepts** (counted by the duplicate-Accept check),
//! * **connection requests with foreign connection ids** — ids whose packed
//!   initiator is not the requesting client (killed by the foreign-conn-id
//!   check),
//! * **forged reply contexts** trying to attach the attacker's link to a
//!   waiting session (killed by the reply-context check, or by frame auth
//!   when the sniffed context targets its own initiator),
//! * **forged neighbour reports** advertising phantom devices at
//!   [`HOSTILE_BASE`]+ addresses behind the attacker-as-bridge, poisoning
//!   the §3.4.3 route candidates — substituted for every inquiry response
//!   the attacker serves and injected opportunistically besides (contained
//!   by reporter reputation, and killed outright by frame auth),
//! * **spoofed service advertisements** claiming the victim service runs on
//!   phantom devices (same containment),
//! * **in-flight tampering** of the attacker's own outgoing traffic —
//!   conn-id splices, data corruption, forged disconnects (killed by frame
//!   auth, which seals the bytes end to end per hop).

use std::rc::Rc;

use simnet::{FrameForge, NodeId, Payload, RadioTech, SimRng};

use crate::device::{DeviceInfo, MobilityClass};
use crate::error::ErrorCode;
use crate::ids::{ConnectionId, DeviceAddress};
use crate::proto::{Message, NeighborRecord};
use crate::service::ServiceInfo;
use crate::wire;

/// Raw node number floor of the phantom devices fabricated in forged
/// neighbour reports. [`DeviceAddress::from_node_raw`] packs the raw number
/// into 32 bits, so the base sits just below `u32::MAX` — high enough that
/// no real city node collides with it, low enough that the address survives
/// the wire roundtrip — and end-of-run storage scans count any stored
/// address at or above it as a poisoned route.
pub const HOSTILE_BASE: u64 = 0xFFFF_0000;

/// How many distinct phantom addresses the forge cycles through.
const HOSTILE_SPAN: u64 = 4096;

/// Phantom neighbours fabricated per forged inquiry response.
const POISON_FANOUT: usize = 3;

/// Fraction of a compromised node's outgoing frames that get tampered with:
/// one in `TAMPER_ONE_IN` (the rest pass untouched, keeping the attacker's
/// own stack functional enough to stay discovered and keep sniffing).
const TAMPER_ONE_IN: u32 = 4;

/// A [`FrameForge`] speaking the PeerHood wire protocol.
///
/// The forge is stateless apart from a deterministic counter used to vary
/// phantom addresses and forged connection ids; all randomness comes from
/// the adversary RNG stream handed in by the simulator, so a given world
/// seed always produces the same attack trace.
pub struct ProtocolForge {
    /// Service name the forge spoofs in fake advertisements and targets in
    /// forged connection requests (the victim application's service).
    service: String,
    /// Deterministic wobble for phantom addresses and forged ids.
    counter: u32,
}

impl ProtocolForge {
    /// Builds a forge attacking (and spoofing) the named service.
    pub fn new(service: impl Into<String>) -> Self {
        ProtocolForge {
            service: service.into(),
            counter: 0,
        }
    }

    /// The next phantom device address (cycles through [`HOSTILE_SPAN`]
    /// addresses starting at [`HOSTILE_BASE`]).
    fn hostile_address(&mut self) -> DeviceAddress {
        let raw = HOSTILE_BASE + (self.counter as u64 % HOSTILE_SPAN);
        self.counter = self.counter.wrapping_add(1);
        DeviceAddress::from_node_raw(raw)
    }

    /// A connection id whose packed initiator is a phantom device — never
    /// the client that presents it, which is exactly what the foreign-conn
    /// sanity check rejects.
    fn foreign_conn(&mut self) -> ConnectionId {
        let initiator = self.hostile_address();
        ConnectionId::new(initiator, self.counter)
    }

    /// The attacker's own (honest-looking) device description: forged frames
    /// carry the real compromised identity, so reputation penalties land on
    /// the node that actually emitted them.
    fn attacker_info(&self, attacker: NodeId) -> DeviceInfo {
        DeviceInfo::new(attacker, "compromised", MobilityClass::Static, &[RadioTech::Bluetooth])
    }

    /// A connection id found in the sniffed frames, if any — live session
    /// material for replay and hijack attacks.
    fn sniffed_conn(&self, sniffed: &[Payload], rng: &mut SimRng) -> Option<ConnectionId> {
        if sniffed.is_empty() {
            return None;
        }
        let pick = rng.range(0..sniffed.len());
        wire::decode(sniffed[pick].as_slice())
            .ok()
            .and_then(|m| m.connection_id())
    }

    /// A forged inquiry response: the attacker re-advertises itself while
    /// claiming `POISON_FANOUT` phantom neighbours (each offering the victim
    /// service at excellent quality) sit directly behind it. An undefended
    /// receiver integrates them as route candidates bridged via the
    /// attacker — the §3.4.3 poisoning the scorecard counts.
    fn poisoned_report(&mut self, attacker: NodeId) -> Message {
        let spoofed: Rc<[ServiceInfo]> = vec![ServiceInfo::new(&self.service, "spoofed", 1)].into();
        let neighbors = (0..POISON_FANOUT)
            .map(|_| {
                let address = self.hostile_address();
                let mut info = self.attacker_info(attacker);
                info.address = address;
                info.name = "phantom".into();
                NeighborRecord {
                    info,
                    jumps: 0,
                    hop_qualities: vec![200],
                    services: spoofed.clone(),
                }
            })
            .collect();
        Message::InquiryResponse {
            device: self.attacker_info(attacker),
            services: vec![ServiceInfo::new(&self.service, "spoofed", 1)],
            neighbors,
            bridge_load_percent: 0,
        }
    }
}

impl FrameForge for ProtocolForge {
    fn tamper(&mut self, attacker: NodeId, payload: &Payload, rng: &mut SimRng) -> Option<Payload> {
        // Decode → mutate semantically → re-encode: the tampered frame is
        // always syntactically valid, so only a defence can reject it. (With
        // frame auth enabled the trailer makes this decode fail, which keeps
        // the MAC intact — sealed frames cannot be usefully tampered with.)
        let message = wire::decode(payload.as_slice()).ok()?;
        // The attacker's own discovery answers are the poisoning channel:
        // the receiver is mid-fetch by definition, so a substituted report
        // always integrates. These are replaced every time; ordinary
        // traffic is tampered at the 1-in-`TAMPER_ONE_IN` rate below.
        if matches!(message, Message::InquiryResponse { .. }) {
            return Some(wire::encode(&self.poisoned_report(attacker)).into());
        }
        if rng.range(0..TAMPER_ONE_IN) != 0 {
            return None;
        }
        let tampered = match message {
            Message::Data { conn_id, payload } => match rng.range(0u32..3) {
                0 => Message::Disconnect { conn_id },
                1 => Message::Data {
                    conn_id: self.foreign_conn(),
                    payload,
                },
                _ => {
                    let mut corrupted = payload;
                    if let Some(first) = corrupted.first_mut() {
                        *first ^= 0xA5;
                    } else {
                        corrupted.push(0xA5);
                    }
                    Message::Data {
                        conn_id,
                        payload: corrupted,
                    }
                }
            },
            Message::Accept { conn_id } => Message::Error {
                conn_id,
                code: ErrorCode::ServiceUnavailable,
                detail: "forged".into(),
            },
            Message::ConnectRequest {
                service,
                client,
                reply_context,
                ..
            } => Message::ConnectRequest {
                conn_id: self.foreign_conn(),
                service,
                client,
                reply_context,
            },
            // Remaining discovery traffic (requests, advertisements) passes
            // untouched: the attacker must stay discoverable to keep its
            // poisoned responses flowing.
            _ => return None,
        };
        Some(wire::encode(&tampered).into())
    }

    fn forge(&mut self, attacker: NodeId, _peer: NodeId, sniffed: &[Payload], rng: &mut SimRng) -> Option<Payload> {
        let message = match rng.range(0u32..6) {
            // Byte-exact replay of a sniffed frame (replay-window fodder).
            0 if !sniffed.is_empty() => {
                let pick = rng.range(0..sniffed.len());
                return Some(sniffed[pick].clone());
            }
            // Replayed session Accept for a live (sniffed) connection.
            1 => {
                let conn_id = self.sniffed_conn(sniffed, rng).unwrap_or_else(|| self.foreign_conn());
                Message::Accept { conn_id }
            }
            // Connection request whose id was allocated by a phantom device.
            2 => Message::ConnectRequest {
                conn_id: self.foreign_conn(),
                service: self.service.clone(),
                client: self.attacker_info(attacker),
                reply_context: None,
            },
            // Hijack attempt: attach the attacker's link to a waiting
            // session via a forged reply context.
            3 => {
                let target = self.sniffed_conn(sniffed, rng).unwrap_or_else(|| self.foreign_conn());
                self.counter = self.counter.wrapping_add(1);
                Message::ConnectRequest {
                    conn_id: ConnectionId::new(DeviceAddress::from_node(attacker), self.counter),
                    service: self.service.clone(),
                    client: self.attacker_info(attacker),
                    reply_context: Some(target),
                }
            }
            // Forged neighbour report + spoofed service advertisements.
            4 | 5 => self.poisoned_report(attacker),
            // 0 with nothing sniffed yet: poison instead of skipping the
            // tick, so early injections still do damage.
            _ => self.poisoned_report(attacker),
        };
        Some(wire::encode(&message).into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> SimRng {
        SimRng::new(seed)
    }

    fn attacker() -> NodeId {
        NodeId::from_raw(7)
    }

    fn sample_frames() -> Vec<Payload> {
        let conn = ConnectionId::new(DeviceAddress::from_node_raw(3), 9);
        let client = DeviceInfo::new(
            NodeId::from_raw(3),
            "c",
            MobilityClass::Dynamic,
            &[RadioTech::Bluetooth],
        );
        [
            Message::Accept { conn_id: conn },
            Message::Data {
                conn_id: conn,
                payload: vec![1, 2, 3],
            },
            Message::ConnectRequest {
                conn_id: conn,
                service: "echo".into(),
                client,
                reply_context: None,
            },
        ]
        .iter()
        .map(|m| Payload::from(wire::encode(m)))
        .collect()
    }

    #[test]
    fn hostile_addresses_survive_the_u32_packing() {
        let raw = HOSTILE_BASE + HOSTILE_SPAN - 1;
        assert!(raw <= u32::MAX as u64, "phantom addresses must fit the packed u32");
        let addr = DeviceAddress::from_node_raw(raw);
        assert_eq!(addr.node_id().as_raw(), raw, "address roundtrips losslessly");
        assert!(addr.node_id().as_raw() >= HOSTILE_BASE);
    }

    #[test]
    fn tampered_frames_always_decode() {
        let mut forge = ProtocolForge::new("echo");
        let mut r = rng(42);
        let frames = sample_frames();
        let mut tampered = 0;
        for _ in 0..64 {
            for frame in &frames {
                if let Some(out) = forge.tamper(attacker(), frame, &mut r) {
                    wire::decode(out.as_slice()).expect("tampered frame must stay syntactically valid");
                    assert_ne!(out.as_slice(), frame.as_slice(), "tampering must change the bytes");
                    tampered += 1;
                }
            }
        }
        assert!(tampered > 0, "the forge must actually tamper sometimes");
    }

    #[test]
    fn forged_frames_always_decode() {
        let mut forge = ProtocolForge::new("echo");
        let mut r = rng(42);
        let frames = sample_frames();
        for i in 0..64 {
            let sniffed: &[Payload] = if i % 2 == 0 { &frames } else { &[] };
            let out = forge
                .forge(attacker(), NodeId::from_raw(9), sniffed, &mut r)
                .expect("every injection tick produces a frame");
            wire::decode(out.as_slice()).expect("forged frame must be syntactically valid");
        }
    }

    #[test]
    fn poisoned_reports_carry_hostile_addresses_behind_the_attacker() {
        let mut forge = ProtocolForge::new("echo");
        match forge.poisoned_report(attacker()) {
            Message::InquiryResponse {
                device,
                services,
                neighbors,
                ..
            } => {
                assert_eq!(device.address, DeviceAddress::from_node(attacker()));
                assert!(services.iter().any(|s| s.name == "echo"), "service is spoofed");
                assert_eq!(neighbors.len(), POISON_FANOUT);
                for n in &neighbors {
                    assert!(
                        n.info.address.node_id().as_raw() >= HOSTILE_BASE,
                        "phantom neighbours live at hostile addresses"
                    );
                    assert_eq!(n.jumps, 0, "claimed as direct neighbours of the attacker");
                }
            }
            other => panic!("expected an inquiry response, got {}", other.command_name()),
        }
    }

    #[test]
    fn forge_output_is_deterministic_per_rng_seed() {
        let run = || {
            let mut forge = ProtocolForge::new("echo");
            let mut r = rng(20080815);
            let frames = sample_frames();
            (0..32)
                .map(|_| {
                    forge
                        .forge(attacker(), NodeId::from_raw(9), &frames, &mut r)
                        .map(|p| p.to_vec())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn foreign_conn_ids_never_match_their_presenter() {
        let mut forge = ProtocolForge::new("echo");
        for _ in 0..16 {
            let conn = forge.foreign_conn();
            assert_ne!(conn.initiator(), DeviceAddress::from_node(attacker()));
            assert!(conn.initiator().node_id().as_raw() >= HOSTILE_BASE);
        }
    }
}
