//! The engine: classification of radio links by their current role.
//!
//! The original `Engine` is the singleton that listens for incoming
//! connections on every technology, identifies their intention from the
//! first command (new connection, bridge connection or re-establishment) and
//! notifies the right component via callbacks (§4.1). In the reproduction it
//! keeps the mapping from live radio links to the middleware entity using
//! them, so that incoming payloads and disconnect notifications can be routed
//! to the daemon, the connection table or the bridge service.

use std::collections::BTreeMap;

use simnet::{LinkId, RadioTech};

use crate::ids::{ConnectionId, DeviceAddress};

/// What a radio link is currently used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkRole {
    /// An accepted incoming link whose first command has not arrived yet.
    IncomingUnidentified,
    /// A short daemon connection we opened to fetch device information.
    DaemonFetch {
        /// The device being interrogated.
        peer: DeviceAddress,
        /// The radio the inquiry that found the device ran on (the plugin
        /// whose fetch accounting this link belongs to).
        tech: RadioTech,
        /// Quality sampled during the inquiry that found the device.
        quality: u8,
    },
    /// A short daemon connection we are serving (we answered an inquiry).
    DaemonServe,
    /// The link carries an application connection (ours or a peer's).
    AppConnection(ConnectionId),
    /// The link is a replacement route being established by the handover
    /// machinery for the given connection; it becomes `AppConnection` once
    /// the end-to-end acknowledgement arrives.
    HandoverPending {
        /// The connection being re-routed.
        conn: ConnectionId,
        /// The device this replacement link physically connects to — the
        /// bridge the new route goes through, or the destination itself for
        /// a direct re-route. Recorded here (not recovered from the
        /// handover monitor) so the connection's `ConnKind` reflects the
        /// route actually built even when the monitor's candidate has been
        /// refreshed while the switch was in flight.
        via: DeviceAddress,
    },
    /// Upstream leg (towards the requester) of a relayed bridge pair.
    BridgeUpstream(ConnectionId),
    /// Downstream leg (towards the destination) of a relayed bridge pair.
    BridgeDownstream(ConnectionId),
}

impl LinkRole {
    /// The connection this role is tied to, if any.
    pub fn connection(&self) -> Option<ConnectionId> {
        match self {
            LinkRole::AppConnection(c) | LinkRole::BridgeUpstream(c) | LinkRole::BridgeDownstream(c) => Some(*c),
            LinkRole::HandoverPending { conn, .. } => Some(*conn),
            _ => None,
        }
    }
}

/// The link-role registry.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    roles: BTreeMap<LinkId, LinkRole>,
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Records or replaces the role of a link.
    pub fn set_role(&mut self, link: LinkId, role: LinkRole) {
        self.roles.insert(link, role);
    }

    /// The current role of a link.
    pub fn role(&self, link: LinkId) -> Option<LinkRole> {
        self.roles.get(&link).copied()
    }

    /// Forgets a link.
    pub fn remove(&mut self, link: LinkId) -> Option<LinkRole> {
        self.roles.remove(&link)
    }

    /// Number of tracked links.
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// True if no link is tracked.
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    /// Number of accepted incoming links whose first command has not arrived
    /// yet. Counted by the admission layer towards the concurrent-session
    /// cap, so a flood of half-open connections cannot sneak past it.
    pub fn incoming_unidentified(&self) -> usize {
        self.roles
            .values()
            .filter(|role| matches!(role, LinkRole::IncomingUnidentified))
            .count()
    }

    /// All links currently serving the given connection (at most one app
    /// link plus possibly one pending handover link).
    pub fn links_for_connection(&self, conn: ConnectionId) -> Vec<LinkId> {
        self.roles
            .iter()
            .filter(|(_, role)| role.connection() == Some(conn))
            .map(|(link, _)| *link)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn(c: u32) -> ConnectionId {
        ConnectionId::new(DeviceAddress::from_node_raw(1), c)
    }

    #[test]
    fn set_get_remove() {
        let mut e = Engine::new();
        assert!(e.is_empty());
        e.set_role(LinkId(1), LinkRole::IncomingUnidentified);
        e.set_role(LinkId(2), LinkRole::AppConnection(conn(0)));
        assert_eq!(e.len(), 2);
        assert_eq!(e.role(LinkId(1)), Some(LinkRole::IncomingUnidentified));
        assert_eq!(e.role(LinkId(3)), None);
        // Identification replaces the role in place.
        e.set_role(LinkId(1), LinkRole::BridgeUpstream(conn(5)));
        assert_eq!(e.role(LinkId(1)), Some(LinkRole::BridgeUpstream(conn(5))));
        assert_eq!(e.remove(LinkId(1)), Some(LinkRole::BridgeUpstream(conn(5))));
        assert_eq!(e.remove(LinkId(1)), None);
    }

    #[test]
    fn connection_extraction() {
        assert_eq!(LinkRole::AppConnection(conn(1)).connection(), Some(conn(1)));
        assert_eq!(
            LinkRole::HandoverPending {
                conn: conn(2),
                via: DeviceAddress::from_node_raw(7)
            }
            .connection(),
            Some(conn(2))
        );
        assert_eq!(LinkRole::BridgeDownstream(conn(3)).connection(), Some(conn(3)));
        assert_eq!(LinkRole::IncomingUnidentified.connection(), None);
        assert_eq!(
            LinkRole::DaemonFetch {
                peer: DeviceAddress::from_node_raw(4),
                tech: RadioTech::Bluetooth,
                quality: 200
            }
            .connection(),
            None
        );
        assert_eq!(LinkRole::DaemonServe.connection(), None);
    }

    #[test]
    fn links_for_connection_finds_both_current_and_pending() {
        let mut e = Engine::new();
        e.set_role(LinkId(1), LinkRole::AppConnection(conn(7)));
        e.set_role(
            LinkId(2),
            LinkRole::HandoverPending {
                conn: conn(7),
                via: DeviceAddress::from_node_raw(9),
            },
        );
        e.set_role(LinkId(3), LinkRole::AppConnection(conn(8)));
        let mut links = e.links_for_connection(conn(7));
        links.sort();
        assert_eq!(links, vec![LinkId(1), LinkId(2)]);
        assert!(e.links_for_connection(conn(99)).is_empty());
    }
}
