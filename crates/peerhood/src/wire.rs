//! Byte-level encoding of [`Message`]s.
//!
//! PeerHood exchanges its commands over raw sockets, so the reproduction
//! keeps an explicit, compact, versioned byte codec rather than relying on a
//! serialisation framework. Every message round-trips exactly
//! (property-tested below), and decoding is defensive: truncated or corrupt
//! buffers produce a [`WireError`] instead of a panic.
//!
//! Encoded frames travel as shared [`Frame`]s (`Rc<[u8]>`-backed, re-exported
//! from [`simnet::Payload`]): [`encode_frame`] writes the bytes into a
//! caller-owned reusable scratch buffer — so a node's steady-state encode
//! path stops allocating — and hands back a frame whose clones are free.
//! Encode a discovery advertisement once, send it to every neighbour.

use std::fmt;

use simnet::RadioTech;

/// A shared, immutable encoded frame (see [`simnet::Payload`]). Clones are
/// reference-count bumps; the world's delivery pipeline carries the same
/// allocation end to end.
pub use simnet::Payload as Frame;

use crate::device::{DeviceInfo, MobilityClass};
use crate::error::ErrorCode;
use crate::ids::{Checksum, ConnectionId, DeviceAddress, ServicePort};
use crate::proto::{Message, NeighborRecord};
use crate::service::ServiceInfo;

/// Codec version carried in every frame.
pub const WIRE_VERSION: u8 = 1;

/// Errors produced while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the announced content.
    Truncated,
    /// Unknown message tag.
    UnknownTag(u8),
    /// Unknown enum discriminant inside a message.
    InvalidValue(&'static str),
    /// Frame produced by an incompatible codec version.
    VersionMismatch(u8),
    /// A length-prefixed string was not valid UTF-8.
    InvalidUtf8,
    /// Trailing bytes after the message ended.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            WireError::InvalidValue(what) => write!(f, "invalid value for {what}"),
            WireError::VersionMismatch(v) => write!(f, "unsupported wire version {v}"),
            WireError::InvalidUtf8 => write!(f, "string field was not valid utf-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

const TAG_INQUIRY_REQUEST: u8 = 1;
const TAG_INQUIRY_RESPONSE: u8 = 2;
const TAG_CONNECT_REQUEST: u8 = 3;
const TAG_BRIDGE_REQUEST: u8 = 4;
const TAG_ACCEPT: u8 = 5;
const TAG_ERROR: u8 = 6;
const TAG_DATA: u8 = 7;
const TAG_DISCONNECT: u8 = 8;

struct Writer<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> Writer<'a> {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
    fn string(&mut self, v: &str) {
        self.u16(v.len() as u16);
        self.buf.extend_from_slice(v.as_bytes());
    }
    fn address(&mut self, a: DeviceAddress) {
        self.buf.extend_from_slice(&a.octets());
    }
    fn conn(&mut self, c: ConnectionId) {
        self.u64(c.as_raw());
    }
    fn opt_conn(&mut self, c: Option<ConnectionId>) {
        match c {
            None => self.u8(0),
            Some(c) => {
                self.u8(1);
                self.conn(c);
            }
        }
    }
    fn tech(&mut self, t: RadioTech) {
        self.u8(match t {
            RadioTech::Bluetooth => 0,
            RadioTech::Wlan => 1,
            RadioTech::Gprs => 2,
        });
    }
    fn device(&mut self, d: &DeviceInfo) {
        self.address(d.address);
        self.string(&d.name);
        self.u8(d.mobility.value());
        self.u32(d.checksum.0);
        self.u8(d.techs.len() as u8);
        for t in d.techs.iter() {
            self.tech(*t);
        }
    }
    fn service(&mut self, s: &ServiceInfo) {
        self.string(&s.name);
        self.string(&s.attribute);
        self.u16(s.port.0);
    }
    fn neighbor(&mut self, n: &NeighborRecord) {
        self.device(&n.info);
        self.u8(n.jumps);
        self.u8(n.hop_qualities.len() as u8);
        for q in &n.hop_qualities {
            self.u8(*q);
        }
        self.u16(n.services.len() as u16);
        for s in n.services.iter() {
            self.service(s);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    /// Pre-allocation bound for a count read from the wire: every element
    /// occupies at least one byte, so a corrupted count can never make us
    /// reserve more slots than there are bytes left in the frame.
    fn capped(&self, count: usize) -> usize {
        count.min(self.remaining())
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }
    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }
    fn address(&mut self) -> Result<DeviceAddress, WireError> {
        let b = self.take(6)?;
        Ok(DeviceAddress::from_octets([b[0], b[1], b[2], b[3], b[4], b[5]]))
    }
    fn conn(&mut self) -> Result<ConnectionId, WireError> {
        Ok(ConnectionId::from_raw(self.u64()?))
    }
    fn opt_conn(&mut self) -> Result<Option<ConnectionId>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.conn()?)),
            _ => Err(WireError::InvalidValue("optional connection id")),
        }
    }
    fn tech(&mut self) -> Result<RadioTech, WireError> {
        match self.u8()? {
            0 => Ok(RadioTech::Bluetooth),
            1 => Ok(RadioTech::Wlan),
            2 => Ok(RadioTech::Gprs),
            _ => Err(WireError::InvalidValue("radio technology")),
        }
    }
    fn device(&mut self) -> Result<DeviceInfo, WireError> {
        let address = self.address()?;
        let name = self.string()?;
        let mobility = MobilityClass::from_value(self.u8()?).ok_or(WireError::InvalidValue("mobility class"))?;
        let checksum = Checksum(self.u32()?);
        let tech_count = self.u8()? as usize;
        let mut techs = Vec::with_capacity(self.capped(tech_count));
        for _ in 0..tech_count {
            techs.push(self.tech()?);
        }
        Ok(DeviceInfo {
            address,
            name: name.into(),
            mobility,
            checksum,
            techs: techs.into(),
        })
    }
    fn service(&mut self) -> Result<ServiceInfo, WireError> {
        let name = self.string()?;
        let attribute = self.string()?;
        let port = ServicePort(self.u16()?);
        Ok(ServiceInfo { name, attribute, port })
    }
    fn neighbor(&mut self) -> Result<NeighborRecord, WireError> {
        let info = self.device()?;
        let jumps = self.u8()?;
        let hop_count = self.u8()? as usize;
        let mut hop_qualities = Vec::with_capacity(self.capped(hop_count));
        for _ in 0..hop_count {
            hop_qualities.push(self.u8()?);
        }
        let svc_count = self.u16()? as usize;
        let mut services = Vec::with_capacity(self.capped(svc_count));
        for _ in 0..svc_count {
            services.push(self.service()?);
        }
        Ok(NeighborRecord {
            info,
            jumps,
            hop_qualities,
            services: services.into(),
        })
    }
}

/// Encodes a message into a freshly allocated self-contained frame.
///
/// Hot paths should prefer [`encode_into`] / [`encode_frame`] with a reused
/// scratch buffer; the bytes produced are identical.
pub fn encode(message: &Message) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    encode_into(message, &mut buf);
    buf
}

/// Encodes a message into a shared [`Frame`], using `scratch` as the encode
/// buffer (cleared first, capacity reused across calls). The returned frame
/// owns one copy of the bytes; cloning it is free.
pub fn encode_frame(message: &Message, scratch: &mut Vec<u8>) -> Frame {
    scratch.clear();
    encode_into(message, scratch);
    Frame::copy_from_slice(scratch)
}

/// Encodes a message by appending its frame bytes to `buf` (which is
/// normally cleared by the caller; [`encode`]/[`encode_frame`] do so).
pub fn encode_into(message: &Message, buf: &mut Vec<u8>) {
    let mut w = Writer { buf };
    w.u8(WIRE_VERSION);
    match message {
        Message::InquiryRequest { requester } => {
            w.u8(TAG_INQUIRY_REQUEST);
            w.device(requester);
        }
        Message::InquiryResponse {
            device,
            services,
            neighbors,
            bridge_load_percent,
        } => {
            w.u8(TAG_INQUIRY_RESPONSE);
            w.device(device);
            w.u16(services.len() as u16);
            for s in services {
                w.service(s);
            }
            w.u16(neighbors.len() as u16);
            for n in neighbors {
                w.neighbor(n);
            }
            w.u8(*bridge_load_percent);
        }
        Message::ConnectRequest {
            conn_id,
            service,
            client,
            reply_context,
        } => {
            w.u8(TAG_CONNECT_REQUEST);
            w.conn(*conn_id);
            w.string(service);
            w.device(client);
            w.opt_conn(*reply_context);
        }
        Message::BridgeRequest {
            conn_id,
            destination,
            service,
            client,
            reply_context,
        } => {
            w.u8(TAG_BRIDGE_REQUEST);
            w.conn(*conn_id);
            w.address(*destination);
            w.string(service);
            w.device(client);
            w.opt_conn(*reply_context);
        }
        Message::Accept { conn_id } => {
            w.u8(TAG_ACCEPT);
            w.conn(*conn_id);
        }
        Message::Error { conn_id, code, detail } => {
            w.u8(TAG_ERROR);
            w.conn(*conn_id);
            w.u8(code.code());
            w.string(detail);
        }
        Message::Data { conn_id, payload } => {
            w.u8(TAG_DATA);
            w.conn(*conn_id);
            w.bytes(payload);
        }
        Message::Disconnect { conn_id } => {
            w.u8(TAG_DISCONNECT);
            w.conn(*conn_id);
        }
    }
}

/// Decodes a frame previously produced by [`encode`].
///
/// # Errors
///
/// Returns a [`WireError`] for truncated, corrupt, version-mismatched or
/// trailing-garbage frames.
pub fn decode(frame: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader::new(frame);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::VersionMismatch(version));
    }
    let tag = r.u8()?;
    let message = match tag {
        TAG_INQUIRY_REQUEST => Message::InquiryRequest { requester: r.device()? },
        TAG_INQUIRY_RESPONSE => {
            let device = r.device()?;
            let svc_count = r.u16()? as usize;
            let mut services = Vec::with_capacity(r.capped(svc_count));
            for _ in 0..svc_count {
                services.push(r.service()?);
            }
            let n_count = r.u16()? as usize;
            let mut neighbors = Vec::with_capacity(r.capped(n_count));
            for _ in 0..n_count {
                neighbors.push(r.neighbor()?);
            }
            let bridge_load_percent = r.u8()?;
            Message::InquiryResponse {
                device,
                services,
                neighbors,
                bridge_load_percent,
            }
        }
        TAG_CONNECT_REQUEST => Message::ConnectRequest {
            conn_id: r.conn()?,
            service: r.string()?,
            client: r.device()?,
            reply_context: r.opt_conn()?,
        },
        TAG_BRIDGE_REQUEST => Message::BridgeRequest {
            conn_id: r.conn()?,
            destination: r.address()?,
            service: r.string()?,
            client: r.device()?,
            reply_context: r.opt_conn()?,
        },
        TAG_ACCEPT => Message::Accept { conn_id: r.conn()? },
        TAG_ERROR => Message::Error {
            conn_id: r.conn()?,
            code: ErrorCode::from_code(r.u8()?).ok_or(WireError::InvalidValue("error code"))?,
            detail: r.string()?,
        },
        TAG_DATA => Message::Data {
            conn_id: r.conn()?,
            payload: r.bytes()?,
        },
        TAG_DISCONNECT => Message::Disconnect { conn_id: r.conn()? },
        other => return Err(WireError::UnknownTag(other)),
    };
    if r.remaining() > 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MobilityClass;
    use simnet::rng::SimRng;
    use simnet::NodeId;

    fn device(n: u64) -> DeviceInfo {
        DeviceInfo::new(
            NodeId::from_raw(n),
            format!("dev{n}"),
            MobilityClass::Hybrid,
            &[RadioTech::Bluetooth, RadioTech::Wlan],
        )
    }

    fn conn(n: u64, c: u32) -> ConnectionId {
        ConnectionId::new(DeviceAddress::from_node_raw(n), c)
    }

    #[test]
    fn every_variant_roundtrips() {
        let messages = vec![
            Message::InquiryRequest { requester: device(1) },
            Message::InquiryResponse {
                device: device(2),
                services: vec![ServiceInfo::new("echo", "v1", 3), ServiceInfo::new("pics", "", 4)],
                neighbors: vec![NeighborRecord {
                    info: device(3),
                    jumps: 2,
                    hop_qualities: vec![240, 231, 255],
                    services: vec![ServiceInfo::new("relay", "x", 9)].into(),
                }],
                bridge_load_percent: 40,
            },
            Message::ConnectRequest {
                conn_id: conn(1, 7),
                service: "picture-analysis".into(),
                client: device(1),
                reply_context: Some(conn(1, 3)),
            },
            Message::BridgeRequest {
                conn_id: conn(1, 8),
                destination: DeviceAddress::from_node_raw(9),
                service: "echo".into(),
                client: device(1),
                reply_context: None,
            },
            Message::Accept { conn_id: conn(2, 0) },
            Message::Error {
                conn_id: conn(2, 1),
                code: ErrorCode::BridgeBusy,
                detail: "limit reached".into(),
            },
            Message::Data {
                conn_id: conn(3, 0),
                payload: vec![0, 1, 2, 255, 254],
            },
            Message::Disconnect { conn_id: conn(3, 1) },
        ];
        for m in messages {
            let frame = encode(&m);
            let decoded = decode(&frame).unwrap();
            assert_eq!(decoded, m);
        }
    }

    #[test]
    fn scratch_encoding_matches_owned_encoding() {
        // `encode_frame` through a reused scratch buffer must produce the
        // byte-identical frame `encode` allocates — including after the
        // buffer has held a longer message (clearing, not truncating bugs).
        let mut rng = SimRng::new(0x5C_4A7C4);
        let mut scratch = Vec::new();
        for _ in 0..200 {
            let message = arb_message(&mut rng);
            let frame = encode_frame(&message, &mut scratch);
            assert_eq!(frame.as_slice(), encode(&message).as_slice());
            assert_eq!(decode(&frame).unwrap(), message);
        }
        // Clones of a frame share one allocation.
        let frame = encode_frame(&Message::Accept { conn_id: conn(1, 2) }, &mut scratch);
        let copy = frame.clone();
        assert_eq!(frame.ref_count(), 2);
        assert_eq!(copy.as_slice(), frame.as_slice());
    }

    #[test]
    fn version_mismatch_detected() {
        let mut frame = encode(&Message::Accept { conn_id: conn(1, 1) });
        frame[0] = 99;
        assert_eq!(decode(&frame), Err(WireError::VersionMismatch(99)));
    }

    #[test]
    fn unknown_tag_detected() {
        let frame = vec![WIRE_VERSION, 200];
        assert_eq!(decode(&frame), Err(WireError::UnknownTag(200)));
    }

    #[test]
    fn truncation_detected_everywhere() {
        let full = encode(&Message::ConnectRequest {
            conn_id: conn(1, 7),
            service: "picture-analysis".into(),
            client: device(1),
            reply_context: Some(conn(1, 3)),
        });
        for len in 0..full.len() {
            let err = decode(&full[..len]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated | WireError::VersionMismatch(_)),
                "unexpected error at {len}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut frame = encode(&Message::Disconnect { conn_id: conn(1, 0) });
        frame.push(0xAA);
        assert_eq!(decode(&frame), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn empty_frame_is_truncated() {
        assert_eq!(decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn error_display() {
        assert!(WireError::Truncated.to_string().contains("truncated"));
        assert!(WireError::UnknownTag(3).to_string().contains('3'));
        assert!(WireError::InvalidUtf8.to_string().contains("utf-8"));
    }

    // ------------------------------------------------------------------
    // Deterministic randomised tests (SimRng-driven; proptest is not
    // available in the offline build environment).
    // ------------------------------------------------------------------

    fn arb_string(rng: &mut SimRng, alphabet: &[u8], max_len: usize) -> String {
        let len = rng.range(0..=max_len);
        (0..len).map(|_| alphabet[rng.index(alphabet.len())] as char).collect()
    }

    fn arb_tech(rng: &mut SimRng) -> RadioTech {
        [RadioTech::Bluetooth, RadioTech::Wlan, RadioTech::Gprs][rng.index(3)]
    }

    fn arb_mobility(rng: &mut SimRng) -> MobilityClass {
        [MobilityClass::Static, MobilityClass::Hybrid, MobilityClass::Dynamic][rng.index(3)]
    }

    fn arb_device(rng: &mut SimRng) -> DeviceInfo {
        let techs: Vec<RadioTech> = (0..rng.range(0usize..3)).map(|_| arb_tech(rng)).collect();
        DeviceInfo {
            address: DeviceAddress::from_node_raw(rng.range(0u64..10_000)),
            name: arb_string(rng, b"abcXYZ09 _-", 24).into(),
            mobility: arb_mobility(rng),
            checksum: Checksum(rng.range(0u32..100_000)),
            techs: techs.into(),
        }
    }

    fn arb_service(rng: &mut SimRng) -> ServiceInfo {
        ServiceInfo::new(
            arb_string(rng, b"abcz09./-", 16),
            arb_string(rng, b"abcz09 ", 16),
            rng.range(0u32..=u16::MAX as u32) as u16,
        )
    }

    fn arb_neighbor(rng: &mut SimRng) -> NeighborRecord {
        NeighborRecord {
            info: arb_device(rng),
            jumps: rng.range(0u8..10),
            hop_qualities: (0..rng.range(0usize..6)).map(|_| rng.range(0u8..=255)).collect(),
            services: (0..rng.range(0usize..4)).map(|_| arb_service(rng)).collect(),
        }
    }

    fn arb_conn(rng: &mut SimRng) -> ConnectionId {
        ConnectionId::new(
            DeviceAddress::from_node_raw(rng.range(0u64..10_000)),
            rng.range(0u32..=u32::MAX),
        )
    }

    fn arb_error_code(rng: &mut SimRng) -> ErrorCode {
        [
            ErrorCode::ServiceUnavailable,
            ErrorCode::NoRouteToDestination,
            ErrorCode::BridgeBusy,
            ErrorCode::DownstreamFailed,
            ErrorCode::UnknownConnection,
            ErrorCode::Protocol,
        ][rng.index(6)]
    }

    fn arb_message(rng: &mut SimRng) -> Message {
        match rng.index(8) {
            0 => Message::InquiryRequest {
                requester: arb_device(rng),
            },
            1 => Message::InquiryResponse {
                device: arb_device(rng),
                services: (0..rng.range(0usize..4)).map(|_| arb_service(rng)).collect(),
                neighbors: (0..rng.range(0usize..4)).map(|_| arb_neighbor(rng)).collect(),
                bridge_load_percent: rng.range(0u8..=255),
            },
            2 => Message::ConnectRequest {
                conn_id: arb_conn(rng),
                service: arb_string(rng, b"abcz-", 16),
                client: arb_device(rng),
                reply_context: if rng.chance(0.5) { Some(arb_conn(rng)) } else { None },
            },
            3 => Message::BridgeRequest {
                conn_id: arb_conn(rng),
                destination: DeviceAddress::from_node_raw(rng.range(0u64..10_000)),
                service: arb_string(rng, b"abcz-", 16),
                client: arb_device(rng),
                reply_context: if rng.chance(0.5) { Some(arb_conn(rng)) } else { None },
            },
            4 => Message::Accept { conn_id: arb_conn(rng) },
            5 => Message::Error {
                conn_id: arb_conn(rng),
                code: arb_error_code(rng),
                detail: arb_string(rng, b" !abcz09~", 32),
            },
            6 => Message::Data {
                conn_id: arb_conn(rng),
                payload: (0..rng.range(0usize..256)).map(|_| rng.range(0u8..=255)).collect(),
            },
            _ => Message::Disconnect { conn_id: arb_conn(rng) },
        }
    }

    #[test]
    fn fuzz_roundtrip() {
        let mut rng = SimRng::new(0xC0DEC);
        for _ in 0..500 {
            let message = arb_message(&mut rng);
            let frame = encode(&message);
            let decoded = decode(&frame).unwrap();
            assert_eq!(decoded, message);
        }
    }

    #[test]
    fn fuzz_random_bytes_never_panic() {
        // Decoding arbitrary garbage must never panic; it may of course
        // occasionally produce a valid message.
        let mut rng = SimRng::new(0xBAD_BEEF);
        for _ in 0..2000 {
            let bytes: Vec<u8> = (0..rng.range(0usize..128)).map(|_| rng.range(0u8..=255)).collect();
            let _ = decode(&bytes);
        }
    }

    #[test]
    fn fuzz_truncation_never_panics() {
        let mut rng = SimRng::new(0x7A71C);
        for _ in 0..300 {
            let message = arb_message(&mut rng);
            let frame = encode(&message);
            let cut = rng.range(0usize..64).min(frame.len());
            let _ = decode(&frame[..cut]);
        }
    }

    #[test]
    fn fuzz_bit_flips_never_panic() {
        // The fault engine's corruption bursts flip a handful of bits in
        // otherwise valid frames — the exact input shape this test feeds
        // `decode`: mostly-plausible structure with corrupted lengths, tags,
        // counts and enum discriminants. The decoder must return a
        // `WireError` (or, occasionally, a different valid message), never
        // panic or over-allocate.
        let mut rng = SimRng::new(0xB17F11);
        for _ in 0..3000 {
            let message = arb_message(&mut rng);
            let mut frame = encode(&message);
            if frame.is_empty() {
                continue;
            }
            let flips = 1 + rng.index(6);
            for _ in 0..flips {
                let byte = rng.index(frame.len());
                let bit = rng.index(8) as u8;
                frame[byte] ^= 1 << bit;
            }
            let _ = decode(&frame);
        }
    }

    #[test]
    fn fuzz_heavy_corruption_never_panics() {
        // Denser damage than a burst would cause: up to a quarter of the
        // frame's bits flipped.
        let mut rng = SimRng::new(0x0DEA_DB17);
        for _ in 0..1000 {
            let message = arb_message(&mut rng);
            let mut frame = encode(&message);
            if frame.is_empty() {
                continue;
            }
            let flips = 1 + rng.index(frame.len() * 2);
            for _ in 0..flips {
                let byte = rng.index(frame.len());
                let bit = rng.index(8) as u8;
                frame[byte] ^= 1 << bit;
            }
            let _ = decode(&frame);
        }
    }

    #[test]
    fn corrupted_counts_do_not_overallocate() {
        // A flipped length prefix must not reserve gigabytes: the decoder
        // caps pre-allocation by the bytes actually remaining. This frame
        // announces 65535 services in a response that is a few bytes long.
        let mut frame = encode(&Message::InquiryResponse {
            device: device(1),
            services: vec![],
            neighbors: vec![],
            bridge_load_percent: 0,
        });
        // The service count is the first u16 after the device block; find it
        // by re-encoding with one service and diffing is overkill — corrupt
        // every u16-aligned pair instead and decode them all.
        for i in 0..frame.len().saturating_sub(1) {
            let mut corrupt = frame.clone();
            corrupt[i] = 0xFF;
            corrupt[i + 1] = 0xFF;
            let _ = decode(&corrupt);
        }
        frame.truncate(frame.len() - 1);
        let _ = decode(&frame);
    }
}
