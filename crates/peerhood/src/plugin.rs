//! Network plugin state.
//!
//! The daemon owns one plugin per network technology (BTPlugin, WLANPlugin,
//! GPRSPlugin, Fig. 2.3). Each plugin runs its own inquiry loop: scan, fetch
//! information from new or recheck-due devices, update the device storage,
//! age the entries, sleep, repeat (Fig. 3.12). The reproduction keeps the
//! per-plugin bookkeeping here; the scan and fetch themselves are radio
//! operations performed by the node glue.

use serde::{Deserialize, Serialize};
use simnet::{RadioTech, SimTime};

use crate::ids::DeviceAddress;

/// Per-technology discovery bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PluginState {
    /// The technology this plugin drives.
    pub tech: RadioTech,
    /// Number of completed inquiry cycles.
    pub cycles_completed: u64,
    /// Devices that answered the inquiry currently being processed.
    pub current_responders: Vec<DeviceAddress>,
    /// Information fetches still outstanding for the current cycle.
    pub pending_fetches: usize,
    /// When the current cycle's inquiry was started.
    pub cycle_started_at: SimTime,
    /// True while an inquiry scan or its follow-up fetches are in progress.
    pub cycle_active: bool,
}

impl PluginState {
    /// Creates an idle plugin for the given technology.
    pub fn new(tech: RadioTech) -> Self {
        PluginState {
            tech,
            cycles_completed: 0,
            current_responders: Vec::new(),
            pending_fetches: 0,
            cycle_started_at: SimTime::ZERO,
            cycle_active: false,
        }
    }

    /// Marks the start of a new inquiry cycle.
    pub fn begin_cycle(&mut self, now: SimTime) {
        self.cycle_active = true;
        self.cycle_started_at = now;
        self.current_responders.clear();
        self.pending_fetches = 0;
    }

    /// Records that a device answered the current inquiry.
    pub fn note_responder(&mut self, device: DeviceAddress) {
        if !self.current_responders.contains(&device) {
            self.current_responders.push(device);
        }
    }

    /// Records that an information fetch was started for the current cycle.
    pub fn note_fetch_started(&mut self) {
        self.pending_fetches += 1;
    }

    /// Records that an information fetch finished (successfully or not).
    /// Returns `true` if the cycle has no more outstanding fetches.
    pub fn note_fetch_finished(&mut self) -> bool {
        self.pending_fetches = self.pending_fetches.saturating_sub(1);
        self.pending_fetches == 0
    }

    /// Marks the cycle complete, returning the devices that answered.
    pub fn finish_cycle(&mut self) -> Vec<DeviceAddress> {
        self.cycle_active = false;
        self.cycles_completed += 1;
        std::mem::take(&mut self.current_responders)
    }
}

/// The set of plugins configured on a daemon.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PluginSet {
    plugins: Vec<PluginState>,
}

impl PluginSet {
    /// Creates a plugin per technology, in the given order.
    pub fn new(techs: &[RadioTech]) -> Self {
        PluginSet {
            plugins: techs.iter().map(|t| PluginState::new(*t)).collect(),
        }
    }

    /// The plugin for a technology.
    pub fn get(&self, tech: RadioTech) -> Option<&PluginState> {
        self.plugins.iter().find(|p| p.tech == tech)
    }

    /// Mutable access to the plugin for a technology.
    pub fn get_mut(&mut self, tech: RadioTech) -> Option<&mut PluginState> {
        self.plugins.iter_mut().find(|p| p.tech == tech)
    }

    /// All plugins.
    pub fn iter(&self) -> impl Iterator<Item = &PluginState> {
        self.plugins.iter()
    }

    /// Configured technologies in plugin order.
    pub fn techs(&self) -> Vec<RadioTech> {
        self.plugins.iter().map(|p| p.tech).collect()
    }

    /// Number of plugins.
    pub fn len(&self) -> usize {
        self.plugins.len()
    }

    /// True if no plugin is configured.
    pub fn is_empty(&self) -> bool {
        self.plugins.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> DeviceAddress {
        DeviceAddress::from_node_raw(n)
    }

    #[test]
    fn cycle_lifecycle() {
        let mut p = PluginState::new(RadioTech::Bluetooth);
        assert!(!p.cycle_active);
        p.begin_cycle(SimTime::from_secs(5));
        assert!(p.cycle_active);
        p.note_responder(addr(1));
        p.note_responder(addr(2));
        p.note_responder(addr(1));
        assert_eq!(p.current_responders.len(), 2);
        p.note_fetch_started();
        p.note_fetch_started();
        assert!(!p.note_fetch_finished());
        assert!(p.note_fetch_finished());
        let responders = p.finish_cycle();
        assert_eq!(responders, vec![addr(1), addr(2)]);
        assert_eq!(p.cycles_completed, 1);
        assert!(!p.cycle_active);
        assert!(p.current_responders.is_empty());
    }

    #[test]
    fn fetch_counter_never_underflows() {
        let mut p = PluginState::new(RadioTech::Wlan);
        assert!(p.note_fetch_finished());
        assert_eq!(p.pending_fetches, 0);
    }

    #[test]
    fn plugin_set_lookup() {
        let mut set = PluginSet::new(&[RadioTech::Bluetooth, RadioTech::Gprs]);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert!(set.get(RadioTech::Bluetooth).is_some());
        assert!(set.get(RadioTech::Wlan).is_none());
        set.get_mut(RadioTech::Gprs).unwrap().begin_cycle(SimTime::ZERO);
        assert!(set.get(RadioTech::Gprs).unwrap().cycle_active);
        assert_eq!(set.techs(), vec![RadioTech::Bluetooth, RadioTech::Gprs]);
        assert_eq!(set.iter().count(), 2);
    }
}
