//! The PeerHood node: glue between the middleware and the simulated radio.
//!
//! [`PeerHoodNode`] implements [`simnet::NodeAgent`] and owns the whole
//! middleware stack of one device — daemon, engine, connection table, bridge
//! service and handover machinery — plus the single [`Application`] running
//! on top of it. Applications act on the middleware through [`PeerHoodApi`].
//!
//! The original implementation runs these pieces as threads (inquiry thread,
//! advertisement thread, roaming/handover threads, the bridge main loop);
//! here every thread becomes a timer or a radio event handled on the
//! simulator's event loop, which keeps the protocol behaviour identical but
//! deterministic.

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

use simnet::{
    AttemptId, ConnectError, DisconnectReason, IncomingConnection, InquiryHit, LinkId, NodeAgent,
    NodeCtx, NodeId, RadioTech, SimDuration, SimTime, TimerToken,
};

use crate::application::Application;
use crate::bridge::{BridgeService, BridgeSide};
use crate::config::PeerHoodConfig;
use crate::connection::{AppConnection, ConnKind, ConnState, ConnectionSnapshot, ConnectionTable};
use crate::daemon::Daemon;
use crate::device::DeviceInfo;
use crate::engine::{Engine, LinkRole};
use crate::error::{ErrorCode, PeerHoodError};
use crate::handover::{HandoverMonitor, HandoverTarget};
use crate::ids::{ConnectionId, DeviceAddress};
use crate::proto::Message;
use crate::service::ServiceInfo;
use crate::storage::{StorageStats, StoredDevice};
use crate::wire;

const KIND_SHIFT: u64 = 56;
const KIND_INQUIRY: u64 = 1;
const KIND_MONITOR: u64 = 2;
const KIND_APP: u64 = 3;
const KIND_RETRY: u64 = 4;
const PAYLOAD_MASK: u64 = (1 << KIND_SHIFT) - 1;

fn token(kind: u64, payload: u64) -> TimerToken {
    TimerToken((kind << KIND_SHIFT) | (payload & PAYLOAD_MASK))
}

/// Why a physical connection attempt was started.
#[derive(Debug, Clone)]
enum PendingPurpose {
    /// Daemon information fetch towards a device found by an inquiry.
    DaemonFetch {
        peer: DeviceAddress,
        tech: RadioTech,
        quality: u8,
    },
    /// First hop of an outgoing application connection.
    AppConnect { conn: ConnectionId },
    /// Downstream leg of a relayed bridge pair.
    BridgeLeg { conn: ConnectionId },
    /// Replacement route being built by the handover machinery.
    Handover { conn: ConnectionId, via: DeviceAddress },
    /// Server re-connecting to a client to deliver queued results (§5.3).
    ReplyConnect { conn: ConnectionId },
}

/// Application callbacks queued during event processing and delivered once
/// the middleware state is consistent.
#[derive(Debug)]
enum AppEvent {
    Start,
    PeerConnected {
        conn: ConnectionId,
        client: DeviceInfo,
        service: String,
    },
    Connected(ConnectionId),
    ConnectFailed(ConnectionId, PeerHoodError),
    Data(ConnectionId, Vec<u8>),
    Disconnected(ConnectionId, bool),
    ConnectionChanged(ConnectionId),
    ServiceReconnected(ConnectionId, DeviceAddress),
    ReconnectQuery(ConnectionId, Vec<DeviceAddress>),
    Timer(u64),
}

/// Everything the node owns once started.
struct Core {
    config: PeerHoodConfig,
    daemon: Daemon,
    engine: Engine,
    connections: ConnectionTable,
    bridge: BridgeService,
    pending: BTreeMap<AttemptId, PendingPurpose>,
    retry_conns: BTreeMap<u64, ConnectionId>,
    next_retry_token: u64,
    events: VecDeque<AppEvent>,
    handover_completions: u64,
    reply_reconnections: u64,
}

/// A complete PeerHood device: middleware plus one application.
pub struct PeerHoodNode {
    config: PeerHoodConfig,
    core: Option<Core>,
    app: Option<Box<dyn Application>>,
}

/// Handle applications (and scenario drivers) use to act on the middleware.
pub struct PeerHoodApi<'a, 'w> {
    core: &'a mut Core,
    ctx: &'a mut NodeCtx<'w>,
}

impl PeerHoodNode {
    /// Creates a node with the given configuration and application.
    pub fn new(config: PeerHoodConfig, app: Box<dyn Application>) -> Self {
        PeerHoodNode {
            config,
            core: None,
            app: Some(app),
        }
    }

    /// Creates a node that only runs the middleware (daemon, discovery and
    /// the hidden bridge service) without an application — a pure relay.
    pub fn relay(config: PeerHoodConfig) -> Self {
        PeerHoodNode {
            config,
            core: None,
            app: None,
        }
    }

    /// The configuration this node was created with.
    pub fn config(&self) -> &PeerHoodConfig {
        &self.config
    }

    /// This device's address (available after the node has started).
    pub fn device_address(&self) -> Option<DeviceAddress> {
        self.core.as_ref().map(|c| c.daemon.info().address)
    }

    /// Storage statistics of the daemon.
    pub fn storage_stats(&self) -> StorageStats {
        self.core.as_ref().map(|c| c.daemon.stats()).unwrap_or_default()
    }

    /// Snapshot of every known remote device.
    pub fn known_devices(&self) -> Vec<StoredDevice> {
        self.core
            .as_ref()
            .map(|c| c.daemon.storage().device_list().into_iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Snapshot of one connection.
    pub fn connection(&self, conn: ConnectionId) -> Option<ConnectionSnapshot> {
        self.core
            .as_ref()
            .and_then(|c| c.connections.get(conn))
            .map(ConnectionSnapshot::from)
    }

    /// Snapshots of every connection.
    pub fn connections(&self) -> Vec<ConnectionSnapshot> {
        self.core
            .as_ref()
            .map(|c| c.connections.iter().map(ConnectionSnapshot::from).collect())
            .unwrap_or_default()
    }

    /// The radio link currently carrying a connection, if any. Scenario
    /// drivers use this to install the §5.2.1 artificial quality decay on the
    /// link under a live connection.
    pub fn connection_link(&self, conn: ConnectionId) -> Option<LinkId> {
        self.core.as_ref().and_then(|c| c.connections.get(conn)).and_then(|c| c.link)
    }

    /// Number of connection pairs currently relayed by this node's bridge
    /// service, plus the totals it has relayed.
    pub fn bridge_stats(&self) -> (usize, u64, u64) {
        self.core
            .as_ref()
            .map(|c| (c.bridge.len(), c.bridge.total_relayed_messages(), c.bridge.total_relayed_bytes()))
            .unwrap_or((0, 0, 0))
    }

    /// Number of routing handovers successfully completed by this node.
    pub fn handover_completions(&self) -> u64 {
        self.core.as_ref().map(|c| c.handover_completions).unwrap_or(0)
    }

    /// Number of server-initiated reply reconnections completed (result
    /// routing, §5.3).
    pub fn reply_reconnections(&self) -> u64 {
        self.core.as_ref().map(|c| c.reply_reconnections).unwrap_or(0)
    }

    /// Typed access to the application running on this node.
    pub fn app<T: Application>(&self) -> Option<&T> {
        self.app.as_ref().and_then(|a| a.as_any().downcast_ref::<T>())
    }

    /// Mutable typed access to the application running on this node.
    pub fn app_mut<T: Application>(&mut self) -> Option<&mut T> {
        self.app.as_mut().and_then(|a| a.as_any_mut().downcast_mut::<T>())
    }

    /// Runs a closure with the [`PeerHoodApi`], letting scenario drivers
    /// invoke application-level operations directly ("now connect to that
    /// service"). Pending application callbacks are delivered afterwards.
    ///
    /// Returns `None` if the node has not started yet.
    pub fn with_api<R>(&mut self, ctx: &mut NodeCtx<'_>, f: impl FnOnce(&mut PeerHoodApi<'_, '_>) -> R) -> Option<R> {
        let result = {
            let core = self.core.as_mut()?;
            let mut api = PeerHoodApi { core, ctx };
            Some(f(&mut api))
        };
        self.drain_events(ctx);
        result
    }

    fn drain_events(&mut self, ctx: &mut NodeCtx<'_>) {
        loop {
            let event = match self.core.as_mut().and_then(|c| c.events.pop_front()) {
                Some(e) => e,
                None => break,
            };
            let core = match self.core.as_mut() {
                Some(c) => c,
                None => break,
            };
            let app = match self.app.as_mut() {
                Some(a) => a,
                None => continue,
            };
            let mut api = PeerHoodApi { core, ctx };
            match event {
                AppEvent::Start => app.on_start(&mut api),
                AppEvent::PeerConnected { conn, client, service } => {
                    app.on_peer_connected(&mut api, conn, client, &service)
                }
                AppEvent::Connected(conn) => app.on_connected(&mut api, conn),
                AppEvent::ConnectFailed(conn, error) => app.on_connect_failed(&mut api, conn, error),
                AppEvent::Data(conn, payload) => app.on_data(&mut api, conn, payload),
                AppEvent::Disconnected(conn, graceful) => app.on_disconnected(&mut api, conn, graceful),
                AppEvent::ConnectionChanged(conn) => app.on_connection_changed(&mut api, conn),
                AppEvent::ServiceReconnected(conn, provider) => {
                    app.on_service_reconnected(&mut api, conn, provider)
                }
                AppEvent::ReconnectQuery(conn, candidates) => {
                    let allowed = app.on_reconnect_required(&mut api, conn, &candidates);
                    if allowed {
                        api.core.start_service_reconnection(api.ctx, conn, &candidates);
                    } else {
                        api.core.abandon_connection(conn);
                    }
                }
                AppEvent::Timer(token) => app.on_timer(&mut api, token),
            }
        }
    }
}

impl NodeAgent for PeerHoodNode {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let info = DeviceInfo::new(
            ctx.node_id(),
            self.config.device_name.clone(),
            self.config.mobility,
            &self.config.techs,
        );
        let daemon = Daemon::new(info, &self.config);
        let mut core = Core {
            daemon,
            engine: Engine::new(),
            connections: ConnectionTable::new(),
            bridge: BridgeService::new(self.config.bridge.max_connections),
            pending: BTreeMap::new(),
            retry_conns: BTreeMap::new(),
            next_retry_token: 0,
            events: VecDeque::new(),
            handover_completions: 0,
            reply_reconnections: 0,
            config: self.config.clone(),
        };
        core.start(ctx);
        core.events.push_back(AppEvent::Start);
        self.core = Some(core);
        self.drain_events(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: TimerToken) {
        if let Some(core) = self.core.as_mut() {
            core.handle_timer(ctx, timer);
        }
        self.drain_events(ctx);
    }

    fn on_inquiry_complete(&mut self, ctx: &mut NodeCtx<'_>, tech: RadioTech, hits: Vec<InquiryHit>) {
        if let Some(core) = self.core.as_mut() {
            core.handle_inquiry_complete(ctx, tech, hits);
        }
        self.drain_events(ctx);
    }

    fn on_incoming_connection(&mut self, _ctx: &mut NodeCtx<'_>, incoming: IncomingConnection) -> bool {
        match self.core.as_mut() {
            Some(core) => {
                core.engine.set_role(incoming.link, LinkRole::IncomingUnidentified);
                true
            }
            None => false,
        }
    }

    fn on_connected(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        attempt: AttemptId,
        link: LinkId,
        peer: NodeId,
        tech: RadioTech,
    ) {
        if let Some(core) = self.core.as_mut() {
            core.handle_connected(ctx, attempt, link, peer, tech);
        }
        self.drain_events(ctx);
    }

    fn on_connect_failed(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        attempt: AttemptId,
        peer: NodeId,
        tech: RadioTech,
        error: ConnectError,
    ) {
        if let Some(core) = self.core.as_mut() {
            core.handle_connect_failed(ctx, attempt, peer, tech, error);
        }
        self.drain_events(ctx);
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, from: NodeId, payload: Vec<u8>) {
        if let Some(core) = self.core.as_mut() {
            core.handle_message(ctx, link, from, payload);
        }
        self.drain_events(ctx);
    }

    fn on_disconnected(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, peer: NodeId, reason: DisconnectReason) {
        if let Some(core) = self.core.as_mut() {
            core.handle_disconnected(ctx, link, peer, reason);
        }
        self.drain_events(ctx);
    }
}

impl Core {
    fn my_address(&self) -> DeviceAddress {
        self.daemon.info().address
    }

    fn my_info(&self) -> DeviceInfo {
        self.daemon.info().clone()
    }

    fn send_frame(&self, ctx: &mut NodeCtx<'_>, link: LinkId, message: &Message) {
        let _ = ctx.send(link, wire::encode(message));
    }

    /// Radio technology to use towards a device (first configured technology
    /// the target also supports, falling back to our primary one).
    fn tech_for(&self, target: Option<&DeviceInfo>) -> RadioTech {
        let primary = self.config.techs.first().copied().unwrap_or(RadioTech::Bluetooth);
        match target {
            Some(info) => self
                .config
                .techs
                .iter()
                .copied()
                .find(|t| info.supports(*t))
                .unwrap_or(primary),
            None => primary,
        }
    }

    fn start(&mut self, ctx: &mut NodeCtx<'_>) {
        // Stagger the plugin inquiry loops a little so co-located devices do
        // not scan in lock-step.
        for (idx, _tech) in self.config.techs.clone().iter().enumerate() {
            let jitter = SimDuration::from_millis(ctx.rng().range(0u64..2_000));
            ctx.schedule(jitter, token(KIND_INQUIRY, idx as u64));
        }
        ctx.schedule(self.config.monitor.interval, token(KIND_MONITOR, 0));
    }

    fn handle_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: TimerToken) {
        let kind = timer.0 >> KIND_SHIFT;
        let payload = timer.0 & PAYLOAD_MASK;
        match kind {
            KIND_INQUIRY => {
                let tech = match self.config.techs.get(payload as usize).copied() {
                    Some(t) => t,
                    None => return,
                };
                if let Some(plugin) = self.daemon.plugins_mut().get_mut(tech) {
                    if plugin.cycle_active {
                        // The previous cycle is still fetching; retry shortly.
                        ctx.schedule(SimDuration::from_secs(2), timer);
                        return;
                    }
                    plugin.begin_cycle(ctx.now());
                }
                ctx.start_inquiry(tech);
            }
            KIND_MONITOR => {
                self.monitor_pass(ctx);
                ctx.schedule(self.config.monitor.interval, token(KIND_MONITOR, 0));
            }
            KIND_APP => self.events.push_back(AppEvent::Timer(payload)),
            KIND_RETRY => {
                if let Some(conn) = self.retry_conns.remove(&payload) {
                    self.try_reply_reconnect(ctx, conn);
                }
            }
            _ => {}
        }
    }

    fn schedule_next_inquiry(&mut self, ctx: &mut NodeCtx<'_>, tech: RadioTech) {
        if let Some(idx) = self.config.techs.iter().position(|t| *t == tech) {
            // Random per-cycle jitter keeps co-located devices from scanning
            // in lock-step, which together with the Bluetooth inquiry
            // asymmetry (§3.4.2) would otherwise make them mutually
            // invisible for long stretches.
            let base = self.config.discovery.inquiry_interval;
            let jitter = SimDuration::from_millis(ctx.rng().range(0u64..=base.as_millis().max(1)));
            ctx.schedule(base + jitter, token(KIND_INQUIRY, idx as u64));
        }
    }

    fn handle_inquiry_complete(&mut self, ctx: &mut NodeCtx<'_>, tech: RadioTech, hits: Vec<InquiryHit>) {
        let now = ctx.now();
        let service_check = self.config.discovery.service_check_interval;
        let mut fetches: Vec<(NodeId, DeviceAddress, u8)> = Vec::new();
        for hit in &hits {
            let addr = DeviceAddress::from_node(hit.node);
            if let Some(plugin) = self.daemon.plugins_mut().get_mut(tech) {
                plugin.note_responder(addr);
            }
            if self.daemon.storage().needs_recheck(addr, now, service_check) {
                fetches.push((hit.node, addr, hit.quality));
            } else {
                self.daemon.storage_mut().mark_responded(addr, hit.quality, now);
            }
        }
        for (node, addr, quality) in fetches {
            if let Some(plugin) = self.daemon.plugins_mut().get_mut(tech) {
                plugin.note_fetch_started();
            }
            let attempt = ctx.connect(node, tech);
            self.pending.insert(attempt, PendingPurpose::DaemonFetch { peer: addr, tech, quality });
        }
        // If nothing needs fetching the cycle completes immediately.
        let cycle_done = self
            .daemon
            .plugins()
            .get(tech)
            .map(|p| p.pending_fetches == 0)
            .unwrap_or(true);
        if cycle_done {
            self.finish_discovery_cycle(ctx, tech);
        }
    }

    fn finish_discovery_cycle(&mut self, ctx: &mut NodeCtx<'_>, tech: RadioTech) {
        let now = ctx.now();
        let config = self.config.clone();
        let _removed = self.daemon.complete_cycle(tech, &config, now);
        self.schedule_next_inquiry(ctx, tech);
    }

    fn note_fetch_finished(&mut self, ctx: &mut NodeCtx<'_>, tech: RadioTech) {
        let done = self
            .daemon
            .plugins_mut()
            .get_mut(tech)
            .map(|p| p.cycle_active && p.note_fetch_finished())
            .unwrap_or(false);
        if done {
            self.finish_discovery_cycle(ctx, tech);
        }
    }

    fn handle_connected(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        attempt: AttemptId,
        link: LinkId,
        _peer: NodeId,
        _tech: RadioTech,
    ) {
        let purpose = match self.pending.remove(&attempt) {
            Some(p) => p,
            None => return,
        };
        match purpose {
            PendingPurpose::DaemonFetch { peer, tech, quality } => {
                self.engine.set_role(link, LinkRole::DaemonFetch { peer, quality });
                let requester = self.my_info();
                self.send_frame(ctx, link, &Message::InquiryRequest { requester });
                // The fetch completes when the response arrives or the link
                // drops; `tech` is needed then, remember it via the plugin.
                let _ = tech;
            }
            PendingPurpose::AppConnect { conn } => {
                let (message, ok) = match self.connections.get_mut(conn) {
                    Some(c) => {
                        c.link = Some(link);
                        c.state = ConnState::AwaitingAccept;
                        let client = self.daemon.info().clone();
                        let msg = match &c.kind {
                            ConnKind::OutgoingDirect => Message::ConnectRequest {
                                conn_id: conn,
                                service: c.service.clone(),
                                client,
                                reply_context: None,
                            },
                            ConnKind::OutgoingBridged { .. } => Message::BridgeRequest {
                                conn_id: conn,
                                destination: c.remote,
                                service: c.service.clone(),
                                client,
                                reply_context: None,
                            },
                            ConnKind::Incoming { .. } => Message::ConnectRequest {
                                conn_id: conn,
                                service: c.service.clone(),
                                client,
                                reply_context: Some(conn),
                            },
                        };
                        (msg, true)
                    }
                    None => (Message::Disconnect { conn_id: conn }, false),
                };
                if ok {
                    self.engine.set_role(link, LinkRole::AppConnection(conn));
                    self.send_frame(ctx, link, &message);
                } else {
                    ctx.close(link);
                }
            }
            PendingPurpose::BridgeLeg { conn } => {
                let peer_addr = DeviceAddress::from_node(_peer);
                let message = match self.bridge.get_mut(conn) {
                    Some(pair) => {
                        pair.downstream = Some(link);
                        if peer_addr == pair.destination {
                            Message::ConnectRequest {
                                conn_id: conn,
                                service: pair.service.clone(),
                                client: pair.client.clone(),
                                reply_context: pair.reply_context,
                            }
                        } else {
                            Message::BridgeRequest {
                                conn_id: conn,
                                destination: pair.destination,
                                service: pair.service.clone(),
                                client: pair.client.clone(),
                                reply_context: pair.reply_context,
                            }
                        }
                    }
                    None => {
                        ctx.close(link);
                        return;
                    }
                };
                self.engine.set_role(link, LinkRole::BridgeDownstream(conn));
                self.send_frame(ctx, link, &message);
            }
            PendingPurpose::Handover { conn, via } => {
                let message = match self.connections.get(conn) {
                    Some(c) => {
                        let target = self.handover_destination(c);
                        if via == target {
                            Message::ConnectRequest {
                                conn_id: conn,
                                service: c.service.clone(),
                                client: self.daemon.info().clone(),
                                reply_context: None,
                            }
                        } else {
                            Message::BridgeRequest {
                                conn_id: conn,
                                destination: target,
                                service: c.service.clone(),
                                client: self.daemon.info().clone(),
                                reply_context: None,
                            }
                        }
                    }
                    None => {
                        ctx.close(link);
                        return;
                    }
                };
                self.engine.set_role(link, LinkRole::HandoverPending(conn));
                self.send_frame(ctx, link, &message);
            }
            PendingPurpose::ReplyConnect { conn } => {
                let message = match self.connections.get_mut(conn) {
                    Some(c) => {
                        c.link = Some(link);
                        c.state = ConnState::AwaitingAccept;
                        let first_hop_is_client = DeviceAddress::from_node(_peer) == c.remote;
                        let client = self.daemon.info().clone();
                        if first_hop_is_client {
                            Message::ConnectRequest {
                                conn_id: conn,
                                service: c.service.clone(),
                                client,
                                reply_context: Some(conn),
                            }
                        } else {
                            Message::BridgeRequest {
                                conn_id: conn,
                                destination: c.remote,
                                service: c.service.clone(),
                                client,
                                reply_context: Some(conn),
                            }
                        }
                    }
                    None => {
                        ctx.close(link);
                        return;
                    }
                };
                self.engine.set_role(link, LinkRole::AppConnection(conn));
                self.send_frame(ctx, link, &message);
            }
        }
    }

    fn handle_connect_failed(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        attempt: AttemptId,
        _peer: NodeId,
        tech: RadioTech,
        _error: ConnectError,
    ) {
        let purpose = match self.pending.remove(&attempt) {
            Some(p) => p,
            None => return,
        };
        match purpose {
            PendingPurpose::DaemonFetch { .. } => {
                self.note_fetch_finished(ctx, tech);
            }
            PendingPurpose::AppConnect { conn } => {
                if let Some(c) = self.connections.get_mut(conn) {
                    c.state = ConnState::Failed;
                    c.link = None;
                }
                self.events
                    .push_back(AppEvent::ConnectFailed(conn, PeerHoodError::Remote(_error.to_string())));
            }
            PendingPurpose::BridgeLeg { conn } => {
                self.fail_bridge_pair(ctx, conn, ErrorCode::DownstreamFailed);
            }
            PendingPurpose::Handover { conn, .. } => {
                self.handover_attempt_failed(ctx, conn);
            }
            PendingPurpose::ReplyConnect { conn } => {
                if let Some(c) = self.connections.get_mut(conn) {
                    c.state = ConnState::Closed;
                    c.link = None;
                }
                self.schedule_reply_retry(ctx, conn);
            }
        }
    }

    fn handle_message(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, from: NodeId, payload: Vec<u8>) {
        let message = match wire::decode(&payload) {
            Ok(m) => m,
            Err(_) => return,
        };
        let role = self.engine.role(link).unwrap_or(LinkRole::IncomingUnidentified);
        match role {
            LinkRole::IncomingUnidentified => self.identify_incoming(ctx, link, from, message),
            LinkRole::DaemonFetch { peer, quality } => {
                self.handle_fetch_response(ctx, link, peer, quality, message)
            }
            LinkRole::DaemonServe => {
                // The requester normally just closes; ignore anything else.
            }
            LinkRole::AppConnection(conn) => self.handle_app_message(ctx, link, conn, message),
            LinkRole::HandoverPending(conn) => self.handle_handover_message(ctx, link, conn, message),
            LinkRole::BridgeUpstream(conn) => {
                self.handle_bridge_message(ctx, link, conn, BridgeSide::Upstream, message)
            }
            LinkRole::BridgeDownstream(conn) => {
                self.handle_bridge_message(ctx, link, conn, BridgeSide::Downstream, message)
            }
        }
    }

    fn identify_incoming(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, _from: NodeId, message: Message) {
        match message {
            Message::InquiryRequest { requester: _ } => {
                let response = self
                    .daemon
                    .build_inquiry_response(self.config.discovery.max_export_jumps, self.bridge.load_percent());
                self.engine.set_role(link, LinkRole::DaemonServe);
                self.send_frame(ctx, link, &response);
            }
            Message::ConnectRequest {
                conn_id,
                service,
                client,
                reply_context,
            } => self.handle_connect_request(ctx, link, conn_id, service, client, reply_context),
            Message::BridgeRequest {
                conn_id,
                destination,
                service,
                client,
                reply_context,
            } => self.handle_bridge_request(ctx, link, conn_id, destination, service, client, reply_context),
            _ => {
                // Anything else on an unidentified link is a protocol error.
                ctx.close(link);
                self.engine.remove(link);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_connect_request(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        link: LinkId,
        conn_id: ConnectionId,
        service: String,
        client: DeviceInfo,
        reply_context: Option<ConnectionId>,
    ) {
        let now = ctx.now();
        // Case 1: the server is calling back with the result of a migrated
        // task — attach the link to the waiting session (§5.3).
        if let Some(orig) = reply_context {
            if self.connections.get(orig).is_some() {
                if let Some(c) = self.connections.get_mut(orig) {
                    if let Some(old) = c.link.take() {
                        if old != link {
                            ctx.close(old);
                            self.engine.remove(old);
                        }
                    }
                    c.establish(link, now);
                }
                self.engine.set_role(link, LinkRole::AppConnection(orig));
                self.send_frame(ctx, link, &Message::Accept { conn_id });
                self.events.push_back(AppEvent::ConnectionChanged(orig));
                return;
            }
        }
        // Case 2: re-establishment of a session this device already knows
        // (server side of a routing handover or client re-attachment).
        if self.connections.get(conn_id).is_some() {
            if let Some(c) = self.connections.get_mut(conn_id) {
                if let Some(old) = c.link.take() {
                    if old != link {
                        ctx.close(old);
                        self.engine.remove(old);
                    }
                }
                c.establish(link, now);
            }
            self.engine.set_role(link, LinkRole::AppConnection(conn_id));
            self.send_frame(ctx, link, &Message::Accept { conn_id });
            self.events.push_back(AppEvent::ConnectionChanged(conn_id));
            self.flush_outbox(ctx, conn_id);
            return;
        }
        // Case 3: splice of an existing bridge pair's upstream leg (the
        // per-hop handover of §5.2.1's monitoring-limitation discussion).
        if self.bridge.get(conn_id).is_some() {
            let old_upstream = self.bridge.get(conn_id).map(|p| p.upstream);
            if let Some(pair) = self.bridge.get_mut(conn_id) {
                pair.upstream = link;
            }
            if let Some(old) = old_upstream {
                if old != link {
                    ctx.close(old);
                    self.engine.remove(old);
                }
            }
            self.engine.set_role(link, LinkRole::BridgeUpstream(conn_id));
            self.send_frame(ctx, link, &Message::Accept { conn_id });
            return;
        }
        // Case 4: a brand-new incoming connection to one of our services.
        if self.daemon.registry().find(&service).is_some() {
            let connection = AppConnection::incoming(conn_id, client.clone(), service.clone(), link, now);
            self.connections.insert(connection);
            self.engine.set_role(link, LinkRole::AppConnection(conn_id));
            self.send_frame(ctx, link, &Message::Accept { conn_id });
            self.events.push_back(AppEvent::PeerConnected {
                conn: conn_id,
                client,
                service,
            });
        } else {
            self.send_frame(
                ctx,
                link,
                &Message::Error {
                    conn_id,
                    code: ErrorCode::ServiceUnavailable,
                    detail: format!("no service named {service}"),
                },
            );
            ctx.close(link);
            self.engine.remove(link);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_bridge_request(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        link: LinkId,
        conn_id: ConnectionId,
        destination: DeviceAddress,
        service: String,
        client: DeviceInfo,
        reply_context: Option<ConnectionId>,
    ) {
        // A bridge request whose destination is this very device behaves like
        // a direct connect request (defensive; bridges normally convert it).
        if destination == self.my_address() {
            self.handle_connect_request(ctx, link, conn_id, service, client, reply_context);
            return;
        }
        if !self.config.bridge.enabled || !self.bridge.has_capacity() {
            self.bridge.record_refusal();
            self.send_frame(
                ctx,
                link,
                &Message::Error {
                    conn_id,
                    code: ErrorCode::BridgeBusy,
                    detail: "bridge service unavailable or at capacity".into(),
                },
            );
            ctx.close(link);
            self.engine.remove(link);
            return;
        }
        // Select the next hop from the device storage (Fig. 4.4: "get devices
        // list, find given address").
        let next_hop = match self.daemon.storage().get(destination) {
            Some(entry) => {
                if entry.route.is_direct() {
                    Some((destination, self.tech_for(Some(&entry.info))))
                } else {
                    entry.route.bridge.map(|b| {
                        let tech = self.tech_for(self.daemon.storage().get(b).map(|e| &e.info));
                        (b, tech)
                    })
                }
            }
            None => None,
        };
        let (hop, tech) = match next_hop {
            Some(h) => h,
            None => {
                self.bridge.record_refusal();
                self.send_frame(
                    ctx,
                    link,
                    &Message::Error {
                        conn_id,
                        code: ErrorCode::NoRouteToDestination,
                        detail: format!("no route to {destination}"),
                    },
                );
                ctx.close(link);
                self.engine.remove(link);
                return;
            }
        };
        self.bridge
            .insert_pending(conn_id, link, destination, service, client, reply_context);
        self.engine.set_role(link, LinkRole::BridgeUpstream(conn_id));
        let attempt = ctx.connect(hop.node_id(), tech);
        self.pending.insert(attempt, PendingPurpose::BridgeLeg { conn: conn_id });
    }

    fn handle_fetch_response(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        link: LinkId,
        _peer: DeviceAddress,
        quality: u8,
        message: Message,
    ) {
        if let Message::InquiryResponse {
            device,
            services,
            neighbors,
            bridge_load_percent,
        } = message
        {
            let config = self.config.clone();
            let tech = self.tech_for(Some(&device));
            self.daemon.process_inquiry_response(
                device,
                services,
                &neighbors,
                bridge_load_percent,
                quality,
                &config,
                ctx.now(),
            );
            ctx.close(link);
            self.engine.remove(link);
            self.note_fetch_finished(ctx, tech);
        }
    }

    fn handle_app_message(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, conn: ConnectionId, message: Message) {
        // Stale links must not affect the session (the connection may already
        // have been handed over to a different link).
        let is_current = self.connections.get(conn).map(|c| c.link == Some(link)).unwrap_or(false);
        if !is_current {
            if matches!(message, Message::Disconnect { .. }) {
                ctx.close(link);
                self.engine.remove(link);
            }
            return;
        }
        match message {
            Message::Accept { .. } => {
                let now = ctx.now();
                let (fire, reconnected_to) = match self.connections.get_mut(conn) {
                    Some(c) if c.state == ConnState::AwaitingAccept => {
                        c.establish(link, now);
                        if c.reconnecting {
                            c.reconnecting = false;
                            (true, Some(c.remote))
                        } else {
                            (true, None)
                        }
                    }
                    _ => (false, None),
                };
                if fire {
                    let is_incoming = self
                        .connections
                        .get(conn)
                        .map(|c| !c.is_outgoing())
                        .unwrap_or(false);
                    if is_incoming {
                        // Server reply channel established: deliver queued results.
                        self.reply_reconnections += 1;
                        self.events.push_back(AppEvent::ConnectionChanged(conn));
                        self.flush_outbox(ctx, conn);
                    } else if let Some(provider) = reconnected_to {
                        self.events.push_back(AppEvent::ServiceReconnected(conn, provider));
                    } else {
                        self.events.push_back(AppEvent::Connected(conn));
                    }
                }
            }
            Message::Error { code, detail, .. } => {
                let outgoing = self.connections.get(conn).map(|c| c.is_outgoing()).unwrap_or(true);
                if let Some(c) = self.connections.get_mut(conn) {
                    c.link = None;
                    c.state = if outgoing { ConnState::Failed } else { ConnState::Closed };
                }
                ctx.close(link);
                self.engine.remove(link);
                if outgoing {
                    self.events.push_back(AppEvent::ConnectFailed(
                        conn,
                        PeerHoodError::Remote(format!("{code}: {detail}")),
                    ));
                } else {
                    self.schedule_reply_retry(ctx, conn);
                }
            }
            Message::Data { payload, .. } => {
                self.events.push_back(AppEvent::Data(conn, payload));
            }
            Message::Disconnect { .. } => {
                if let Some(c) = self.connections.get_mut(conn) {
                    c.mark_closed();
                }
                ctx.close(link);
                self.engine.remove(link);
                self.events.push_back(AppEvent::Disconnected(conn, true));
            }
            _ => {}
        }
    }

    fn handle_handover_message(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, conn: ConnectionId, message: Message) {
        match message {
            Message::Accept { .. } => {
                let now = ctx.now();
                let old_link = self.connections.get(conn).and_then(|c| c.link);
                let via = self
                    .engine
                    .role(link)
                    .and_then(|_| self.pending_handover_via(conn));
                if let Some(c) = self.connections.get_mut(conn) {
                    if let Some(old) = old_link {
                        if old != link {
                            ctx.close(old);
                        }
                    }
                    c.establish(link, now);
                    if let Some(via) = via {
                        c.kind = ConnKind::OutgoingBridged { bridge: via };
                    }
                    if let Some(monitor) = c.monitor.as_mut() {
                        monitor.switch_succeeded();
                    }
                }
                if let Some(old) = old_link {
                    if old != link {
                        self.engine.remove(old);
                    }
                }
                self.engine.set_role(link, LinkRole::AppConnection(conn));
                self.handover_completions += 1;
                self.events.push_back(AppEvent::ConnectionChanged(conn));
            }
            Message::Error { .. } => {
                ctx.close(link);
                self.engine.remove(link);
                self.handover_attempt_failed(ctx, conn);
            }
            _ => {}
        }
    }

    /// The bridge the in-flight handover of `conn` goes through, recovered
    /// from the connection's stored candidate.
    fn pending_handover_via(&self, conn: ConnectionId) -> Option<DeviceAddress> {
        self.connections
            .get(conn)
            .and_then(|c| c.monitor.as_ref())
            .and_then(|m| m.candidate.map(|cand| cand.bridge))
            .or_else(|| {
                // The candidate is consumed on begin_switch; fall back to the
                // last pending Handover purpose if any is still recorded.
                self.pending.values().find_map(|p| match p {
                    PendingPurpose::Handover { conn: c, via } if *c == conn => Some(*via),
                    _ => None,
                })
            })
    }

    fn handle_bridge_message(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        link: LinkId,
        conn: ConnectionId,
        side: BridgeSide,
        message: Message,
    ) {
        // Ignore traffic on legs that are no longer part of the pair.
        let current = match self.bridge.get(conn) {
            Some(pair) => match side {
                BridgeSide::Upstream => pair.upstream == link,
                BridgeSide::Downstream => pair.downstream == Some(link),
            },
            None => false,
        };
        if !current {
            return;
        }
        match message {
            Message::Accept { .. } if side == BridgeSide::Downstream => {
                if let Some(pair) = self.bridge.get_mut(conn) {
                    pair.established = true;
                }
                if let Some(upstream) = self.bridge.get(conn).map(|p| p.upstream) {
                    self.send_frame(ctx, upstream, &Message::Accept { conn_id: conn });
                }
            }
            Message::Error { code, detail, .. } if side == BridgeSide::Downstream => {
                if let Some(pair) = self.bridge.remove(conn) {
                    self.send_frame(ctx, pair.upstream, &Message::Error { conn_id: conn, code, detail });
                    ctx.close(pair.upstream);
                    ctx.close(link);
                    self.engine.remove(pair.upstream);
                    self.engine.remove(link);
                }
            }
            Message::Data { payload, .. } => {
                if let Some((_, other, _)) = self.bridge.relay_target(link) {
                    self.bridge.record_relay(conn, payload.len());
                    self.send_frame(ctx, other, &Message::Data { conn_id: conn, payload });
                }
            }
            Message::Disconnect { .. } => {
                if let Some(pair) = self.bridge.remove(conn) {
                    let other = match side {
                        BridgeSide::Upstream => pair.downstream,
                        BridgeSide::Downstream => Some(pair.upstream),
                    };
                    if let Some(other) = other {
                        self.send_frame(ctx, other, &Message::Disconnect { conn_id: conn });
                        ctx.close(other);
                        self.engine.remove(other);
                    }
                    ctx.close(link);
                    self.engine.remove(link);
                }
            }
            _ => {}
        }
    }

    fn fail_bridge_pair(&mut self, ctx: &mut NodeCtx<'_>, conn: ConnectionId, code: ErrorCode) {
        if let Some(pair) = self.bridge.remove(conn) {
            self.send_frame(
                ctx,
                pair.upstream,
                &Message::Error {
                    conn_id: conn,
                    code,
                    detail: "bridge leg failed".into(),
                },
            );
            ctx.close(pair.upstream);
            self.engine.remove(pair.upstream);
            if let Some(down) = pair.downstream {
                ctx.close(down);
                self.engine.remove(down);
            }
        }
    }

    fn handle_disconnected(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, _peer: NodeId, reason: DisconnectReason) {
        let role = match self.engine.remove(link) {
            Some(r) => r,
            None => return,
        };
        match role {
            LinkRole::IncomingUnidentified | LinkRole::DaemonServe => {}
            LinkRole::DaemonFetch { peer, .. } => {
                let tech = self.tech_for(self.daemon.storage().get(peer).map(|e| &e.info));
                self.note_fetch_finished(ctx, tech);
            }
            LinkRole::AppConnection(conn) => self.app_link_lost(ctx, conn, link, reason),
            LinkRole::HandoverPending(conn) => self.handover_attempt_failed(ctx, conn),
            LinkRole::BridgeUpstream(conn) => {
                let matches = self.bridge.get(conn).map(|p| p.upstream == link).unwrap_or(false);
                if matches {
                    if let Some(pair) = self.bridge.remove(conn) {
                        if let Some(down) = pair.downstream {
                            self.send_frame(ctx, down, &Message::Disconnect { conn_id: conn });
                            ctx.close(down);
                            self.engine.remove(down);
                        }
                    }
                }
            }
            LinkRole::BridgeDownstream(conn) => {
                let matches = self.bridge.get(conn).map(|p| p.downstream == Some(link)).unwrap_or(false);
                if matches {
                    self.fail_bridge_pair(ctx, conn, ErrorCode::DownstreamFailed);
                }
            }
        }
    }

    fn app_link_lost(&mut self, ctx: &mut NodeCtx<'_>, conn: ConnectionId, link: LinkId, reason: DisconnectReason) {
        let is_current = self.connections.get(conn).map(|c| c.link == Some(link)).unwrap_or(false);
        if !is_current {
            return;
        }
        let graceful = reason == DisconnectReason::PeerClosed;
        if let Some(c) = self.connections.get_mut(conn) {
            c.mark_closed();
        }
        let (outgoing, sending) = match self.connections.get(conn) {
            Some(c) => (c.is_outgoing(), c.sending),
            None => return,
        };
        if graceful || !outgoing || !sending || !self.config.handover.enabled {
            self.events.push_back(AppEvent::Disconnected(conn, graceful));
            return;
        }
        // The connection broke while still needed: try routing handover
        // first, then service reconnection (Fig. 5.5 / §5.2.2).
        if self.try_routing_handover(ctx, conn) {
            return;
        }
        self.propose_service_reconnection(conn);
    }

    fn handover_destination(&self, c: &AppConnection) -> DeviceAddress {
        match self.config.handover.target {
            HandoverTarget::FinalDestination => c.remote,
            HandoverTarget::LinkPeer => c.kind.first_hop(c.remote).unwrap_or(c.remote),
        }
    }

    fn refresh_handover_candidates(&mut self, conn: ConnectionId) {
        let (target, exclude) = match self.connections.get(conn) {
            Some(c) => (self.handover_destination(c), c.kind.first_hop(c.remote)),
            None => return,
        };
        let mut candidates = self.daemon.storage().handover_candidates(target);
        // Fall back on the stored multi-hop route towards the target if no
        // direct neighbour reports it.
        if candidates.is_empty() {
            if let Some(entry) = self.daemon.storage().get(target) {
                if let Some(bridge) = entry.route.bridge {
                    let ours = entry.route.first_hop_quality();
                    let theirs = entry.route.hop_qualities.get(1).copied().unwrap_or(0);
                    candidates.push((bridge, ours, theirs));
                }
            }
        }
        if let Some(c) = self.connections.get_mut(conn) {
            if let Some(monitor) = c.monitor.as_mut() {
                monitor.refresh_candidates(&candidates, exclude);
            }
        }
    }

    fn try_routing_handover(&mut self, ctx: &mut NodeCtx<'_>, conn: ConnectionId) -> bool {
        // If a replacement route is already being established, let it resolve
        // instead of stacking a second recovery on top of it.
        if self
            .connections
            .get(conn)
            .and_then(|c| c.monitor.as_ref())
            .map(|m| m.is_switching())
            .unwrap_or(false)
        {
            return true;
        }
        self.refresh_handover_candidates(conn);
        let max_attempts = self.config.handover.max_routing_attempts;
        let candidate = match self.connections.get_mut(conn) {
            Some(c) => match c.monitor.as_mut() {
                Some(m) if !m.attempts_exhausted(max_attempts) => m.begin_switch(),
                _ => None,
            },
            None => None,
        };
        let candidate = match candidate {
            Some(c) => c,
            None => return false,
        };
        let tech = self.tech_for(self.daemon.storage().get(candidate.bridge).map(|e| &e.info));
        let attempt = ctx.connect(candidate.bridge.node_id(), tech);
        self.pending.insert(
            attempt,
            PendingPurpose::Handover {
                conn,
                via: candidate.bridge,
            },
        );
        true
    }

    fn handover_attempt_failed(&mut self, ctx: &mut NodeCtx<'_>, conn: ConnectionId) {
        if let Some(c) = self.connections.get_mut(conn) {
            if let Some(m) = c.monitor.as_mut() {
                m.switch_failed();
            }
        }
        let still_connected = self.connections.get(conn).map(|c| c.is_established()).unwrap_or(false);
        if still_connected {
            // The old route is still up; keep monitoring.
            return;
        }
        // The connection is down and the handover attempt failed: retry or
        // fall back to service reconnection.
        if self.try_routing_handover(ctx, conn) {
            return;
        }
        self.propose_service_reconnection(conn);
    }

    fn propose_service_reconnection(&mut self, conn: ConnectionId) {
        let (service, remote, sending) = match self.connections.get(conn) {
            Some(c) => (c.service.clone(), c.remote, c.sending),
            None => return,
        };
        if !self.config.handover.allow_service_reconnection || !sending {
            self.events.push_back(AppEvent::Disconnected(conn, false));
            return;
        }
        let candidates: Vec<DeviceAddress> = self
            .daemon
            .storage()
            .find_service_providers(&service)
            .into_iter()
            .map(|(d, _)| d.info.address)
            .filter(|a| *a != remote)
            .collect();
        if candidates.is_empty() {
            self.events.push_back(AppEvent::Disconnected(conn, false));
        } else {
            self.events.push_back(AppEvent::ReconnectQuery(conn, candidates));
        }
    }

    fn start_service_reconnection(&mut self, ctx: &mut NodeCtx<'_>, conn: ConnectionId, candidates: &[DeviceAddress]) {
        let provider = candidates
            .iter()
            .copied()
            .find(|a| self.daemon.storage().get(*a).is_some());
        let provider = match provider {
            Some(p) => p,
            None => {
                self.abandon_connection(conn);
                return;
            }
        };
        let route = match self.daemon.storage().get(provider) {
            Some(entry) => entry.route.clone(),
            None => {
                self.abandon_connection(conn);
                return;
            }
        };
        let kind = if route.is_direct() {
            ConnKind::OutgoingDirect
        } else {
            match route.bridge {
                Some(bridge) => ConnKind::OutgoingBridged { bridge },
                None => ConnKind::OutgoingDirect,
            }
        };
        let monitor_cfg = self.config.monitor.clone();
        let handover_target = self.config.handover.target;
        let first_hop = kind.first_hop(provider).unwrap_or(provider);
        let tech = self.tech_for(self.daemon.storage().get(first_hop).map(|e| &e.info));
        if let Some(c) = self.connections.get_mut(conn) {
            c.remote = provider;
            c.kind = kind;
            c.state = ConnState::Connecting;
            c.link = None;
            c.reconnecting = true;
            c.monitor = Some(HandoverMonitor::new(
                monitor_cfg.quality_threshold,
                monitor_cfg.low_count_limit,
                handover_target,
            ));
        } else {
            return;
        }
        let attempt = ctx.connect(first_hop.node_id(), tech);
        self.pending.insert(attempt, PendingPurpose::AppConnect { conn });
    }

    fn abandon_connection(&mut self, conn: ConnectionId) {
        if let Some(c) = self.connections.get_mut(conn) {
            c.mark_closed();
        }
        self.events.push_back(AppEvent::Disconnected(conn, false));
    }

    fn monitor_pass(&mut self, ctx: &mut NodeCtx<'_>) {
        if !self.config.handover.enabled {
            return;
        }
        let ids = self.connections.ids();
        for conn in ids {
            let (established, outgoing, sending, link) = match self.connections.get(conn) {
                Some(c) => (c.is_established(), c.is_outgoing(), c.sending, c.link),
                None => continue,
            };
            if !established || !outgoing || !sending {
                continue;
            }
            // State 0: keep the alternative-route candidate fresh.
            self.refresh_handover_candidates(conn);
            // State 1: sample quality and count consecutive low readings.
            let quality = link.and_then(|l| ctx.link_quality(l));
            let trigger = match self.connections.get_mut(conn).and_then(|c| c.monitor.as_mut()) {
                Some(m) => m.record_quality(quality),
                None => false,
            };
            if trigger {
                // State 2: establish the replacement route.
                let max_attempts = self.config.handover.max_routing_attempts;
                let candidate = self.connections.get_mut(conn).and_then(|c| {
                    c.monitor
                        .as_mut()
                        .filter(|m| !m.attempts_exhausted(max_attempts))
                        .and_then(|m| m.begin_switch())
                });
                if let Some(candidate) = candidate {
                    let tech = self.tech_for(self.daemon.storage().get(candidate.bridge).map(|e| &e.info));
                    let attempt = ctx.connect(candidate.bridge.node_id(), tech);
                    self.pending.insert(
                        attempt,
                        PendingPurpose::Handover {
                            conn,
                            via: candidate.bridge,
                        },
                    );
                }
            }
        }
    }

    fn flush_outbox(&mut self, ctx: &mut NodeCtx<'_>, conn: ConnectionId) {
        let (link, payloads) = match self.connections.get_mut(conn) {
            Some(c) if c.is_established() => (c.link, std::mem::take(&mut c.outbox)),
            _ => return,
        };
        if let Some(link) = link {
            for payload in payloads {
                self.send_frame(ctx, link, &Message::Data { conn_id: conn, payload });
            }
        }
    }

    fn schedule_reply_retry(&mut self, ctx: &mut NodeCtx<'_>, conn: ConnectionId) {
        let attempts = match self.connections.get_mut(conn) {
            Some(c) => {
                c.reconnect_attempts += 1;
                c.reconnect_attempts
            }
            None => return,
        };
        if attempts > self.config.handover.max_reply_attempts {
            self.events.push_back(AppEvent::Disconnected(conn, false));
            return;
        }
        let token_payload = self.next_retry_token;
        self.next_retry_token += 1;
        self.retry_conns.insert(token_payload, conn);
        ctx.schedule(self.config.handover.reply_retry_interval, token(KIND_RETRY, token_payload));
    }

    fn try_reply_reconnect(&mut self, ctx: &mut NodeCtx<'_>, conn: ConnectionId) {
        let (established, remote, has_outbox) = match self.connections.get(conn) {
            Some(c) => (c.is_established(), c.remote, !c.outbox.is_empty()),
            None => return,
        };
        if established || !has_outbox {
            return;
        }
        // Fig. 5.10: look the client up in the device storage and reconnect.
        let route = match self.daemon.storage().get(remote) {
            Some(entry) => entry.route.clone(),
            None => {
                self.schedule_reply_retry(ctx, conn);
                return;
            }
        };
        let first_hop = if route.is_direct() {
            remote
        } else {
            match route.bridge {
                Some(b) => b,
                None => remote,
            }
        };
        let tech = self.tech_for(self.daemon.storage().get(first_hop).map(|e| &e.info));
        if let Some(c) = self.connections.get_mut(conn) {
            c.state = ConnState::Connecting;
        }
        let attempt = ctx.connect(first_hop.node_id(), tech);
        self.pending.insert(attempt, PendingPurpose::ReplyConnect { conn });
    }

    // ------------------------------------------------------------------
    // Operations invoked through the PeerHoodApi
    // ------------------------------------------------------------------

    fn op_connect_to(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        target: DeviceAddress,
        service: &str,
    ) -> Result<ConnectionId, PeerHoodError> {
        let entry = self
            .daemon
            .storage()
            .get(target)
            .ok_or(PeerHoodError::UnknownDevice(target))?;
        let route = entry.route.clone();
        let target_info = entry.info.clone();
        let kind = if route.is_direct() {
            ConnKind::OutgoingDirect
        } else {
            let bridge = route.bridge.ok_or(PeerHoodError::NoRoute(target))?;
            ConnKind::OutgoingBridged { bridge }
        };
        let conn = self.connections.allocate_id(self.my_address());
        let mut connection = AppConnection::outgoing(conn, target, service, kind.clone(), ctx.now());
        if self.config.handover.enabled {
            connection.monitor = Some(HandoverMonitor::new(
                self.config.monitor.quality_threshold,
                self.config.monitor.low_count_limit,
                self.config.handover.target,
            ));
        }
        self.connections.insert(connection);
        let first_hop = kind.first_hop(target).unwrap_or(target);
        let hop_info = if first_hop == target {
            Some(target_info)
        } else {
            self.daemon.storage().get(first_hop).map(|e| e.info.clone())
        };
        let tech = self.tech_for(hop_info.as_ref());
        let attempt = ctx.connect(first_hop.node_id(), tech);
        self.pending.insert(attempt, PendingPurpose::AppConnect { conn });
        Ok(conn)
    }

    fn op_connect_to_service(&mut self, ctx: &mut NodeCtx<'_>, service: &str) -> Result<ConnectionId, PeerHoodError> {
        let provider = self
            .daemon
            .storage()
            .find_service_providers(service)
            .first()
            .map(|(d, _)| d.info.address)
            .ok_or_else(|| PeerHoodError::ServiceNotFound(service.to_string()))?;
        self.op_connect_to(ctx, provider, service)
    }

    fn op_send(&mut self, ctx: &mut NodeCtx<'_>, conn: ConnectionId, payload: Vec<u8>) -> Result<(), PeerHoodError> {
        let (established, outgoing, link) = match self.connections.get(conn) {
            Some(c) => (c.is_established(), c.is_outgoing(), c.link),
            None => return Err(PeerHoodError::UnknownConnection(conn)),
        };
        if established {
            if let Some(link) = link {
                self.send_frame(ctx, link, &Message::Data { conn_id: conn, payload });
                return Ok(());
            }
        }
        if !outgoing {
            // Server side with a broken connection: queue the result and
            // start result routing (§5.3 / Fig. 5.10).
            if let Some(c) = self.connections.get_mut(conn) {
                c.outbox.push(payload);
            }
            self.try_reply_reconnect(ctx, conn);
            return Ok(());
        }
        Err(PeerHoodError::InvalidConnectionState(conn))
    }

    fn op_close(&mut self, ctx: &mut NodeCtx<'_>, conn: ConnectionId) {
        if let Some(c) = self.connections.remove(conn) {
            if let Some(link) = c.link {
                self.send_frame(ctx, link, &Message::Disconnect { conn_id: conn });
                ctx.close(link);
                self.engine.remove(link);
            }
        }
    }

    fn op_set_sending(&mut self, conn: ConnectionId, sending: bool) -> Result<(), PeerHoodError> {
        match self.connections.get_mut(conn) {
            Some(c) => {
                c.sending = sending;
                Ok(())
            }
            None => Err(PeerHoodError::UnknownConnection(conn)),
        }
    }
}

impl<'a, 'w> PeerHoodApi<'a, 'w> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// This device's address.
    pub fn my_address(&self) -> DeviceAddress {
        self.core.my_address()
    }

    /// This device's full advertised description.
    pub fn my_info(&self) -> DeviceInfo {
        self.core.my_info()
    }

    /// Registers an application service with the daemon, making it
    /// discoverable by the whole PeerHood network.
    ///
    /// # Errors
    ///
    /// Fails if a service with the same name is already registered.
    pub fn register_service(&mut self, service: ServiceInfo) -> Result<(), PeerHoodError> {
        self.core.daemon.register_service(service)
    }

    /// Unregisters an application service.
    pub fn unregister_service(&mut self, name: &str) -> Option<ServiceInfo> {
        self.core.daemon.unregister_service(name)
    }

    /// `GetDeviceList`: every remote device currently in the storage.
    pub fn device_list(&self) -> Vec<StoredDevice> {
        self.core.daemon.storage().device_list().into_iter().cloned().collect()
    }

    /// `GetServiceList`: every `(device, service)` pair currently known.
    pub fn service_list(&self) -> Vec<(DeviceAddress, ServiceInfo)> {
        self.core
            .daemon
            .storage()
            .device_list()
            .into_iter()
            .flat_map(|d| d.services.iter().cloned().map(move |s| (d.info.address, s)))
            .collect()
    }

    /// Storage statistics.
    pub fn storage_stats(&self) -> StorageStats {
        self.core.daemon.stats()
    }

    /// Connects to a named service on a specific device. Returns the
    /// connection id immediately; establishment is reported through
    /// [`Application::on_connected`].
    ///
    /// # Errors
    ///
    /// Fails if the device is unknown or no route to it exists.
    pub fn connect_to(&mut self, target: DeviceAddress, service: &str) -> Result<ConnectionId, PeerHoodError> {
        self.core.op_connect_to(self.ctx, target, service)
    }

    /// Connects to the best-known provider of a named service.
    ///
    /// # Errors
    ///
    /// Fails if no known device offers the service.
    pub fn connect_to_service(&mut self, service: &str) -> Result<ConnectionId, PeerHoodError> {
        self.core.op_connect_to_service(self.ctx, service)
    }

    /// Writes application data on a connection. On a server-side connection
    /// whose client has disconnected, the payload is queued and delivered
    /// through result routing once the client is reachable again (§5.3).
    ///
    /// # Errors
    ///
    /// Fails if the connection is unknown, or if an outgoing connection is
    /// not currently established.
    pub fn send(&mut self, conn: ConnectionId, payload: Vec<u8>) -> Result<(), PeerHoodError> {
        self.core.op_send(self.ctx, conn, payload)
    }

    /// Sets the §5.3 "sending" flag: while `false`, the handover machinery
    /// leaves a broken connection alone and waits for the server to return
    /// results.
    ///
    /// # Errors
    ///
    /// Fails if the connection is unknown.
    pub fn set_sending(&mut self, conn: ConnectionId, sending: bool) -> Result<(), PeerHoodError> {
        self.core.op_set_sending(conn, sending)
    }

    /// Closes a connection and forgets it.
    pub fn close(&mut self, conn: ConnectionId) {
        self.core.op_close(self.ctx, conn);
    }

    /// Snapshot of one connection.
    pub fn connection(&self, conn: ConnectionId) -> Option<ConnectionSnapshot> {
        self.core.connections.get(conn).map(ConnectionSnapshot::from)
    }

    /// Snapshots of all connections.
    pub fn connections(&self) -> Vec<ConnectionSnapshot> {
        self.core.connections.iter().map(ConnectionSnapshot::from).collect()
    }

    /// Samples the link quality of an established connection.
    pub fn connection_quality(&mut self, conn: ConnectionId) -> Option<u8> {
        let link = self.core.connections.get(conn)?.link?;
        self.ctx.link_quality(link)
    }

    /// Schedules an application timer delivered through
    /// [`Application::on_timer`].
    pub fn schedule_timer(&mut self, after: SimDuration, token_value: u64) {
        self.ctx.schedule(after, token(KIND_APP, token_value));
    }

    /// The bridge service load of this node (0-100).
    pub fn bridge_load_percent(&self) -> u8 {
        self.core.bridge.load_percent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MobilityClass;
    use simnet::{MobilityModel, Point, World, WorldConfig};

    /// A scriptable test application that records every callback and echoes
    /// received data back when asked to.
    #[derive(Default)]
    struct TestApp {
        service: Option<&'static str>,
        echo: bool,
        connected: Vec<ConnectionId>,
        peer_connected: Vec<(ConnectionId, String)>,
        data: Vec<(ConnectionId, Vec<u8>)>,
        disconnected: Vec<(ConnectionId, bool)>,
        changed: Vec<ConnectionId>,
        failed: Vec<(ConnectionId, PeerHoodError)>,
    }

    impl TestApp {
        fn server(service: &'static str, echo: bool) -> Self {
            TestApp {
                service: Some(service),
                echo,
                ..TestApp::default()
            }
        }
    }

    impl Application for TestApp {
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn on_start(&mut self, api: &mut PeerHoodApi<'_, '_>) {
            if let Some(name) = self.service {
                api.register_service(ServiceInfo::new(name, "test", 10)).unwrap();
            }
        }
        fn on_peer_connected(&mut self, _api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, _client: DeviceInfo, service: &str) {
            self.peer_connected.push((conn, service.to_string()));
        }
        fn on_connected(&mut self, _api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId) {
            self.connected.push(conn);
        }
        fn on_connect_failed(&mut self, _api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, error: PeerHoodError) {
            self.failed.push((conn, error));
        }
        fn on_data(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, payload: Vec<u8>) {
            if self.echo {
                let mut reply = payload.clone();
                reply.reverse();
                let _ = api.send(conn, reply);
            }
            self.data.push((conn, payload));
        }
        fn on_disconnected(&mut self, _api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, graceful: bool) {
            self.disconnected.push((conn, graceful));
        }
        fn on_connection_changed(&mut self, _api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId) {
            self.changed.push(conn);
        }
    }

    fn peerhood(name: &str, mobility: MobilityClass, app: TestApp) -> Box<PeerHoodNode> {
        Box::new(PeerHoodNode::new(PeerHoodConfig::new(name, mobility), Box::new(app)))
    }

    fn fast_discovery_config(name: &str, mobility: MobilityClass) -> PeerHoodConfig {
        let mut cfg = PeerHoodConfig::new(name, mobility);
        cfg.discovery.inquiry_interval = SimDuration::from_secs(3);
        cfg
    }

    fn bt() -> [RadioTech; 1] {
        [RadioTech::Bluetooth]
    }

    #[test]
    fn discovery_connect_and_echo_between_direct_neighbors() {
        let mut world = World::new(WorldConfig::ideal(41));
        let client = world.add_node(
            "client",
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            &bt(),
            peerhood("client", MobilityClass::Dynamic, TestApp::default()),
        );
        let server = world.add_node(
            "server",
            MobilityModel::stationary(Point::new(4.0, 0.0)),
            &bt(),
            peerhood("server", MobilityClass::Static, TestApp::server("echo", true)),
        );
        // Let a couple of discovery cycles run.
        world.run_for(SimDuration::from_secs(40));
        let stats = world
            .with_agent::<PeerHoodNode, _>(client, |n, _| n.storage_stats())
            .unwrap();
        assert_eq!(stats.known_devices, 1, "client should have found the server");
        assert_eq!(stats.known_services, 1);

        // Connect to the echo service and exchange data.
        let conn = world
            .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
                n.with_api(ctx, |api| api.connect_to_service("echo")).unwrap()
            })
            .unwrap()
            .expect("service should be connectable");
        world.run_for(SimDuration::from_secs(5));
        world
            .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
                assert_eq!(n.app::<TestApp>().unwrap().connected, vec![conn]);
                n.with_api(ctx, |api| api.send(conn, b"hello".to_vec()).unwrap());
            })
            .unwrap();
        world.run_for(SimDuration::from_secs(5));
        world
            .with_agent::<PeerHoodNode, _>(server, |n, _| {
                let app = n.app::<TestApp>().unwrap();
                assert_eq!(app.peer_connected.len(), 1);
                assert_eq!(app.data.len(), 1);
                assert_eq!(app.data[0].1, b"hello".to_vec());
            })
            .unwrap();
        world
            .with_agent::<PeerHoodNode, _>(client, |n, _| {
                let app = n.app::<TestApp>().unwrap();
                assert_eq!(app.data.len(), 1);
                assert_eq!(app.data[0].1, b"olleh".to_vec());
            })
            .unwrap();
        // The server sees the session too.
        let server_conns = world
            .with_agent::<PeerHoodNode, _>(server, |n, _| n.connections())
            .unwrap();
        assert_eq!(server_conns.len(), 1);
        assert_eq!(server_conns[0].id, conn);
    }

    #[test]
    fn bridged_connection_relays_data_between_remote_devices() {
        // A --- B --- C in a line; A and C are out of each other's Bluetooth
        // range and must interconnect through B (Fig. 4.1).
        let mut world = World::new(WorldConfig::ideal(42));
        let a = world.add_node(
            "a",
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            &bt(),
            Box::new(PeerHoodNode::new(
                fast_discovery_config("a", MobilityClass::Dynamic),
                Box::new(TestApp::default()),
            )),
        );
        let b = world.add_node(
            "b",
            MobilityModel::stationary(Point::new(8.0, 0.0)),
            &bt(),
            Box::new(PeerHoodNode::relay(fast_discovery_config("b", MobilityClass::Static))),
        );
        let c = world.add_node(
            "c",
            MobilityModel::stationary(Point::new(16.0, 0.0)),
            &bt(),
            Box::new(PeerHoodNode::new(
                fast_discovery_config("c", MobilityClass::Static),
                Box::new(TestApp::server("echo", true)),
            )),
        );
        assert!(!world.in_range(a, c, RadioTech::Bluetooth));
        // Dynamic discovery needs a couple of cycles to propagate C to A.
        world.run_for(SimDuration::from_secs(120));
        let a_stats = world.with_agent::<PeerHoodNode, _>(a, |n, _| n.storage_stats()).unwrap();
        assert_eq!(a_stats.known_devices, 2, "A must learn about both B and C");
        assert_eq!(a_stats.max_jumps, 1);
        let c_addr = world
            .with_agent::<PeerHoodNode, _>(c, |n, _| n.device_address().unwrap())
            .unwrap();
        let route = world
            .with_agent::<PeerHoodNode, _>(a, |n, _| {
                n.known_devices()
                    .into_iter()
                    .find(|d| d.info.address == c_addr)
                    .map(|d| d.route.clone())
            })
            .unwrap()
            .expect("route to C");
        assert_eq!(route.jumps, 1);
        assert_eq!(route.bridge, Some(DeviceAddress::from_node(b)));

        // Connect A -> C through the bridge and exchange data.
        let conn = world
            .with_agent::<PeerHoodNode, _>(a, |n, ctx| n.with_api(ctx, |api| api.connect_to(c_addr, "echo")).unwrap())
            .unwrap()
            .expect("bridge connection should start");
        world.run_for(SimDuration::from_secs(10));
        world
            .with_agent::<PeerHoodNode, _>(a, |n, ctx| {
                assert_eq!(n.app::<TestApp>().unwrap().connected, vec![conn]);
                n.with_api(ctx, |api| api.send(conn, b"ping across".to_vec()).unwrap());
            })
            .unwrap();
        world.run_for(SimDuration::from_secs(10));
        world
            .with_agent::<PeerHoodNode, _>(c, |n, _| {
                let app = n.app::<TestApp>().unwrap();
                assert_eq!(app.data.len(), 1);
                assert_eq!(app.data[0].1, b"ping across".to_vec());
            })
            .unwrap();
        world
            .with_agent::<PeerHoodNode, _>(a, |n, _| {
                let app = n.app::<TestApp>().unwrap();
                assert_eq!(app.data.len(), 1, "echo should travel back through the bridge");
            })
            .unwrap();
        // The bridge actually relayed traffic.
        let (pairs, relayed_msgs, relayed_bytes) = world
            .with_agent::<PeerHoodNode, _>(b, |n, _| n.bridge_stats())
            .unwrap();
        assert_eq!(pairs, 1);
        assert!(relayed_msgs >= 2);
        assert!(relayed_bytes > 0);
    }

    #[test]
    fn connecting_to_an_unknown_service_fails_cleanly() {
        let mut world = World::new(WorldConfig::ideal(43));
        let client = world.add_node(
            "client",
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            &bt(),
            peerhood("client", MobilityClass::Dynamic, TestApp::default()),
        );
        let _server = world.add_node(
            "server",
            MobilityModel::stationary(Point::new(4.0, 0.0)),
            &bt(),
            peerhood("server", MobilityClass::Static, TestApp::server("echo", false)),
        );
        world.run_for(SimDuration::from_secs(40));
        // The service name is unknown network-wide.
        let err = world
            .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
                n.with_api(ctx, |api| api.connect_to_service("no-such-service")).unwrap()
            })
            .unwrap()
            .unwrap_err();
        assert_eq!(err, PeerHoodError::ServiceNotFound("no-such-service".into()));
        // Connecting to a device that exists but with a wrong service name is
        // rejected by the remote engine.
        let server_addr = world
            .with_agent::<PeerHoodNode, _>(client, |n, _| n.known_devices()[0].info.address)
            .unwrap();
        let conn = world
            .with_agent::<PeerHoodNode, _>(client, |n, ctx| {
                n.with_api(ctx, |api| api.connect_to(server_addr, "wrong")).unwrap()
            })
            .unwrap()
            .unwrap();
        world.run_for(SimDuration::from_secs(5));
        world
            .with_agent::<PeerHoodNode, _>(client, |n, _| {
                let app = n.app::<TestApp>().unwrap();
                assert_eq!(app.failed.len(), 1);
                assert_eq!(app.failed[0].0, conn);
                assert!(app.connected.is_empty());
            })
            .unwrap();
    }
}
