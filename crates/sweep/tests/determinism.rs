//! The sweep determinism guarantee: for the same spec, an 8-thread run
//! emits byte-identical aggregated JSON to a 1-thread run. Ordering is
//! fixed by job id — grid points in expansion order, samples in seed order
//! — never by completion order.

use sweep::{aggregate, run_sweep, SweepSpec};

/// Strips the timing note (the only legitimately thread-dependent line)
/// before comparing markdown.
fn strip_wall_clock(md: &str) -> String {
    md.lines()
        .filter(|l| !l.starts_with("- wall clock:"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn eight_threads_emit_byte_identical_json_to_one_thread() {
    // E2 builds per-seed random topologies without a world event loop, so
    // eight seeds are cheap while the samples genuinely vary by seed.
    let spec = SweepSpec::new("gnutella").seed_range(42, 8).quick(true);
    let single = aggregate(&run_sweep(&spec, 1).expect("1-thread run"));
    let parallel = aggregate(&run_sweep(&spec, 8).expect("8-thread run"));
    assert_eq!(
        single.to_json(),
        parallel.to_json(),
        "aggregated JSON must not depend on the thread count"
    );
    assert_eq!(
        strip_wall_clock(&single.to_markdown()),
        strip_wall_clock(&parallel.to_markdown())
    );
    // The spread across seeds must be real (different topologies per seed),
    // otherwise this test would pass vacuously on constant data.
    let any_spread = single
        .points
        .iter()
        .flat_map(|p| &p.scenarios)
        .flat_map(|s| &s.metrics)
        .any(|m| m.stats.stddev > 0.0);
    assert!(any_spread, "E2 samples must vary across seeds");
}

#[test]
fn world_backed_grid_sweep_is_thread_count_invariant() {
    // A real (if tiny) E13 world per job: 2 grid points × 2 seeds, each
    // building its Rc-based world inside the worker thread.
    let spec = SweepSpec::new("churn")
        .seed_range(7, 2)
        .quick(true)
        .axis("nodes", vec!["40".into()])
        .expect("fresh axis")
        .axis("churn", vec!["0".into(), "240".into()])
        .expect("fresh axis")
        .axis("duration_s", vec!["30".into()])
        .expect("fresh axis");
    let single = aggregate(&run_sweep(&spec, 1).expect("1-thread run"));
    let parallel = aggregate(&run_sweep(&spec, 4).expect("4-thread run"));
    assert_eq!(single.to_json(), parallel.to_json());
    // 2 churn values x 1 node count x 1 duration = 2 grid points, expansion
    // order preserved.
    assert_eq!(single.points.len(), 2);
    assert_eq!(single.points[0].grid[1], ("churn".to_string(), "0".to_string()));
    assert_eq!(single.points[1].grid[1], ("churn".to_string(), "240".to_string()));
    for point in &single.points {
        for scenario in &point.scenarios {
            for m in &scenario.metrics {
                assert_eq!(m.stats.n, 2, "every metric must aggregate both seeds");
            }
        }
    }
}
