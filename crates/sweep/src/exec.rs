//! The work-stealing thread-pool executor.
//!
//! Workers pull [`JobSpec`]s from a shared atomic cursor (an idle worker
//! steals whatever job is next, so uneven job durations still pack), build
//! the `Rc`-based world entirely inside their own thread, and stream each
//! job's [`SampleRow`]s back over a channel. The collector re-sorts results
//! by job id, so downstream aggregation is byte-identical for every thread
//! count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use scenarios::experiments::{find, Params};
use scenarios::SampleRow;

use crate::spec::{JobSpec, SweepError, SweepSpec};

/// The samples of one completed job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job that produced the samples.
    pub job: JobSpec,
    /// Numeric samples of this run, one per report row.
    pub samples: Vec<SampleRow>,
    /// Wall-clock time this job took inside its worker.
    pub wall: Duration,
}

/// A completed campaign: every job's samples in job-id order, plus timing.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// The spec the run expanded.
    pub spec: SweepSpec,
    /// Results sorted by job id (deterministic, completion-order-free).
    pub results: Vec<JobResult>,
    /// Worker threads actually used.
    pub threads: usize,
    /// End-to-end wall clock of the campaign.
    pub wall: Duration,
}

impl SweepRun {
    /// Sum of per-job wall times — the single-core work the campaign
    /// represents; `busy() / wall` is the achieved speedup.
    pub fn busy(&self) -> Duration {
        self.results.iter().map(|r| r.wall).sum()
    }
}

/// Expands `spec` and runs every job on `threads` worker threads.
///
/// Fails fast (before any job runs) if the spec does not validate. Worker
/// panics propagate. Progress is reported on stderr as jobs complete.
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Result<SweepRun, SweepError> {
    spec.validate()?;
    let jobs = spec.jobs();
    let threads = threads.clamp(1, jobs.len().max(1));
    let started = Instant::now();
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<JobResult>();
    let mut results: Vec<JobResult> = Vec::with_capacity(jobs.len());
    thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let jobs = &jobs;
            let cursor = &cursor;
            scope.spawn(move || {
                // Each worker owns its registry copy; the Rc-based worlds an
                // experiment builds live and die inside this thread.
                let Some(first) = jobs.first() else { return };
                let experiment = find(&first.experiment).expect("validated above");
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    let params = Params::from_pairs(&job.grid);
                    let job_started = Instant::now();
                    let output = experiment.run(job.seed, &params, job.quick);
                    let result = JobResult {
                        job: job.clone(),
                        samples: output.samples,
                        wall: job_started.elapsed(),
                    };
                    if tx.send(result).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        for (done, result) in rx.iter().enumerate() {
            eprintln!(
                "  [{}/{}] {} ({:.2}s)",
                done + 1,
                jobs.len(),
                result.job.label(),
                result.wall.as_secs_f64()
            );
            results.push(result);
        }
    });
    results.sort_by_key(|r| r.job.id);
    Ok(SweepRun {
        spec: spec.clone(),
        results,
        threads,
        wall: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// E3 is pure computation (no world), so this exercises the pool fast.
    #[test]
    fn executor_returns_results_in_job_id_order_for_any_thread_count() {
        let spec = SweepSpec::new("routes").seed_range(1, 6).quick(true);
        let one = run_sweep(&spec, 1).unwrap();
        let many = run_sweep(&spec, 4).unwrap();
        assert_eq!(one.results.len(), 6);
        assert_eq!(many.results.len(), 6);
        assert_eq!(many.threads, 4);
        for (a, b) in one.results.iter().zip(&many.results) {
            assert_eq!(a.job, b.job);
            assert_eq!(a.samples, b.samples);
        }
    }

    #[test]
    fn invalid_specs_fail_before_any_job_runs() {
        let spec = SweepSpec::new("routes").seeds(vec![]);
        assert!(run_sweep(&spec, 2).is_err());
    }
}
