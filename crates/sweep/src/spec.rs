//! Campaign specification: seeds × parameter grid → deterministic job list.

use std::fmt;

use scenarios::experiments::find;

/// An error building or validating a sweep specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError(pub String);

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SweepError {}

/// One unit of work: run `experiment` once with `seed` and the parameter
/// overrides of one grid point. Plain `Send` data — the world it implies is
/// built inside whichever worker thread picks the job up.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Position in the expanded job list; fixes aggregation order.
    pub id: usize,
    /// Experiment slug (e.g. `"churn"`).
    pub experiment: String,
    /// The seed of this run.
    pub seed: u64,
    /// `(key, value)` overrides of this grid point, in axis order. Empty
    /// for a gridless sweep.
    pub grid: Vec<(String, String)>,
    /// Quick (CI-sized) or full settings.
    pub quick: bool,
}

impl JobSpec {
    /// Compact human-readable label, e.g. `churn seed=43 nodes=100`.
    pub fn label(&self) -> String {
        let mut s = format!("{} seed={}", self.experiment, self.seed);
        for (k, v) in &self.grid {
            s.push_str(&format!(" {k}={v}"));
        }
        s
    }
}

/// Builder for an experiment campaign: which experiment, which seeds, which
/// parameter grid, quick or full settings.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Experiment slug or id.
    pub experiment: String,
    /// Seeds to run every grid point with.
    pub seeds: Vec<u64>,
    /// Grid axes in declaration order; the cartesian product of their
    /// values forms the grid points.
    pub axes: Vec<(String, Vec<String>)>,
    /// Quick (CI-sized) or full settings.
    pub quick: bool,
}

impl SweepSpec {
    /// Starts a spec for `experiment` (slug or id) with the default seed
    /// range `42..=49` and no grid.
    pub fn new(experiment: impl Into<String>) -> Self {
        SweepSpec {
            experiment: experiment.into(),
            seeds: (42..50).collect(),
            axes: Vec::new(),
            quick: false,
        }
    }

    /// Replaces the seed list with `base, base+1, …, base+count-1`.
    pub fn seed_range(mut self, base: u64, count: usize) -> Self {
        self.seeds = (0..count as u64).map(|i| base.wrapping_add(i)).collect();
        self
    }

    /// Replaces the seed list.
    pub fn seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Selects quick (CI-sized) settings.
    pub fn quick(mut self, quick: bool) -> Self {
        self.quick = quick;
        self
    }

    /// Adds a grid axis. Rejects duplicate keys — a grid with the same key
    /// twice has no well-defined cartesian product.
    pub fn axis(mut self, key: impl Into<String>, values: Vec<String>) -> Result<Self, SweepError> {
        let key = key.into();
        if self.axes.iter().any(|(k, _)| *k == key) {
            return Err(SweepError(format!("duplicate grid axis `{key}`")));
        }
        self.axes.push((key, values));
        Ok(self)
    }

    /// Validates the spec against the experiment registry: the experiment
    /// must exist, every axis key must be one of its declared parameters,
    /// every value must parse for the parameter's kind, and seed list and
    /// axis value lists must be non-empty.
    pub fn validate(&self) -> Result<(), SweepError> {
        let exp = find(&self.experiment)
            .ok_or_else(|| SweepError(format!("unknown experiment `{}` (see `repro --list`)", self.experiment)))?;
        if self.seeds.is_empty() {
            return Err(SweepError("seed list is empty".into()));
        }
        for (key, values) in &self.axes {
            let spec = exp.params().iter().find(|p| p.key == key).ok_or_else(|| {
                let known: Vec<&str> = exp.params().iter().map(|p| p.key).collect();
                SweepError(format!(
                    "experiment `{}` has no grid parameter `{key}` (available: {})",
                    exp.slug(),
                    if known.is_empty() {
                        "none".to_string()
                    } else {
                        known.join(", ")
                    }
                ))
            })?;
            if values.is_empty() {
                return Err(SweepError(format!("grid axis `{key}` has no values")));
            }
            for value in values {
                spec.kind
                    .check(value)
                    .map_err(|e| SweepError(format!("grid axis `{key}`: {e}")))?;
            }
        }
        Ok(())
    }

    /// Number of grid points: the product of the axis value counts (1 for
    /// a gridless sweep, 0 if any axis has no values — the state
    /// [`SweepSpec::validate`] rejects).
    pub fn grid_points(&self) -> usize {
        self.axes.iter().map(|(_, vs)| vs.len()).product()
    }

    /// Expands the spec into the deterministic job list: grid points in
    /// odometer order (first axis slowest), seeds in declaration order
    /// within each point. Job ids are positions in this list. An axis with
    /// no values yields no grid points and therefore no jobs (consistent
    /// with [`SweepSpec::grid_points`]; `validate` rejects such specs).
    pub fn jobs(&self) -> Vec<JobSpec> {
        if self.axes.iter().any(|(_, vs)| vs.is_empty()) {
            return Vec::new();
        }
        let mut jobs = Vec::with_capacity(self.grid_points() * self.seeds.len());
        let mut counters = vec![0usize; self.axes.len()];
        loop {
            let grid: Vec<(String, String)> = self
                .axes
                .iter()
                .zip(&counters)
                .map(|((k, vs), &i)| (k.clone(), vs[i].clone()))
                .collect();
            for &seed in &self.seeds {
                jobs.push(JobSpec {
                    id: jobs.len(),
                    experiment: self.experiment.clone(),
                    seed,
                    grid: grid.clone(),
                    quick: self.quick,
                });
            }
            // Odometer increment, last axis fastest.
            let mut axis = self.axes.len();
            loop {
                if axis == 0 {
                    return jobs;
                }
                axis -= 1;
                counters[axis] += 1;
                if counters[axis] < self.axes[axis].1.len() {
                    break;
                }
                counters[axis] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_the_cartesian_product_in_odometer_order() {
        let spec = SweepSpec::new("churn")
            .seed_range(7, 2)
            .axis("nodes", vec!["100".into(), "200".into()])
            .unwrap()
            .axis("churn", vec!["0".into(), "60".into(), "240".into()])
            .unwrap();
        assert_eq!(spec.grid_points(), 6);
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 12, "2 axes (2x3) x 2 seeds");
        // Ids are dense positions.
        assert!(jobs.iter().enumerate().all(|(i, j)| j.id == i));
        // First point: nodes=100, churn=0 with both seeds.
        assert_eq!(
            jobs[0].grid,
            vec![("nodes".into(), "100".into()), ("churn".into(), "0".into())]
        );
        assert_eq!((jobs[0].seed, jobs[1].seed), (7, 8));
        // Last axis increments fastest.
        assert_eq!(jobs[2].grid[1], ("churn".into(), "60".into()));
        assert_eq!(jobs[2].grid[0], ("nodes".into(), "100".into()));
        // First axis rolls over after the last axis exhausts.
        assert_eq!(jobs[6].grid[0], ("nodes".into(), "200".into()));
        assert_eq!(jobs[6].grid[1], ("churn".into(), "0".into()));
    }

    #[test]
    fn duplicate_axis_keys_are_rejected() {
        let err = SweepSpec::new("churn")
            .axis("nodes", vec!["100".into()])
            .unwrap()
            .axis("nodes", vec!["200".into()])
            .unwrap_err();
        assert!(err.0.contains("duplicate grid axis `nodes`"), "{err}");
    }

    #[test]
    fn validation_rejects_unknown_experiments_keys_and_bad_values() {
        assert!(SweepSpec::new("warp-drive").validate().is_err());
        let unknown_key = SweepSpec::new("churn").axis("color", vec!["red".into()]).unwrap();
        let err = unknown_key.validate().unwrap_err();
        assert!(err.0.contains("no grid parameter `color`"), "{err}");
        let bad_value = SweepSpec::new("churn").axis("nodes", vec!["many".into()]).unwrap();
        assert!(bad_value.validate().is_err());
        let empty_axis = SweepSpec::new("churn").axis("nodes", vec![]).unwrap();
        assert!(empty_axis.validate().is_err());
        // And even unvalidated, the expansion APIs agree: no points, no
        // jobs, no panic.
        assert_eq!(empty_axis.grid_points(), 0);
        assert!(empty_axis.jobs().is_empty());
        let ok = SweepSpec::new("churn")
            .axis("nodes", vec!["100".into()])
            .unwrap()
            .axis("stack", vec!["full".into(), "lightweight".into()])
            .unwrap();
        assert!(ok.validate().is_ok());
        // Ids resolve too.
        assert!(SweepSpec::new("E13").validate().is_ok());
    }

    #[test]
    fn gridless_spec_expands_to_one_job_per_seed() {
        let jobs = SweepSpec::new("gnutella").seed_range(42, 3).jobs();
        assert_eq!(jobs.len(), 3);
        assert!(jobs.iter().all(|j| j.grid.is_empty()));
        assert_eq!(jobs[2].seed, 44);
        assert_eq!(jobs[1].label(), "gnutella seed=43");
    }
}
