//! # sweep — the parallel experiment-campaign engine
//!
//! Every experiment of the reproduction (E1–E15) is runnable through the
//! uniform [`Experiment`](scenarios::Experiment) trait; this crate turns
//! single runs into **campaigns**: a [`SweepSpec`] describes a seed range
//! and a parameter grid, the [executor](exec) expands it into a
//! deterministic job list and runs the jobs on a work-stealing thread pool,
//! and the [aggregation layer](report) folds the streamed
//! [`SampleRow`](scenarios::SampleRow)s into per-metric mean / stddev /
//! min / max and 95% confidence intervals, grouped by grid point, with
//! JSON and markdown emitters.
//!
//! ## Threading model
//!
//! The simulation world is `Rc`-based and must never cross a thread
//! boundary. The executor therefore ships only [`JobSpec`]s (plain `Send`
//! data: experiment name, seed, grid point) to the workers; each worker
//! looks the experiment up in its own registry copy and constructs, runs
//! and drops every world **inside** its own thread, streaming the numeric
//! samples back over a channel. Jobs are pulled from a shared atomic
//! cursor, so idle workers steal whatever work is left.
//!
//! ## Determinism
//!
//! Job results are keyed by job id and re-sorted before aggregation, and
//! summaries fold values in job-id order — never in completion order — so
//! the aggregated JSON is byte-identical for any `--threads` value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod report;
pub mod spec;
pub mod stats;

pub use exec::{run_sweep, JobResult, SweepRun};
pub use report::{aggregate, SweepReport};
pub use spec::{JobSpec, SweepError, SweepSpec};
pub use stats::{summarize, Summary};
