//! Sample statistics: mean, stddev, extrema and 95% confidence intervals.

/// Summary statistics of one metric across the seeds of one grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 when n < 2).
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Half-width of the 95% confidence interval of the mean,
    /// `t(n−1) · s / √n` (0 when n < 2). The interval is `mean ± ci95`.
    pub ci95: f64,
}

/// Two-sided 95% critical values of Student's t distribution for 1–30
/// degrees of freedom; beyond that the normal approximation is used.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
    2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
];

/// The two-sided 95% t critical value for `df` degrees of freedom.
pub fn t95(df: usize) -> f64 {
    if df == 0 {
        f64::NAN
    } else if df <= T95.len() {
        T95[df - 1]
    } else {
        1.960
    }
}

/// Summarizes a sample set. Values are folded in slice order, so equal
/// inputs give bit-equal outputs regardless of how the samples were
/// produced. An empty slice yields an all-zero summary with `n = 0`.
pub fn summarize(values: &[f64]) -> Summary {
    let n = values.len();
    if n == 0 {
        return Summary {
            n: 0,
            mean: 0.0,
            stddev: 0.0,
            min: 0.0,
            max: 0.0,
            ci95: 0.0,
        };
    }
    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        sum += v;
        min = min.min(v);
        max = max.max(v);
    }
    let mean = sum / n as f64;
    let (stddev, ci95) = if n < 2 {
        (0.0, 0.0)
    } else {
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
        let s = var.sqrt();
        (s, t95(n - 1) * s / (n as f64).sqrt())
    };
    Summary {
        n,
        mean,
        stddev,
        min,
        max,
        ci95,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() <= eps
    }

    #[test]
    fn known_answer_mean_stddev_and_ci() {
        // Classic textbook sample: mean 5, sample variance 32/7.
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = summarize(&values);
        assert_eq!(s.n, 8);
        assert!(close(s.mean, 5.0, 1e-12));
        assert!(close(s.stddev, (32.0f64 / 7.0).sqrt(), 1e-12), "got {}", s.stddev);
        assert_eq!((s.min, s.max), (2.0, 9.0));
        // t(7) = 2.365: ci = 2.365 * s / sqrt(8).
        let expected_ci = 2.365 * (32.0f64 / 7.0).sqrt() / 8.0f64.sqrt();
        assert!(close(s.ci95, expected_ci, 1e-9), "got {} want {expected_ci}", s.ci95);
    }

    #[test]
    fn degenerate_sample_sizes() {
        let one = summarize(&[3.5]);
        assert_eq!((one.n, one.mean, one.stddev, one.ci95), (1, 3.5, 0.0, 0.0));
        assert_eq!((one.min, one.max), (3.5, 3.5));
        let none = summarize(&[]);
        assert_eq!(none.n, 0);
        assert_eq!(none.mean, 0.0);
    }

    #[test]
    fn t_table_edges() {
        assert!(close(t95(1), 12.706, 1e-9));
        assert!(close(t95(30), 2.042, 1e-9));
        assert!(close(t95(31), 1.960, 1e-9));
        assert!(t95(0).is_nan());
    }

    #[test]
    fn constant_samples_have_zero_spread() {
        let s = summarize(&[4.0; 6]);
        assert_eq!((s.mean, s.stddev, s.ci95), (4.0, 0.0, 0.0));
    }
}
