//! Aggregation and emitters: job samples → per-grid-point statistics →
//! JSON and markdown.
//!
//! Ordering is fixed by construction, never by completion: grid points in
//! expansion order, scenarios and metrics in first-appearance order of the
//! lowest job id, sample values in job-id (seed) order. Two runs of the
//! same spec therefore emit byte-identical JSON whatever the thread count.

use std::fmt::Write as _;
use std::time::Duration;

use scenarios::experiments::find;

use crate::exec::SweepRun;
use crate::stats::{summarize, Summary};

/// One metric's summary across the seeds of one grid point / scenario.
#[derive(Debug, Clone)]
pub struct MetricStats {
    /// Metric name (the report column).
    pub metric: String,
    /// The statistics.
    pub stats: Summary,
}

/// All metric summaries of one scenario (one report row identity).
#[derive(Debug, Clone)]
pub struct ScenarioStats {
    /// The scenario key, e.g. `"nodes=100 churn (/node/h)=60.00"`.
    pub scenario: String,
    /// Metric summaries in first-appearance order.
    pub metrics: Vec<MetricStats>,
}

/// All scenario summaries of one grid point.
#[derive(Debug, Clone)]
pub struct GridPointStats {
    /// The grid point's `(key, value)` pairs (empty for gridless sweeps).
    pub grid: Vec<(String, String)>,
    /// Scenario summaries in first-appearance order.
    pub scenarios: Vec<ScenarioStats>,
}

/// The aggregated campaign: statistics per grid point, plus run metadata.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Experiment slug.
    pub experiment: String,
    /// Experiment id (`"E13"`).
    pub id: String,
    /// Experiment title.
    pub title: String,
    /// Whether quick settings were used.
    pub quick: bool,
    /// The seeds every grid point ran with.
    pub seeds: Vec<u64>,
    /// The grid axes of the spec.
    pub axes: Vec<(String, Vec<String>)>,
    /// Per-grid-point statistics, in expansion order.
    pub points: Vec<GridPointStats>,
    /// Worker threads used (markdown only; never in the JSON).
    pub threads: usize,
    /// End-to-end wall clock (markdown only; never in the JSON).
    pub wall: Duration,
    /// Cumulative single-core job time (markdown only; never in the JSON).
    pub busy: Duration,
    /// Number of jobs run.
    pub jobs: usize,
}

/// Folds a completed run into per-metric statistics grouped by grid point.
pub fn aggregate(run: &SweepRun) -> SweepReport {
    let (id, title) = find(&run.spec.experiment)
        .map(|e| (e.id().to_string(), e.title().to_string()))
        .unwrap_or_default();
    // grid point -> scenario -> metric -> values, all in first-appearance
    // order over the id-sorted results.
    type MetricValues = Vec<(String, Vec<f64>)>;
    type ScenarioMetrics = Vec<(String, MetricValues)>;
    let mut points: Vec<(Vec<(String, String)>, ScenarioMetrics)> = Vec::new();
    for result in &run.results {
        let point = match points.iter_mut().find(|(g, _)| *g == result.job.grid) {
            Some((_, scenarios)) => scenarios,
            None => {
                points.push((result.job.grid.clone(), Vec::new()));
                &mut points.last_mut().expect("just pushed").1
            }
        };
        for sample in &result.samples {
            let scenario = match point.iter_mut().find(|(s, _)| *s == sample.scenario) {
                Some((_, metrics)) => metrics,
                None => {
                    point.push((sample.scenario.clone(), Vec::new()));
                    &mut point.last_mut().expect("just pushed").1
                }
            };
            for (metric, value) in &sample.metrics {
                match scenario.iter_mut().find(|(m, _)| m == metric) {
                    Some((_, values)) => values.push(*value),
                    None => scenario.push((metric.clone(), vec![*value])),
                }
            }
        }
    }
    let points = points
        .into_iter()
        .map(|(grid, scenarios)| GridPointStats {
            grid,
            scenarios: scenarios
                .into_iter()
                .map(|(scenario, metrics)| ScenarioStats {
                    scenario,
                    metrics: metrics
                        .into_iter()
                        .map(|(metric, values)| MetricStats {
                            metric,
                            stats: summarize(&values),
                        })
                        .collect(),
                })
                .collect(),
        })
        .collect();
    SweepReport {
        experiment: run.spec.experiment.clone(),
        id,
        title,
        quick: run.spec.quick,
        seeds: run.spec.seeds.clone(),
        axes: run.spec.axes.clone(),
        points,
        threads: run.threads,
        wall: run.wall,
        busy: run.busy(),
        jobs: run.results.len(),
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Fixed-precision float formatting: one deterministic representation per
/// value, independent of magnitude.
fn num(v: f64) -> String {
    format!("{v:.6}")
}

impl SweepReport {
    /// The aggregated campaign as JSON. Deliberately excludes wall clock
    /// and thread count: the JSON depends only on the spec and the sampled
    /// values, so `--threads 1` and `--threads 8` emit identical bytes.
    pub fn to_json(&self) -> String {
        let mut j = String::new();
        j.push_str("{\n");
        let _ = writeln!(j, "  \"experiment\": \"{}\",", esc(&self.experiment));
        let _ = writeln!(j, "  \"id\": \"{}\",", esc(&self.id));
        let _ = writeln!(j, "  \"quick\": {},", self.quick);
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        let _ = writeln!(j, "  \"seeds\": [{}],", seeds.join(", "));
        j.push_str("  \"grid\": [");
        for (i, (key, values)) in self.axes.iter().enumerate() {
            let vals: Vec<String> = values.iter().map(|v| format!("\"{}\"", esc(v))).collect();
            let _ = write!(
                j,
                "{}{{\"key\": \"{}\", \"values\": [{}]}}",
                if i == 0 { "" } else { ", " },
                esc(key),
                vals.join(", ")
            );
        }
        j.push_str("],\n");
        j.push_str("  \"points\": [\n");
        for (pi, point) in self.points.iter().enumerate() {
            j.push_str("    {\"grid\": {");
            for (i, (k, v)) in point.grid.iter().enumerate() {
                let _ = write!(j, "{}\"{}\": \"{}\"", if i == 0 { "" } else { ", " }, esc(k), esc(v));
            }
            j.push_str("}, \"scenarios\": [\n");
            for (si, scenario) in point.scenarios.iter().enumerate() {
                let _ = writeln!(
                    j,
                    "      {{\"scenario\": \"{}\", \"metrics\": [",
                    esc(&scenario.scenario)
                );
                for (mi, m) in scenario.metrics.iter().enumerate() {
                    let s = m.stats;
                    let _ = write!(
                        j,
                        "        {{\"name\": \"{}\", \"n\": {}, \"mean\": {}, \"stddev\": {}, \"min\": {}, \"max\": {}, \"ci95\": {}}}",
                        esc(&m.metric),
                        s.n,
                        num(s.mean),
                        num(s.stddev),
                        num(s.min),
                        num(s.max),
                        num(s.ci95)
                    );
                    j.push_str(if mi + 1 == scenario.metrics.len() { "\n" } else { ",\n" });
                }
                j.push_str("      ]}");
                j.push_str(if si + 1 == point.scenarios.len() { "\n" } else { ",\n" });
            }
            j.push_str("    ]}");
            j.push_str(if pi + 1 == self.points.len() { "\n" } else { ",\n" });
        }
        j.push_str("  ]\n}\n");
        j
    }

    /// The aggregated campaign as a markdown report, one statistics table
    /// per grid point, closed by the wall-clock / speedup note (which is
    /// where timing lives — never in the JSON).
    pub fn to_markdown(&self) -> String {
        let mut md = String::new();
        let _ = writeln!(
            md,
            "### sweep {} ({}) — {}, {} seed{} × {} grid point{}",
            self.id,
            self.experiment,
            if self.quick { "quick" } else { "full" },
            self.seeds.len(),
            if self.seeds.len() == 1 { "" } else { "s" },
            self.points.len(),
            if self.points.len() == 1 { "" } else { "s" },
        );
        let _ = writeln!(md);
        let _ = writeln!(md, "*{}* — *{}*", self.title, describe_seeds(&self.seeds));
        for point in &self.points {
            let _ = writeln!(md);
            if !point.grid.is_empty() {
                let label: Vec<String> = point.grid.iter().map(|(k, v)| format!("{k}={v}")).collect();
                let _ = writeln!(md, "**grid point `{}`**", label.join(" "));
                let _ = writeln!(md);
            }
            let _ = writeln!(md, "| scenario | metric | n | mean | stddev | min | max | 95% CI |");
            let _ = writeln!(md, "|---|---|---|---|---|---|---|---|");
            for scenario in &point.scenarios {
                for m in &scenario.metrics {
                    let s = m.stats;
                    let _ = writeln!(
                        md,
                        "| {} | {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | ±{:.2} |",
                        scenario.scenario, m.metric, s.n, s.mean, s.stddev, s.min, s.max, s.ci95
                    );
                }
            }
        }
        let _ = writeln!(md);
        let _ = writeln!(
            md,
            "- wall clock: {:.2} s on {} thread{} ({} job{}; cumulative job time {:.2} s, speedup {:.2}x)",
            self.wall.as_secs_f64(),
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.jobs,
            if self.jobs == 1 { "" } else { "s" },
            self.busy.as_secs_f64(),
            self.busy.as_secs_f64() / self.wall.as_secs_f64().max(f64::MIN_POSITIVE)
        );
        let _ = writeln!(
            md,
            "- 95% CI: mean ± t(n−1)·s/√n, Student's t, two-sided; stddev is the n−1 sample estimate"
        );
        md
    }
}

/// `"42..49"` for contiguous ranges, an explicit list otherwise.
fn describe_seeds(seeds: &[u64]) -> String {
    let contiguous = seeds.windows(2).all(|w| w[1] == w[0].wrapping_add(1));
    match (seeds.first(), seeds.last()) {
        (Some(first), Some(last)) if contiguous && seeds.len() > 1 => format!("seeds {first}..{last}"),
        _ => format!(
            "seeds {}",
            seeds.iter().map(u64::to_string).collect::<Vec<_>>().join(", ")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_sweep;
    use crate::spec::SweepSpec;

    #[test]
    fn aggregate_groups_by_grid_point_and_counts_every_seed() {
        // E3 is deterministic and seed-independent: 3 seeds must yield n=3
        // with zero spread.
        let spec = SweepSpec::new("routes").seed_range(1, 3).quick(true);
        let report = aggregate(&run_sweep(&spec, 2).unwrap());
        assert_eq!(report.id, "E3");
        assert_eq!(report.points.len(), 1, "gridless sweep has one grid point");
        let point = &report.points[0];
        assert!(point.grid.is_empty());
        assert_eq!(point.scenarios.len(), 2, "two routes in the E3 table");
        let m = &point.scenarios[0].metrics[0];
        assert_eq!(m.stats.n, 3);
        assert_eq!(m.stats.stddev, 0.0, "seed-independent experiment must have zero spread");
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"routes\""));
        assert!(json.contains("\"n\": 3"));
        let md = report.to_markdown();
        assert!(md.contains("### sweep E3 (routes)"));
        assert!(md.contains("wall clock:"));
    }

    #[test]
    fn json_escapes_quotes_and_controls() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn seed_ranges_describe_compactly() {
        assert_eq!(describe_seeds(&[42, 43, 44]), "seeds 42..44");
        assert_eq!(describe_seeds(&[5]), "seeds 5");
        assert_eq!(describe_seeds(&[2, 9]), "seeds 2, 9");
    }
}
