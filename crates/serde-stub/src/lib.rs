//! No-op stand-in for the `serde` derive macros.
//!
//! The workspace builds in an offline container without a crates registry,
//! so the real `serde` cannot be fetched. Nothing in the reproduction
//! actually serialises data yet — the `#[derive(Serialize, Deserialize)]`
//! attributes on the protocol and report types document intent for a future
//! persistence/export layer. This crate provides derives with the same names
//! that expand to nothing, keeping every annotation source-compatible with
//! the real serde. Replace the `serde` workspace path dependency with the
//! crates-io package to activate real serialisation.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (accepts and ignores `#[serde(...)]` attributes).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (accepts and ignores `#[serde(...)]`
/// attributes).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
