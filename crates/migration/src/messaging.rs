//! The simple messaging client and server used by the thesis' own tests.
//!
//! §4.3 tests the bridge service with "two simple clients and one server":
//! each client sends a message 20 times with one-second intervals through the
//! bridge and the server prints it. §5.2.1 simulates routing handover with a
//! client printing "good morning!" 50 times on the server's screen. These
//! applications reproduce that workload and record the timings the
//! experiments need.

use std::any::Any;

use peerhood::node::PeerHoodApi;
use peerhood::prelude::*;
use simnet::{SimDuration, SimTime};

const TOKEN_CONNECT: u64 = 1;
const TOKEN_SEND: u64 = 2;

/// A client that connects to a named service and sends a fixed message a
/// configured number of times at a fixed interval.
#[derive(Debug)]
pub struct MessagingClient {
    /// Service to connect to.
    pub service: String,
    /// The message sent on every tick.
    pub message: Vec<u8>,
    /// How many times to send it.
    pub repetitions: u32,
    /// Interval between messages.
    pub interval: SimDuration,
    /// Delay before the first connection attempt.
    pub start_after: SimDuration,
    /// Connect to this specific device instead of the best provider.
    pub target: Option<DeviceAddress>,
    /// If the connection cannot be established (or no provider is known yet),
    /// retry after this long.
    pub retry_after: SimDuration,
    /// Maximum number of connection attempts before giving up.
    pub max_attempts: u32,

    // --- recorded state ---
    /// The active connection, if any.
    pub conn: Option<ConnectionId>,
    /// Messages sent so far (in the current task run).
    pub sent: u32,
    /// Connection attempts made.
    pub attempts: u32,
    /// When the first connection attempt started.
    pub first_attempt_at: Option<SimTime>,
    /// When the connection was last established.
    pub connected_at: Option<SimTime>,
    /// When all repetitions had been sent.
    pub finished_at: Option<SimTime>,
    /// Times the underlying route was replaced while the session survived
    /// (routing handover / reconnection, the `ChangeConnection` callback).
    pub connection_changes: u32,
    /// Times the middleware reported the connection as lost for good.
    pub disconnects: u32,
    /// Times the task had to restart from zero on a new provider.
    pub restarts: u32,
    /// True once the client has permanently given up.
    pub gave_up: bool,
}

impl MessagingClient {
    /// Creates a client for the §4.3 bridge test: 20 messages at 1 s
    /// intervals.
    pub fn bridge_test(service: impl Into<String>, start_after: SimDuration) -> Self {
        MessagingClient::new(
            service,
            b"test message".to_vec(),
            20,
            SimDuration::from_secs(1),
            start_after,
        )
    }

    /// Creates a client for the §5.2.1 handover simulation: "good morning!"
    /// 50 times at 1 s intervals.
    pub fn good_morning(service: impl Into<String>, start_after: SimDuration) -> Self {
        MessagingClient::new(
            service,
            b"good morning!".to_vec(),
            50,
            SimDuration::from_secs(1),
            start_after,
        )
    }

    /// Creates a fully parameterised client.
    pub fn new(
        service: impl Into<String>,
        message: Vec<u8>,
        repetitions: u32,
        interval: SimDuration,
        start_after: SimDuration,
    ) -> Self {
        MessagingClient {
            service: service.into(),
            message,
            repetitions,
            interval,
            start_after,
            target: None,
            retry_after: SimDuration::from_secs(5),
            max_attempts: 10,
            conn: None,
            sent: 0,
            attempts: 0,
            first_attempt_at: None,
            connected_at: None,
            finished_at: None,
            connection_changes: 0,
            disconnects: 0,
            restarts: 0,
            gave_up: false,
        }
    }

    /// Pin the client to one specific provider device.
    pub fn with_target(mut self, target: DeviceAddress) -> Self {
        self.target = Some(target);
        self
    }

    /// True once every repetition has been sent.
    pub fn finished(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Seconds between the first connection attempt and establishment, if
    /// both happened.
    pub fn connection_setup_seconds(&self) -> Option<f64> {
        Some((self.connected_at? - self.first_attempt_at?).as_secs_f64())
    }

    fn try_connect(&mut self, api: &mut PeerHoodApi<'_, '_>) {
        if self.gave_up || self.conn.is_some() {
            return;
        }
        if self.attempts >= self.max_attempts {
            self.gave_up = true;
            return;
        }
        let result = match self.target {
            Some(addr) => api.connect_to(addr, &self.service),
            None => api.connect_to_service(&self.service),
        };
        match result {
            Ok(conn) => {
                self.attempts += 1;
                if self.first_attempt_at.is_none() {
                    self.first_attempt_at = Some(api.now());
                }
                self.conn = Some(conn);
            }
            Err(_) => {
                // Provider not discovered yet; retry later.
                api.schedule_timer(self.retry_after, TOKEN_CONNECT);
            }
        }
    }
}

impl Application for MessagingClient {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn on_start(&mut self, api: &mut PeerHoodApi<'_, '_>) {
        api.schedule_timer(self.start_after, TOKEN_CONNECT);
    }

    fn on_timer(&mut self, api: &mut PeerHoodApi<'_, '_>, token: u64) {
        match token {
            TOKEN_CONNECT => self.try_connect(api),
            TOKEN_SEND => {
                let conn = match self.conn {
                    Some(c) => c,
                    None => return,
                };
                if self.sent >= self.repetitions {
                    return;
                }
                if api.send(conn, self.message.clone()).is_ok() {
                    self.sent += 1;
                }
                if self.sent >= self.repetitions {
                    self.finished_at = Some(api.now());
                } else {
                    api.schedule_timer(self.interval, TOKEN_SEND);
                }
            }
            _ => {}
        }
    }

    fn on_connected(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId) {
        if self.conn == Some(conn) {
            self.connected_at = Some(api.now());
            api.schedule_timer(SimDuration::from_millis(10), TOKEN_SEND);
        }
    }

    fn on_connect_failed(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, _error: PeerHoodError) {
        if self.conn == Some(conn) {
            self.conn = None;
            api.schedule_timer(self.retry_after, TOKEN_CONNECT);
        }
    }

    fn on_connection_changed(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId) {
        if self.conn == Some(conn) {
            self.connection_changes += 1;
            if self.connected_at.is_none() {
                self.connected_at = Some(api.now());
            }
            // Resume sending if anything is left.
            if self.sent < self.repetitions && !self.finished() {
                api.schedule_timer(SimDuration::from_millis(10), TOKEN_SEND);
            }
        }
    }

    fn on_service_reconnected(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, _provider: DeviceAddress) {
        if self.conn == Some(conn) {
            // A different provider means the task starts over (§5.2.2).
            self.restarts += 1;
            self.sent = 0;
            self.connection_changes += 1;
            api.schedule_timer(SimDuration::from_millis(10), TOKEN_SEND);
        }
    }

    fn on_disconnected(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, _graceful: bool) {
        if self.conn == Some(conn) {
            self.disconnects += 1;
            if !self.finished() {
                // Try again from scratch unless exhausted.
                self.conn = None;
                api.schedule_timer(self.retry_after, TOKEN_CONNECT);
            }
        }
    }
}

/// A server that registers a named service and records every message it
/// receives (the "print it on the screen" server of §4.3/§5.2.1).
#[derive(Debug)]
pub struct MessagingServer {
    /// The service name to register.
    pub service: String,
    /// Every received message with its arrival time.
    pub received: Vec<(SimTime, Vec<u8>)>,
    /// Number of clients that connected.
    pub clients: u32,
    /// Number of times a session's route changed under it.
    pub connection_changes: u32,
}

impl MessagingServer {
    /// Creates a server for the given service name.
    pub fn new(service: impl Into<String>) -> Self {
        MessagingServer {
            service: service.into(),
            received: Vec::new(),
            clients: 0,
            connection_changes: 0,
        }
    }

    /// Number of received messages.
    pub fn received_count(&self) -> usize {
        self.received.len()
    }

    /// Largest gap in seconds between consecutive received messages (a proxy
    /// for the interruption caused by a handover).
    pub fn largest_gap_seconds(&self) -> f64 {
        self.received
            .windows(2)
            .map(|w| (w[1].0 - w[0].0).as_secs_f64())
            .fold(0.0, f64::max)
    }
}

impl Application for MessagingServer {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn on_start(&mut self, api: &mut PeerHoodApi<'_, '_>) {
        api.register_service(ServiceInfo::new(self.service.clone(), "messaging", 40))
            .expect("messaging service registers once");
    }

    fn on_peer_connected(
        &mut self,
        _api: &mut PeerHoodApi<'_, '_>,
        _conn: ConnectionId,
        _client: DeviceInfo,
        _service: &str,
    ) {
        self.clients += 1;
    }

    fn on_data(&mut self, api: &mut PeerHoodApi<'_, '_>, _conn: ConnectionId, payload: Vec<u8>) {
        self.received.push((api.now(), payload));
    }

    fn on_connection_changed(&mut self, _api: &mut PeerHoodApi<'_, '_>, _conn: ConnectionId) {
        self.connection_changes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerhood::config::PeerHoodConfig;
    use peerhood::node::PeerHoodNode;
    use simnet::{MobilityModel, Point, RadioTech, World, WorldConfig};

    fn bt() -> [RadioTech; 1] {
        [RadioTech::Bluetooth]
    }

    #[test]
    fn client_sends_all_messages_to_the_server() {
        let mut world = World::new(WorldConfig::ideal(77));
        let client = world.add_node(
            "client",
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            &bt(),
            Box::new(
                PeerHoodNode::builder()
                    .config(PeerHoodConfig::mobile_device("client"))
                    .app(MessagingClient::new(
                        "msg",
                        b"hi".to_vec(),
                        5,
                        SimDuration::from_millis(500),
                        SimDuration::from_secs(30),
                    ))
                    .build(),
            ),
        );
        let server = world.add_node(
            "server",
            MobilityModel::stationary(Point::new(5.0, 0.0)),
            &bt(),
            Box::new(
                PeerHoodNode::builder()
                    .config(PeerHoodConfig::static_device("server"))
                    .app(MessagingServer::new("msg"))
                    .build(),
            ),
        );
        world.run_for(SimDuration::from_secs(120));
        let (sent, finished, setup) = world
            .with_agent::<PeerHoodNode, _>(client, |n, _| {
                let app = n.app::<MessagingClient>().unwrap();
                (app.sent, app.finished(), app.connection_setup_seconds())
            })
            .unwrap();
        assert_eq!(sent, 5);
        assert!(finished);
        assert!(setup.unwrap() >= 0.0);
        let received = world
            .with_agent::<PeerHoodNode, _>(server, |n, _| {
                let app = n.app::<MessagingServer>().unwrap();
                (app.received_count(), app.clients)
            })
            .unwrap();
        assert_eq!(received, (5, 1));
    }

    #[test]
    fn client_retries_until_the_service_is_discovered() {
        // The client starts trying to connect before discovery has had any
        // chance to find the server, so the first attempts fail with
        // ServiceNotFound and the retry path is exercised.
        let mut world = World::new(WorldConfig::ideal(78));
        let client = world.add_node(
            "client",
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            &bt(),
            Box::new(
                PeerHoodNode::builder()
                    .config(PeerHoodConfig::mobile_device("client"))
                    .app(MessagingClient::new(
                        "msg",
                        b"x".to_vec(),
                        1,
                        SimDuration::from_secs(1),
                        SimDuration::from_millis(100),
                    ))
                    .build(),
            ),
        );
        world.add_node(
            "server",
            MobilityModel::stationary(Point::new(5.0, 0.0)),
            &bt(),
            Box::new(
                PeerHoodNode::builder()
                    .config(PeerHoodConfig::static_device("server"))
                    .app(MessagingServer::new("msg"))
                    .build(),
            ),
        );
        world.run_for(SimDuration::from_secs(120));
        let finished = world
            .with_agent::<PeerHoodNode, _>(client, |n, _| n.app::<MessagingClient>().unwrap().finished())
            .unwrap();
        assert!(finished);
    }

    #[test]
    fn server_gap_statistic() {
        let mut s = MessagingServer::new("x");
        assert_eq!(s.largest_gap_seconds(), 0.0);
        s.received.push((SimTime::from_secs(1), vec![]));
        s.received.push((SimTime::from_secs(2), vec![]));
        s.received.push((SimTime::from_secs(10), vec![]));
        assert!((s.largest_gap_seconds() - 8.0).abs() < 1e-9);
        assert_eq!(s.received_count(), 3);
    }

    #[test]
    fn constructors_match_the_thesis_workloads() {
        let bridge = MessagingClient::bridge_test("msg", SimDuration::ZERO);
        assert_eq!(bridge.repetitions, 20);
        assert_eq!(bridge.interval, SimDuration::from_secs(1));
        let gm = MessagingClient::good_morning("msg", SimDuration::ZERO);
        assert_eq!(gm.repetitions, 50);
        assert_eq!(gm.message, b"good morning!".to_vec());
        let pinned = gm.with_target(DeviceAddress::from_node_raw(4));
        assert_eq!(pinned.target, Some(DeviceAddress::from_node_raw(4)));
    }
}
