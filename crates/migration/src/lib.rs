//! # migration — task migration over PeerHood
//!
//! The thesis' motivating use case is *task migration*: a battery- and
//! CPU-constrained phone hands a heavy job (picture analysis) to a nearby
//! fixed server and receives the result back, while both devices keep moving
//! (Ch. 1, Ch. 5). This crate provides the applications that exercise that
//! flow on top of the [`peerhood`] middleware:
//!
//! * [`messaging`] — the simple periodic-message client/server the thesis
//!   uses to test the bridge service (§4.3) and the routing-handover
//!   simulation (§5.2.1),
//! * [`picture`] — the picture-analysis client/server of §5.3 with the
//!   "sending" flag and result routing,
//! * [`task`] — workload descriptions (the small / considerable / huge
//!   package regimes) and outcome classification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod messaging;
pub mod picture;
pub mod task;

/// Re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::messaging::{MessagingClient, MessagingServer};
    pub use crate::picture::{PictureClient, PictureServer};
    pub use crate::task::{TaskOutcome, TaskSpec};
}

pub use prelude::*;
