//! Task-migration workload descriptions.
//!
//! The thesis' canonical migrated task is the analysis of a picture that is
//! too expensive to process on the phone (§1.1, §5.3): the client uploads a
//! number of data packages, the server processes them for a while, and the
//! (small) result travels back. A [`TaskSpec`] captures exactly those three
//! knobs so the experiments can sweep the §5.3 regimes (small / considerable
//! / huge package counts).

use serde::{Deserialize, Serialize};
use simnet::SimDuration;

/// Parameters of one migratable task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Number of data packages the client uploads.
    pub packages: u32,
    /// Size of each package in bytes.
    pub package_size: usize,
    /// Server-side processing time per received package.
    pub processing_per_package: SimDuration,
    /// Size of the result returned to the client, in bytes.
    pub result_size: usize,
}

impl TaskSpec {
    /// The §5.3 "small number of data packages" regime: the whole task
    /// finishes while the client is still in coverage.
    pub fn small() -> Self {
        TaskSpec {
            packages: 5,
            package_size: 4 * 1024,
            processing_per_package: SimDuration::from_millis(400),
            result_size: 2 * 1024,
        }
    }

    /// The §5.3 "considerable number of data packages" regime: the upload
    /// completes but the connection breaks during processing, so the result
    /// must be routed back.
    pub fn considerable() -> Self {
        TaskSpec {
            packages: 40,
            package_size: 16 * 1024,
            processing_per_package: SimDuration::from_millis(1_500),
            result_size: 8 * 1024,
        }
    }

    /// The §5.3 "huge number of data packages" regime: the connection breaks
    /// during the upload itself and the handover machinery is exercised.
    pub fn huge() -> Self {
        TaskSpec {
            packages: 400,
            package_size: 32 * 1024,
            processing_per_package: SimDuration::from_millis(500),
            result_size: 16 * 1024,
        }
    }

    /// Total number of bytes uploaded by the client.
    pub fn upload_bytes(&self) -> u64 {
        self.packages as u64 * self.package_size as u64
    }

    /// Total server-side processing time.
    pub fn processing_time(&self) -> SimDuration {
        self.processing_per_package * self.packages as u64
    }
}

impl Default for TaskSpec {
    fn default() -> Self {
        TaskSpec::small()
    }
}

/// How a migrated task ended, from the client's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskOutcome {
    /// The result came back on the original, uninterrupted connection.
    CompletedDirect,
    /// The connection broke but the result was routed back later
    /// (server-initiated reconnection, §5.3 case 2).
    CompletedViaResultRouting,
    /// The connection was handed over (and possibly restarted) before
    /// completing.
    CompletedAfterRecovery,
    /// The task never completed within the observation window.
    Incomplete,
}

impl TaskOutcome {
    /// True for any outcome in which the client eventually got its result.
    pub fn completed(self) -> bool {
        !matches!(self, TaskOutcome::Incomplete)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_are_ordered_by_size() {
        let s = TaskSpec::small();
        let c = TaskSpec::considerable();
        let h = TaskSpec::huge();
        assert!(s.upload_bytes() < c.upload_bytes());
        assert!(c.upload_bytes() < h.upload_bytes());
        assert!(s.processing_time() < c.processing_time());
        assert_eq!(TaskSpec::default(), s);
    }

    #[test]
    fn derived_quantities() {
        let spec = TaskSpec {
            packages: 10,
            package_size: 1000,
            processing_per_package: SimDuration::from_secs(2),
            result_size: 10,
        };
        assert_eq!(spec.upload_bytes(), 10_000);
        assert_eq!(spec.processing_time(), SimDuration::from_secs(20));
    }

    #[test]
    fn outcome_completion() {
        assert!(TaskOutcome::CompletedDirect.completed());
        assert!(TaskOutcome::CompletedViaResultRouting.completed());
        assert!(TaskOutcome::CompletedAfterRecovery.completed());
        assert!(!TaskOutcome::Incomplete.completed());
    }
}
