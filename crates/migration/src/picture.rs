//! The picture-analysis task-migration applications (§5.3, Fig. 5.9/5.10).
//!
//! The client uploads a picture split into data packages, clears the
//! "sending" flag, and goes to sleep waiting for the result; the server
//! counts packages, "processes" the picture for a while, and writes the
//! result back — reconnecting to the client through the device storage if
//! the connection broke in the meantime (result routing).

use std::any::Any;
use std::collections::BTreeMap;

use peerhood::node::PeerHoodApi;
use peerhood::prelude::*;
use simnet::{SimDuration, SimTime};

use crate::task::{TaskOutcome, TaskSpec};

const TOKEN_CONNECT: u64 = 1;
const TOKEN_SEND: u64 = 2;
const TOKEN_PROCESS_BASE: u64 = 1000;

fn encode_header(packages: u32) -> Vec<u8> {
    let mut h = b"PKGS".to_vec();
    h.extend_from_slice(&packages.to_be_bytes());
    h
}

fn decode_header(payload: &[u8]) -> Option<u32> {
    if payload.len() == 8 && &payload[..4] == b"PKGS" {
        Some(u32::from_be_bytes([payload[4], payload[5], payload[6], payload[7]]))
    } else {
        None
    }
}

/// The mobile client that migrates a picture-analysis task.
#[derive(Debug)]
pub struct PictureClient {
    /// Service name of the analysis server.
    pub service: String,
    /// Workload parameters.
    pub spec: TaskSpec,
    /// Delay before the first connection attempt.
    pub start_after: SimDuration,
    /// Interval between uploaded packages.
    pub package_interval: SimDuration,
    /// Retry interval while the service is not yet discovered.
    pub retry_after: SimDuration,

    // --- recorded state ---
    /// The task connection.
    pub conn: Option<ConnectionId>,
    /// Packages sent in the current upload run.
    pub sent_packages: u32,
    /// When the upload finished.
    pub upload_complete_at: Option<SimTime>,
    /// The received analysis result.
    pub result: Option<Vec<u8>>,
    /// When the result arrived.
    pub result_received_at: Option<SimTime>,
    /// Number of times the upload had to restart from zero.
    pub restarts: u32,
    /// Number of times `begin_upload` ran (1 for an uninterrupted task).
    pub upload_attempts: u32,
    /// Route changes under the live session (handover / result routing).
    pub connection_changes: u32,
    /// Final disconnect notifications received.
    pub disconnects: u32,
    /// True if establishment failed permanently.
    pub failed: bool,
}

impl PictureClient {
    /// Creates a client for the given workload.
    pub fn new(service: impl Into<String>, spec: TaskSpec, start_after: SimDuration) -> Self {
        PictureClient {
            service: service.into(),
            spec,
            start_after,
            package_interval: SimDuration::from_millis(200),
            retry_after: SimDuration::from_secs(5),
            conn: None,
            sent_packages: 0,
            upload_complete_at: None,
            result: None,
            result_received_at: None,
            restarts: 0,
            upload_attempts: 0,
            connection_changes: 0,
            disconnects: 0,
            failed: false,
        }
    }

    /// True once the analysis result has arrived.
    pub fn completed(&self) -> bool {
        self.result.is_some()
    }

    /// Classifies how the task ended (used by experiment E9).
    pub fn outcome(&self) -> TaskOutcome {
        if !self.completed() {
            return TaskOutcome::Incomplete;
        }
        if self.restarts > 0 || self.upload_attempts > 1 {
            TaskOutcome::CompletedAfterRecovery
        } else if self.connection_changes > 0 || self.disconnects > 0 {
            TaskOutcome::CompletedViaResultRouting
        } else {
            TaskOutcome::CompletedDirect
        }
    }

    fn try_connect(&mut self, api: &mut PeerHoodApi<'_, '_>) {
        if self.conn.is_some() || self.completed() {
            return;
        }
        match api.connect_to_service(&self.service) {
            Ok(conn) => self.conn = Some(conn),
            Err(_) => api.schedule_timer(self.retry_after, TOKEN_CONNECT),
        }
    }

    fn begin_upload(&mut self, api: &mut PeerHoodApi<'_, '_>) {
        let conn = match self.conn {
            Some(c) => c,
            None => return,
        };
        self.sent_packages = 0;
        self.upload_attempts += 1;
        let _ = api.send(conn, encode_header(self.spec.packages));
        api.schedule_timer(self.package_interval, TOKEN_SEND);
    }
}

impl Application for PictureClient {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn on_start(&mut self, api: &mut PeerHoodApi<'_, '_>) {
        api.schedule_timer(self.start_after, TOKEN_CONNECT);
    }

    fn on_timer(&mut self, api: &mut PeerHoodApi<'_, '_>, token: u64) {
        match token {
            TOKEN_CONNECT => self.try_connect(api),
            TOKEN_SEND => {
                let conn = match self.conn {
                    Some(c) => c,
                    None => return,
                };
                if self.upload_complete_at.is_some() || self.completed() {
                    return;
                }
                let payload = vec![0xAB; self.spec.package_size];
                if api.send(conn, payload).is_ok() {
                    self.sent_packages += 1;
                }
                if self.sent_packages >= self.spec.packages {
                    self.upload_complete_at = Some(api.now());
                    // §5.3: tell the middleware the connection is no longer
                    // needed; if it breaks now, just wait for the server to
                    // come back with the result.
                    let _ = api.set_sending(conn, false);
                } else {
                    api.schedule_timer(self.package_interval, TOKEN_SEND);
                }
            }
            _ => {}
        }
    }

    fn on_connected(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId) {
        if self.conn == Some(conn) {
            self.begin_upload(api);
        }
    }

    fn on_connect_failed(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, _error: PeerHoodError) {
        if self.conn == Some(conn) {
            self.conn = None;
            api.schedule_timer(self.retry_after, TOKEN_CONNECT);
        }
    }

    fn on_data(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, payload: Vec<u8>) {
        if self.conn == Some(conn) && self.result.is_none() {
            self.result = Some(payload);
            self.result_received_at = Some(api.now());
        }
    }

    fn on_connection_changed(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId) {
        if self.conn == Some(conn) {
            if !self.completed() {
                self.connection_changes += 1;
            }
            // If the route changed mid-upload, keep uploading.
            if self.upload_complete_at.is_none() && !self.completed() {
                api.schedule_timer(self.package_interval, TOKEN_SEND);
            }
        }
    }

    fn on_service_reconnected(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, _provider: DeviceAddress) {
        if self.conn == Some(conn) {
            // A different server means the whole task restarts (§5.2.2).
            self.restarts += 1;
            self.upload_complete_at = None;
            self.begin_upload(api);
        }
    }

    fn on_disconnected(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, _graceful: bool) {
        if self.conn == Some(conn) {
            if !self.completed() {
                self.disconnects += 1;
            }
            if self.upload_complete_at.is_some() || self.completed() {
                // Waiting for the result: stay asleep, the server will call
                // back (result routing).
                return;
            }
            // Broken mid-upload and the middleware gave up: try again.
            self.conn = None;
            api.schedule_timer(self.retry_after, TOKEN_CONNECT);
        }
    }
}

#[derive(Debug, Default, Clone)]
struct Session {
    expected: Option<u32>,
    received: u32,
    processing: bool,
    done: bool,
}

/// The picture-analysis server (Fig. 5.10).
#[derive(Debug)]
pub struct PictureServer {
    /// Service name to register.
    pub service: String,
    /// Processing time per received package.
    pub processing_per_package: SimDuration,
    /// Size of the result written back to the client.
    pub result_size: usize,

    sessions: BTreeMap<ConnectionId, Session>,
    token_conns: BTreeMap<u64, ConnectionId>,
    next_token: u64,
    /// Number of completed analyses (result written back, possibly queued).
    pub results_sent: u32,
    /// Number of clients that connected.
    pub clients: u32,
    /// Number of sessions whose client disconnected before the upload ended.
    pub interrupted_uploads: u32,
}

impl PictureServer {
    /// Creates a server matching the given workload parameters.
    pub fn for_spec(service: impl Into<String>, spec: &TaskSpec) -> Self {
        PictureServer {
            service: service.into(),
            processing_per_package: spec.processing_per_package,
            result_size: spec.result_size,
            sessions: BTreeMap::new(),
            token_conns: BTreeMap::new(),
            next_token: 0,
            results_sent: 0,
            clients: 0,
            interrupted_uploads: 0,
        }
    }

    /// Number of packages received across every session.
    pub fn packages_received(&self) -> u32 {
        self.sessions.values().map(|s| s.received).sum()
    }
}

impl Application for PictureServer {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn on_start(&mut self, api: &mut PeerHoodApi<'_, '_>) {
        api.register_service(ServiceInfo::new(self.service.clone(), "image analysis", 50))
            .expect("picture service registers once");
    }

    fn on_peer_connected(
        &mut self,
        _api: &mut PeerHoodApi<'_, '_>,
        conn: ConnectionId,
        _client: DeviceInfo,
        _service: &str,
    ) {
        self.clients += 1;
        self.sessions.entry(conn).or_default();
    }

    fn on_data(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, payload: Vec<u8>) {
        let now_processing = {
            let session = self.sessions.entry(conn).or_default();
            if session.done || session.processing {
                return;
            }
            if let Some(expected) = decode_header(&payload) {
                session.expected = Some(expected);
                session.received = 0;
                false
            } else {
                session.received += 1;
                session.expected.map(|e| session.received >= e).unwrap_or(false)
            }
        };
        if now_processing {
            let (packages, token) = {
                let session = self.sessions.get_mut(&conn).expect("session exists");
                session.processing = true;
                let token = TOKEN_PROCESS_BASE + self.next_token;
                self.next_token += 1;
                (session.received, token)
            };
            self.token_conns.insert(token, conn);
            let duration = self.processing_per_package * packages as u64;
            api.schedule_timer(duration, token);
        }
    }

    fn on_timer(&mut self, api: &mut PeerHoodApi<'_, '_>, token: u64) {
        if let Some(conn) = self.token_conns.remove(&token) {
            if let Some(session) = self.sessions.get_mut(&conn) {
                session.processing = false;
                session.done = true;
            }
            // Write the result back; if the client is gone, the middleware
            // queues it and performs result routing (Fig. 5.10's "find client
            // device, reconnect to client, write result back").
            let result = vec![0xCD; self.result_size];
            if api.send(conn, result).is_ok() {
                self.results_sent += 1;
            }
        }
    }

    fn on_disconnected(&mut self, _api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, _graceful: bool) {
        if let Some(session) = self.sessions.get(&conn) {
            if !session.done && !session.processing {
                self.interrupted_uploads += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peerhood::config::PeerHoodConfig;
    use peerhood::node::PeerHoodNode;
    use simnet::{MobilityModel, Point, RadioTech, World, WorldConfig};

    #[test]
    fn header_roundtrip() {
        assert_eq!(decode_header(&encode_header(42)), Some(42));
        assert_eq!(decode_header(b"nope"), None);
        assert_eq!(decode_header(&[0u8; 8]), None);
        assert_eq!(decode_header(&encode_header(0)), Some(0));
    }

    #[test]
    fn outcome_classification() {
        let mut c = PictureClient::new("svc", TaskSpec::small(), SimDuration::ZERO);
        assert_eq!(c.outcome(), TaskOutcome::Incomplete);
        c.result = Some(vec![]);
        assert_eq!(c.outcome(), TaskOutcome::CompletedDirect);
        c.disconnects = 1;
        assert_eq!(c.outcome(), TaskOutcome::CompletedViaResultRouting);
        c.restarts = 1;
        assert_eq!(c.outcome(), TaskOutcome::CompletedAfterRecovery);
    }

    #[test]
    fn small_task_completes_over_a_stable_connection() {
        let spec = TaskSpec::small();
        let mut world = World::new(WorldConfig::ideal(91));
        let client = world.add_node(
            "phone",
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            &[RadioTech::Bluetooth],
            Box::new(
                PeerHoodNode::builder()
                    .config(PeerHoodConfig::mobile_device("phone"))
                    .app(PictureClient::new("analysis", spec.clone(), SimDuration::from_secs(25)))
                    .build(),
            ),
        );
        let server = world.add_node(
            "pc",
            MobilityModel::stationary(Point::new(5.0, 0.0)),
            &[RadioTech::Bluetooth],
            Box::new(
                PeerHoodNode::builder()
                    .config(PeerHoodConfig::static_device("pc"))
                    .app(PictureServer::for_spec("analysis", &spec))
                    .build(),
            ),
        );
        world.run_for(SimDuration::from_secs(180));
        let outcome = world
            .with_agent::<PeerHoodNode, _>(client, |n, _| {
                let app = n.app::<PictureClient>().unwrap();
                (app.outcome(), app.sent_packages, app.result.as_ref().map(|r| r.len()))
            })
            .unwrap();
        assert_eq!(outcome.0, TaskOutcome::CompletedDirect);
        assert_eq!(outcome.1, spec.packages);
        assert_eq!(outcome.2, Some(spec.result_size));
        let server_state = world
            .with_agent::<PeerHoodNode, _>(server, |n, _| {
                let app = n.app::<PictureServer>().unwrap();
                (app.results_sent, app.packages_received(), app.clients)
            })
            .unwrap();
        assert_eq!(server_state, (1, spec.packages, 1));
    }

    #[test]
    fn result_is_routed_back_after_the_client_disconnects() {
        // The client walks out of coverage right after its upload finishes;
        // the server completes processing and re-establishes the connection
        // to return the result once the client walks back into range.
        let spec = TaskSpec {
            packages: 10,
            package_size: 2 * 1024,
            processing_per_package: SimDuration::from_secs(6),
            result_size: 4 * 1024,
        };
        let mut world = World::new(WorldConfig::ideal(92));
        // Walk away at t=60 s (after the upload), come back at t=140 s.
        let client = world.add_node(
            "phone",
            MobilityModel::Waypoints {
                points: vec![
                    Point::new(0.0, 0.0),
                    Point::new(0.0, 0.0),
                    Point::new(60.0, 0.0),
                    Point::new(60.0, 0.0),
                    Point::new(0.0, 0.0),
                ],
                speed_mps: 1.5,
                start_after: SimDuration::from_secs(60),
            },
            &[RadioTech::Bluetooth],
            Box::new(
                PeerHoodNode::builder()
                    .config(PeerHoodConfig::mobile_device("phone"))
                    .app(PictureClient::new("analysis", spec.clone(), SimDuration::from_secs(25)))
                    .build(),
            ),
        );
        world.add_node(
            "pc",
            MobilityModel::stationary(Point::new(5.0, 0.0)),
            &[RadioTech::Bluetooth],
            Box::new(
                PeerHoodNode::builder()
                    .config(PeerHoodConfig::static_device("pc"))
                    .app(PictureServer::for_spec("analysis", &spec))
                    .build(),
            ),
        );
        world.run_for(SimDuration::from_secs(500));
        let (outcome, result_at) = world
            .with_agent::<PeerHoodNode, _>(client, |n, _| {
                let app = n.app::<PictureClient>().unwrap();
                (app.outcome(), app.result_received_at)
            })
            .unwrap();
        assert_eq!(outcome, TaskOutcome::CompletedViaResultRouting);
        assert!(result_at.unwrap() > SimTime::from_secs(100));
    }
}
