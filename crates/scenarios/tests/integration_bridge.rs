//! Cross-crate integration tests: the interconnection (bridge) system (Ch. 4).

use migration::{MessagingClient, MessagingServer};
use peerhood::node::PeerHoodNode;
use peerhood::prelude::*;
use scenarios::experiments::bridge_trial;
use scenarios::topology::{experiment_config, spawn_app, spawn_relay};
use simnet::prelude::*;

#[test]
fn two_hop_bridge_chain_delivers_data() {
    // client - bridge1 - bridge2 - server: the connection needs two relays.
    let mut world = World::new(WorldConfig::ideal(201));
    let client = spawn_app(
        &mut world,
        experiment_config("client", MobilityClass::Dynamic, DiscoveryMode::Dynamic),
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        Box::new(MessagingClient::new(
            "sink",
            b"across two bridges".to_vec(),
            5,
            SimDuration::from_secs(1),
            SimDuration::from_secs(120),
        )),
    );
    let b1 = spawn_relay(
        &mut world,
        experiment_config("b1", MobilityClass::Static, DiscoveryMode::Dynamic),
        Point::new(8.0, 0.0),
    );
    let b2 = spawn_relay(
        &mut world,
        experiment_config("b2", MobilityClass::Static, DiscoveryMode::Dynamic),
        Point::new(16.0, 0.0),
    );
    let server = spawn_app(
        &mut world,
        experiment_config("server", MobilityClass::Static, DiscoveryMode::Dynamic),
        MobilityModel::stationary(Point::new(24.0, 0.0)),
        Box::new(MessagingServer::new("sink")),
    );
    world.run_for(SimDuration::from_secs(400));
    let received = world
        .with_agent::<PeerHoodNode, _>(server, |n, _| n.app::<MessagingServer>().unwrap().received_count())
        .unwrap();
    assert_eq!(received, 5, "all messages must arrive across the two-bridge chain");
    // Both relays carried traffic for the pair.
    for bridge in [b1, b2] {
        let (_, relayed, _) = world
            .with_agent::<PeerHoodNode, _>(bridge, |n, _| n.bridge_stats())
            .unwrap();
        assert!(relayed > 0, "bridge {bridge} should have relayed traffic");
    }
    let sent = world
        .with_agent::<PeerHoodNode, _>(client, |n, _| n.app::<MessagingClient>().unwrap().sent)
        .unwrap();
    assert_eq!(sent, 5);
}

#[test]
fn bridge_capacity_limit_refuses_extra_connections() {
    // The bridge accepts only one relayed pair; the second client's bridged
    // connection must be refused and reported as failed.
    let mut world = World::new(WorldConfig::ideal(202));
    let mk_client = |_name: &str| {
        MessagingClient::new(
            "sink",
            b"x".to_vec(),
            3,
            SimDuration::from_secs(1),
            SimDuration::from_secs(150),
        )
    };
    let c1 = spawn_app(
        &mut world,
        experiment_config("c1", MobilityClass::Dynamic, DiscoveryMode::Dynamic),
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        Box::new(mk_client("c1")),
    );
    let c2 = spawn_app(
        &mut world,
        experiment_config("c2", MobilityClass::Dynamic, DiscoveryMode::Dynamic),
        MobilityModel::stationary(Point::new(0.0, 2.0)),
        Box::new({
            let mut c = mk_client("c2");
            c.start_after = SimDuration::from_secs(170);
            c.max_attempts = 1;
            c
        }),
    );
    let mut bridge_cfg = experiment_config("bridge", MobilityClass::Static, DiscoveryMode::Dynamic);
    bridge_cfg.bridge.max_connections = 1;
    spawn_relay(&mut world, bridge_cfg, Point::new(8.0, 0.0));
    let server = spawn_app(
        &mut world,
        experiment_config("server", MobilityClass::Static, DiscoveryMode::Dynamic),
        MobilityModel::stationary(Point::new(16.0, 0.0)),
        Box::new(MessagingServer::new("sink")),
    );
    world.run_for(SimDuration::from_secs(400));
    let c1_done = world
        .with_agent::<PeerHoodNode, _>(c1, |n, _| n.app::<MessagingClient>().unwrap().finished())
        .unwrap();
    assert!(c1_done, "the first client fits within the bridge capacity");
    let c2_connected = world
        .with_agent::<PeerHoodNode, _>(c2, |n, _| n.app::<MessagingClient>().unwrap().connected_at.is_some())
        .unwrap();
    assert!(!c2_connected, "the second client must be refused by the loaded bridge");
    let received = world
        .with_agent::<PeerHoodNode, _>(server, |n, _| n.app::<MessagingServer>().unwrap().received_count())
        .unwrap();
    assert_eq!(received, 3);
}

#[test]
fn realistic_bridge_trial_reports_consistent_numbers() {
    let trial = bridge_trial(31);
    if trial.connected {
        let setup = trial.setup_seconds.expect("connected trials record a setup time");
        assert!(setup > 0.0 && setup < 60.0, "setup {setup} out of range");
        assert!(trial.delivered <= 20);
    } else {
        assert_eq!(trial.delivered, 0);
    }
}
