//! Smoke tests for the full experiment suite (quick settings): every report
//! must be produced with the expected shape so `repro` cannot silently skip a
//! figure.

use scenarios::experiments::{e03_quality_route_selection, e09_result_routing, e10_coverage_amplification};

#[test]
fn e9_reproduces_the_three_regimes() {
    let report = e09_result_routing(9);
    assert_eq!(report.rows.len(), 3);
    assert!(report.rows[0].cells[1].contains("CompletedDirect"));
    assert!(report.rows[1].cells[1].contains("CompletedViaResultRouting"));
    // The huge regime requires recovery of some kind; accept either recovery
    // or (on unlucky seeds) result routing, but it must complete.
    assert!(report.rows[2].cells[1].contains("Completed"));
}

#[test]
fn e10_tunnel_is_only_reachable_with_bridges() {
    let report = e10_coverage_amplification(10);
    assert_eq!(report.rows.len(), 2);
    assert_eq!(report.rows[0].cells[1], "true", "with bridges the server is known");
    assert_eq!(report.rows[1].cells[1], "false", "without bridges it is not");
    let with_bridges: usize = report.rows[0].cells[3].parse().unwrap();
    assert!(
        with_bridges >= 8,
        "nearly all messages must cross the tunnel, got {with_bridges}"
    );
}

#[test]
fn reports_render_markdown_tables() {
    let report = e03_quality_route_selection();
    let text = report.to_string();
    assert!(text.contains("### E3"));
    assert!(text.lines().filter(|l| l.starts_with('|')).count() >= 4);
}
