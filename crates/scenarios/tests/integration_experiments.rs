//! Smoke tests for the full experiment suite (quick settings): every report
//! must be produced with the expected shape so `repro` cannot silently skip a
//! figure.

use scenarios::experiments::{
    e02_gnutella_traffic, e03_quality_route_selection, e09_result_routing, e10_coverage_amplification, find, registry,
    Params,
};

#[test]
fn e9_reproduces_the_three_regimes() {
    let report = e09_result_routing(9);
    assert_eq!(report.rows.len(), 3);
    assert!(report.rows[0].cells[1].contains("CompletedDirect"));
    assert!(report.rows[1].cells[1].contains("CompletedViaResultRouting"));
    // The huge regime requires recovery of some kind; accept either recovery
    // or (on unlucky seeds) result routing, but it must complete.
    assert!(report.rows[2].cells[1].contains("Completed"));
}

#[test]
fn e10_tunnel_is_only_reachable_with_bridges() {
    let report = e10_coverage_amplification(10);
    assert_eq!(report.rows.len(), 2);
    assert_eq!(report.rows[0].cells[1], "true", "with bridges the server is known");
    assert_eq!(report.rows[1].cells[1], "false", "without bridges it is not");
    let with_bridges: usize = report.rows[0].cells[3].parse().unwrap();
    assert!(
        with_bridges >= 8,
        "nearly all messages must cross the tunnel, got {with_bridges}"
    );
}

#[test]
fn registry_covers_e1_to_e19_in_order() {
    let reg = registry();
    assert_eq!(reg.len(), 19);
    for (i, experiment) in reg.iter().enumerate() {
        assert_eq!(experiment.id(), format!("E{}", i + 1));
        assert!(!experiment.title().is_empty());
    }
}

#[test]
fn trait_runs_match_the_direct_entry_points_and_yield_samples() {
    // The uniform trait must be a pure re-routing of the historical entry
    // points: identical report, plus the numeric sample stream on top.
    let direct = e02_gnutella_traffic(5);
    let via_trait = find("gnutella").unwrap().run(5, &Params::new(), true);
    assert_eq!(via_trait.report, direct);
    assert_eq!(via_trait.samples.len(), direct.rows.len());
    // Key columns form the scenario identity; the rest become metrics.
    assert!(via_trait.samples[0].scenario.starts_with("nodes="));
    assert!(via_trait.samples[0].metrics.iter().any(|(name, _)| name == "edges"));
}

#[test]
fn grid_params_reach_the_experiment_settings() {
    let mut params = Params::new();
    params.set("nodes", "40");
    params.set("churn", "240");
    params.set("duration_s", "30");
    let output = find("churn").unwrap().run(7, &params, true);
    assert_eq!(output.report.rows.len(), 1, "one population x one churn rate");
    assert_eq!(output.samples[0].scenario, "nodes=40 churn (/node/h)=240.00");
}

#[test]
fn reports_render_markdown_tables() {
    let report = e03_quality_route_selection();
    let text = report.to_string();
    assert!(text.contains("### E3"));
    assert!(text.lines().filter(|l| l.starts_with('|')).count() >= 4);
}
