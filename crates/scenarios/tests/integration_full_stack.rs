//! Full-stack smoke tests: the real PeerHood middleware populates the scale
//! and churn cities (StackMode::Full) and the E15 metropolis, on every
//! `cargo test`. Debug builds use the reduced `smoke` population; CI runs
//! the 2k-node quick variant through the release `repro` binary.

use scenarios::experiments::{
    e12_dense_city, e13_churn_sweep, e15_full_stack_metropolis, ChurnSettings, MetropolisSettings, ScaleSettings,
    StackMode,
};
use simnet::SimDuration;

#[test]
fn e15_smoke_runs_real_middleware_under_churn() {
    let settings = MetropolisSettings::smoke();
    let report = e15_full_stack_metropolis(&settings);
    assert_eq!(report.rows.len(), 1);
    let cells = &report.rows[0].cells;
    assert_eq!(cells[0], settings.nodes.to_string());
    let sessions: u64 = cells[1].parse().unwrap();
    assert!(sessions > 0, "middleware sessions must form: {cells:?}");
    let pings: u64 = cells[2].parse().unwrap();
    assert!(pings > 0, "session payloads must flow end to end: {cells:?}");
    let crashes: u64 = cells[6].parse().unwrap();
    let restarts: u64 = cells[7].parse().unwrap();
    assert!(crashes > 0, "the churn schedule must bite: {cells:?}");
    assert_eq!(crashes, restarts, "the run quiesces every scheduled restart");
    let attached: f64 = cells[8].parse().unwrap();
    assert!(
        attached > 50.0,
        "most devices must hold a session after recovery, got {attached}%"
    );
}

#[test]
fn e15_report_is_deterministic() {
    let settings = MetropolisSettings::smoke();
    let a = e15_full_stack_metropolis(&settings);
    let b = e15_full_stack_metropolis(&settings);
    assert_eq!(a, b, "same settings must reproduce the identical report");
}

#[test]
fn e12_full_stack_mode_swaps_in_the_real_middleware() {
    let settings = ScaleSettings {
        node_counts: vec![120],
        duration: SimDuration::from_secs(60),
        stack: StackMode::Full,
        ..ScaleSettings::quick()
    };
    let report = e12_dense_city(&settings);
    assert_eq!(report.rows.len(), 1);
    let cells = &report.rows[0].cells;
    let links: u64 = cells[4].parse().unwrap();
    assert!(links > 0, "full-stack devices must attach: {cells:?}");
    // The full-stack note is appended only in Full mode.
    assert!(report.notes.iter().any(|n| n.contains("StackMode::Full")));
    // Lightweight quick mode stays note-free of the stack marker (the
    // byte-stability contract of the historical reports).
    let light = e12_dense_city(&ScaleSettings::quick());
    assert!(!light.notes.iter().any(|n| n.contains("StackMode::Full")));
}

#[test]
fn e13_full_stack_mode_reports_middleware_sessions_under_churn() {
    let settings = ChurnSettings {
        node_counts: vec![80],
        churn_per_hour: vec![120.0],
        duration: SimDuration::from_secs(100),
        stack: StackMode::Full,
        ..ChurnSettings::quick()
    };
    let report = e13_churn_sweep(&settings);
    assert_eq!(report.rows.len(), 1);
    let cells = &report.rows[0].cells;
    let crashes: u64 = cells[2].parse().unwrap();
    let sessions: u64 = cells[4].parse().unwrap();
    assert!(crashes > 0, "churn must crash nodes: {cells:?}");
    assert!(sessions > 0, "middleware sessions must form under churn: {cells:?}");
    assert!(report.notes.iter().any(|n| n.contains("StackMode::Full")));
}
