//! Cross-crate integration tests: handover and task migration (Ch. 5).

use migration::{MessagingClient, MessagingServer, PictureClient, PictureServer, TaskOutcome, TaskSpec};
use peerhood::node::PeerHoodNode;
use peerhood::prelude::*;
use scenarios::topology::{experiment_config, spawn_app, spawn_relay};
use simnet::prelude::*;

#[test]
fn routing_handover_preserves_the_session_when_walking_away() {
    // The corridor scenario: the client walks away from the server past a
    // fixed bridge; the stream must survive through a routing handover
    // without restarting the task.
    let mut world = World::new(WorldConfig::ideal(301));
    let client = spawn_app(
        &mut world,
        experiment_config("client", MobilityClass::Dynamic, DiscoveryMode::Dynamic),
        MobilityModel::walk_after(
            Point::new(2.0, 0.0),
            Point::new(16.0, 0.0),
            0.8,
            SimDuration::from_secs(80),
        ),
        Box::new(MessagingClient::new(
            "print",
            b"good morning!".to_vec(),
            60,
            SimDuration::from_secs(1),
            SimDuration::from_secs(50),
        )),
    );
    let server = spawn_app(
        &mut world,
        experiment_config("server", MobilityClass::Static, DiscoveryMode::Dynamic),
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        Box::new(MessagingServer::new("print")),
    );
    spawn_relay(
        &mut world,
        experiment_config("bridge", MobilityClass::Static, DiscoveryMode::Dynamic),
        Point::new(9.0, 0.0),
    );
    world.run_for(SimDuration::from_secs(350));
    let (handovers, restarts, sent) = world
        .with_agent::<PeerHoodNode, _>(client, |n, _| {
            let app = n.app::<MessagingClient>().unwrap();
            (n.handover_completions(), app.restarts, app.sent)
        })
        .unwrap();
    assert!(handovers >= 1, "the walk must trigger at least one routing handover");
    assert_eq!(restarts, 0, "the session must not restart on another provider");
    // A handful of messages can be lost or delayed around the instant the
    // direct link finally breaks (the data-loss risk §6.1 acknowledges), but
    // the bulk of the stream must keep flowing to the original server.
    assert!(
        sent >= 35,
        "the stream must keep progressing up to the handover, sent {sent}"
    );
    let received = world
        .with_agent::<PeerHoodNode, _>(server, |n, _| n.app::<MessagingServer>().unwrap().received_count())
        .unwrap();
    assert!(
        received >= 35,
        "the bulk of the stream must reach the original server, got {received}"
    );
}

#[test]
fn artificial_quality_decay_triggers_handover_through_the_bridge() {
    // The §5.2.1 simulation in an ideal world: decrement the link quality by
    // one per second and expect the HandoverThread to substitute the route.
    let mut world = World::new(WorldConfig::ideal(302));
    let client = spawn_app(
        &mut world,
        experiment_config("client", MobilityClass::Dynamic, DiscoveryMode::Dynamic),
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        Box::new(MessagingClient::good_morning("print", SimDuration::from_secs(60))),
    );
    let server = spawn_app(
        &mut world,
        experiment_config("server", MobilityClass::Static, DiscoveryMode::Dynamic),
        MobilityModel::stationary(Point::new(7.0, 0.0)),
        Box::new(MessagingServer::new("print")),
    );
    spawn_relay(
        &mut world,
        experiment_config("bridge", MobilityClass::Static, DiscoveryMode::Dynamic),
        Point::new(3.5, 5.0),
    );
    world.run_for(SimDuration::from_secs(80));
    let conn = world
        .with_agent::<PeerHoodNode, _>(client, |n, _| n.app::<MessagingClient>().unwrap().conn)
        .unwrap()
        .expect("client connected");
    let link = world
        .with_agent::<PeerHoodNode, _>(client, |n, _| n.connection_link(conn))
        .unwrap()
        .expect("connection has a live link");
    world.set_link_quality_override(link, 240.0, 1.0);
    world.run_for(SimDuration::from_secs(120));
    let handovers = world
        .with_agent::<PeerHoodNode, _>(client, |n, _| n.handover_completions())
        .unwrap();
    assert!(handovers >= 1, "the decaying link must be substituted");
    let received = world
        .with_agent::<PeerHoodNode, _>(server, |n, _| n.app::<MessagingServer>().unwrap().received_count())
        .unwrap();
    // A message already in flight when the decayed link finally breaks can be
    // lost (the thesis' own data-loss caveat); everything else must arrive.
    assert!(
        received >= 48,
        "nearly all 'good morning!' messages must arrive, got {received}"
    );
}

#[test]
fn result_routing_returns_the_result_after_disconnection() {
    let spec = TaskSpec {
        packages: 10,
        package_size: 2 * 1024,
        processing_per_package: SimDuration::from_secs(6),
        result_size: 4 * 1024,
    };
    let mut world = World::new(WorldConfig::ideal(303));
    let client = spawn_app(
        &mut world,
        experiment_config("phone", MobilityClass::Dynamic, DiscoveryMode::Dynamic),
        MobilityModel::Waypoints {
            points: vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 0.0),
                Point::new(60.0, 0.0),
                Point::new(60.0, 0.0),
                Point::new(0.0, 0.0),
            ],
            speed_mps: 1.5,
            start_after: SimDuration::from_secs(60),
        },
        Box::new(PictureClient::new("analysis", spec.clone(), SimDuration::from_secs(30))),
    );
    let server = spawn_app(
        &mut world,
        experiment_config("pc", MobilityClass::Static, DiscoveryMode::Dynamic),
        MobilityModel::stationary(Point::new(5.0, 0.0)),
        Box::new(PictureServer::for_spec("analysis", &spec)),
    );
    world.run_for(SimDuration::from_secs(500));
    let outcome = world
        .with_agent::<PeerHoodNode, _>(client, |n, _| n.app::<PictureClient>().unwrap().outcome())
        .unwrap();
    assert_eq!(outcome, TaskOutcome::CompletedViaResultRouting);
    let reply_reconnections = world
        .with_agent::<PeerHoodNode, _>(server, |n, _| n.reply_reconnections())
        .unwrap();
    assert!(
        reply_reconnections >= 1,
        "the server must have re-established the connection to deliver the result"
    );
}
