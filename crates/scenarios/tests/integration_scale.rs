//! E12 smoke tests: the dense-city scale scenario must run in quick mode on
//! every `cargo test`, so the spatially-indexed world's scale path is
//! exercised in CI, and its report must be deterministic in the seed.

use scenarios::experiments::{e12_dense_city, ScaleSettings};

#[test]
fn e12_quick_city_discovers_and_connects() {
    let settings = ScaleSettings::quick();
    let report = e12_dense_city(&settings);
    assert_eq!(report.rows.len(), settings.node_counts.len());
    for (row, nodes) in report.rows.iter().zip(&settings.node_counts) {
        assert_eq!(row.cells[0], nodes.to_string());
        let avg_neighbors: f64 = row.cells[2].parse().unwrap();
        assert!(
            avg_neighbors > 1.0,
            "a dense city must have neighbours in range, got {avg_neighbors}"
        );
        let inquiries: u64 = row.cells[3].parse().unwrap();
        assert!(inquiries as usize >= *nodes, "every device scans at least once");
        let links: u64 = row.cells[4].parse().unwrap();
        assert!(links > 0, "devices must manage to attach to neighbours");
    }
}

#[test]
fn e12_report_is_deterministic() {
    let settings = ScaleSettings::quick();
    let a = e12_dense_city(&settings);
    let b = e12_dense_city(&settings);
    assert_eq!(a, b, "same settings must reproduce the identical report");
}
