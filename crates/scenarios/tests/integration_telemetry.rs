//! Determinism and passivity guarantees of the live telemetry plane.
//!
//! Three properties, all load-bearing for the observability claims:
//!
//! * **same seed ⇒ same series** — two instrumented runs of the same
//!   scenario agree on the JSONL export byte for byte (compared by digest);
//! * **shard invariance** — with telemetry *on*, the sharded engine records
//!   byte-identical series at any `--shards` count (the barrier folds are
//!   commutative sums over node state);
//! * **passivity** — turning telemetry (and profiling) on does not perturb
//!   the simulation: the experiment report is byte-identical to an
//!   uninstrumented run.

use scenarios::experiments::sharded::{sharded_metropolis_run, sharded_world_digest, ShardedSettings};
use scenarios::experiments::{e12_dense_city, e16_overload, overload_outcome, OverloadSettings, ScaleSettings};
use scenarios::telemetry::{configure, take_captures, TelemetryMode, TelemetrySettings};

fn record() -> TelemetrySettings {
    TelemetrySettings {
        mode: TelemetryMode::Record,
        ..TelemetrySettings::default()
    }
}

fn small_scale() -> ScaleSettings {
    let mut s = ScaleSettings::quick();
    s.node_counts = vec![120];
    s.duration = simnet::SimDuration::from_secs(45);
    s
}

#[test]
fn same_seed_records_identical_series() {
    configure(record());
    let _ = e12_dense_city(&small_scale());
    let first = take_captures();
    let _ = e12_dense_city(&small_scale());
    let second = take_captures();
    configure(TelemetrySettings::default());
    assert_eq!(first.len(), 1);
    assert_eq!(second.len(), 1);
    assert!(first[0].frames > 0, "the run must sample frames");
    assert_eq!(first[0].jsonl, second[0].jsonl);
    assert_eq!(first[0].digest, second[0].digest);
}

#[test]
fn telemetry_on_keeps_the_report_byte_identical() {
    configure(TelemetrySettings::default());
    let plain = e12_dense_city(&small_scale());
    assert!(take_captures().is_empty());
    configure(TelemetrySettings {
        mode: TelemetryMode::Record,
        profile: true,
        ..TelemetrySettings::default()
    });
    let instrumented = e12_dense_city(&small_scale());
    let captures = take_captures();
    configure(TelemetrySettings::default());
    assert_eq!(plain.to_string(), instrumented.to_string());
    assert_eq!(captures.len(), 1);
    assert!(captures[0].profile.is_some(), "profiling was requested");
}

#[test]
fn overload_exports_resilience_gauges() {
    let mut settings = OverloadSettings::quick();
    settings.duration = simnet::SimDuration::from_secs(60);
    configure(TelemetrySettings::default());
    let plain = e16_overload(&settings, &[true]);
    configure(record());
    let instrumented = e16_overload(&settings, &[true]);
    let captures = take_captures();
    configure(TelemetrySettings::default());
    // Passivity again, this time through the full-stack resilience city.
    assert_eq!(plain.to_string(), instrumented.to_string());
    assert_eq!(captures.len(), 1);
    let rollup = captures[0].rollup.as_deref().unwrap();
    assert!(
        rollup.contains("resilience/breaker_trips"),
        "resilience gauges missing from the roll-up:\n{rollup}"
    );
    assert!(captures[0].jsonl.contains("\"subsystem\":\"resilience\""));
    // The flapping hotspot must actually trip breakers in this scenario, so
    // the exported series carry signal, not a wall of zeros.
    let outcome = overload_outcome(&settings, true);
    assert!(outcome.stats.breaker_trips > 0);
}

fn churny_sharded(shards: usize) -> ShardedSettings {
    let mut s = ShardedSettings::quick();
    s.nodes = 3_000;
    s.shards = shards;
    s.churn_per_hour = 60.0;
    s.duration = simnet::SimDuration::from_secs(30);
    s
}

#[test]
fn sharded_series_are_shard_invariant() {
    let mut digests = Vec::new();
    let mut world_digests = Vec::new();
    for shards in [1usize, 2, 8] {
        configure(record());
        let world = sharded_metropolis_run(&churny_sharded(shards));
        let captures = take_captures();
        configure(TelemetrySettings::default());
        assert_eq!(captures.len(), 1, "one capture per run");
        assert!(captures[0].frames > 0);
        digests.push(captures[0].digest);
        world_digests.push(sharded_world_digest(&world));
    }
    assert_eq!(digests[0], digests[1], "series differ between 1 and 2 shards");
    assert_eq!(digests[0], digests[2], "series differ between 1 and 8 shards");
    // And telemetry-on does not perturb the simulation itself either.
    assert_eq!(world_digests[0], world_digests[1]);
    assert_eq!(world_digests[0], world_digests[2]);
}

#[test]
fn shard_series_are_opt_in_and_report_per_shard_load() {
    use scenarios::experiments::{hotspot_metropolis_run, HotspotSettings};

    let mut settings = HotspotSettings::smoke();
    settings.shards = 4;
    settings.adaptive = true;
    // Default capture: no layout-dependent shard/* series, so the JSONL
    // stays byte-identical across --shards counts (the test above).
    configure(record());
    let _ = hotspot_metropolis_run(&settings);
    let plain = take_captures();
    // Opt in: per-shard load/occupancy gauges and the rebalance counter
    // appear, and the rebalancer demonstrably ran.
    configure(TelemetrySettings {
        shard_series: true,
        ..record()
    });
    let world = hotspot_metropolis_run(&settings);
    let with_shards = take_captures();
    configure(TelemetrySettings::default());
    assert_eq!(plain.len(), 1);
    assert_eq!(with_shards.len(), 1);
    assert!(
        !plain[0].jsonl.contains("\"subsystem\":\"shard\""),
        "shard/* series must stay off by default"
    );
    for series in ["shard/load", "shard/occupancy", "shard/imbalance", "shard/rebalances"] {
        let rollup = with_shards[0].rollup.as_deref().unwrap();
        assert!(rollup.contains(series), "missing {series} in the roll-up:\n{rollup}");
    }
    assert!(with_shards[0].jsonl.contains("\"subsystem\":\"shard\""));
    assert!(world.partition_stats().rebalances > 0);
}

#[test]
fn sharded_run_with_telemetry_matches_uninstrumented_world() {
    configure(TelemetrySettings::default());
    let plain = sharded_metropolis_run(&churny_sharded(2));
    assert!(take_captures().is_empty());
    let plain_digest = sharded_world_digest(&plain);
    configure(record());
    let instrumented = sharded_metropolis_run(&churny_sharded(2));
    let captures = take_captures();
    configure(TelemetrySettings::default());
    assert_eq!(captures.len(), 1);
    assert_eq!(plain_digest, sharded_world_digest(&instrumented));
}
