//! E13/E14 smoke tests: the churn sweep and the blackout scenario run in
//! quick mode on every `cargo test`, so the fault subsystem's scale path is
//! exercised in CI, and their reports must be deterministic in the seed.

use scenarios::experiments::{e13_churn_sweep, e14_blackout_flash_crowd, ChurnSettings};

#[test]
fn e13_quick_churn_kills_and_recovers_sessions() {
    let settings = ChurnSettings::quick();
    let report = e13_churn_sweep(&settings);
    assert_eq!(
        report.rows.len(),
        settings.node_counts.len() * settings.churn_per_hour.len()
    );
    // Row 0 is the zero-churn control: no crashes, full churn-survival
    // (mobility still breaks sessions by range, which is the background the
    // "broken by range" column isolates).
    let control = &report.rows[0];
    assert_eq!(control.cells[1], "0.00");
    assert_eq!(control.cells[2], "0", "the control must not touch the fault engine");
    assert_eq!(control.cells[5], "0", "no churn, no crash-broken sessions");
    assert_eq!(control.cells[7], "100.00", "churn survival is full without churn");
    // Churned rows must actually crash nodes and break sessions, and the
    // devices must manage to re-attach (nonzero reconnection samples).
    for row in &report.rows[1..] {
        let crashes: u64 = row.cells[2].parse().unwrap();
        let broken: u64 = row.cells[5].parse().unwrap();
        let survival: f64 = row.cells[7].parse().unwrap();
        assert!(crashes > 0, "churn rows must crash nodes: {:?}", row.cells);
        assert!(broken > 0, "churn must break sessions: {:?}", row.cells);
        assert!(survival < 100.0, "broken sessions must dent survival");
        let mean_reconnect: f64 = row.cells[8].parse().unwrap();
        assert!(mean_reconnect > 0.0, "devices must re-attach after churn kills");
    }
    // Harsher churn survives no better than the mild rate. (Absolute break
    // counts are not monotone — at violent rates nodes spend so much time
    // dead that fewer sessions even form.)
    let mild: f64 = report.rows[1].cells[7].parse().unwrap();
    let harsh: f64 = report.rows[2].cells[7].parse().unwrap();
    assert!(harsh <= mild, "4x the churn should not improve survival");
}

#[test]
fn e13_report_is_deterministic() {
    let settings = ChurnSettings::quick();
    let a = e13_churn_sweep(&settings);
    let b = e13_churn_sweep(&settings);
    assert_eq!(a, b, "same settings must reproduce the identical report");
}

#[test]
fn e14_blackout_collapses_and_recovers_attachment() {
    let report = e14_blackout_flash_crowd(14, true);
    assert_eq!(report.rows.len(), 3);
    let attached: Vec<f64> = report.rows.iter().map(|r| r.cells[4].parse().unwrap()).collect();
    let alive: Vec<u64> = report.rows.iter().map(|r| r.cells[2].parse().unwrap()).collect();
    let dark: Vec<u64> = report.rows.iter().map(|r| r.cells[3].parse().unwrap()).collect();
    assert!(attached[0] > 50.0, "the block must mesh before the blackout");
    assert!(dark[1] > 0, "radios must be dark during the blackout");
    assert!(alive[1] < alive[0], "the crash wave must kill nodes");
    assert!(
        attached[1] < attached[0],
        "attachment must collapse during the blackout"
    );
    assert_eq!(alive[2], alive[0], "the restart storm must bring every node back");
    assert_eq!(dark[2], 0, "all radios must be restored");
    assert!(
        attached[2] > attached[1] && attached[2] > 0.8 * attached[0],
        "attachment must recover after the storm: {attached:?}"
    );
}

#[test]
fn e14_report_is_deterministic() {
    let a = e14_blackout_flash_crowd(14, true);
    let b = e14_blackout_flash_crowd(14, true);
    assert_eq!(a, b);
}
