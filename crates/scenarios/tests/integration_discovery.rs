//! Cross-crate integration tests: dynamic device discovery (Ch. 3).

use peerhood::node::PeerHoodNode;
use peerhood::prelude::*;
use scenarios::experiments::{
    e01_coverage_exclusion, e02_gnutella_traffic, e03_quality_route_selection, DiscoverySettings,
};
use scenarios::topology::{experiment_config, line_positions, spawn_relay};
use simnet::prelude::*;

#[test]
fn dynamic_discovery_gives_total_awareness_on_a_line() {
    // Five relays in a line, each only in range of its neighbours: every node
    // must still learn about every other node through neighbourhood reports.
    let mut world = World::new(WorldConfig::ideal(101));
    let ids: Vec<NodeId> = line_positions(5, 8.0)
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            spawn_relay(
                &mut world,
                experiment_config(format!("n{i}"), MobilityClass::Static, DiscoveryMode::Dynamic),
                p,
            )
        })
        .collect();
    world.run_for(SimDuration::from_secs(240));
    for id in &ids {
        let stats = world
            .with_agent::<PeerHoodNode, _>(*id, |n, _| n.storage_stats())
            .unwrap();
        assert_eq!(stats.known_devices, 4, "node {id} should know the whole line");
    }
    // The end node reaches the other end through several jumps.
    let far_addr = DeviceAddress::from_node(ids[4]);
    let route = world
        .with_agent::<PeerHoodNode, _>(ids[0], |n, _| {
            n.known_devices()
                .into_iter()
                .find(|d| d.info.address == far_addr)
                .map(|d| d.route.jumps)
        })
        .unwrap();
    assert_eq!(route, Some(3));
}

#[test]
fn direct_only_mode_is_limited_to_radio_coverage() {
    let mut world = World::new(WorldConfig::ideal(102));
    let ids: Vec<NodeId> = line_positions(4, 8.0)
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            spawn_relay(
                &mut world,
                experiment_config(format!("n{i}"), MobilityClass::Static, DiscoveryMode::DirectOnly),
                p,
            )
        })
        .collect();
    world.run_for(SimDuration::from_secs(180));
    let known = world
        .with_agent::<PeerHoodNode, _>(ids[0], |n, _| n.storage_stats().known_devices)
        .unwrap();
    assert_eq!(known, 1, "an end node only sees its single direct neighbour");
}

#[test]
fn e1_dynamic_beats_direct_only() {
    let report = e01_coverage_exclusion(&DiscoverySettings::quick());
    assert_eq!(report.rows.len(), 2);
    for row in &report.rows {
        let direct: f64 = row.cells[1].parse().unwrap();
        let dynamic: f64 = row.cells[3].parse().unwrap();
        assert!(
            dynamic >= direct,
            "dynamic discovery must know at least as much as direct-only"
        );
        assert!(
            dynamic > 0.9,
            "dynamic discovery should approach total awareness, got {dynamic}"
        );
    }
}

#[test]
fn e2_gnutella_generates_more_traffic() {
    let report = e02_gnutella_traffic(5);
    for row in &report.rows {
        let gnutella: f64 = row.cells[2].parse().unwrap();
        let peerhood: f64 = row.cells[3].parse().unwrap();
        assert!(gnutella > peerhood, "flooding must cost more than one PeerHood cycle");
    }
}

#[test]
fn e3_threshold_rule_selects_the_right_route() {
    let report = e03_quality_route_selection();
    assert_eq!(report.rows[0].cells[4], "true");
    assert_eq!(report.rows[1].cells[4], "false");
}
