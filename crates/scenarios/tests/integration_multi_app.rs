//! Cross-crate integration tests: the multi-application node host.
//!
//! A node hosts several applications with independent services on one
//! middleware stack; callbacks are routed to the owning application and the
//! typed event trace lets the driver assert on middleware behaviour without
//! downcasting.

use migration::{MessagingClient, MessagingServer, PictureClient, PictureServer, TaskOutcome, TaskSpec};
use peerhood::node::PeerHoodNode;
use peerhood::prelude::*;
use scenarios::topology::{experiment_config, spawn_apps, with_app};
use simnet::prelude::*;

/// Spawns a stationary node hosting the given applications and subscribes
/// its event trace.
fn spawn_multi(
    world: &mut World,
    config: peerhood::config::PeerHoodConfig,
    position: Point,
    apps: Vec<Box<dyn peerhood::application::Application>>,
) -> NodeId {
    let node = spawn_apps(world, config, MobilityModel::stationary(position), apps);
    world
        .with_agent::<PeerHoodNode, _>(node, |n, _| n.subscribe_event_trace())
        .unwrap();
    node
}

#[test]
fn one_device_hosts_two_services_for_two_workloads() {
    let spec = TaskSpec::small();
    let mut world = World::new(WorldConfig::ideal(501));
    let phone = spawn_multi(
        &mut world,
        experiment_config("phone", MobilityClass::Dynamic, DiscoveryMode::Dynamic),
        Point::new(0.0, 0.0),
        vec![
            Box::new(MessagingClient::new(
                "print",
                b"multi-app hello".to_vec(),
                8,
                SimDuration::from_secs(1),
                SimDuration::from_secs(30),
            )),
            Box::new(PictureClient::new("analysis", spec.clone(), SimDuration::from_secs(35))),
        ],
    );
    let pc = spawn_multi(
        &mut world,
        experiment_config("pc", MobilityClass::Static, DiscoveryMode::Dynamic),
        Point::new(4.0, 0.0),
        vec![
            Box::new(MessagingServer::new("print")),
            Box::new(PictureServer::for_spec("analysis", &spec)),
        ],
    );
    world.run_for(SimDuration::from_secs(240));

    // Both workloads completed against the same server device.
    let printed = with_app(&mut world, pc, MessagingServer::received_count).unwrap();
    assert_eq!(printed, 8, "the print service must receive the whole stream");
    let packages = with_app(&mut world, pc, |s: &PictureServer| s.packages_received()).unwrap();
    assert_eq!(packages, spec.packages, "the analysis service must receive the upload");
    let outcome = with_app(&mut world, phone, |c: &PictureClient| c.outcome()).unwrap();
    assert_eq!(outcome, TaskOutcome::CompletedDirect);
    let sent = with_app(&mut world, phone, |c: &MessagingClient| c.sent).unwrap();
    assert_eq!(sent, 8);

    // Both services were advertised by the single daemon.
    let known_services = world
        .with_agent::<PeerHoodNode, _>(phone, |n, _| n.storage_stats().known_services)
        .unwrap();
    assert_eq!(known_services, 2);

    // Callback routing: each server app owns exactly its own service's
    // incoming connection.
    world
        .with_agent::<PeerHoodNode, _>(pc, |n, _| {
            let trace = n.take_event_trace();
            let print_owner = trace
                .iter()
                .find_map(|e| match e {
                    PeerHoodEvent::PeerConnected { app, service, .. } if service == "print" => Some(*app),
                    _ => None,
                })
                .expect("print connection traced");
            let analysis_owner = trace
                .iter()
                .find_map(|e| match e {
                    PeerHoodEvent::PeerConnected { app, service, .. } if service == "analysis" => Some(*app),
                    _ => None,
                })
                .expect("analysis connection traced");
            assert_eq!(print_owner, Some(AppId(0)));
            assert_eq!(analysis_owner, Some(AppId(1)));
        })
        .unwrap();

    // Event-trace assertions on the client side, with no downcasting at
    // all: the messaging app's connection established and carried no data
    // back, the picture app received the analysis result.
    world
        .with_agent::<PeerHoodNode, _>(phone, |n, _| {
            let trace = n.take_event_trace();
            assert!(
                trace.iter().any(|e| matches!(
                    e,
                    PeerHoodEvent::Connected {
                        app: Some(AppId(0)),
                        ..
                    }
                )),
                "messaging app must establish its connection"
            );
            assert!(
                trace.iter().any(|e| matches!(
                    e,
                    PeerHoodEvent::Data {
                        app: Some(AppId(1)),
                        ..
                    }
                )),
                "picture app must receive the result payload"
            );
            assert!(
                trace
                    .iter()
                    .any(|e| matches!(e, PeerHoodEvent::DeviceDiscovered { .. })),
                "discovery must be traced"
            );
        })
        .unwrap();
}

#[test]
fn with_api_for_targets_a_specific_application() {
    // Two idle applications on one node; a driver-opened connection is owned
    // by the application the driver chose.
    let mut world = World::new(WorldConfig::ideal(502));
    let a = spawn_multi(
        &mut world,
        experiment_config("a", MobilityClass::Dynamic, DiscoveryMode::Dynamic),
        Point::new(0.0, 0.0),
        vec![Box::new(IdleApplication), Box::new(IdleApplication)],
    );
    let b = spawn_multi(
        &mut world,
        experiment_config("b", MobilityClass::Static, DiscoveryMode::Dynamic),
        Point::new(4.0, 0.0),
        vec![Box::new(MessagingServer::new("sink"))],
    );
    world.run_for(SimDuration::from_secs(40));
    let conn = world
        .with_agent::<PeerHoodNode, _>(a, |n, ctx| {
            n.with_api_for(Some(AppId(1)), ctx, |api| api.connect_to_service("sink"))
                .unwrap()
        })
        .unwrap()
        .unwrap();
    world.run_for(SimDuration::from_secs(5));
    world
        .with_agent::<PeerHoodNode, _>(a, |n, _| {
            assert_eq!(n.connection_owner(conn), Some(AppId(1)));
            let trace = n.take_event_trace();
            assert!(
                trace
                    .iter()
                    .any(|e| matches!(e, PeerHoodEvent::Connected { app: Some(AppId(1)), conn: c } if *c == conn)),
                "establishment must be routed to the chosen app"
            );
        })
        .unwrap();
    let _ = b;
}
