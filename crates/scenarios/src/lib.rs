//! # scenarios — topologies, workloads and the experiment suite
//!
//! This crate turns the building blocks of the reproduction (the [`simnet`]
//! substrate, the [`peerhood`] middleware and the [`migration`] applications)
//! into the concrete scenarios of the thesis: office-sized random fields,
//! corridors of bridge nodes, the two-server handover layout and the tunnel
//! of Fig. 6.1 — plus the experiment runners E1–E11 that regenerate every
//! figure-level result (see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for the recorded outcomes), the dense-city scale family
//! E12 and the fault & churn family E13/E14 added on top of the thesis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod telemetry;
pub mod topology;

pub use experiments::{find, registry, run_all, Effort, Experiment, Params, RunOutput, SampleRow};
pub use report::ExperimentReport;
pub use telemetry::{TelemetryCapture, TelemetryMode, TelemetrySettings};
