//! Topology generators and node-spawning helpers for the experiments.
//!
//! Every experiment builds its world from the same small vocabulary the
//! thesis uses: fixed PCs/laptops, mobile phones, line-of-bridges corridors,
//! office-sized random fields and the tunnel of Fig. 6.1.

use peerhood::application::Application;
use peerhood::config::PeerHoodConfig;
use peerhood::gnutella::Topology;
use peerhood::node::PeerHoodNode;
use peerhood::prelude::*;
use simnet::prelude::*;

/// Spawns a PeerHood device running only the middleware (daemon, discovery,
/// bridge service) at a fixed position.
pub fn spawn_relay(world: &mut World, config: PeerHoodConfig, position: Point) -> NodeId {
    let techs = config.techs.clone();
    let name = config.device_name.clone();
    world.add_node(
        name,
        MobilityModel::stationary(position),
        &techs,
        Box::new(PeerHoodNode::relay(config)),
    )
}

/// Spawns a PeerHood device with an application and an arbitrary mobility
/// model.
pub fn spawn_app(
    world: &mut World,
    config: PeerHoodConfig,
    mobility: MobilityModel,
    app: Box<dyn Application>,
) -> NodeId {
    spawn_apps(world, config, mobility, vec![app])
}

/// Spawns a PeerHood device hosting several applications on one middleware
/// stack (the multi-application host).
pub fn spawn_apps(
    world: &mut World,
    config: PeerHoodConfig,
    mobility: MobilityModel,
    apps: Vec<Box<dyn Application>>,
) -> NodeId {
    let techs = config.techs.clone();
    let name = config.device_name.clone();
    let mut builder = PeerHoodNode::builder().config(config);
    for app in apps {
        builder = builder.app_boxed(app);
    }
    world.add_node(name, mobility, &techs, Box::new(builder.build()))
}

/// Runs a closure against the first application of type `T` hosted on a
/// node — the typed inspection helper experiments use instead of chaining
/// `n.app::<T>().unwrap()` downcasts through `with_agent`.
///
/// Returns `None` when the node is unknown, is not a [`PeerHoodNode`], or
/// hosts no application of type `T`.
pub fn with_app<T: Application, R>(world: &mut World, node: NodeId, f: impl FnOnce(&T) -> R) -> Option<R> {
    world
        .with_agent::<PeerHoodNode, _>(node, |n, _| n.with_app(f))
        .flatten()
}

/// Uniformly random positions inside a square area.
pub fn random_positions(count: usize, side_m: f64, seed: u64) -> Vec<Point> {
    let mut rng = SimRng::new(seed);
    (0..count)
        .map(|_| Point::new(rng.uniform_f64(0.0, side_m), rng.uniform_f64(0.0, side_m)))
        .collect()
}

/// Positions along a straight line with constant spacing, starting at the
/// origin.
pub fn line_positions(count: usize, spacing_m: f64) -> Vec<Point> {
    (0..count).map(|i| Point::new(i as f64 * spacing_m, 0.0)).collect()
}

/// Ground-truth connectivity graph of a set of positions for a radio range.
pub fn ground_truth(positions: &[Point], range_m: f64) -> Topology {
    let pairs: Vec<(f64, f64)> = positions.iter().map(|p| (p.x, p.y)).collect();
    Topology::from_positions(&pairs, range_m)
}

/// A PeerHood configuration suitable for batch experiments: the given
/// discovery mode, a short inquiry interval so runs converge quickly, and the
/// bridge service enabled.
pub fn experiment_config(name: impl Into<String>, mobility: MobilityClass, mode: DiscoveryMode) -> PeerHoodConfig {
    let mut cfg = PeerHoodConfig::new(name, mobility).with_discovery_mode(mode);
    cfg.discovery.inquiry_interval = SimDuration::from_secs(4);
    cfg
}

/// Fraction of the devices reachable from `origin` (multi-hop, ground truth)
/// that `known` actually contains. Returns 1.0 when nothing is reachable.
pub fn knowledge_fraction(truth: &Topology, origin: usize, known_count: usize) -> f64 {
    let reachable = truth.reachable_within(origin, usize::MAX).len() - 1;
    if reachable == 0 {
        1.0
    } else {
        (known_count.min(reachable)) as f64 / reachable as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_positions_are_evenly_spaced() {
        let p = line_positions(4, 8.0);
        assert_eq!(p.len(), 4);
        assert_eq!(p[0], Point::new(0.0, 0.0));
        assert_eq!(p[3], Point::new(24.0, 0.0));
    }

    #[test]
    fn random_positions_stay_in_area_and_are_deterministic() {
        let a = random_positions(50, 60.0, 9);
        let b = random_positions(50, 60.0, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|p| p.x >= 0.0 && p.x <= 60.0 && p.y >= 0.0 && p.y <= 60.0));
    }

    #[test]
    fn ground_truth_matches_range() {
        let t = ground_truth(&line_positions(3, 8.0), 10.0);
        assert_eq!(t.edge_count(), 2);
        assert_eq!(t.hop_distance(0, 2), Some(2));
    }

    #[test]
    fn knowledge_fraction_bounds() {
        let t = ground_truth(&line_positions(4, 8.0), 10.0);
        assert_eq!(knowledge_fraction(&t, 0, 3), 1.0);
        assert!((knowledge_fraction(&t, 0, 1) - 1.0 / 3.0).abs() < 1e-9);
        let isolated = ground_truth(&[Point::new(0.0, 0.0)], 10.0);
        assert_eq!(knowledge_fraction(&isolated, 0, 0), 1.0);
    }

    #[test]
    fn spawn_helpers_create_running_nodes() {
        let mut world = World::new(WorldConfig::ideal(5));
        let relay = spawn_relay(
            &mut world,
            experiment_config("pc", MobilityClass::Static, DiscoveryMode::Dynamic),
            Point::new(0.0, 0.0),
        );
        let phone = spawn_app(
            &mut world,
            experiment_config("phone", MobilityClass::Dynamic, DiscoveryMode::Dynamic),
            MobilityModel::stationary(Point::new(4.0, 0.0)),
            Box::new(IdleApplication),
        );
        world.run_for(SimDuration::from_secs(40));
        let known = world
            .with_agent::<PeerHoodNode, _>(phone, |n, _| n.storage_stats().known_devices)
            .unwrap();
        assert_eq!(known, 1);
        assert!(world.is_alive(relay));
    }
}
