//! E18: the hotspot metropolis — a flash crowd on the sharded engine.
//!
//! E17 proves the sharded world is deterministic at any shard count; this
//! experiment builds its worst case for *speed*. Most of the city's devices
//! — and almost all of its radio traffic — pile into one district: a dense
//! milling crowd inside the district plus a stream of pedestrians walking in
//! from across the city, over a sparse stationary background. Under the
//! fixed equal-width stripes of PR 7, the stripe containing the district
//! does nearly all the work each window while the others wait at the
//! barrier; with `adaptive` sharding on, the density-adaptive partition
//! narrows the hot stripes until every worker carries ~equal load.
//!
//! Like E17, the report is built to prove an invariance: it carries the full
//! run digest and deliberately no shard- or adaptivity-dependent cell.
//! Rerun it at a different `--shards` value — or flip `adaptive` — and diff
//! the output: it must be empty, because the partition only ever decides
//! which thread executes a node, never what the node observes. What *does*
//! change is the wall clock, which the `adaptive_shards` bench measures.

use simnet::prelude::*;

use crate::experiments::sharded::{sharded_world_digest, ShardCityAgent};
use crate::report::ExperimentReport;

/// Settings for the E18 hotspot-metropolis run.
#[derive(Debug, Clone)]
pub struct HotspotSettings {
    /// Base random seed (world and placement derive from it).
    pub seed: u64,
    /// City population.
    pub nodes: usize,
    /// Overall device density in nodes per square kilometre (fixes the city
    /// side length; the district is far denser).
    pub density_per_km2: f64,
    /// Fraction of nodes milling inside the hotspot district.
    pub crowd_fraction: f64,
    /// Fraction of nodes walking in from across the city ("converging").
    pub inbound_fraction: f64,
    /// Simulated duration.
    pub duration: SimDuration,
    /// How often each device scans its neighbourhood.
    pub inquiry_interval: SimDuration,
    /// How often an attached device pings its peer.
    pub ping_interval: SimDuration,
    /// Worker threads. Changes wall-clock time only, never results.
    pub shards: usize,
    /// Density-adaptive stripe rebalancing. Changes wall-clock time only,
    /// never results.
    pub adaptive: bool,
    /// Rebalance gate: `max(shard load) / mean(shard load)` ratio that must
    /// be exceeded before a re-cut is considered.
    pub imbalance_threshold: f64,
    /// Consecutive over-threshold windows required before a re-cut.
    pub patience: u32,
}

impl HotspotSettings {
    /// The full-size run used to produce `EXPERIMENTS.md`.
    pub fn full() -> Self {
        HotspotSettings {
            seed: 18,
            nodes: 100_000,
            density_per_km2: 1_000.0,
            crowd_fraction: 0.55,
            inbound_fraction: 0.15,
            duration: SimDuration::from_secs(90),
            inquiry_interval: SimDuration::from_secs(20),
            ping_interval: SimDuration::from_secs(10),
            shards: 2,
            adaptive: true,
            imbalance_threshold: AdaptiveShards::default().imbalance_threshold,
            patience: AdaptiveShards::default().patience,
        }
    }

    /// The CI variant: a smaller crowd over a shorter horizon.
    pub fn quick() -> Self {
        HotspotSettings {
            nodes: 30_000,
            duration: SimDuration::from_secs(45),
            ..HotspotSettings::full()
        }
    }

    /// A small population for debug-build smoke tests (`cargo test`).
    pub fn smoke() -> Self {
        HotspotSettings {
            nodes: 600,
            duration: SimDuration::from_secs(60),
            ..HotspotSettings::full()
        }
    }

    /// Side length in metres of the square city at the configured density.
    pub fn side_m(&self) -> f64 {
        (self.nodes as f64 / self.density_per_km2 * 1_000_000.0).sqrt()
    }

    /// The hotspot district: a square of a quarter of the city's side,
    /// centred right-of-centre so it sits inside the last stripes of an
    /// equal-width partition — the worst case for static load balance.
    pub fn district(&self) -> Rect {
        let side = self.side_m();
        let d = 0.25 * side;
        let (cx, cy) = (0.78 * side, 0.5 * side);
        Rect::new(cx - d / 2.0, cy - d / 2.0, cx + d / 2.0, cy + d / 2.0)
    }
}

/// Builds and runs the hotspot metropolis, returning the world for
/// inspection. Identical `(settings minus shards/adaptive)` produce
/// identical results at any shard count, adaptivity on or off.
pub fn hotspot_metropolis_run(settings: &HotspotSettings) -> ShardedWorld {
    let side = settings.side_m();
    let area = Rect::new(0.0, 0.0, side, side);
    let district = settings.district();
    let mut config = ShardedConfig::new(settings.seed ^ (settings.nodes as u64), area);
    config.shards = settings.shards;
    config.adaptive = AdaptiveShards {
        enabled: settings.adaptive,
        imbalance_threshold: settings.imbalance_threshold,
        patience: settings.patience,
        ..AdaptiveShards::default()
    };
    config.grid_cell_m = config.radio.wlan.range_m;
    config.link_check_interval = SimDuration::from_secs(1);
    config.window = Some(SimDuration::from_secs(1));
    config.max_speed_mps = 2.5;
    config.mobility_horizon = SimTime::ZERO + settings.duration + SimDuration::from_secs(600);
    let mut world = ShardedWorld::new(config);
    let mut placer = SimRng::new(settings.seed ^ 0x407_5907 ^ (settings.nodes as u64));
    let crowd = (settings.nodes as f64 * settings.crowd_fraction).round() as usize;
    let inbound = (settings.nodes as f64 * settings.inbound_fraction).round() as usize;
    for i in 0..settings.nodes {
        let mobility = if i < crowd {
            // The flash crowd: milling pedestrians inside the district.
            let start = Point::new(
                placer.uniform_f64(district.min_x, district.max_x),
                placer.uniform_f64(district.min_y, district.max_y),
            );
            MobilityModel::RandomWaypoint {
                area: district,
                start,
                min_speed_mps: 0.5,
                max_speed_mps: 1.5,
                pause: SimDuration::from_secs(15),
            }
        } else if i < crowd + inbound {
            // Converging pedestrians: a straight walk from anywhere in the
            // city towards a point inside the district.
            let start = Point::new(placer.uniform_f64(0.0, side), placer.uniform_f64(0.0, side));
            let target = Point::new(
                placer.uniform_f64(district.min_x, district.max_x),
                placer.uniform_f64(district.min_y, district.max_y),
            );
            MobilityModel::walk(start, target, 2.0)
        } else {
            // Sparse stationary background across the rest of the city.
            let start = Point::new(placer.uniform_f64(0.0, side), placer.uniform_f64(0.0, side));
            MobilityModel::stationary(start)
        };
        world.add_node(
            format!("h{i}"),
            mobility,
            &[RadioTech::Wlan],
            Box::new(ShardCityAgent::new(settings.inquiry_interval, settings.ping_interval)),
        );
    }
    let scope = format!(
        "E18 nodes={} shards={} adaptive={}",
        settings.nodes,
        settings.shards,
        if settings.adaptive { "on" } else { "off" }
    );
    crate::telemetry::instrument_sharded(&mut world, &scope);
    world.run_for(settings.duration);
    crate::telemetry::finish_sharded(&mut world, &scope);
    world
}

/// E18 (beyond the thesis): the hotspot metropolis.
///
/// The report is identical for every shard count and adaptivity setting by
/// construction — it includes the run digest and omits both knobs, so
/// `diff`-ing two runs that differ only in `--shards` or `adaptive` is the
/// invariance check itself.
pub fn e18_hotspot_metropolis(settings: &HotspotSettings) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E18",
        "Hotspot metropolis: a flash crowd against the load-balanced sharded world",
        "Beyond the thesis: a flash crowd piles most of the city's devices and traffic into one \
         district — the worst case for equal-width spatial stripes, whose hottest shard then does \
         nearly all the work each window. Density-adaptive sharding re-cuts stripe boundaries \
         along the load histogram at window barriers (hysteresis-gated, from pure simulation \
         state), which changes wall-clock time only: this table carries a digest of every counter \
         and no shard- or adaptivity-dependent cell. Rerun with different --shards or adaptive \
         settings and diff — the output must not change.",
        &[
            "nodes",
            "side (m)",
            "crowd %",
            "inquiries",
            "links established",
            "handovers",
            "coverage drops",
            "pings delivered",
            "digest",
        ],
    );
    let mut world = hotspot_metropolis_run(settings);
    let (mut handovers, mut drops) = (0u64, 0u64);
    for id in world.node_ids().collect::<Vec<_>>() {
        if let Some((h, d)) = world.with_agent::<ShardCityAgent, _>(id, |a| (a.handovers, a.drops)) {
            handovers += h;
            drops += d;
        }
    }
    let digest = sharded_world_digest(&world);
    let g = world.metrics().global();
    report.push_row([
        settings.nodes.to_string(),
        format!("{:.0}", settings.side_m()),
        format!("{:.0}", settings.crowd_fraction * 100.0),
        g.inquiries_started.to_string(),
        g.connects_established.to_string(),
        handovers.to_string(),
        drops.to_string(),
        g.messages_delivered.to_string(),
        format!("{digest:016x}"),
    ]);
    report.push_note(format!(
        "{:.0}% of nodes mill inside a district of a quarter of the city's side (right of \
         centre), {:.0}% walk in from across the city, the rest are stationary background; \
         windowed execution (1s lookahead), digest covers all counters, per-node tallies and the \
         lifecycle stream",
        settings.crowd_fraction * 100.0,
        settings.inbound_fraction * 100.0,
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_city_report_is_shard_and_adaptivity_invariant() {
        let mut static_one = HotspotSettings::smoke();
        static_one.shards = 1;
        static_one.adaptive = false;
        let mut adaptive_four = HotspotSettings::smoke();
        adaptive_four.shards = 4;
        adaptive_four.adaptive = true;
        let a = e18_hotspot_metropolis(&static_one);
        let b = e18_hotspot_metropolis(&adaptive_four);
        assert_eq!(
            a.to_string(),
            b.to_string(),
            "report must not depend on shard count or adaptivity"
        );
        let world = hotspot_metropolis_run(&static_one);
        assert!(world.metrics().global().connects_established > 0);
        assert!(world.metrics().global().messages_delivered > 0);
    }

    #[test]
    fn adaptive_smoke_city_actually_rebalances() {
        let mut settings = HotspotSettings::smoke();
        settings.shards = 4;
        settings.adaptive = true;
        let world = hotspot_metropolis_run(&settings);
        let stats = world.partition_stats();
        assert!(stats.windows > 0, "barriers must fold the load model");
        assert!(
            stats.rebalances > 0,
            "the flash crowd must trip the hysteresis gate (imbalance {:.2})",
            stats.last_imbalance
        );
        assert!(
            world.stripe_cuts().windows(2).all(|w| w[0] <= w[1]),
            "cuts must stay monotone"
        );
    }
}
