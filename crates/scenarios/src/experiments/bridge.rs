//! Experiments E6 and E10: bridge performance and coverage amplification.

use migration::{MessagingClient, MessagingServer};
use peerhood::config::DiscoveryMode;
use peerhood::device::MobilityClass;
use peerhood::node::PeerHoodNode;
use simnet::prelude::*;

use crate::report::ExperimentReport;
use crate::topology::{experiment_config, spawn_app, spawn_relay, with_app};

/// Result of one §4.3-style bridge connection trial.
#[derive(Debug, Clone, Copy)]
pub struct BridgeTrial {
    /// Whether the first connection attempt succeeded end to end.
    pub connected: bool,
    /// Seconds from the first attempt to establishment (when connected).
    pub setup_seconds: Option<f64>,
    /// Messages delivered to the server out of the 20 sent.
    pub delivered: usize,
    /// Mean extra delay between consecutive deliveries beyond the nominal
    /// one-second interval, in milliseconds.
    pub extra_delay_ms: f64,
}

/// Runs one trial of the §4.3 bridge performance test: a client sends a
/// message 20 times at one-second intervals to a server it can only reach
/// through a bridge node, over the *realistic* Bluetooth radio model.
pub fn bridge_trial(seed: u64) -> BridgeTrial {
    let mut world = World::new(WorldConfig::with_seed(seed));
    // Under the realistic radio model the inquiry asymmetry makes scanning
    // devices invisible, so the plugins use a calmer duty cycle than the
    // ideal-radio experiments.
    let realistic = |name: &str, mobility: MobilityClass| {
        let mut cfg = experiment_config(name, mobility, DiscoveryMode::Dynamic);
        cfg.discovery.inquiry_interval = SimDuration::from_secs(15);
        cfg.discovery.max_missed_loops = 6;
        cfg
    };
    let mut client_cfg = realistic("client", MobilityClass::Dynamic);
    // Match the thesis' methodology: count the outcome of a single connection
    // attempt rather than letting the middleware retry.
    client_cfg.handover.enabled = false;
    let mut client_app = MessagingClient::bridge_test("sink", SimDuration::from_secs(240));
    client_app.max_attempts = 1;
    let client = spawn_app(
        &mut world,
        client_cfg,
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        Box::new(client_app),
    );
    spawn_relay(
        &mut world,
        realistic("bridge", MobilityClass::Static),
        Point::new(8.0, 0.0),
    );
    let server = spawn_app(
        &mut world,
        realistic("server", MobilityClass::Static),
        MobilityModel::stationary(Point::new(16.0, 0.0)),
        Box::new(MessagingServer::new("sink")),
    );
    let scope = format!("E6 seed={seed}");
    crate::telemetry::instrument_world(&mut world, &scope);
    crate::telemetry::run_world(&mut world, SimDuration::from_secs(500), |_| {});
    crate::telemetry::finish_world(&mut world, &scope);
    let (connected, setup) = with_app(&mut world, client, |app: &MessagingClient| {
        (app.connected_at.is_some(), app.connection_setup_seconds())
    })
    .unwrap();
    let (delivered, extra_delay_ms) = with_app(&mut world, server, |app: &MessagingServer| {
        let count = app.received_count();
        let mean_gap = if count >= 2 {
            let total: f64 = app.received.windows(2).map(|w| (w[1].0 - w[0].0).as_secs_f64()).sum();
            total / (count - 1) as f64
        } else {
            1.0
        };
        (count, (mean_gap - 1.0).max(0.0) * 1000.0)
    })
    .unwrap();
    BridgeTrial {
        connected,
        setup_seconds: setup,
        delivered,
        extra_delay_ms,
    }
}

/// E6 (§4.3, Fig. 4.5): repeated bridge connection attempts over the
/// realistic Bluetooth model.
pub fn e06_bridge_performance(seed: u64, trials: usize) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E6",
        "Bridge connection performance (two clients, one bridge, one server)",
        "Out of ten attempts three failed with normal Bluetooth connection faults; successful \
         connections took 3-18 s to establish; relayed data showed an almost negligible delay (§4.3).",
        &[
            "trials",
            "successful",
            "failed",
            "setup min (s)",
            "setup max (s)",
            "mean extra relay delay (ms)",
        ],
    );
    let results: Vec<BridgeTrial> = (0..trials).map(|i| bridge_trial(seed + i as u64 * 17)).collect();
    let successful: Vec<&BridgeTrial> = results.iter().filter(|t| t.connected).collect();
    let failed = results.len() - successful.len();
    let setup_min = successful
        .iter()
        .filter_map(|t| t.setup_seconds)
        .fold(f64::INFINITY, f64::min);
    let setup_max = successful.iter().filter_map(|t| t.setup_seconds).fold(0.0, f64::max);
    let mean_extra: f64 = if successful.is_empty() {
        0.0
    } else {
        successful.iter().map(|t| t.extra_delay_ms).sum::<f64>() / successful.len() as f64
    };
    report.push_row([
        results.len().to_string(),
        successful.len().to_string(),
        failed.to_string(),
        ExperimentReport::f(if setup_min.is_finite() { setup_min } else { 0.0 }),
        ExperimentReport::f(setup_max),
        ExperimentReport::f(mean_extra),
    ]);
    let delivered_ok = successful.iter().filter(|t| t.delivered >= 20).count();
    report.push_note(format!(
        "{delivered_ok}/{} successful connections delivered all 20 messages",
        successful.len()
    ));
    report.push_note("setup time is the sum of two Bluetooth connection establishments, matching the 3-18 s band");
    report
}

/// E10 (Fig. 6.1): coverage amplification — reaching a GPRS-connected server
/// from inside a tunnel through a chain of Bluetooth bridge nodes.
pub fn e10_coverage_amplification(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E10",
        "Coverage amplification through a tunnel",
        "A phone inside a tunnel without GPRS coverage reaches the GPRS-connected server outside \
         through a chain of Bluetooth bridge devices (Fig. 6.1).",
        &[
            "bridge chain",
            "phone knows server",
            "route jumps",
            "messages delivered / 10",
        ],
    );
    for &with_bridges in &[true, false] {
        // The tunnel is a GPRS dead zone covering x in [-5, 27].
        let mut config = WorldConfig::ideal(seed + with_bridges as u64);
        config.gprs_dead_zones = vec![Rect::new(-5.0, -5.0, 27.0, 5.0)];
        let mut world = World::new(config);
        let phone_cfg = experiment_config("phone", MobilityClass::Dynamic, DiscoveryMode::Dynamic)
            .with_techs(&[RadioTech::Bluetooth, RadioTech::Gprs]);
        let phone = spawn_app(
            &mut world,
            phone_cfg,
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            Box::new(MessagingClient::new(
                "gateway",
                b"sms".to_vec(),
                10,
                SimDuration::from_secs(1),
                SimDuration::from_secs(120),
            )),
        );
        if with_bridges {
            for (i, x) in [8.0, 16.0, 24.0].iter().enumerate() {
                let cfg = experiment_config(format!("bt-bridge-{i}"), MobilityClass::Static, DiscoveryMode::Dynamic);
                spawn_relay(&mut world, cfg, Point::new(*x, 0.0));
            }
        }
        let server_cfg = experiment_config("gateway-server", MobilityClass::Static, DiscoveryMode::Dynamic)
            .with_techs(&[RadioTech::Bluetooth, RadioTech::Gprs]);
        let server = spawn_app(
            &mut world,
            server_cfg,
            MobilityModel::stationary(Point::new(32.0, 0.0)),
            Box::new(MessagingServer::new("gateway")),
        );
        let scope = format!("E10 bridges={}", if with_bridges { "3" } else { "none" });
        crate::telemetry::instrument_world(&mut world, &scope);
        crate::telemetry::run_world(&mut world, SimDuration::from_secs(400), |_| {});
        crate::telemetry::finish_world(&mut world, &scope);
        let server_addr = peerhood::ids::DeviceAddress::from_node(server);
        let route = world
            .with_agent::<PeerHoodNode, _>(phone, |n, _| {
                n.known_devices()
                    .into_iter()
                    .find(|d| d.info.address == server_addr)
                    .map(|d| d.route.jumps)
            })
            .unwrap();
        let delivered = with_app(&mut world, server, MessagingServer::received_count).unwrap();
        report.push_row([
            if with_bridges { "3 Bluetooth bridges" } else { "none" }.to_string(),
            route.is_some().to_string(),
            route.map(|j| j.to_string()).unwrap_or_else(|| "-".into()),
            delivered.to_string(),
        ]);
    }
    report.push_note("without the bridge chain the phone never even learns the server exists (GPRS dead zone)");
    report
}
