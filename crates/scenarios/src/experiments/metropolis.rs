//! E15: the full-stack metropolis — thousands of **real PeerHood stacks**
//! under discovery, sessions and churn.
//!
//! E12–E14 proved the *substrate* scales; E15 is the claim the paper
//! actually makes: the **middleware** survives mobility and failure — now at
//! a scale the thesis testbed could never reach. Every node runs the
//! complete PeerHood stack (daemon, discovery plugins, engine, connection
//! table, handover machinery) plus the [`MetroApp`] service workload, while
//! a seeded churn schedule crashes and reboots a slice of the city.
//!
//! The per-node cost that makes this run at all comes from the zero-copy
//! frame / shared-payload / allocation-lean storage refactor; the
//! `full_stack_scale` bench records the budget (`BENCH_full_stack.json`).

use std::rc::Rc;

use simnet::prelude::*;

use crate::experiments::full_stack::{metro_configs, FullStackHost, FullStats};
use crate::report::ExperimentReport;

/// Settings for the E15 full-stack metropolis run.
#[derive(Debug, Clone)]
pub struct MetropolisSettings {
    /// Base random seed (world, placement and churn plans derive from it).
    pub seed: u64,
    /// City population. Every node runs the full middleware stack.
    pub nodes: usize,
    /// Device density in nodes per square kilometre.
    pub density_per_km2: f64,
    /// Fraction of nodes roaming as random-waypoint pedestrians.
    pub mobile_fraction: f64,
    /// Expected crashes per churning node per hour (every tenth node
    /// churns). Zero disables the fault engine entirely.
    pub churn_per_hour: f64,
    /// Mean downtime of a crashed node.
    pub mean_downtime: SimDuration,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Inquiry interval of every node's discovery plugin.
    pub inquiry_interval: SimDuration,
}

impl MetropolisSettings {
    /// The full-size run used to produce `EXPERIMENTS.md`.
    pub fn full() -> Self {
        MetropolisSettings {
            seed: 15,
            nodes: 2_000,
            density_per_km2: 2_000.0,
            mobile_fraction: 0.25,
            churn_per_hour: 40.0,
            mean_downtime: SimDuration::from_secs(20),
            duration: SimDuration::from_secs(240),
            inquiry_interval: SimDuration::from_secs(10),
        }
    }

    /// The CI variant: same 2k-node city, shorter horizon.
    pub fn quick() -> Self {
        MetropolisSettings {
            duration: SimDuration::from_secs(90),
            ..MetropolisSettings::full()
        }
    }

    /// A reduced population for debug-build smoke tests (`cargo test`),
    /// where 2k full stacks would dominate the suite's runtime.
    pub fn smoke() -> Self {
        MetropolisSettings {
            nodes: 300,
            duration: SimDuration::from_secs(80),
            ..MetropolisSettings::full()
        }
    }

    /// Side length in metres of the square area at the configured density.
    pub fn side_m(&self) -> f64 {
        (self.nodes as f64 / self.density_per_km2 * 1_000_000.0).sqrt()
    }
}

/// Builds and runs the metropolis, returning the world for inspection.
pub fn metropolis_run(settings: &MetropolisSettings) -> World {
    let side = settings.side_m();
    let mut config = WorldConfig::with_seed(settings.seed ^ (settings.nodes as u64));
    config.grid_cell_m = config.radio.wlan.range_m;
    let mut world = World::new(config);
    let area = Rect::square(side);
    let (static_cfg, mobile_cfg) = metro_configs(settings.inquiry_interval);
    let mut placer = SimRng::new(settings.seed ^ 0x3E7A0 ^ (settings.nodes as u64));
    let mobile_every = if settings.mobile_fraction <= 0.0 {
        usize::MAX
    } else {
        (1.0 / settings.mobile_fraction).round().max(1.0) as usize
    };
    for i in 0..settings.nodes {
        let start = Point::new(placer.uniform_f64(0.0, side), placer.uniform_f64(0.0, side));
        let mobility = if i % mobile_every == 0 {
            MobilityModel::RandomWaypoint {
                area,
                start,
                min_speed_mps: 0.7,
                max_speed_mps: 2.0,
                pause: SimDuration::from_secs(20),
            }
        } else {
            MobilityModel::stationary(start)
        };
        let cfg = if i % mobile_every == 0 {
            &mobile_cfg
        } else {
            &static_cfg
        };
        world.add_node(
            format!("m{i}"),
            mobility,
            &[RadioTech::Wlan],
            Box::new(FullStackHost::new(Rc::clone(cfg))),
        );
    }
    if settings.churn_per_hour > 0.0 {
        let mtbf = SimDuration::from_secs_f64(3_600.0 / settings.churn_per_hour);
        let horizon = SimTime::ZERO + settings.duration;
        let planner = SimRng::new(settings.seed ^ 0xFA17_3E70);
        for (i, node) in world.node_ids().collect::<Vec<_>>().into_iter().enumerate() {
            if i % 10 != 0 {
                continue;
            }
            let mut rng = planner.derive(i as u64);
            let plan = FaultPlan::churn(horizon, mtbf, settings.mean_downtime, &mut rng);
            world.install_fault_plan(node, plan);
        }
    }
    let scope = format!("E15 nodes={}", settings.nodes);
    crate::telemetry::instrument_world(&mut world, &scope);
    let ids: Vec<NodeId> = world.node_ids().collect();
    crate::telemetry::run_world(&mut world, settings.duration, |world| {
        refresh_stack_gauges(world, &ids);
    });
    // Quiesce like E13: finish every scheduled restart so each probe's
    // counters are readable.
    while world.fault_stats().restarts < world.fault_stats().crashes {
        world.run_for(SimDuration::from_secs(5));
    }
    crate::telemetry::finish_world(&mut world, &scope);
    world
}

/// Mirrors the middleware-level state the substrate cannot see — session,
/// handover and resilience-pipeline tallies summed over every stack — into
/// the telemetry plane. Only called between sample frames when telemetry is
/// on; reads agent state without mutating it.
fn refresh_stack_gauges(world: &mut World, ids: &[NodeId]) {
    let mut resilience = peerhood::resilience::ResilienceStats::default();
    let mut sessions = 0u64;
    let mut handovers = 0u64;
    let mut route_changes = 0u64;
    let mut attached = 0u64;
    for id in ids {
        if let Some((s, r)) = world.with_agent::<FullStackHost, _>(*id, |a, _| (a.stats(), a.node().resilience_stats()))
        {
            sessions += s.sessions_established;
            handovers += s.handover_completions;
            route_changes += s.route_changes;
            if s.attached {
                attached += 1;
            }
            resilience.absorb(&r);
        }
    }
    if let Some(tel) = world.telemetry_mut() {
        tel.set_counter("sessions", "established", None, sessions);
        tel.set_gauge("sessions", "attached", None, attached as f64);
        tel.set_counter("handover", "completions", None, handovers);
        tel.set_counter("handover", "route_changes", None, route_changes);
        resilience.export_gauges(tel, None);
    }
}

/// Sums every node's [`FullStats`] and counts attached nodes.
pub fn aggregate_full_stats(world: &mut World) -> (FullStats, usize) {
    let ids: Vec<NodeId> = world.node_ids().collect();
    let mut total = FullStats::default();
    let mut attached = 0usize;
    for id in &ids {
        if let Some(s) = world.with_agent::<FullStackHost, _>(*id, |a, _| a.stats()) {
            total.sessions_established += s.sessions_established;
            total.broken_by_crash += s.broken_by_crash;
            total.broken_by_range += s.broken_by_range;
            total.handover_completions += s.handover_completions;
            total.route_changes += s.route_changes;
            total.reconnect_secs_total += s.reconnect_secs_total;
            total.reconnects += s.reconnects;
            total.pings_sent += s.pings_sent;
            total.payloads_received += s.payloads_received;
            if s.attached {
                attached += 1;
            }
        }
    }
    (total, attached)
}

/// E15 (beyond the thesis): the full-stack metropolis.
pub fn e15_full_stack_metropolis(settings: &MetropolisSettings) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E15",
        "Full-stack metropolis: real middleware on thousands of nodes",
        "Beyond the thesis: every device runs the complete PeerHood stack (daemon, dynamic \
         discovery, engine, handover machinery) plus a service workload, under mobility and \
         seeded churn. The zero-copy frame and allocation-lean storage refactor is what makes \
         the per-node cost small enough to populate the city with real middleware.",
        &[
            "nodes",
            "sessions",
            "pings delivered",
            "broken by churn",
            "broken by range",
            "handovers",
            "crashes",
            "restarts",
            "attached %",
        ],
    );
    let mut world = metropolis_run(settings);
    let (stats, attached) = aggregate_full_stats(&mut world);
    let fault = world.fault_stats();
    report.push_row([
        settings.nodes.to_string(),
        stats.sessions_established.to_string(),
        stats.payloads_received.to_string(),
        stats.broken_by_crash.to_string(),
        stats.broken_by_range.to_string(),
        stats.handover_completions.to_string(),
        fault.crashes.to_string(),
        fault.restarts.to_string(),
        ExperimentReport::f(100.0 * attached as f64 / settings.nodes as f64),
    ]);
    let mean_reconnect = if stats.reconnects == 0 {
        0.0
    } else {
        stats.reconnect_secs_total / stats.reconnects as f64
    };
    report.push_note(format!(
        "full PeerHood stack on every node; density {} nodes/km^2, {:.0}% mobile, every 10th node \
         churning at {}/h (mean downtime {}s), {}s simulated; mean reconnect {:.2}s over {} samples",
        settings.density_per_km2,
        settings.mobile_fraction * 100.0,
        settings.churn_per_hour,
        settings.mean_downtime.as_secs(),
        settings.duration.as_secs_f64(),
        mean_reconnect,
        stats.reconnects,
    ));
    report
}
