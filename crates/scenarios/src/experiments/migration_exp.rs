//! Experiment E9: result routing across the three package-count regimes.

use migration::{PictureClient, PictureServer, TaskOutcome, TaskSpec};
use peerhood::config::DiscoveryMode;
use peerhood::device::MobilityClass;
use peerhood::node::PeerHoodNode;
use simnet::prelude::*;

use crate::report::ExperimentReport;
use crate::topology::{experiment_config, spawn_app, with_app};

/// Result of one picture-migration run.
#[derive(Debug, Clone)]
pub struct MigrationRun {
    /// Regime label ("small", "considerable", "huge").
    pub regime: &'static str,
    /// How the task ended.
    pub outcome: TaskOutcome,
    /// Packages the client uploaded (including re-sent ones).
    pub packages_sent: u32,
    /// Seconds from the first upload start to result reception, if completed.
    pub completion_seconds: Option<f64>,
    /// Whether the server had to route the result back over a re-established
    /// connection.
    pub result_routed: bool,
}

/// Runs one picture-analysis migration with the client walking out of
/// coverage at a fixed time and returning later (the §5.3 test).
pub fn migration_run(seed: u64, regime: &'static str, spec: TaskSpec) -> MigrationRun {
    let mut world = World::new(WorldConfig::ideal(seed));
    // Walk out to 60 m at t = 60 s, pause, and walk back.
    let mobility = MobilityModel::Waypoints {
        points: vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(60.0, 0.0),
            Point::new(60.0, 0.0),
            Point::new(0.0, 0.0),
        ],
        speed_mps: 1.4,
        start_after: SimDuration::from_secs(60),
    };
    let client = spawn_app(
        &mut world,
        experiment_config("phone", MobilityClass::Dynamic, DiscoveryMode::Dynamic),
        mobility,
        Box::new(PictureClient::new("analysis", spec.clone(), SimDuration::from_secs(30))),
    );
    let server = spawn_app(
        &mut world,
        experiment_config("analysis-server", MobilityClass::Static, DiscoveryMode::Dynamic),
        MobilityModel::stationary(Point::new(5.0, 0.0)),
        Box::new(PictureServer::for_spec("analysis", &spec)),
    );
    let scope = format!("E9 regime={regime}");
    crate::telemetry::instrument_world(&mut world, &scope);
    crate::telemetry::run_world(&mut world, SimDuration::from_secs(700), |_| {});
    crate::telemetry::finish_world(&mut world, &scope);
    let (outcome, sent, finished) = with_app(&mut world, client, |app: &PictureClient| {
        (app.outcome(), app.sent_packages, app.result_received_at)
    })
    .unwrap();
    let routed = world
        .with_agent::<PeerHoodNode, _>(server, |n, _| n.reply_reconnections() > 0)
        .unwrap();
    MigrationRun {
        regime,
        outcome,
        packages_sent: sent,
        completion_seconds: finished.map(|t| t.as_secs_f64() - 30.0),
        result_routed: routed,
    }
}

/// E9 (§5.3, Fig. 5.9/5.10): the three package-count regimes.
pub fn e09_result_routing(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E9",
        "Result routing across the three package-count regimes",
        "Small tasks finish before the device leaves coverage; with a considerable package count the \
         connection breaks during processing and the server routes the result back through its device \
         storage; with a huge count the connection breaks during the upload itself (§5.3).",
        &[
            "regime",
            "outcome",
            "packages uploaded",
            "result routed back",
            "completion time (s)",
        ],
    );
    let regimes: [(&'static str, TaskSpec); 3] = [
        ("small", TaskSpec::small()),
        ("considerable", TaskSpec::considerable()),
        ("huge", TaskSpec::huge()),
    ];
    for (i, (name, spec)) in regimes.into_iter().enumerate() {
        let run = migration_run(seed + i as u64, name, spec);
        report.push_row([
            run.regime.to_string(),
            format!("{:?}", run.outcome),
            run.packages_sent.to_string(),
            run.result_routed.to_string(),
            run.completion_seconds
                .map(ExperimentReport::f)
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    report.push_note("the three regimes reproduce the three cases the thesis describes for the picture-analysis test");
    report
}
