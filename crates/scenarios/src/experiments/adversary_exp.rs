//! E19: the hostile city — network partitions and Byzantine insiders run
//! against the `peerhood::security` defence tiers.
//!
//! The scenario reuses the E16 crowd (clients pinging `"hotspot"`
//! providers) and plants compromised insiders in it: each hostile node runs
//! the honest middleware stack *and* an [`AdversaryPlan`] compromise window
//! that tampers its outbound frames and injects forged ones built by
//! [`ProtocolForge`] — replayed Accepts, foreign connection ids, hijacked
//! reply contexts and poisoned neighbour reports advertising phantom
//! `"hotspot"` providers. Midway through, a seeded partition window splits
//! the city and heals it again. The same world seed (and therefore the
//! same attack schedule, byte for byte) is run once per defence tier:
//!
//! * **off** — the thesis stack verbatim: every forged frame that parses is
//!   acted on, phantom providers enter the §3.4.3 ranking and are kept
//!   fresh by re-poisoning, and the scorecard counts how far the rot
//!   spreads.
//! * **sanity** — structural checks plus reporter reputation
//!   ([`SecurityConfig::sanity`]): foreign connection ids, bad reply
//!   contexts, duplicate Accepts and conn/link mismatches are dropped and
//!   charged to the sender, so the insiders talk themselves onto every
//!   victim's blocklist and their stale phantoms age out of storage.
//! * **auth** — sanity plus keyed frame authentication
//!   ([`SecurityConfig::auth`]): forged and tampered frames fail the MAC
//!   before they are even decoded, at a measured per-frame byte cost.
//!
//! Determinism: the adversary draws from its own RNG stream, the defences
//! draw none, and the world seed is independent of the tier — one seed
//! gives one byte-identical report per tier, and the *plan digest* printed
//! in the report notes is identical across tiers (CI diffs it between the
//! `off` and `auth` runs).

use std::rc::Rc;

use peerhood::config::{DiscoveryMode, PeerHoodConfig, SecurityConfig};
use peerhood::hostile::{ProtocolForge, HOSTILE_BASE};
use peerhood::node::PeerHoodNode;
use peerhood::security::SecurityStats;
use simnet::prelude::*;

use crate::report::ExperimentReport;

use super::overload::{CrowdApp, HotspotApp, HOTSPOT_SERVICE};

/// One defence tier of the scorecard grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defense {
    /// The thesis stack verbatim: no hardening at all.
    Off,
    /// Structural sanity checks plus reporter reputation.
    Sanity,
    /// Sanity plus keyed frame authentication.
    Auth,
}

impl Defense {
    /// Every tier, in scorecard order.
    pub const ALL: [Defense; 3] = [Defense::Off, Defense::Sanity, Defense::Auth];

    /// The tier's grid value (`off` / `sanity` / `auth`).
    pub fn name(self) -> &'static str {
        match self {
            Defense::Off => "off",
            Defense::Sanity => "sanity",
            Defense::Auth => "auth",
        }
    }

    /// The node configuration the tier switches on.
    pub fn security(self) -> SecurityConfig {
        match self {
            Defense::Off => SecurityConfig::off(),
            Defense::Sanity => SecurityConfig::sanity(),
            Defense::Auth => SecurityConfig::auth(),
        }
    }
}

/// Parses a `defenses=` grid value.
pub fn parse_defense(value: &str) -> Option<Defense> {
    match value {
        "off" => Some(Defense::Off),
        "sanity" => Some(Defense::Sanity),
        "auth" => Some(Defense::Auth),
        _ => None,
    }
}

/// Settings for the E19 hostile-city run.
#[derive(Debug, Clone)]
pub struct AdversarySettings {
    /// Base random seed (world, attack schedule and partition phase all
    /// derive from it; every defence tier runs the same seed).
    pub seed: u64,
    /// Honest `"hotspot"` providers.
    pub providers: usize,
    /// Honest crowd members.
    pub clients: usize,
    /// Compromised insiders (run the honest stack; their radio is hostile).
    pub hostiles: usize,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Inquiry interval — deliberately short so victims keep daemon-fetch
    /// links towards the insiders open (the poisoning delivery channel).
    pub inquiry_interval: SimDuration,
    /// Discovery warmup before the crowd's first attach.
    pub warmup: SimDuration,
    /// Application tick of the crowd.
    pub ping_interval: SimDuration,
    /// Pings per tick while attached.
    pub pings_per_tick: usize,
    /// When the insiders' compromise windows open.
    pub compromise_at: SimDuration,
    /// Spacing of injection attempts per insider.
    pub inject_interval: SimDuration,
    /// Partition window start.
    pub partition_from: SimDuration,
    /// Partition window end (the heal instant).
    pub partition_until: SimDuration,
}

impl AdversarySettings {
    /// The full-size run used to produce `EXPERIMENTS.md`.
    pub fn full() -> Self {
        AdversarySettings {
            seed: 19,
            providers: 3,
            clients: 18,
            hostiles: 3,
            duration: SimDuration::from_secs(240),
            inquiry_interval: SimDuration::from_secs(4),
            warmup: SimDuration::from_secs(30),
            ping_interval: SimDuration::from_secs(2),
            pings_per_tick: 2,
            compromise_at: SimDuration::from_secs(40),
            inject_interval: SimDuration::from_millis(900),
            partition_from: SimDuration::from_secs(120),
            partition_until: SimDuration::from_secs(160),
        }
    }

    /// The CI variant: smaller crowd, shorter horizon.
    pub fn quick() -> Self {
        AdversarySettings {
            clients: 12,
            hostiles: 2,
            duration: SimDuration::from_secs(180),
            partition_from: SimDuration::from_secs(90),
            partition_until: SimDuration::from_secs(120),
            ..AdversarySettings::full()
        }
    }

    /// A reduced city for debug-build smoke tests (`cargo test`).
    pub fn smoke() -> Self {
        AdversarySettings {
            providers: 2,
            clients: 8,
            hostiles: 2,
            duration: SimDuration::from_secs(150),
            compromise_at: SimDuration::from_secs(30),
            partition_from: SimDuration::from_secs(70),
            partition_until: SimDuration::from_secs(100),
            ..AdversarySettings::full()
        }
    }
}

/// The shared node configuration of the hostile city: the E16 crowd tuning
/// with one-hop neighbour re-export switched on (so poisoned reports
/// spread the way the thesis intends honest ones to) and the tier's
/// security configuration applied fleet-wide.
fn city_config(settings: &AdversarySettings, defense: Defense) -> Rc<PeerHoodConfig> {
    let mut cfg = PeerHoodConfig::new("hostile-city", peerhood::device::MobilityClass::Static);
    cfg.techs = vec![RadioTech::Wlan];
    cfg.discovery.mode = DiscoveryMode::TwoHop;
    cfg.discovery.inquiry_interval = settings.inquiry_interval;
    // Short re-fetch and staleness horizons: neighbours keep re-reading
    // each other all run, so poisoned reports keep landing (off) — and stop
    // being refreshed once their reporter is blocked, at which point the
    // phantoms age out within the run (sanity/auth).
    cfg.discovery.service_check_interval = SimDuration::from_secs(20);
    cfg.discovery.stale_timeout = SimDuration::from_secs(40);
    // Direct entries age out after three missed inquiry loops: partitioned
    // clients drop their unreachable providers mid-window and fall back to
    // the insider's phantom routes — the §3.4.3 ranking prefers direct
    // providers, so the poison only bites once the real thing is gone.
    cfg.discovery.max_missed_loops = 3;
    cfg.discovery.max_export_jumps = 1;
    cfg.monitor.interval = SimDuration::from_secs(10);
    cfg.monitor.quality_threshold = 190;
    cfg.handover.max_routing_attempts = 1;
    cfg.security = defense.security();
    Rc::new(cfg)
}

/// Seed-stable FNV-1a digest of an [`AdversaryPlan`] — identical across
/// defence tiers by construction, so CI can diff the printed value between
/// the `off` and `auth` rows as an invariant.
pub fn plan_digest(plan: &AdversaryPlan) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut digest = FNV_OFFSET;
    let mut fold = |value: u64| {
        for b in value.to_be_bytes() {
            digest ^= b as u64;
            digest = digest.wrapping_mul(FNV_PRIME);
        }
    };
    for window in plan.partitions() {
        fold(window.from.as_micros());
        fold(window.until.as_micros());
        for &node in &window.island {
            fold(node.as_raw());
        }
    }
    for c in plan.compromised() {
        fold(c.node.as_raw());
        fold(c.from.as_micros());
        fold(c.until.as_micros());
        fold(c.inject_interval.as_micros());
    }
    digest
}

/// The hostile city, built and run in one defence tier. Returns the world,
/// the honest node ids (providers then clients), the hostile node ids and
/// the plan digest.
///
/// Geometry (metres, everything inside one WLAN disc): providers along the
/// top edge, the crowd gridded below them, the insiders planted inside the
/// crowd so every client keeps them within one radio hop. The partition
/// window islands the left crowd columns together with the first insider
/// (and no provider), then heals the city again.
pub fn adversary_run(settings: &AdversarySettings, defense: Defense) -> (World, Vec<NodeId>, Vec<NodeId>, u64) {
    let mut config = WorldConfig::with_seed(settings.seed ^ 0x0E19_0000);
    config.grid_cell_m = config.radio.wlan.range_m;
    let mut world = World::new(config);
    let cfg = city_config(settings, defense);

    let mut honest = Vec::with_capacity(settings.providers + settings.clients);
    for p in 0..settings.providers {
        let x = 20.0 * p as f64;
        honest.push(
            world.add_node(
                format!("hs{p}"),
                MobilityModel::stationary(Point::new(x, 20.0)),
                &[RadioTech::Wlan],
                Box::new(
                    PeerHoodNode::builder()
                        .config_shared(Rc::clone(&cfg))
                        .app(HotspotApp::default())
                        .build(),
                ),
            ),
        );
    }
    let crowd_app = || CrowdApp::new(settings.ping_interval, settings.pings_per_tick, settings.warmup);
    let mut left_clients = Vec::new();
    for i in 0..settings.clients {
        let pos = Point::new(3.0 + (i % 6) as f64 * 6.0, 4.0 + (i / 6) as f64 * 4.0);
        let id = world.add_node(
            format!("c{i}"),
            MobilityModel::stationary(pos),
            &[RadioTech::Wlan],
            Box::new(
                PeerHoodNode::builder()
                    .config_shared(Rc::clone(&cfg))
                    .app(crowd_app())
                    .build(),
            ),
        );
        honest.push(id);
        if i % 6 < 2 {
            left_clients.push(id);
        }
    }
    // The insiders run the honest stack and the honest crowd application —
    // their persistent hotspot session guarantees the injector always finds
    // an open link, and gives the tamper pass real data traffic to corrupt.
    let mut hostiles = Vec::with_capacity(settings.hostiles);
    for h in 0..settings.hostiles {
        let pos = Point::new(10.0 + 8.0 * h as f64, 14.0);
        hostiles.push(
            world.add_node(
                format!("x{h}"),
                MobilityModel::stationary(pos),
                &[RadioTech::Wlan],
                Box::new(
                    PeerHoodNode::builder()
                        .config_shared(Rc::clone(&cfg))
                        .app(crowd_app())
                        .build(),
                ),
            ),
        );
    }

    let compromise_from = SimTime::ZERO + settings.compromise_at;
    let compromise_until = SimTime::ZERO + settings.duration;
    let mut plan = AdversaryPlan::new();
    for &node in &hostiles {
        plan = plan.compromise(node, compromise_from, compromise_until, settings.inject_interval);
    }
    // The island holds crowd members and one insider but no provider: the
    // cut tears the islanders' sessions down and leaves the insider's
    // phantom routes as the only advertised way back to the service.
    let mut island = vec![hostiles[0]];
    island.extend_from_slice(&left_clients);
    plan = plan.partition(
        SimTime::ZERO + settings.partition_from,
        SimTime::ZERO + settings.partition_until,
        island,
    );
    let digest = plan_digest(&plan);
    world.install_adversary_plan(plan);
    world.set_frame_forge(Box::new(ProtocolForge::new(HOTSPOT_SERVICE)));

    let scope = format!("E19 defenses={}", defense.name());
    crate::telemetry::instrument_world(&mut world, &scope);
    let honest_ids = honest.clone();
    crate::telemetry::run_world(&mut world, settings.duration, |world| {
        // Mirror the hardening layer's counters (summed over the honest
        // city) into the `security` gauges between frames.
        let mut total = SecurityStats::default();
        for id in &honest_ids {
            if let Some(stats) = world.with_agent::<PeerHoodNode, _>(*id, |node, _| node.security_stats()) {
                total.absorb(&stats);
            }
        }
        if let Some(tel) = world.telemetry_mut() {
            total.export_gauges(tel, None);
        }
    });
    crate::telemetry::finish_world(&mut world, &scope);
    (world, honest, hostiles, digest)
}

/// The security scorecard of one defence tier.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryOutcome {
    /// Client sessions established across the honest crowd.
    pub sessions: u64,
    /// Sessions that survived: established minus lost.
    pub survived: u64,
    /// Echo payloads delivered back to honest clients.
    pub goodput: u64,
    /// Phantom routes resident in honest device storages at the end of the
    /// run (entries whose address is in the hostile range).
    pub routes_poisoned: u64,
    /// Hostile frames the adversary produced (tampered + injected).
    pub hostile_frames: u64,
    /// Hostile frames demonstrably refused by some defence.
    pub hostile_rejected: u64,
    /// Hostile frames nothing refused (delivered and acted on, or at least
    /// parsed): `hostile_frames - hostile_rejected`.
    pub hostile_accepted: u64,
    /// Summed hardening counters across the honest city.
    pub security: SecurityStats,
    /// The simulator-side adversary counters.
    pub adversary: AdversaryStats,
    /// Digest of the attack schedule (tier-invariant per seed).
    pub plan_digest: u64,
}

/// Runs one tier and aggregates the scorecard.
pub fn adversary_outcome(settings: &AdversarySettings, defense: Defense) -> AdversaryOutcome {
    let (mut world, honest, _hostiles, digest) = adversary_run(settings, defense);
    let mut sessions = 0u64;
    let mut lost = 0u64;
    let mut goodput = 0u64;
    let mut routes_poisoned = 0u64;
    let mut security = SecurityStats::default();
    for &id in &honest {
        let sample = world.with_agent::<PeerHoodNode, _>(id, |node, _| {
            let app = node
                .with_app(|a: &CrowdApp| (a.sessions_established, a.sessions_lost, a.delivered))
                .unwrap_or((0, 0, 0));
            let poisoned = node
                .known_devices()
                .iter()
                .filter(|d| d.info.address.node_id().as_raw() >= HOSTILE_BASE)
                .count() as u64;
            (app, poisoned, node.security_stats())
        });
        let ((established, app_lost, delivered), poisoned, stats) = sample.unwrap_or_default();
        sessions += established;
        lost += app_lost;
        goodput += delivered;
        routes_poisoned += poisoned;
        security.absorb(&stats);
    }
    let adversary = world.adversary_stats();
    let hostile_frames = adversary.frames_hostile();
    let hostile_rejected = security.frames_rejected();
    AdversaryOutcome {
        sessions,
        survived: sessions.saturating_sub(lost),
        goodput,
        routes_poisoned,
        hostile_frames,
        hostile_rejected,
        hostile_accepted: hostile_frames.saturating_sub(hostile_rejected),
        security,
        adversary,
        plan_digest: digest,
    }
}

/// E19 (beyond the thesis): the hostile city, one scorecard row per
/// defence tier in `defenses`.
pub fn e19_hostile_city(settings: &AdversarySettings, defenses: &[Defense]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E19",
        "Hostile city: partitions and Byzantine insiders vs. the defence tiers",
        "Beyond the thesis: the paper's middleware trusts every frame a neighbour sends. \
         Compromised insiders replay sessions, forge connection requests and poison the \
         neighbourhood with phantom providers while a seeded partition splits the city; the same \
         attack schedule is replayed against each peerhood::security tier and the scorecard \
         counts what got through.",
        &[
            "defenses",
            "sessions",
            "survived",
            "goodput",
            "routes poisoned",
            "hostile frames",
            "hostile accepted",
            "hostile rejected",
            "reports skipped",
            "auth bytes",
        ],
    );
    let mut digest = None;
    for &defense in defenses {
        let o = adversary_outcome(settings, defense);
        digest = Some(o.plan_digest);
        report.push_row([
            defense.name().to_string(),
            o.sessions.to_string(),
            o.survived.to_string(),
            o.goodput.to_string(),
            o.routes_poisoned.to_string(),
            o.hostile_frames.to_string(),
            o.hostile_accepted.to_string(),
            o.hostile_rejected.to_string(),
            o.security.reports_skipped.to_string(),
            o.security.auth_bytes.to_string(),
        ]);
    }
    report.push_note(format!(
        "{} providers, {} clients and {} compromised insiders in one WLAN disc; compromise opens \
         at {}s (injection every {:.1}s per insider), a partition islands the left third over \
         [{}s, {}s), {}s simulated; identical world seed in every tier — only the defences differ",
        settings.providers,
        settings.clients,
        settings.hostiles,
        settings.compromise_at.as_secs(),
        settings.inject_interval.as_secs_f64(),
        settings.partition_from.as_secs(),
        settings.partition_until.as_secs(),
        settings.duration.as_secs_f64(),
    ));
    if let Some(digest) = digest {
        report.push_note(format!("plan digest {digest:016x}"));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same seed ⇒ identical scorecard per tier — the adversary draws from
    /// its own RNG stream and the defences draw none.
    #[test]
    fn hostile_city_is_deterministic_per_tier() {
        let settings = AdversarySettings::smoke();
        for defense in Defense::ALL {
            let a = adversary_outcome(&settings, defense);
            let b = adversary_outcome(&settings, defense);
            assert_eq!(a, b, "tier {} must reproduce exactly", defense.name());
        }
        let r1 = e19_hostile_city(&settings, &Defense::ALL).to_string();
        let r2 = e19_hostile_city(&settings, &Defense::ALL).to_string();
        assert_eq!(r1, r2, "the report must be byte-identical per seed");
    }

    /// Acceptance: on every seed of the sweep, each defence tier strictly
    /// lowers both routes-poisoned and hostile-frames-accepted relative to
    /// the undefended stack, and the attack schedule digest is
    /// tier-invariant.
    #[test]
    fn defences_strictly_lower_poison_and_acceptance_across_seeds() {
        for seed in [19u64, 42, 77, 20080815] {
            let settings = AdversarySettings {
                seed,
                ..AdversarySettings::smoke()
            };
            let off = adversary_outcome(&settings, Defense::Off);
            let sanity = adversary_outcome(&settings, Defense::Sanity);
            let auth = adversary_outcome(&settings, Defense::Auth);

            assert_eq!(
                off.plan_digest, sanity.plan_digest,
                "seed {seed}: plan digest is tier-invariant"
            );
            assert_eq!(
                off.plan_digest, auth.plan_digest,
                "seed {seed}: plan digest is tier-invariant"
            );
            assert!(off.hostile_frames > 0, "seed {seed}: the insiders must actually attack");

            // The undefended stack rejects nothing and accumulates poison.
            assert_eq!(off.hostile_rejected, 0, "seed {seed}: no defences, no rejections");
            assert_eq!(
                off.security,
                SecurityStats::default(),
                "seed {seed}: off counts nothing"
            );
            assert!(off.routes_poisoned > 0, "seed {seed}: phantom providers must take root");

            for (name, tier) in [("sanity", &sanity), ("auth", &auth)] {
                assert!(
                    tier.routes_poisoned < off.routes_poisoned,
                    "seed {seed}: {name} routes_poisoned {} must be below off {}",
                    tier.routes_poisoned,
                    off.routes_poisoned
                );
                assert!(
                    tier.hostile_accepted < off.hostile_accepted,
                    "seed {seed}: {name} hostile_accepted {} must be below off {}",
                    tier.hostile_accepted,
                    off.hostile_accepted
                );
                assert!(tier.hostile_rejected > 0, "seed {seed}: {name} must reject something");
            }
            assert!(
                auth.security.auth_rejected > 0,
                "seed {seed}: forged frames must fail the MAC"
            );
            assert!(
                auth.security.auth_bytes > 0,
                "seed {seed}: the auth tier must pay its trailer bytes"
            );
        }
    }
}
