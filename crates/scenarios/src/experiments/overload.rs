//! E16: the overload city — a flash crowd against a flapping hotspot, run
//! with and without the `peerhood::resilience` pipeline.
//!
//! The scenario is the one the resilience subsystem was built for: a crowd
//! of clients all inside radio range of two `"hotspot"` providers. The
//! closer, higher-quality provider sits behind a seeded flapping link
//! schedule ([`FaultPlan::flapping_link`]) towards every client, so the
//! §3.4.3 best-provider ranking keeps steering the inner half of the crowd
//! onto a peer that tears their sessions down a few seconds later.
//!
//! * **resilience off** (the default stack): every loss is followed by a
//!   re-dial to the same flapping provider — the inner crowd starves on a
//!   connect/break treadmill while the outer crowd is served normally, so
//!   both goodput and per-app fairness (min/max delivered) collapse.
//! * **resilience on** ([`ResilienceConfig::all_on`]): per-peer circuit
//!   breakers trip on the repeated failures and link breaks, the next
//!   attach sees [`PeerHoodError::CircuitOpen`] synchronously and the
//!   [`CrowdApp`] diverts to the next known provider — the crowd converges
//!   on the healthy hotspot and stays there.
//!
//! Determinism: both modes run the *same* world seed (identical flap
//! phases), and the pipeline itself draws no randomness, so one seed gives
//! one byte-identical report per mode (asserted by the tests below).

use std::rc::Rc;

use peerhood::application::Application;
use peerhood::config::{DiscoveryMode, PeerHoodConfig};
use peerhood::error::PeerHoodError;
use peerhood::ids::{ConnectionId, DeviceAddress};
use peerhood::node::{PeerHoodApi, PeerHoodNode};
use peerhood::resilience::{ResilienceConfig, ResilienceStats};
use peerhood::service::ServiceInfo;
use simnet::prelude::*;
use std::any::Any;

use crate::report::ExperimentReport;

/// Name of the service the hotspots offer and the crowd consumes.
pub const HOTSPOT_SERVICE: &str = "hotspot";

const PING_TIMER: u64 = 0xC40;

/// Settings for the E16 overload-city run.
#[derive(Debug, Clone)]
pub struct OverloadSettings {
    /// Base random seed (world and flap phases derive from it; both
    /// pipeline modes run the same world seed).
    pub seed: u64,
    /// Crowd size. The inner half spawns next to the flapping hotspot, the
    /// outer half next to the healthy one.
    pub clients: usize,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Inquiry interval of every node's discovery plugin.
    pub inquiry_interval: SimDuration,
    /// Discovery warmup: clients hold their first attach back this long so
    /// everyone has fetched both hotspots (the flapping one is only
    /// reachable during its up phases) and the §3.4.3 ranking — not fetch
    /// order — picks the provider.
    pub warmup: SimDuration,
    /// Application tick: attached clients send pings, detached ones
    /// re-attach.
    pub ping_interval: SimDuration,
    /// Pings sent per tick while attached.
    pub pings_per_tick: usize,
    /// Full up+down cycle of the flapping hotspot's links.
    pub flap_period: SimDuration,
    /// Fraction of each flap period the links are up.
    pub flap_duty: f64,
}

impl OverloadSettings {
    /// The full-size run used to produce `EXPERIMENTS.md`.
    pub fn full() -> Self {
        OverloadSettings {
            seed: 16,
            clients: 24,
            duration: SimDuration::from_secs(240),
            inquiry_interval: SimDuration::from_secs(10),
            warmup: SimDuration::from_secs(40),
            ping_interval: SimDuration::from_secs(2),
            pings_per_tick: 2,
            flap_period: SimDuration::from_secs(20),
            flap_duty: 0.5,
        }
    }

    /// The CI variant: smaller crowd, shorter horizon.
    pub fn quick() -> Self {
        OverloadSettings {
            clients: 16,
            duration: SimDuration::from_secs(120),
            ..OverloadSettings::full()
        }
    }

    /// A reduced crowd for debug-build smoke tests (`cargo test`).
    pub fn smoke() -> Self {
        OverloadSettings {
            clients: 8,
            duration: SimDuration::from_secs(120),
            ..OverloadSettings::full()
        }
    }
}

/// The shared node configuration of the overload city (everyone static,
/// WLAN, two-hop discovery — the E15 metro tuning at crowd scale).
fn crowd_config(inquiry_interval: SimDuration, resilience: ResilienceConfig) -> Rc<PeerHoodConfig> {
    let mut cfg = PeerHoodConfig::new("crowd", peerhood::device::MobilityClass::Static);
    cfg.techs = vec![RadioTech::Wlan];
    cfg.discovery.mode = DiscoveryMode::TwoHop;
    cfg.discovery.inquiry_interval = inquiry_interval;
    cfg.discovery.service_check_interval = SimDuration::from_secs(300);
    cfg.discovery.max_missed_loops = 12;
    cfg.discovery.max_export_jumps = 0;
    cfg.monitor.interval = SimDuration::from_secs(10);
    cfg.monitor.quality_threshold = 190;
    cfg.handover.max_routing_attempts = 1;
    cfg.resilience = resilience;
    Rc::new(cfg)
}

/// A crowd member: attaches to the best `"hotspot"` provider and pings it
/// every tick. When the attach is refused synchronously by an open circuit
/// breaker, it walks the rest of the known providers instead of waiting for
/// the breaker's peer to come back — the diversion the pipeline exists to
/// enable.
pub struct CrowdApp {
    /// Tick interval (pings while attached, re-attach otherwise).
    tick: SimDuration,
    /// Pings sent per tick while attached.
    ping_burst: usize,
    /// No attach before this long into the run (discovery warmup).
    warmup: SimDuration,
    current: Option<ConnectionId>,
    connecting: bool,
    down_since: Option<SimTime>,
    /// Client sessions established.
    pub sessions_established: u64,
    /// Sessions the middleware could not keep alive.
    pub sessions_lost: u64,
    /// Attaches diverted away from an open-breaker provider.
    pub diverted: u64,
    /// Pings sent / echoes received.
    pub pings_sent: u64,
    /// Echo payloads delivered back to this client.
    pub delivered: u64,
    /// Sends refused by the backpressure layer.
    pub sends_shed: u64,
    /// Total reconnection latency and sample count.
    pub reconnect_secs_total: f64,
    /// Number of latency samples in `reconnect_secs_total`.
    pub reconnects: u64,
}

impl CrowdApp {
    /// A crowd member ticking every `tick`, sending `ping_burst` pings per
    /// tick while attached, holding its first attach until `warmup`.
    pub fn new(tick: SimDuration, ping_burst: usize, warmup: SimDuration) -> Self {
        CrowdApp {
            tick,
            ping_burst,
            warmup,
            current: None,
            connecting: false,
            down_since: None,
            sessions_established: 0,
            sessions_lost: 0,
            diverted: 0,
            pings_sent: 0,
            delivered: 0,
            sends_shed: 0,
            reconnect_secs_total: 0.0,
            reconnects: 0,
        }
    }

    fn try_attach(&mut self, api: &mut PeerHoodApi<'_, '_>) {
        if self.current.is_some() || self.connecting || api.now() < SimTime::ZERO + self.warmup {
            return;
        }
        match api.connect_to_service(HOTSPOT_SERVICE) {
            Ok(conn) => {
                self.current = Some(conn);
                self.connecting = true;
            }
            Err(PeerHoodError::CircuitOpen(_)) => {
                // The best-ranked provider is behind an open breaker: try
                // the other known providers in deterministic address order.
                let providers: Vec<DeviceAddress> = api
                    .service_list()
                    .into_iter()
                    .filter(|(_, s)| s.name == HOTSPOT_SERVICE)
                    .map(|(addr, _)| addr)
                    .collect();
                for addr in providers {
                    if let Ok(conn) = api.connect_to(addr, HOTSPOT_SERVICE) {
                        self.current = Some(conn);
                        self.connecting = true;
                        self.diverted += 1;
                        return;
                    }
                }
            }
            Err(_) => {}
        }
    }
}

impl Application for CrowdApp {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn on_start(&mut self, api: &mut PeerHoodApi<'_, '_>) {
        self.current = None;
        self.connecting = false;
        api.schedule_timer(self.tick, PING_TIMER);
    }

    fn on_device_discovered(&mut self, api: &mut PeerHoodApi<'_, '_>, _address: DeviceAddress) {
        self.try_attach(api);
    }

    fn on_connected(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId) {
        if self.current == Some(conn) {
            self.connecting = false;
            self.sessions_established += 1;
            if let Some(t0) = self.down_since.take() {
                self.reconnect_secs_total += api.now().saturating_since(t0).as_secs_f64();
                self.reconnects += 1;
            }
        }
    }

    fn on_connect_failed(&mut self, _api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, _error: PeerHoodError) {
        if self.current == Some(conn) {
            self.current = None;
            self.connecting = false;
        }
    }

    fn on_data(&mut self, _api: &mut PeerHoodApi<'_, '_>, _conn: ConnectionId, _payload: Vec<u8>) {
        self.delivered += 1;
    }

    fn on_disconnected(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, _graceful: bool) {
        if self.current == Some(conn) {
            self.current = None;
            self.connecting = false;
            self.sessions_lost += 1;
            self.down_since = Some(api.now());
        }
    }

    fn on_reconnect_required(
        &mut self,
        _api: &mut PeerHoodApi<'_, '_>,
        _conn: ConnectionId,
        _candidates: &[DeviceAddress],
    ) -> bool {
        false
    }

    fn on_service_reconnected(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, _provider: DeviceAddress) {
        if self.current == Some(conn) {
            self.connecting = false;
            self.sessions_established += 1;
            if let Some(t0) = self.down_since.take() {
                self.reconnect_secs_total += api.now().saturating_since(t0).as_secs_f64();
                self.reconnects += 1;
            }
        }
    }

    fn on_timer(&mut self, api: &mut PeerHoodApi<'_, '_>, token: u64) {
        if token != PING_TIMER {
            return;
        }
        match self.current {
            Some(conn) if !self.connecting => {
                for _ in 0..self.ping_burst {
                    match api.send(conn, b"crowd-ping".to_vec()) {
                        Ok(()) => self.pings_sent += 1,
                        Err(_) => {
                            self.sends_shed += 1;
                            break;
                        }
                    }
                }
            }
            _ => self.try_attach(api),
        }
        api.schedule_timer(self.tick, PING_TIMER);
    }
}

/// A hotspot: registers the [`HOTSPOT_SERVICE`] and echoes every payload
/// back to its sender.
#[derive(Default)]
pub struct HotspotApp {
    /// Payloads received and echoed.
    pub served: u64,
    /// Echoes refused by the backpressure layer.
    pub echoes_shed: u64,
}

impl Application for HotspotApp {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn on_start(&mut self, api: &mut PeerHoodApi<'_, '_>) {
        let _ = api.register_service(ServiceInfo::new(HOTSPOT_SERVICE, "v1", 80));
    }

    fn on_data(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, payload: Vec<u8>) {
        match api.send(conn, payload) {
            Ok(()) => self.served += 1,
            Err(_) => self.echoes_shed += 1,
        }
    }
}

/// The overload city, built and run in one pipeline mode. Returns the world
/// plus the crowd and hotspot node ids (hotspots: `[flapping, healthy]`).
///
/// Geometry (metres, everything inside everyone's WLAN disc): the flapping
/// hotspot at x=0, the healthy one at x=36, the inner crowd clustered at
/// x∈[4,10] (the flapping hotspot is its by-quality best provider) and the
/// outer crowd at x∈[28,34] (the healthy one is). The world seed — and with
/// it every flap phase — is independent of `resilience_on`, so the two
/// modes face the identical fault schedule.
pub fn overload_run(settings: &OverloadSettings, resilience_on: bool) -> (World, Vec<NodeId>, Vec<NodeId>) {
    let mut config = WorldConfig::with_seed(settings.seed ^ 0x0E16_0000);
    config.grid_cell_m = config.radio.wlan.range_m;
    let mut world = World::new(config);
    let resilience = if resilience_on {
        ResilienceConfig::all_on()
    } else {
        ResilienceConfig::disabled()
    };
    let cfg = crowd_config(settings.inquiry_interval, resilience);

    let hotspot = |world: &mut World, name: &str, x: f64| {
        world.add_node(
            name.to_string(),
            MobilityModel::stationary(Point::new(x, 10.0)),
            &[RadioTech::Wlan],
            Box::new(
                PeerHoodNode::builder()
                    .config_shared(Rc::clone(&cfg))
                    .app(HotspotApp::default())
                    .build(),
            ),
        )
    };
    let flapping = hotspot(&mut world, "hs-flapping", 0.0);
    let healthy = hotspot(&mut world, "hs-healthy", 36.0);

    let inner = settings.clients / 2;
    let mut clients = Vec::with_capacity(settings.clients);
    for i in 0..settings.clients {
        let (base_x, j) = if i < inner { (4.0, i) } else { (28.0, i - inner) };
        let pos = Point::new(base_x + (j % 4) as f64 * 2.0, 6.0 + (j / 4) as f64 * 2.0);
        clients.push(
            world.add_node(
                format!("c{i}"),
                MobilityModel::stationary(pos),
                &[RadioTech::Wlan],
                Box::new(
                    PeerHoodNode::builder()
                        .config_shared(Rc::clone(&cfg))
                        .app(CrowdApp::new(
                            settings.ping_interval,
                            settings.pings_per_tick,
                            settings.warmup,
                        ))
                        .build(),
                ),
            ),
        );
    }

    let mut plan = FaultPlan::new();
    for &client in &clients {
        plan = plan.flapping_link(client, settings.flap_period, settings.flap_duty);
    }
    world.install_fault_plan(flapping, plan);

    let scope = format!("E16 resilience={}", if resilience_on { "on" } else { "off" });
    crate::telemetry::instrument_world(&mut world, &scope);
    let ids: Vec<NodeId> = world.node_ids().collect();
    crate::telemetry::run_world(&mut world, settings.duration, |world| {
        // Mirror the pipeline's per-layer state (summed over every node)
        // into the `resilience` gauges between frames.
        let mut total = ResilienceStats::default();
        for id in &ids {
            if let Some(stats) = world.with_agent::<PeerHoodNode, _>(*id, |node, _| node.resilience_stats()) {
                total.absorb(&stats);
            }
        }
        if let Some(tel) = world.telemetry_mut() {
            total.export_gauges(tel, None);
        }
    });
    crate::telemetry::finish_world(&mut world, &scope);
    (world, clients, vec![flapping, healthy])
}

/// Everything one mode of the overload city measures.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadOutcome {
    /// Echo payloads delivered across the whole crowd.
    pub goodput: u64,
    /// Per-app fairness: min/max delivered across clients (0 when someone
    /// starved completely — or everyone did).
    pub fairness: f64,
    /// Client sessions established.
    pub sessions: u64,
    /// Attaches diverted away from an open breaker.
    pub diverted: u64,
    /// Mean session-recovery latency in seconds (0 without samples).
    pub mean_reconnect_s: f64,
    /// Per-client delivered counts, in node order.
    pub per_client: Vec<u64>,
    /// Summed resilience counters across every node.
    pub stats: ResilienceStats,
}

/// Runs one mode and aggregates the outcome.
pub fn overload_outcome(settings: &OverloadSettings, resilience_on: bool) -> OverloadOutcome {
    let (mut world, clients, hotspots) = overload_run(settings, resilience_on);
    let mut outcome = OverloadOutcome {
        goodput: 0,
        fairness: 0.0,
        sessions: 0,
        diverted: 0,
        mean_reconnect_s: 0.0,
        per_client: Vec::with_capacity(clients.len()),
        stats: ResilienceStats::default(),
    };
    let mut reconnect_secs = 0.0;
    let mut reconnects = 0u64;
    for &id in &clients {
        let sample = world.with_agent::<PeerHoodNode, _>(id, |node, _| {
            let app = node
                .with_app(|a: &CrowdApp| {
                    (
                        a.delivered,
                        a.sessions_established,
                        a.diverted,
                        a.reconnect_secs_total,
                        a.reconnects,
                    )
                })
                .unwrap_or((0, 0, 0, 0.0, 0));
            (app, node.resilience_stats())
        });
        let ((delivered, sessions, diverted, rec_secs, recs), stats) = sample.unwrap_or_default();
        outcome.per_client.push(delivered);
        outcome.goodput += delivered;
        outcome.sessions += sessions;
        outcome.diverted += diverted;
        reconnect_secs += rec_secs;
        reconnects += recs;
        outcome.stats.absorb(&stats);
    }
    for &id in &hotspots {
        if let Some(stats) = world.with_agent::<PeerHoodNode, _>(id, |node, _| node.resilience_stats()) {
            outcome.stats.absorb(&stats);
        }
    }
    let min = outcome.per_client.iter().copied().min().unwrap_or(0);
    let max = outcome.per_client.iter().copied().max().unwrap_or(0);
    if max > 0 {
        outcome.fairness = min as f64 / max as f64;
    }
    if reconnects > 0 {
        outcome.mean_reconnect_s = reconnect_secs / reconnects as f64;
    }
    outcome
}

/// E16 (beyond the thesis): the overload city, with and without the
/// resilience pipeline. `modes` lists the pipeline states to run
/// (`false` = off, `true` = on), one report row each.
pub fn e16_overload(settings: &OverloadSettings, modes: &[bool]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E16",
        "Overload city: flash crowd against a flapping hotspot",
        "Beyond the thesis: the paper's middleware accepts every connection and re-dials any \
         provider forever. A crowd split across a healthy and a flapping hotspot starves without \
         the resilience pipeline; with per-peer circuit breakers, backpressure and admission \
         control the crowd diverts to the healthy provider and goodput and fairness recover.",
        &[
            "resilience",
            "goodput",
            "fairness",
            "sessions",
            "diverted",
            "mean reconnect (s)",
            "breaker trips",
            "blocked dials",
            "shed",
            "rejected",
        ],
    );
    for &on in modes {
        let o = overload_outcome(settings, on);
        report.push_row([
            if on { "on" } else { "off" }.to_string(),
            o.goodput.to_string(),
            ExperimentReport::f(o.fairness),
            o.sessions.to_string(),
            o.diverted.to_string(),
            ExperimentReport::f(o.mean_reconnect_s),
            o.stats.breaker_trips.to_string(),
            o.stats.breaker_blocked.to_string(),
            (o.stats.inbound_shed + o.stats.outbound_shed + o.stats.queue_shed).to_string(),
            (o.stats.rejected_sessions + o.stats.rejected_rate).to_string(),
        ]);
    }
    report.push_note(format!(
        "{} clients split between a flapping hotspot (period {}s, duty {:.0}%, seeded phase) and a \
         healthy one, {} pings per {}s tick, {}s discovery warmup, {}s simulated; identical world \
         seed in both modes — only the pipeline differs",
        settings.clients,
        settings.flap_period.as_secs(),
        settings.flap_duty * 100.0,
        settings.pings_per_tick,
        settings.ping_interval.as_secs(),
        settings.warmup.as_secs(),
        settings.duration.as_secs_f64(),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite: same seed ⇒ identical E16 report and identical per-node
    /// `ResilienceStats`, pipeline on and off — the subsystem draws no
    /// randomness of its own.
    #[test]
    fn overload_city_is_deterministic_in_both_modes() {
        let settings = OverloadSettings::smoke();
        for on in [false, true] {
            let a = overload_outcome(&settings, on);
            let b = overload_outcome(&settings, on);
            assert_eq!(a, b, "mode on={on} must reproduce exactly, stats included");
        }
        let r1 = e16_overload(&settings, &[false, true]).to_string();
        let r2 = e16_overload(&settings, &[false, true]).to_string();
        assert_eq!(r1, r2, "the digest must be byte-identical per seed");
    }

    #[test]
    fn pipeline_strictly_improves_goodput_and_fairness() {
        let settings = OverloadSettings::smoke();
        let off = overload_outcome(&settings, false);
        let on = overload_outcome(&settings, true);
        assert!(
            on.goodput > off.goodput,
            "goodput: on={} must beat off={}",
            on.goodput,
            off.goodput
        );
        assert!(
            on.fairness > off.fairness,
            "fairness: on={:.3} must beat off={:.3}",
            on.fairness,
            off.fairness
        );
        assert!(on.stats.breaker_trips > 0, "the flapping hotspot must trip breakers");
        assert!(on.diverted > 0, "blocked attaches must divert to the healthy hotspot");
        // The inquiry dedup counters instrument the always-on cached-frame
        // path; every gated layer must count nothing while disabled.
        let gated = ResilienceStats {
            inquiries_cached: off.stats.inquiries_cached,
            inquiries_encoded: off.stats.inquiries_encoded,
            ..ResilienceStats::default()
        };
        assert_eq!(off.stats, gated, "disabled layers count nothing");
        assert!(
            off.stats.inquiries_cached > 0,
            "hot neighbours must hit the cached frame"
        );
    }
}
