//! E12: dense-city discovery and handover at 1k–10k nodes.
//!
//! The thesis evaluates PeerHood on a handful of devices; E12 is the scale
//! family the spatially-indexed world opens up: a city block populated at a
//! configurable density where every device periodically scans its
//! neighbourhood, attaches to the best peer and hands over when the link
//! quality degrades below the "signal low" threshold.
//!
//! The experiment deliberately drives the `simnet` substrate with a
//! lightweight agent instead of the full middleware stack: its purpose is to
//! measure that the *world* — discovery, link checks, delivery — sustains
//! thousands of concurrent devices, which is exactly what the grid index
//! accelerates. Every reported number is deterministic in the seed.

use std::any::Any;
use std::rc::Rc;

use simnet::prelude::*;

use crate::experiments::full_stack::{metro_configs, FullStackHost, StackMode};
use crate::report::ExperimentReport;

const SCAN: TimerToken = TimerToken(0xE121);
const QCHECK: TimerToken = TimerToken(0xE122);
const PING: TimerToken = TimerToken(0xE123);

/// Settings for the E12 dense-city scale runs.
#[derive(Debug, Clone)]
pub struct ScaleSettings {
    /// Base random seed.
    pub seed: u64,
    /// Total node counts to sweep.
    pub node_counts: Vec<usize>,
    /// Device density in nodes per square kilometre; the simulated area
    /// grows with the node count so the density stays constant.
    pub density_per_km2: f64,
    /// Fraction of nodes roaming as random-waypoint pedestrians (the rest
    /// are stationary terminals).
    pub mobile_fraction: f64,
    /// Simulated duration of each run.
    pub duration: SimDuration,
    /// How often each device scans its neighbourhood.
    pub inquiry_interval: SimDuration,
    /// Which agent populates the city: the lightweight probe (byte-identical
    /// to the historical reports) or the real PeerHood middleware stack.
    pub stack: StackMode,
}

impl ScaleSettings {
    /// The sizes used to produce `EXPERIMENTS.md` (1k–10k nodes).
    pub fn full() -> Self {
        ScaleSettings {
            seed: 12,
            node_counts: vec![1_000, 2_500, 5_000, 10_000],
            density_per_km2: 2_000.0,
            mobile_fraction: 0.25,
            duration: SimDuration::from_secs(300),
            inquiry_interval: SimDuration::from_secs(8),
            stack: StackMode::Lightweight,
        }
    }

    /// A reduced variant for CI and `cargo test`.
    pub fn quick() -> Self {
        ScaleSettings {
            seed: 12,
            node_counts: vec![150, 400],
            density_per_km2: 2_000.0,
            mobile_fraction: 0.25,
            duration: SimDuration::from_secs(90),
            inquiry_interval: SimDuration::from_secs(10),
            stack: StackMode::Lightweight,
        }
    }

    /// Side length in metres of the square area holding `nodes` devices at
    /// the configured density.
    pub fn side_m(&self, nodes: usize) -> f64 {
        (nodes as f64 / self.density_per_km2 * 1_000_000.0).sqrt()
    }
}

/// A city device: scans periodically, attaches to its best-quality
/// neighbour, and hands over when the monitored quality falls below the
/// "signal low" threshold of the thesis.
///
/// Public so the `full_stack_scale` bench can measure the exact lightweight
/// agent E12 runs as the baseline of the full-stack cost budget.
pub struct CityAgent {
    inquiry_interval: SimDuration,
    /// When set, the agent also sends a small payload on its attached link
    /// at this cadence — used by the `full_stack_scale` bench so the
    /// lightweight baseline carries the same offered data load as the full
    /// stack's session pings. E12 itself never enables it (the historical
    /// reports stay byte-identical).
    ping_interval: Option<SimDuration>,
    attached: Option<(LinkId, NodeId)>,
    handover_from: Option<LinkId>,
    connecting: bool,
    last_hits: Vec<InquiryHit>,
    handovers: u64,
    drops: u64,
}

impl CityAgent {
    /// Creates the probe with the given scan cadence.
    pub fn new(inquiry_interval: SimDuration) -> Self {
        CityAgent {
            inquiry_interval,
            ping_interval: None,
            attached: None,
            handover_from: None,
            connecting: false,
            last_hits: Vec::new(),
            handovers: 0,
            drops: 0,
        }
    }

    /// Like [`CityAgent::new`], but also pinging the attached link at
    /// `ping_interval` (equal offered load for middleware-vs-probe cost
    /// comparisons).
    pub fn with_pings(inquiry_interval: SimDuration, ping_interval: SimDuration) -> Self {
        CityAgent {
            ping_interval: Some(ping_interval),
            ..CityAgent::new(inquiry_interval)
        }
    }

    /// Best candidate by quality (ties broken towards the lower id, so the
    /// choice is deterministic), excluding `except`.
    fn best_candidate(&self, except: Option<NodeId>) -> Option<InquiryHit> {
        self.last_hits
            .iter()
            .filter(|h| Some(h.node) != except)
            .max_by_key(|h| (h.quality, std::cmp::Reverse(h.node)))
            .copied()
    }
}

impl NodeAgent for CityAgent {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        // Stagger scans so the city is not phase-locked on one instant.
        let jitter_ms = ctx.rng().range(0..self.inquiry_interval.as_millis().max(1));
        ctx.schedule(SimDuration::from_millis(jitter_ms), SCAN);
        ctx.schedule(SimDuration::from_millis(5_000 + jitter_ms), QCHECK);
        if let Some(ping) = self.ping_interval {
            ctx.schedule(ping + SimDuration::from_millis(jitter_ms), PING);
        }
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: TimerToken) {
        match token {
            SCAN => {
                ctx.start_inquiry(RadioTech::Wlan);
                ctx.schedule(self.inquiry_interval, SCAN);
            }
            QCHECK => {
                if let Some((link, peer)) = self.attached {
                    let quality = ctx.link_quality(link);
                    if quality.map(|q| q < QUALITY_LOW_THRESHOLD).unwrap_or(true) && !self.connecting {
                        if let Some(target) = self.best_candidate(Some(peer)) {
                            self.handover_from = Some(link);
                            self.connecting = true;
                            ctx.connect(target.node, RadioTech::Wlan);
                        }
                    }
                }
                ctx.schedule(SimDuration::from_secs(5), QCHECK);
            }
            PING => {
                if let Some(ping) = self.ping_interval {
                    if let Some((link, _)) = self.attached {
                        let _ = ctx.send(link, b"city-ping".to_vec());
                    }
                    ctx.schedule(ping, PING);
                }
            }
            _ => {}
        }
    }
    fn on_inquiry_complete(&mut self, ctx: &mut NodeCtx<'_>, _tech: RadioTech, hits: Vec<InquiryHit>) {
        self.last_hits = hits;
        if self.attached.is_none() && !self.connecting {
            if let Some(best) = self.best_candidate(None) {
                self.connecting = true;
                ctx.connect(best.node, RadioTech::Wlan);
            }
        }
    }
    fn on_incoming_connection(&mut self, _ctx: &mut NodeCtx<'_>, _incoming: IncomingConnection) -> bool {
        true
    }
    fn on_connected(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        _attempt: AttemptId,
        link: LinkId,
        peer: NodeId,
        _tech: RadioTech,
    ) {
        self.connecting = false;
        if let Some(old) = self.handover_from.take() {
            ctx.close(old);
            self.handovers += 1;
        }
        self.attached = Some((link, peer));
    }
    fn on_connect_failed(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        _attempt: AttemptId,
        _peer: NodeId,
        _tech: RadioTech,
        _error: ConnectError,
    ) {
        self.connecting = false;
        self.handover_from = None;
    }
    fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _link: LinkId, _from: NodeId, _payload: Payload) {}
    fn on_disconnected(&mut self, _ctx: &mut NodeCtx<'_>, link: LinkId, _peer: NodeId, reason: DisconnectReason) {
        if self.handover_from == Some(link) {
            // The old link died before the handover connect resolved: the
            // in-flight attempt becomes a plain re-attach, not a handover.
            self.handover_from = None;
        }
        if self.attached.map(|(l, _)| l) == Some(link) {
            self.attached = None;
            if reason != DisconnectReason::PeerClosed {
                self.drops += 1;
            }
        }
    }
}

/// One dense-city run; returns the populated world after `duration`.
/// Honours the thread's [`telemetry`](crate::telemetry) settings.
fn city_run(settings: &ScaleSettings, nodes: usize) -> World {
    let side = settings.side_m(nodes);
    let mut config = WorldConfig::with_seed(settings.seed ^ (nodes as u64));
    // The city is WLAN-only, so size the grid cells to the WLAN range
    // instead of the 10 m Bluetooth default.
    config.grid_cell_m = config.radio.wlan.range_m;
    let mut world = World::new(config);
    let area = Rect::square(side);
    let mut placer = SimRng::new(settings.seed ^ 0xC17F ^ (nodes as u64));
    let mobile_every = if settings.mobile_fraction <= 0.0 {
        usize::MAX
    } else {
        (1.0 / settings.mobile_fraction).round().max(1.0) as usize
    };
    // Two configuration allocations (static/mobile) for the whole
    // full-stack city.
    let shared = match settings.stack {
        StackMode::Full => Some(metro_configs(settings.inquiry_interval)),
        StackMode::Lightweight => None,
    };
    for i in 0..nodes {
        let start = Point::new(placer.uniform_f64(0.0, side), placer.uniform_f64(0.0, side));
        let mobility = if i % mobile_every == 0 {
            MobilityModel::RandomWaypoint {
                area,
                start,
                min_speed_mps: 0.7,
                max_speed_mps: 2.0,
                pause: SimDuration::from_secs(20),
            }
        } else {
            MobilityModel::stationary(start)
        };
        let agent: Box<dyn NodeAgent> = match &shared {
            None => Box::new(CityAgent::new(settings.inquiry_interval)),
            Some((static_cfg, mobile_cfg)) => {
                let cfg = if i % mobile_every == 0 { mobile_cfg } else { static_cfg };
                Box::new(FullStackHost::new(Rc::clone(cfg)))
            }
        };
        world.add_node(format!("c{i}"), mobility, &[RadioTech::Wlan], agent);
    }
    let scope = format!("E12 nodes={nodes}");
    crate::telemetry::instrument_world(&mut world, &scope);
    crate::telemetry::run_world(&mut world, settings.duration, |_| {});
    crate::telemetry::finish_world(&mut world, &scope);
    world
}

/// E12 (beyond the thesis): dense-city discovery and handover at scale.
pub fn e12_dense_city(settings: &ScaleSettings) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E12",
        "Dense-city discovery and handover at scale",
        "Beyond the thesis: the spatially-indexed world sustains the paper's discovery/monitoring/\
         handover loop at city scale (1k-10k devices at constant density), where the original \
         full-scan world was quadratic in the population.",
        &[
            "nodes",
            "side (m)",
            "avg neighbors",
            "inquiries",
            "links established",
            "handovers",
            "coverage drops",
        ],
    );
    for &nodes in &settings.node_counts {
        let mut world = city_run(settings, nodes);
        let ids: Vec<NodeId> = world.node_ids().collect();
        // Ground-truth neighbourhood size, sampled over a deterministic
        // subset to keep the report cheap at 10k nodes.
        let sample: Vec<NodeId> = ids.iter().step_by((ids.len() / 100).max(1)).copied().collect();
        let avg_neighbors = sample
            .iter()
            .map(|id| world.neighbors_in_range(*id, RadioTech::Wlan).len() as f64)
            .sum::<f64>()
            / sample.len() as f64;
        let (mut handovers, mut drops) = (0u64, 0u64);
        for id in &ids {
            let counted = match settings.stack {
                StackMode::Lightweight => world.with_agent::<CityAgent, _>(*id, |a, _| (a.handovers, a.drops)),
                // Full stack: completed routing handovers from the
                // middleware counter; drops are session routes lost to
                // coverage, as classified by the host wrapper.
                StackMode::Full => world
                    .with_agent::<FullStackHost, _>(*id, |a, _| (a.node().handover_completions(), a.broken_by_range)),
            };
            if let Some((h, d)) = counted {
                handovers += h;
                drops += d;
            }
        }
        let g = world.metrics().global();
        report.push_row([
            nodes.to_string(),
            format!("{:.0}", settings.side_m(nodes)),
            ExperimentReport::f(avg_neighbors),
            g.inquiries_started.to_string(),
            g.connects_established.to_string(),
            handovers.to_string(),
            drops.to_string(),
        ]);
    }
    report.push_note(format!(
        "constant density {} nodes/km^2, {:.0}% mobile, {}s simulated per row",
        settings.density_per_km2,
        settings.mobile_fraction * 100.0,
        settings.duration.as_secs_f64()
    ));
    if settings.stack == StackMode::Full {
        report.push_note(
            "full PeerHood stack on every node (StackMode::Full): handovers are completed routing \
             handovers, drops are session routes lost to coverage"
                .to_string(),
        );
    }
    report
}
