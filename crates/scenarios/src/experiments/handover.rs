//! Experiments E7, E8 and E11: handover behaviour.

use migration::{MessagingClient, MessagingServer};
use peerhood::config::DiscoveryMode;
use peerhood::device::MobilityClass;
use peerhood::handover::HandoverTarget;
use peerhood::node::PeerHoodNode;
use simnet::prelude::*;

use crate::report::ExperimentReport;
use crate::topology::{experiment_config, spawn_app, spawn_relay, with_app};

/// E7 (Fig. 5.3): handing over to a second server restarts the task, while a
/// routing handover through a bridge preserves the session.
pub fn e07_two_server_handover(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E7",
        "Two-server handover vs. routing handover",
        "Switching to a second server providing the same service forces the whole task migration to \
         start again; keeping the original server through a bridge preserves it (Fig. 5.3-5.4).",
        &[
            "strategy",
            "task restarts",
            "route changes",
            "messages received (both servers)",
            "messages needed",
        ],
    );
    for &routing_handover in &[false, true] {
        let mut world = World::new(WorldConfig::ideal(seed + routing_handover as u64));
        let mut client_cfg = experiment_config("client", MobilityClass::Dynamic, DiscoveryMode::Dynamic);
        client_cfg.handover.enabled = routing_handover;
        // Even with routing handover disabled the middleware may reconnect to
        // another provider of the same service (the thesis' service
        // reconnection).
        client_cfg.handover.allow_service_reconnection = true;
        // The client starts next to server 1 and walks towards server 2.
        // In the routing-handover configuration (Fig. 5.4) a static bridge
        // half way keeps server 1 reachable; in the plain two-server
        // configuration (Fig. 5.3) there is no bridge, so the only option is
        // to reconnect to server 2 and start again.
        let client = spawn_app(
            &mut world,
            client_cfg,
            MobilityModel::walk_after(
                Point::new(2.0, 0.0),
                Point::new(16.0, 0.0),
                1.0,
                SimDuration::from_secs(70),
            ),
            Box::new(MessagingClient::new(
                "print",
                b"good morning!".to_vec(),
                100,
                SimDuration::from_secs(1),
                SimDuration::from_secs(50),
            )),
        );
        if routing_handover {
            let bridge_cfg = experiment_config("bridge", MobilityClass::Static, DiscoveryMode::Dynamic);
            spawn_relay(&mut world, bridge_cfg, Point::new(9.0, 0.0));
        }
        let server1 = spawn_app(
            &mut world,
            experiment_config("server1", MobilityClass::Static, DiscoveryMode::Dynamic),
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            Box::new(MessagingServer::new("print")),
        );
        let server2 = spawn_app(
            &mut world,
            experiment_config("server2", MobilityClass::Static, DiscoveryMode::Dynamic),
            MobilityModel::stationary(Point::new(22.0, 0.0)),
            Box::new(MessagingServer::new("print")),
        );
        let scope = format!(
            "E7 strategy={}",
            if routing_handover {
                "routing-handover"
            } else {
                "service-reconnection"
            }
        );
        crate::telemetry::instrument_world(&mut world, &scope);
        crate::telemetry::run_world(&mut world, SimDuration::from_secs(400), |_| {});
        crate::telemetry::finish_world(&mut world, &scope);
        let (restarts, changes) = with_app(&mut world, client, |app: &MessagingClient| {
            (app.restarts, app.connection_changes)
        })
        .unwrap();
        let received1 = with_app(&mut world, server1, MessagingServer::received_count).unwrap();
        let received2 = with_app(&mut world, server2, MessagingServer::received_count).unwrap();
        let total_sent = received1 + received2;
        report.push_row([
            if routing_handover {
                "routing handover (keep server 1)"
            } else {
                "service reconnection (switch server)"
            }
            .to_string(),
            restarts.to_string(),
            changes.to_string(),
            total_sent.to_string(),
            "100".to_string(),
        ]);
    }
    report.push_note("service reconnection re-sends work already done; routing handover keeps the original session");
    report
}

/// Result of one routing-handover run at a given artificial decay rate.
#[derive(Debug, Clone, Copy)]
pub struct HandoverRun {
    /// Quality decay in units per second.
    pub decay_per_sec: f64,
    /// Whether the handover completed before the link died.
    pub handover_completed: bool,
    /// Seconds from the first low-quality sample to handover completion.
    pub switch_seconds: Option<f64>,
    /// Messages the server received out of the 50 sent.
    pub delivered: usize,
}

/// Runs the §5.2.1 routing-handover simulation once: client B prints
/// "good morning!" 50 times on server A; the quality of the first route is
/// decremented artificially; bridge C provides the second route (Fig. 5.8).
pub fn routing_handover_run(seed: u64, decay_per_sec: f64) -> HandoverRun {
    let mut world = World::new(WorldConfig::with_seed(seed));
    // Calmer inquiry duty cycle for the realistic (asymmetric) radio model.
    let realistic = |name: &str, mobility: MobilityClass| {
        let mut cfg = experiment_config(name, mobility, DiscoveryMode::Dynamic);
        cfg.discovery.inquiry_interval = SimDuration::from_secs(15);
        cfg.discovery.max_missed_loops = 6;
        cfg
    };
    let client = spawn_app(
        &mut world,
        realistic("client-b", MobilityClass::Dynamic),
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        Box::new(MessagingClient::good_morning("print", SimDuration::from_secs(240))),
    );
    let server = spawn_app(
        &mut world,
        realistic("server-a", MobilityClass::Static),
        MobilityModel::stationary(Point::new(7.0, 0.0)),
        Box::new(MessagingServer::new("print")),
    );
    spawn_relay(
        &mut world,
        realistic("bridge-c", MobilityClass::Static),
        Point::new(3.5, 5.0),
    );
    // Let discovery converge and the client connect and start sending.
    let scope = format!("E8 decay={decay_per_sec} seed={seed}");
    crate::telemetry::instrument_world(&mut world, &scope);
    crate::telemetry::run_world(&mut world, SimDuration::from_secs(270), |_| {});
    let conn = with_app(&mut world, client, |app: &MessagingClient| app.conn).unwrap();
    let link = conn.and_then(|c| {
        world
            .with_agent::<PeerHoodNode, _>(client, |n, _| n.connection_link(c))
            .unwrap()
    });
    let link = match link {
        Some(l) => l,
        None => {
            // The initial connection itself never came up (possible under the
            // realistic fault model): report a failed run.
            crate::telemetry::finish_world(&mut world, &scope);
            return HandoverRun {
                decay_per_sec,
                handover_completed: false,
                switch_seconds: None,
                delivered: 0,
            };
        }
    };
    // Install the thesis' artificial deterioration on the first route.
    world.set_link_quality_override(link, 240.0, decay_per_sec);
    let degradation_start = world.now() + SimDuration::from_secs_f64((240.0 - 230.0) / decay_per_sec.max(0.001));
    crate::telemetry::run_world(&mut world, SimDuration::from_secs(300), |_| {});
    crate::telemetry::finish_world(&mut world, &scope);
    let (handovers, changes) = world
        .with_agent::<PeerHoodNode, _>(client, |n, _| {
            let changes = n.with_app(|app: &MessagingClient| app.connection_changes).unwrap();
            (n.handover_completions(), changes)
        })
        .unwrap();
    let delivered = with_app(&mut world, server, MessagingServer::received_count).unwrap();
    // Approximate switch latency: the largest delivery gap after degradation
    // started (the stream stalls while the new route is being built).
    let switch_seconds = with_app(&mut world, server, |app: &MessagingServer| {
        app.received
            .windows(2)
            .filter(|w| w[1].0 > degradation_start)
            .map(|w| (w[1].0 - w[0].0).as_secs_f64())
            .fold(0.0, f64::max)
    })
    .unwrap();
    HandoverRun {
        decay_per_sec,
        handover_completed: handovers > 0 || changes > 0,
        switch_seconds: if handovers > 0 { Some(switch_seconds) } else { None },
        delivered,
    }
}

/// E8 (§5.2.1, Fig. 5.5/5.8): routing handover under artificial quality decay
/// at different speeds.
pub fn e08_routing_handover(seed: u64, runs_per_rate: usize) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E8",
        "Routing handover under artificial quality decay",
        "With the quality decremented by 1/s the handover triggers after the 230 threshold and three \
         low samples and completes like a normal interconnection (4-15 s); at walking-speed decay the \
         connection is often lost before the second route is ready (§5.2.1).",
        &[
            "decay (quality/s)",
            "runs",
            "handover completed",
            "mean stall during switch (s)",
            "mean messages delivered / 50",
        ],
    );
    for &decay in &[1.0, 5.0, 15.0, 30.0] {
        let runs: Vec<HandoverRun> = (0..runs_per_rate)
            .map(|i| routing_handover_run(seed + i as u64 * 31, decay))
            .collect();
        let completed = runs.iter().filter(|r| r.handover_completed).count();
        let stalls: Vec<f64> = runs.iter().filter_map(|r| r.switch_seconds).collect();
        let mean_stall = if stalls.is_empty() {
            0.0
        } else {
            stalls.iter().sum::<f64>() / stalls.len() as f64
        };
        let mean_delivered = runs.iter().map(|r| r.delivered as f64).sum::<f64>() / runs.len() as f64;
        report.push_row([
            ExperimentReport::f(decay),
            runs.len().to_string(),
            completed.to_string(),
            ExperimentReport::f(mean_stall),
            ExperimentReport::f(mean_delivered),
        ]);
    }
    report
        .push_note("slow decay leaves enough time for the multi-second Bluetooth interconnection; fast decay does not");
    report
}

/// E11 (Fig. 5.6/5.7): the monitoring limitation — re-routing towards the
/// current link peer grows bridge chains that never shrink, unlike re-routing
/// towards the final destination.
pub fn e11_monitoring_limitation(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E11",
        "Monitoring limitation: chain growth when the client returns",
        "Because each HandoverThread only extends the path from its own position, a client that walks \
         away and comes back ends up connected through an unnecessary chain of bridges (Fig. 5.6/5.7).",
        &[
            "handover target",
            "handovers",
            "bridge pairs left active",
            "final route bridged",
        ],
    );
    for &target in &[HandoverTarget::LinkPeer, HandoverTarget::FinalDestination] {
        let mut world = World::new(WorldConfig::ideal(seed));
        let mut client_cfg = experiment_config("client", MobilityClass::Dynamic, DiscoveryMode::Dynamic);
        client_cfg.handover.target = target;
        client_cfg.handover.max_routing_attempts = 8;
        // The client walks away from the server past two bridges, then walks
        // back to where it started.
        let client = spawn_app(
            &mut world,
            client_cfg,
            MobilityModel::Waypoints {
                points: vec![
                    Point::new(2.0, 0.0),
                    Point::new(2.0, 0.0),
                    Point::new(20.0, 0.0),
                    Point::new(2.0, 0.0),
                ],
                speed_mps: 0.8,
                start_after: SimDuration::from_secs(150),
            },
            Box::new(MessagingClient::new(
                "print",
                b"good morning!".to_vec(),
                200,
                SimDuration::from_secs(1),
                SimDuration::from_secs(80),
            )),
        );
        let server = spawn_app(
            &mut world,
            experiment_config("server", MobilityClass::Static, DiscoveryMode::Dynamic),
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            Box::new(MessagingServer::new("print")),
        );
        let bridge_ids: Vec<NodeId> = [8.0, 14.0]
            .iter()
            .enumerate()
            .map(|(i, x)| {
                spawn_relay(
                    &mut world,
                    experiment_config(format!("bridge{i}"), MobilityClass::Static, DiscoveryMode::Dynamic),
                    Point::new(*x, 0.0),
                )
            })
            .collect();
        let scope = format!(
            "E11 target={}",
            match target {
                HandoverTarget::LinkPeer => "link-peer",
                HandoverTarget::FinalDestination => "final-destination",
            }
        );
        crate::telemetry::instrument_world(&mut world, &scope);
        crate::telemetry::run_world(&mut world, SimDuration::from_secs(500), |_| {});
        crate::telemetry::finish_world(&mut world, &scope);
        let handovers = world
            .with_agent::<PeerHoodNode, _>(client, |n, _| n.handover_completions())
            .unwrap();
        let pairs_left: usize = bridge_ids
            .iter()
            .map(|id| {
                world
                    .with_agent::<PeerHoodNode, _>(*id, |n, _| n.bridge_stats().0)
                    .unwrap_or(0)
            })
            .sum();
        let bridged = world
            .with_agent::<PeerHoodNode, _>(client, |n, _| {
                n.connections().first().map(|c| c.bridged).unwrap_or(false)
            })
            .unwrap();
        let _ = server;
        report.push_row([
            match target {
                HandoverTarget::LinkPeer => "link peer (thesis implementation)".to_string(),
                HandoverTarget::FinalDestination => "final destination".to_string(),
            },
            handovers.to_string(),
            pairs_left.to_string(),
            bridged.to_string(),
        ]);
    }
    report.push_note(
        "re-routing towards the link peer leaves relay state behind even after the client is back next to the server",
    );
    report
}
