//! E13 and E14: fault & churn experiments on the `simnet::faults` subsystem.
//!
//! * **E13 "churn sweep"** — session survival and reconnection latency as a
//!   function of the node churn rate (seeded crash/restart schedules from
//!   [`FaultPlan::churn`]), at populations from a hundred to thousands of
//!   devices.
//! * **E14 "blackout & flash crowd"** — a mass radio outage combined with a
//!   crash wave whose restarts all land inside a few seconds (a restart
//!   storm), measuring how attachment collapses and recovers.
//!
//! Like E12, both drive the `simnet` substrate with a lightweight agent
//! rather than the full middleware: the subject under test is the world's
//! fault engine — lifecycle correctness, determinism and scale — not the
//! PeerHood protocol (whose fault reactions are covered by the middleware
//! test suites). Every number is deterministic in the seed.

use std::any::Any;
use std::rc::Rc;

use simnet::prelude::*;

use crate::experiments::full_stack::{metro_configs, FullStackHost, StackMode};
use crate::report::ExperimentReport;

const SCAN: TimerToken = TimerToken(0xE131);

/// A device under churn: scans periodically, attaches to its best-quality
/// neighbour, and re-attaches after every loss — while counting sessions,
/// breaks and reconnection latency. Counters survive crashes (the probe is
/// the measurement instrument, not the subject), but all session state is
/// reset when the node reboots.
struct ChurnAgent {
    inquiry_interval: SimDuration,
    attached: Option<(LinkId, NodeId)>,
    connecting: bool,
    last_hits: Vec<InquiryHit>,
    /// Set when a session is lost (or the node reboots); consumed by the
    /// next successful attachment to measure reconnection latency.
    down_since: Option<SimTime>,
    sessions_established: u64,
    /// Sessions killed by churn: the peer's stack died (`PeerFailed`).
    broken_by_crash: u64,
    /// Sessions lost to geometry or radio outage (`OutOfRange`) — the
    /// background rate mobility produces even without any fault plan.
    broken_by_range: u64,
    reconnect_secs_total: f64,
    reconnects: u64,
}

impl ChurnAgent {
    fn new(inquiry_interval: SimDuration) -> Self {
        ChurnAgent {
            inquiry_interval,
            attached: None,
            connecting: false,
            last_hits: Vec::new(),
            down_since: None,
            sessions_established: 0,
            broken_by_crash: 0,
            broken_by_range: 0,
            reconnect_secs_total: 0.0,
            reconnects: 0,
        }
    }

    fn best_candidate(&self) -> Option<InquiryHit> {
        self.last_hits
            .iter()
            .max_by_key(|h| (h.quality, std::cmp::Reverse(h.node)))
            .copied()
    }
}

impl NodeAgent for ChurnAgent {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let jitter_ms = ctx.rng().range(0..self.inquiry_interval.as_millis().max(1));
        ctx.schedule(SimDuration::from_millis(jitter_ms), SCAN);
    }
    fn on_restart(&mut self, ctx: &mut NodeCtx<'_>) {
        // Reboot: session state is gone (the epoch guard already killed the
        // old timers and attempts), measurement counters persist. Time spent
        // dead does not count as reconnection latency.
        self.attached = None;
        self.connecting = false;
        self.last_hits.clear();
        self.down_since = Some(ctx.now());
        self.on_start(ctx);
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: TimerToken) {
        ctx.start_inquiry(RadioTech::Wlan);
        ctx.schedule(self.inquiry_interval, SCAN);
    }
    fn on_inquiry_complete(&mut self, ctx: &mut NodeCtx<'_>, _tech: RadioTech, hits: Vec<InquiryHit>) {
        self.last_hits = hits;
        if self.attached.is_none() && !self.connecting {
            if let Some(best) = self.best_candidate() {
                self.connecting = true;
                ctx.connect(best.node, RadioTech::Wlan);
            }
        }
    }
    fn on_incoming_connection(&mut self, _ctx: &mut NodeCtx<'_>, _incoming: IncomingConnection) -> bool {
        true
    }
    fn on_connected(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        _attempt: AttemptId,
        link: LinkId,
        peer: NodeId,
        _tech: RadioTech,
    ) {
        self.connecting = false;
        self.attached = Some((link, peer));
        self.sessions_established += 1;
        if let Some(t0) = self.down_since.take() {
            self.reconnect_secs_total += ctx.now().saturating_since(t0).as_secs_f64();
            self.reconnects += 1;
        }
    }
    fn on_connect_failed(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        _attempt: AttemptId,
        _peer: NodeId,
        _tech: RadioTech,
        _error: ConnectError,
    ) {
        self.connecting = false;
    }
    fn on_disconnected(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, _peer: NodeId, reason: DisconnectReason) {
        if self.attached.map(|(l, _)| l) == Some(link) {
            self.attached = None;
            match reason {
                DisconnectReason::PeerClosed | DisconnectReason::LocalClosed => {}
                DisconnectReason::PeerFailed => {
                    self.broken_by_crash += 1;
                    self.down_since = Some(ctx.now());
                }
                DisconnectReason::OutOfRange => {
                    self.broken_by_range += 1;
                    self.down_since = Some(ctx.now());
                }
            }
        }
    }
}

/// Settings for the E13 churn sweep.
#[derive(Debug, Clone)]
pub struct ChurnSettings {
    /// Base random seed (world, placement and fault plans all derive from
    /// it).
    pub seed: u64,
    /// Population sizes to sweep.
    pub node_counts: Vec<usize>,
    /// Churn rates to sweep, in expected crashes per node per hour. Zero is
    /// the fault-free control.
    pub churn_per_hour: Vec<f64>,
    /// Mean downtime of a crashed node.
    pub mean_downtime: SimDuration,
    /// Device density in nodes per square kilometre (area grows with the
    /// population, like E12).
    pub density_per_km2: f64,
    /// Fraction of nodes roaming as random-waypoint pedestrians.
    pub mobile_fraction: f64,
    /// Simulated duration of each cell of the sweep.
    pub duration: SimDuration,
    /// How often each device scans its neighbourhood.
    pub inquiry_interval: SimDuration,
    /// Which agent populates the city: the lightweight probe (byte-identical
    /// to the historical reports) or the real PeerHood middleware stack.
    pub stack: StackMode,
}

impl ChurnSettings {
    /// The sizes used to produce `EXPERIMENTS.md` (up to 2000 nodes).
    pub fn full() -> Self {
        ChurnSettings {
            seed: 13,
            node_counts: vec![100, 500, 2_000],
            churn_per_hour: vec![0.0, 20.0, 60.0],
            mean_downtime: SimDuration::from_secs(20),
            density_per_km2: 2_000.0,
            mobile_fraction: 0.25,
            duration: SimDuration::from_secs(600),
            inquiry_interval: SimDuration::from_secs(8),
            stack: StackMode::Lightweight,
        }
    }

    /// A reduced variant for CI and `cargo test`.
    pub fn quick() -> Self {
        ChurnSettings {
            seed: 13,
            node_counts: vec![100],
            churn_per_hour: vec![0.0, 60.0, 240.0],
            mean_downtime: SimDuration::from_secs(15),
            density_per_km2: 2_000.0,
            mobile_fraction: 0.25,
            duration: SimDuration::from_secs(150),
            inquiry_interval: SimDuration::from_secs(8),
            stack: StackMode::Lightweight,
        }
    }

    /// Side length in metres of the square area holding `nodes` devices at
    /// the configured density.
    pub fn side_m(&self, nodes: usize) -> f64 {
        (nodes as f64 / self.density_per_km2 * 1_000_000.0).sqrt()
    }
}

/// Builds the WLAN city and installs one churn plan per node (none when
/// `churn_per_hour` is zero, so the control run never touches the fault
/// engine).
fn churn_city(settings: &ChurnSettings, nodes: usize, churn_per_hour: f64) -> World {
    let side = settings.side_m(nodes);
    let mut config = WorldConfig::with_seed(settings.seed ^ (nodes as u64));
    config.grid_cell_m = config.radio.wlan.range_m;
    let mut world = World::new(config);
    let area = Rect::square(side);
    let mut placer = SimRng::new(settings.seed ^ 0xC18E ^ (nodes as u64));
    let mobile_every = if settings.mobile_fraction <= 0.0 {
        usize::MAX
    } else {
        (1.0 / settings.mobile_fraction).round().max(1.0) as usize
    };
    let shared = match settings.stack {
        StackMode::Full => Some(metro_configs(settings.inquiry_interval)),
        StackMode::Lightweight => None,
    };
    for i in 0..nodes {
        let start = Point::new(placer.uniform_f64(0.0, side), placer.uniform_f64(0.0, side));
        let mobility = if i % mobile_every == 0 {
            MobilityModel::RandomWaypoint {
                area,
                start,
                min_speed_mps: 0.7,
                max_speed_mps: 2.0,
                pause: SimDuration::from_secs(20),
            }
        } else {
            MobilityModel::stationary(start)
        };
        let agent: Box<dyn NodeAgent> = match &shared {
            None => Box::new(ChurnAgent::new(settings.inquiry_interval)),
            Some((static_cfg, mobile_cfg)) => {
                let cfg = if i % mobile_every == 0 { mobile_cfg } else { static_cfg };
                Box::new(FullStackHost::new(Rc::clone(cfg)))
            }
        };
        world.add_node(format!("c{i}"), mobility, &[RadioTech::Wlan], agent);
    }
    if churn_per_hour > 0.0 {
        let mtbf = SimDuration::from_secs_f64(3_600.0 / churn_per_hour);
        let horizon = SimTime::ZERO + settings.duration;
        let planner = SimRng::new(settings.seed ^ 0xFA17 ^ (nodes as u64) ^ churn_per_hour.to_bits());
        for (i, node) in world.node_ids().collect::<Vec<_>>().into_iter().enumerate() {
            let mut rng = planner.derive(i as u64);
            let plan = FaultPlan::churn(horizon, mtbf, settings.mean_downtime, &mut rng);
            world.install_fault_plan(node, plan);
        }
    }
    let scope = format!("E13 nodes={nodes} churn={churn_per_hour:.0}");
    crate::telemetry::instrument_world(&mut world, &scope);
    crate::telemetry::run_world(&mut world, settings.duration, |_| {});
    // Quiesce: every churn crash has a paired restart, but its exponential
    // downtime can land past the horizon — and a dead node's counters are
    // unreadable (`with_agent` returns `None` while down). Run on until the
    // last scheduled restart has fired, so the report aggregates every
    // probe's numbers instead of silently dropping the nodes that happened
    // to be mid-reboot at the horizon.
    while world.fault_stats().restarts < world.fault_stats().crashes {
        world.run_for(SimDuration::from_secs(5));
    }
    crate::telemetry::finish_world(&mut world, &scope);
    world
}

/// E13 (beyond the thesis): session survival and reconnection latency under
/// seeded node churn.
pub fn e13_churn_sweep(settings: &ChurnSettings) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E13",
        "Churn sweep: session survival under crash/restart schedules",
        "Beyond the thesis: the middleware's whole premise is surviving mobility-induced failure, \
         but the original evaluation only ever breaks links by walking out of range. E13 injects \
         seeded crash/restart churn and measures how sessions survive and how quickly devices \
         re-attach as the churn rate grows.",
        &[
            "nodes",
            "churn (/node/h)",
            "crashes",
            "restarts",
            "sessions",
            "broken by churn",
            "broken by range",
            "churn survival %",
            "mean reconnect (s)",
        ],
    );
    for &nodes in &settings.node_counts {
        for &rate in &settings.churn_per_hour {
            let mut world = churn_city(settings, nodes, rate);
            let ids: Vec<NodeId> = world.node_ids().collect();
            let (mut established, mut by_crash, mut by_range) = (0u64, 0u64, 0u64);
            let (mut latency_sum, mut latency_n) = (0.0f64, 0u64);
            for id in &ids {
                let counted = match settings.stack {
                    StackMode::Lightweight => world.with_agent::<ChurnAgent, _>(*id, |a, _| {
                        (
                            a.sessions_established,
                            a.broken_by_crash,
                            a.broken_by_range,
                            a.reconnect_secs_total,
                            a.reconnects,
                        )
                    }),
                    StackMode::Full => world.with_agent::<FullStackHost, _>(*id, |a, _| {
                        let s = a.stats();
                        (
                            s.sessions_established,
                            s.broken_by_crash,
                            s.broken_by_range,
                            s.reconnect_secs_total,
                            s.reconnects,
                        )
                    }),
                };
                if let Some((e, c, r, ls, ln)) = counted {
                    established += e;
                    by_crash += c;
                    by_range += r;
                    latency_sum += ls;
                    latency_n += ln;
                }
            }
            let stats = world.fault_stats();
            let survival = if established == 0 {
                100.0
            } else {
                100.0 * (1.0 - by_crash as f64 / established as f64)
            };
            let mean_reconnect = if latency_n == 0 {
                0.0
            } else {
                latency_sum / latency_n as f64
            };
            report.push_row([
                nodes.to_string(),
                ExperimentReport::f(rate),
                stats.crashes.to_string(),
                stats.restarts.to_string(),
                established.to_string(),
                by_crash.to_string(),
                by_range.to_string(),
                ExperimentReport::f(survival),
                ExperimentReport::f(mean_reconnect),
            ]);
        }
    }
    report.push_note(format!(
        "constant density {} nodes/km^2, {:.0}% mobile, mean downtime {}s, {}s simulated per cell; \
         zero-churn rows are the control (no fault plan installed at all)",
        settings.density_per_km2,
        settings.mobile_fraction * 100.0,
        settings.mean_downtime.as_secs(),
        settings.duration.as_secs_f64()
    ));
    if settings.stack == StackMode::Full {
        report.push_note(
            "full PeerHood stack on every node (StackMode::Full): sessions are middleware-level \
             service connections, break reasons classified at the radio layer under the session \
             route"
                .to_string(),
        );
    }
    report
}

/// Population of the E14 run per effort level.
fn e14_nodes(quick: bool) -> usize {
    if quick {
        120
    } else {
        400
    }
}

/// E14 (beyond the thesis): a mass radio blackout plus a crash wave whose
/// restarts all land within a few seconds. Runs the lightweight probe agent
/// (the historical, byte-stable variant).
pub fn e14_blackout_flash_crowd(seed: u64, quick: bool) -> ExperimentReport {
    e14_blackout_flash_crowd_with(seed, quick, StackMode::Lightweight)
}

/// E14 with an explicit [`StackMode`]: `Full` populates the block with real
/// PeerHood stacks instead of the lightweight probe.
pub fn e14_blackout_flash_crowd_with(seed: u64, quick: bool, stack: StackMode) -> ExperimentReport {
    let nodes = e14_nodes(quick);
    let settings = ChurnSettings {
        seed,
        ..ChurnSettings::quick()
    };
    let side = settings.side_m(nodes);
    let mut config = WorldConfig::with_seed(seed ^ 0xE14);
    config.grid_cell_m = config.radio.wlan.range_m;
    let mut world = World::new(config);
    let mut placer = SimRng::new(seed ^ 0xB1AC0);
    let shared = match stack {
        StackMode::Full => Some(metro_configs(settings.inquiry_interval)),
        StackMode::Lightweight => None,
    };
    for i in 0..nodes {
        let start = Point::new(placer.uniform_f64(0.0, side), placer.uniform_f64(0.0, side));
        let agent: Box<dyn NodeAgent> = match &shared {
            None => Box::new(ChurnAgent::new(settings.inquiry_interval)),
            // Every E14 device is stationary: all advertise Static.
            Some((static_cfg, _)) => Box::new(FullStackHost::new(Rc::clone(static_cfg))),
        };
        world.add_node(
            format!("b{i}"),
            MobilityModel::stationary(start),
            &[RadioTech::Wlan],
            agent,
        );
    }
    // The event: at t=120 s, 60 % of the devices lose their radio for 60 s
    // (staggered over two seconds, like a power sag rolling through a block)
    // and a further 25 % crash outright; every crashed device restarts
    // inside the same five-second window at t=180 s — the flash crowd.
    let blackout_at = SimTime::from_secs(120);
    let restart_storm = SimTime::from_secs(180);
    let mut stagger = SimRng::new(seed ^ 0x57A66);
    let ids: Vec<NodeId> = world.node_ids().collect();
    for (i, node) in ids.iter().enumerate() {
        let offset = SimDuration::from_millis(stagger.range(0u64..2_000));
        let plan = match i % 20 {
            0..=11 => FaultPlan::new().radio_outage(RadioTech::Wlan, blackout_at + offset, SimDuration::from_secs(60)),
            12..=16 => {
                let restart_offset = SimDuration::from_millis(stagger.range(0u64..5_000));
                FaultPlan::new()
                    .crash_at(blackout_at + offset)
                    .restart_at(restart_storm + restart_offset)
            }
            _ => FaultPlan::new(),
        };
        world.install_fault_plan(*node, plan);
    }

    let mut report = ExperimentReport::new(
        "E14",
        "Blackout & flash crowd: mass outage and a restart storm",
        "Beyond the thesis: 60% of a city block loses its radio at once and another 25% crashes, \
         then every crashed device reboots within five seconds. Attachment must collapse during \
         the blackout and recover once radios return and the restart storm's discovery wave \
         passes.",
        &["phase", "t (s)", "alive", "radios dark", "attached %", "open links"],
    );
    let mut sample = |world: &mut World, phase: &str| {
        let t = world.now().as_secs();
        let alive = ids.iter().filter(|id| world.is_alive(**id)).count();
        let dark = ids
            .iter()
            .filter(|id| world.is_alive(**id) && !world.radio_enabled(**id, RadioTech::Wlan))
            .count();
        let attached = ids
            .iter()
            .filter(|id| match stack {
                StackMode::Lightweight => world
                    .with_agent::<ChurnAgent, _>(**id, |a, _| a.attached.is_some())
                    .unwrap_or(false),
                StackMode::Full => world
                    .with_agent::<FullStackHost, _>(**id, |a, _| a.stats().attached)
                    .unwrap_or(false),
            })
            .count();
        let open_links = ids.iter().flat_map(|id| world.links_of(*id)).filter(|l| l.open).count() / 2;
        report.push_row([
            phase.to_string(),
            t.to_string(),
            alive.to_string(),
            dark.to_string(),
            ExperimentReport::f(100.0 * attached as f64 / ids.len() as f64),
            open_links.to_string(),
        ]);
    };
    let scope = format!("E14 nodes={nodes} stack={stack:?}");
    crate::telemetry::instrument_world(&mut world, &scope);
    world.run_until(SimTime::from_secs(115));
    sample(&mut world, "before");
    world.run_until(SimTime::from_secs(150));
    sample(&mut world, "blackout");
    world.run_until(SimTime::from_secs(300));
    sample(&mut world, "recovered");
    crate::telemetry::finish_world(&mut world, &scope);
    let stats = world.fault_stats();
    report.push_note(format!(
        "{} nodes; {} crashes, {} restarts, {} radio outages injected; every transition is in the \
         world's typed lifecycle stream ({} events)",
        nodes,
        stats.crashes,
        stats.restarts,
        stats.radio_outages,
        world.lifecycle_events().len()
    ));
    report
}
