//! The uniform [`Experiment`] trait and the E1–E19 registry.
//!
//! Every experiment of the reproduction is runnable through one interface:
//! `run(seed, params, quick)` returns both the human-readable markdown
//! [`ExperimentReport`] and a numeric [`SampleRow`] stream — the raw
//! material the `sweep` campaign engine aggregates across seeds and grid
//! points. `run_all` iterates this registry, so a new experiment registered
//! here is automatically part of the suite, the `repro` CLI and every
//! sweep.
//!
//! Implementations are zero-sized `Send + Sync` structs: a sweep worker
//! thread looks its experiment up in its own registry copy and builds the
//! (thread-local, `Rc`-based) world entirely inside the worker.

use std::collections::BTreeMap;

use simnet::prelude::SimDuration;

use crate::experiments::adversary_exp::parse_defense;
use crate::experiments::{
    e01_coverage_exclusion, e02_gnutella_traffic, e03_quality_route_selection, e04_notification_delay,
    e05_static_vs_dynamic_bridge, e06_bridge_performance, e07_two_server_handover, e08_routing_handover,
    e09_result_routing, e10_coverage_amplification, e11_monitoring_limitation, e12_dense_city, e13_churn_sweep,
    e14_blackout_flash_crowd_with, e15_full_stack_metropolis, e16_overload, e17_sharded_metropolis,
    e18_hotspot_metropolis, e19_hostile_city, AdversarySettings, ChurnSettings, Defense, DiscoverySettings,
    HotspotSettings, MetropolisSettings, OverloadSettings, ScaleSettings, ShardedSettings, StackMode,
};
use crate::report::ExperimentReport;

/// One numeric observation row from one experiment run: a stable scenario
/// key (the row's identity within the report, seed-independent by
/// construction) plus the metrics measured for it, in column order.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRow {
    /// Row identity, e.g. `"nodes=100 churn (/node/h)=60.00"`. Sweep
    /// aggregation groups samples from different seeds by this key.
    pub scenario: String,
    /// `(metric name, value)` pairs in report-column order.
    pub metrics: Vec<(String, f64)>,
}

/// Everything one experiment run produces: the markdown table and the
/// numeric samples derived from it.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The figure-level markdown table (what `repro` prints).
    pub report: ExperimentReport,
    /// The numeric samples (what `sweep` aggregates).
    pub samples: Vec<SampleRow>,
}

impl RunOutput {
    /// Builds the output from a report, deriving samples via
    /// [`samples_from_report`] with the given identity columns.
    pub fn from_report(report: ExperimentReport, key_columns: &[&str]) -> Self {
        let samples = samples_from_report(&report, key_columns);
        RunOutput { report, samples }
    }
}

/// Derives [`SampleRow`]s from a report table: the declared `key_columns`
/// form each row's scenario key (`col=cell`, joined by spaces; `"all"` when
/// none are declared), every other cell that parses as a finite `f64`
/// becomes a metric named after its column. Duplicate scenario keys get a
/// deterministic `#2`, `#3`, … suffix in row order.
pub fn samples_from_report(report: &ExperimentReport, key_columns: &[&str]) -> Vec<SampleRow> {
    let key_idx: Vec<usize> = key_columns
        .iter()
        .filter_map(|k| report.columns.iter().position(|c| c == k))
        .collect();
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    report
        .rows
        .iter()
        .map(|row| {
            let mut scenario = key_idx
                .iter()
                .filter_map(|&i| row.cells.get(i).map(|cell| format!("{}={cell}", report.columns[i])))
                .collect::<Vec<_>>()
                .join(" ");
            if scenario.is_empty() {
                scenario = "all".to_string();
            }
            let n = seen.entry(scenario.clone()).or_insert(0);
            *n += 1;
            if *n > 1 {
                scenario.push_str(&format!("#{n}"));
            }
            let metrics = report
                .columns
                .iter()
                .enumerate()
                .filter(|(i, _)| !key_idx.contains(i))
                .filter_map(|(i, col)| {
                    let value: f64 = row.cells.get(i)?.parse().ok()?;
                    value.is_finite().then(|| (col.clone(), value))
                })
                .collect();
            SampleRow { scenario, metrics }
        })
        .collect()
}

/// The value type a grid parameter accepts, used to validate `--grid`
/// values before any job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// Unsigned integer (node counts, trial counts, durations in seconds).
    USize,
    /// Floating point (rates, densities, fractions).
    F64,
    /// A [`StackMode`]: `lightweight` or `full`.
    Stack,
    /// A binary toggle: `on` or `off`.
    OnOff,
    /// A [`Defense`] tier: `off`, `sanity` or `auth`.
    Defense,
}

impl ParamKind {
    /// Validates one textual value against the kind.
    pub fn check(self, value: &str) -> Result<(), String> {
        match self {
            ParamKind::USize => value
                .parse::<usize>()
                .map(|_| ())
                .map_err(|_| format!("`{value}` is not an unsigned integer")),
            ParamKind::F64 => match value.parse::<f64>() {
                Ok(v) if v.is_finite() => Ok(()),
                _ => Err(format!("`{value}` is not a finite number")),
            },
            ParamKind::Stack => parse_stack(value)
                .map(|_| ())
                .ok_or_else(|| format!("`{value}` is not a stack mode (lightweight|full)")),
            ParamKind::OnOff => parse_on_off(value)
                .map(|_| ())
                .ok_or_else(|| format!("`{value}` is not a toggle (on|off)")),
            ParamKind::Defense => parse_defense(value)
                .map(|_| ())
                .ok_or_else(|| format!("`{value}` is not a defence tier (off|sanity|auth)")),
        }
    }
}

/// Parses an on/off toggle.
pub fn parse_on_off(value: &str) -> Option<bool> {
    match value {
        "on" => Some(true),
        "off" => Some(false),
        _ => None,
    }
}

/// Parses a [`StackMode`] name.
pub fn parse_stack(value: &str) -> Option<StackMode> {
    match value {
        "lightweight" => Some(StackMode::Lightweight),
        "full" => Some(StackMode::Full),
        _ => None,
    }
}

/// One grid-able parameter an experiment understands.
#[derive(Debug, Clone, Copy)]
pub struct ParamSpec {
    /// The `--grid key=…` name.
    pub key: &'static str,
    /// Accepted value type.
    pub kind: ParamKind,
    /// One-line description for `repro --list`.
    pub description: &'static str,
}

/// Parameter overrides for one experiment run — the expansion of one sweep
/// grid point, or empty for the defaults.
#[derive(Debug, Clone, Default)]
pub struct Params(BTreeMap<String, String>);

impl Params {
    /// The empty override set (every experiment runs its defaults).
    pub fn new() -> Self {
        Params::default()
    }

    /// Builds the set from `(key, value)` pairs (later pairs win).
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = &'a (String, String)>) -> Self {
        Params(pairs.into_iter().map(|(k, v)| (k.clone(), v.clone())).collect())
    }

    /// Sets one override.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.0.insert(key.into(), value.into());
    }

    /// Raw textual value of `key`, if set.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    /// Parsed `usize` value of `key`. Values are validated against the
    /// experiment's [`ParamSpec`]s before a run starts, so a set-but-bogus
    /// value cannot reach this point through the sweep/CLI path.
    pub fn get_usize(&self, key: &str) -> Option<usize> {
        self.get(key).and_then(|v| v.parse().ok())
    }

    /// Parsed `f64` value of `key` (see [`Params::get_usize`] on validation).
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(|v| v.parse().ok())
    }

    /// Parsed [`StackMode`] value of `key`.
    pub fn get_stack(&self, key: &str) -> Option<StackMode> {
        self.get(key).and_then(parse_stack)
    }

    /// Parsed on/off toggle value of `key`.
    pub fn get_on_off(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(parse_on_off)
    }

    /// Parsed [`Defense`] tier value of `key`.
    pub fn get_defense(&self, key: &str) -> Option<Defense> {
        self.get(key).and_then(parse_defense)
    }

    /// Seconds value of `key` as a [`SimDuration`].
    pub fn get_secs(&self, key: &str) -> Option<SimDuration> {
        self.get_usize(key).map(|s| SimDuration::from_secs(s as u64))
    }
}

/// A uniformly runnable experiment of the reproduction.
///
/// `run` must be deterministic in `(seed, params, quick)` and build every
/// world it needs internally — implementations are called from sweep worker
/// threads, so nothing thread-local (the `Rc`-based world, agents, RNGs)
/// may escape the call.
pub trait Experiment: Send + Sync {
    /// Figure-level identifier, e.g. `"E13"`.
    fn id(&self) -> &'static str;
    /// CLI name, e.g. `"churn"`.
    fn slug(&self) -> &'static str;
    /// Human-readable one-liner for `repro --list`.
    fn title(&self) -> &'static str;
    /// Grid parameters this experiment understands (may be empty).
    fn params(&self) -> &'static [ParamSpec] {
        &[]
    }
    /// Report columns forming a row's identity (the rest become metrics).
    fn key_columns(&self) -> &'static [&'static str] {
        &[]
    }
    /// The seed this experiment historically runs with inside the full
    /// suite. Most experiments follow the suite seed; the settings-driven
    /// families (E1, E12, E13, E15) pin their own, which keeps `run_all`
    /// byte-identical to the pre-registry entry points.
    fn suite_seed(&self, suite: u64) -> u64 {
        suite
    }
    /// Runs the experiment: builds its worlds, measures, and returns the
    /// report plus numeric samples.
    fn run(&self, seed: u64, params: &Params, quick: bool) -> RunOutput;
}

macro_rules! experiment {
    ($name:ident, $id:literal, $slug:literal, $title:literal, keys: [$($key:literal),*],
     params: [$(($pkey:literal, $pkind:expr, $pdesc:literal)),*],
     $(suite_seed: $suite:expr,)?
     run: $run:expr) => {
        /// Registry entry (see the struct's `title()` for what it measures).
        pub struct $name;
        impl Experiment for $name {
            fn id(&self) -> &'static str {
                $id
            }
            fn slug(&self) -> &'static str {
                $slug
            }
            fn title(&self) -> &'static str {
                $title
            }
            fn key_columns(&self) -> &'static [&'static str] {
                &[$($key),*]
            }
            fn params(&self) -> &'static [ParamSpec] {
                &[$(ParamSpec { key: $pkey, kind: $pkind, description: $pdesc }),*]
            }
            $(fn suite_seed(&self, suite: u64) -> u64 {
                let _ = suite;
                $suite
            })?
            fn run(&self, seed: u64, params: &Params, quick: bool) -> RunOutput {
                let _ = (&params, quick);
                #[allow(clippy::redundant_closure_call)]
                let report: ExperimentReport = $run(seed, params, quick);
                RunOutput::from_report(report, self.key_columns())
            }
        }
    };
}

experiment!(
    E01Coverage,
    "E1",
    "coverage",
    "Coverage exclusion vs. discovery algorithm",
    keys: ["nodes"],
    params: [("convergence_s", ParamKind::USize, "simulated seconds the network converges for")],
    suite_seed: 1,
    run: |seed, params: &Params, quick| {
        let mut settings = if quick {
            DiscoverySettings::quick()
        } else {
            DiscoverySettings::default()
        };
        settings.seed = seed;
        if let Some(c) = params.get_secs("convergence_s") {
            settings.convergence = c;
        }
        e01_coverage_exclusion(&settings)
    }
);

experiment!(
    E02Gnutella,
    "E2",
    "gnutella",
    "Gnutella flooding vs. PeerHood discovery traffic",
    keys: ["nodes"],
    params: [],
    run: |seed, _params, _quick| e02_gnutella_traffic(seed)
);

experiment!(
    E03Routes,
    "E3",
    "routes",
    "Link-quality route selection (threshold rule)",
    keys: ["route"],
    params: [],
    run: |_seed, _params, _quick| e03_quality_route_selection()
);

experiment!(
    E04Notification,
    "E4",
    "notification",
    "Maximum change-notification delay vs. jump count",
    keys: ["jumps"],
    params: [("jumps", ParamKind::USize, "maximum jump count to sweep")],
    run: |seed, params: &Params, quick| {
        let jumps = params.get_usize("jumps").unwrap_or(if quick { 2 } else { 3 });
        e04_notification_delay(seed, jumps)
    }
);

experiment!(
    E05BridgeChoice,
    "E5",
    "bridge-choice",
    "Static vs. dynamic devices as bridge",
    keys: ["bridge mobility"],
    params: [],
    run: |seed, _params, _quick| e05_static_vs_dynamic_bridge(seed)
);

experiment!(
    E06BridgePerf,
    "E6",
    "bridge-perf",
    "Bridge connection performance",
    keys: [],
    params: [("trials", ParamKind::USize, "connection trials to run")],
    run: |seed, params: &Params, quick| {
        let trials = params.get_usize("trials").unwrap_or(if quick { 4 } else { 10 });
        e06_bridge_performance(seed, trials)
    }
);

experiment!(
    E07TwoServer,
    "E7",
    "two-server",
    "Two-server handover vs. routing handover",
    keys: ["strategy"],
    params: [],
    run: |seed, _params, _quick| e07_two_server_handover(seed)
);

experiment!(
    E08RoutingHandover,
    "E8",
    "routing-handover",
    "Routing handover under artificial quality decay",
    keys: ["decay (quality/s)"],
    params: [("runs", ParamKind::USize, "runs per decay rate")],
    run: |seed, params: &Params, quick| {
        let runs = params.get_usize("runs").unwrap_or(if quick { 1 } else { 3 });
        e08_routing_handover(seed, runs)
    }
);

experiment!(
    E09ResultRouting,
    "E9",
    "result-routing",
    "Result routing across the three package-count regimes",
    keys: ["regime"],
    params: [],
    run: |seed, _params, _quick| e09_result_routing(seed)
);

experiment!(
    E10Amplification,
    "E10",
    "amplification",
    "Coverage amplification through a tunnel",
    keys: ["bridge chain"],
    params: [],
    run: |seed, _params, _quick| e10_coverage_amplification(seed)
);

experiment!(
    E11Monitoring,
    "E11",
    "monitoring",
    "Monitoring limitation: chain growth when the client returns",
    keys: ["handover target"],
    params: [],
    run: |seed, _params, _quick| e11_monitoring_limitation(seed)
);

experiment!(
    E12Scale,
    "E12",
    "scale",
    "Dense-city discovery and handover at scale",
    keys: ["nodes"],
    params: [
        ("nodes", ParamKind::USize, "city population (replaces the node-count sweep)"),
        ("density", ParamKind::F64, "devices per square kilometre"),
        ("mobile_fraction", ParamKind::F64, "fraction of roaming pedestrians"),
        ("duration_s", ParamKind::USize, "simulated seconds per run"),
        ("stack", ParamKind::Stack, "lightweight probe or full PeerHood stack")
    ],
    suite_seed: 12,
    run: |seed, params: &Params, quick| {
        let mut settings = if quick { ScaleSettings::quick() } else { ScaleSettings::full() };
        settings.seed = seed;
        apply_city_params(
            params,
            &mut settings.node_counts,
            &mut settings.density_per_km2,
            &mut settings.mobile_fraction,
            &mut settings.duration,
            Some(&mut settings.stack),
        );
        e12_dense_city(&settings)
    }
);

experiment!(
    E13Churn,
    "E13",
    "churn",
    "Churn sweep: session survival under crash/restart schedules",
    keys: ["nodes", "churn (/node/h)"],
    params: [
        ("nodes", ParamKind::USize, "city population (replaces the node-count sweep)"),
        ("churn", ParamKind::F64, "crashes per node per hour (replaces the rate sweep)"),
        ("density", ParamKind::F64, "devices per square kilometre"),
        ("mobile_fraction", ParamKind::F64, "fraction of roaming pedestrians"),
        ("duration_s", ParamKind::USize, "simulated seconds per cell"),
        ("downtime_s", ParamKind::USize, "mean downtime of a crashed node"),
        ("stack", ParamKind::Stack, "lightweight probe or full PeerHood stack")
    ],
    suite_seed: 13,
    run: |seed, params: &Params, quick| {
        let mut settings = if quick { ChurnSettings::quick() } else { ChurnSettings::full() };
        settings.seed = seed;
        apply_city_params(
            params,
            &mut settings.node_counts,
            &mut settings.density_per_km2,
            &mut settings.mobile_fraction,
            &mut settings.duration,
            Some(&mut settings.stack),
        );
        if let Some(rate) = params.get_f64("churn") {
            settings.churn_per_hour = vec![rate];
        }
        if let Some(d) = params.get_secs("downtime_s") {
            settings.mean_downtime = d;
        }
        e13_churn_sweep(&settings)
    }
);

experiment!(
    E14Blackout,
    "E14",
    "blackout",
    "Blackout & flash crowd: mass outage and a restart storm",
    keys: ["phase", "t (s)"],
    params: [("stack", ParamKind::Stack, "lightweight probe or full PeerHood stack")],
    run: |seed, params: &Params, quick| {
        let stack = params.get_stack("stack").unwrap_or(StackMode::Lightweight);
        e14_blackout_flash_crowd_with(seed, quick, stack)
    }
);

experiment!(
    E15Metropolis,
    "E15",
    "metropolis",
    "Full-stack metropolis: real middleware on thousands of nodes",
    keys: ["nodes"],
    params: [
        ("nodes", ParamKind::USize, "city population (every node runs the full stack)"),
        ("density", ParamKind::F64, "devices per square kilometre"),
        ("churn", ParamKind::F64, "crashes per churning node per hour"),
        ("mobile_fraction", ParamKind::F64, "fraction of roaming pedestrians"),
        ("duration_s", ParamKind::USize, "simulated seconds")
    ],
    suite_seed: 15,
    run: |seed, params: &Params, quick| {
        let mut settings = if quick {
            MetropolisSettings::quick()
        } else {
            MetropolisSettings::full()
        };
        settings.seed = seed;
        if let Some(n) = params.get_usize("nodes") {
            settings.nodes = n;
        }
        if let Some(d) = params.get_f64("density") {
            settings.density_per_km2 = d;
        }
        if let Some(rate) = params.get_f64("churn") {
            settings.churn_per_hour = rate;
        }
        if let Some(m) = params.get_f64("mobile_fraction") {
            settings.mobile_fraction = m;
        }
        if let Some(d) = params.get_secs("duration_s") {
            settings.duration = d;
        }
        e15_full_stack_metropolis(&settings)
    }
);

experiment!(
    E16Overload,
    "E16",
    "overload",
    "Overload city: flash crowd with/without the resilience pipeline",
    keys: ["resilience"],
    params: [
        ("resilience", ParamKind::OnOff, "run only one pipeline mode (default: an off row and an on row)"),
        ("clients", ParamKind::USize, "crowd size (half near each hotspot)"),
        ("duration_s", ParamKind::USize, "simulated seconds per mode")
    ],
    suite_seed: 16,
    run: |seed, params: &Params, quick| {
        let mut settings = if quick {
            OverloadSettings::quick()
        } else {
            OverloadSettings::full()
        };
        settings.seed = seed;
        if let Some(n) = params.get_usize("clients") {
            settings.clients = n;
        }
        if let Some(d) = params.get_secs("duration_s") {
            settings.duration = d;
        }
        let modes: Vec<bool> = match params.get_on_off("resilience") {
            Some(mode) => vec![mode],
            None => vec![false, true],
        };
        e16_overload(&settings, &modes)
    }
);

experiment!(
    E17ShardedMetropolis,
    "E17",
    "sharded-metropolis",
    "Sharded metropolis: deterministic intra-run parallelism at 100k+ nodes",
    keys: ["nodes"],
    params: [
        ("shards", ParamKind::USize, "worker threads (wall-clock only; results are shard-invariant)"),
        ("nodes", ParamKind::USize, "city population"),
        ("density", ParamKind::F64, "devices per square kilometre"),
        ("churn", ParamKind::F64, "crashes per churning node per hour"),
        ("mobile_fraction", ParamKind::F64, "fraction of roaming pedestrians"),
        ("duration_s", ParamKind::USize, "simulated seconds")
    ],
    suite_seed: 17,
    run: |seed, params: &Params, quick| {
        let mut settings = if quick {
            ShardedSettings::quick()
        } else {
            ShardedSettings::full()
        };
        settings.seed = seed;
        if let Some(s) = params.get_usize("shards") {
            settings.shards = s.max(1);
        }
        if let Some(n) = params.get_usize("nodes") {
            settings.nodes = n;
        }
        if let Some(d) = params.get_f64("density") {
            settings.density_per_km2 = d;
        }
        if let Some(rate) = params.get_f64("churn") {
            settings.churn_per_hour = rate;
        }
        if let Some(m) = params.get_f64("mobile_fraction") {
            settings.mobile_fraction = m;
        }
        if let Some(d) = params.get_secs("duration_s") {
            settings.duration = d;
        }
        e17_sharded_metropolis(&settings)
    }
);

experiment!(
    E18HotspotMetropolis,
    "E18",
    "hotspot",
    "Hotspot metropolis: a flash crowd against the load-balanced sharded world",
    keys: ["nodes"],
    params: [
        ("shards", ParamKind::USize, "worker threads (wall-clock only; results are shard-invariant)"),
        ("adaptive", ParamKind::OnOff, "density-adaptive stripe rebalancing (wall-clock only)"),
        ("imbalance", ParamKind::F64, "max/mean load ratio that arms a re-cut (wall-clock only)"),
        ("patience", ParamKind::USize, "over-threshold windows before a re-cut fires (wall-clock only)"),
        ("nodes", ParamKind::USize, "city population"),
        ("density", ParamKind::F64, "overall devices per square kilometre"),
        ("crowd_fraction", ParamKind::F64, "fraction of nodes milling inside the hotspot district"),
        ("duration_s", ParamKind::USize, "simulated seconds")
    ],
    suite_seed: 18,
    run: |seed, params: &Params, quick| {
        let mut settings = if quick {
            HotspotSettings::quick()
        } else {
            HotspotSettings::full()
        };
        settings.seed = seed;
        if let Some(s) = params.get_usize("shards") {
            settings.shards = s.max(1);
        }
        if let Some(a) = params.get_on_off("adaptive") {
            settings.adaptive = a;
        }
        if let Some(r) = params.get_f64("imbalance") {
            settings.imbalance_threshold = r.max(1.0);
        }
        if let Some(p) = params.get_usize("patience") {
            settings.patience = p.max(1) as u32;
        }
        if let Some(n) = params.get_usize("nodes") {
            settings.nodes = n;
        }
        if let Some(d) = params.get_f64("density") {
            settings.density_per_km2 = d;
        }
        if let Some(c) = params.get_f64("crowd_fraction") {
            settings.crowd_fraction = c.clamp(0.0, 1.0);
        }
        if let Some(d) = params.get_secs("duration_s") {
            settings.duration = d;
        }
        e18_hotspot_metropolis(&settings)
    }
);

experiment!(
    E19HostileCity,
    "E19",
    "adversary",
    "Hostile city: partitions and Byzantine insiders vs. the defence tiers",
    keys: ["defenses"],
    params: [
        ("defenses", ParamKind::Defense, "run only one tier (default: off, sanity and auth rows)"),
        ("clients", ParamKind::USize, "honest crowd size"),
        ("hostiles", ParamKind::USize, "compromised insiders planted in the crowd"),
        ("duration_s", ParamKind::USize, "simulated seconds per tier")
    ],
    suite_seed: 19,
    run: |seed, params: &Params, quick| {
        let mut settings = if quick {
            AdversarySettings::quick()
        } else {
            AdversarySettings::full()
        };
        settings.seed = seed;
        if let Some(n) = params.get_usize("clients") {
            settings.clients = n;
        }
        if let Some(h) = params.get_usize("hostiles") {
            settings.hostiles = h;
        }
        if let Some(d) = params.get_secs("duration_s") {
            settings.duration = d;
        }
        let defenses: Vec<Defense> = match params.get_defense("defenses") {
            Some(tier) => vec![tier],
            None => Defense::ALL.to_vec(),
        };
        e19_hostile_city(&settings, &defenses)
    }
);

/// Applies the shared city-family overrides (E12/E13): population, density,
/// mobile fraction, duration and stack mode.
fn apply_city_params(
    params: &Params,
    node_counts: &mut Vec<usize>,
    density: &mut f64,
    mobile_fraction: &mut f64,
    duration: &mut SimDuration,
    stack: Option<&mut StackMode>,
) {
    if let Some(n) = params.get_usize("nodes") {
        *node_counts = vec![n];
    }
    if let Some(d) = params.get_f64("density") {
        *density = d;
    }
    if let Some(m) = params.get_f64("mobile_fraction") {
        *mobile_fraction = m;
    }
    if let Some(d) = params.get_secs("duration_s") {
        *duration = d;
    }
    if let (Some(slot), Some(mode)) = (stack, params.get_stack("stack")) {
        *slot = mode;
    }
}

/// Every experiment of the reproduction, in E1–E19 order.
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(E01Coverage),
        Box::new(E02Gnutella),
        Box::new(E03Routes),
        Box::new(E04Notification),
        Box::new(E05BridgeChoice),
        Box::new(E06BridgePerf),
        Box::new(E07TwoServer),
        Box::new(E08RoutingHandover),
        Box::new(E09ResultRouting),
        Box::new(E10Amplification),
        Box::new(E11Monitoring),
        Box::new(E12Scale),
        Box::new(E13Churn),
        Box::new(E14Blackout),
        Box::new(E15Metropolis),
        Box::new(E16Overload),
        Box::new(E17ShardedMetropolis),
        Box::new(E18HotspotMetropolis),
        Box::new(E19HostileCity),
    ]
}

/// Looks an experiment up by slug or id, case-insensitively.
pub fn find(name: &str) -> Option<Box<dyn Experiment>> {
    registry()
        .into_iter()
        .find(|e| e.slug().eq_ignore_ascii_case(name) || e.id().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ExperimentReport;

    #[test]
    fn registry_has_nineteen_unique_experiments() {
        let reg = registry();
        assert_eq!(reg.len(), 19);
        let mut slugs: Vec<&str> = reg.iter().map(|e| e.slug()).collect();
        let mut ids: Vec<&str> = reg.iter().map(|e| e.id()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(slugs.len(), 19, "slugs must be unique");
        assert_eq!(ids.len(), 19, "ids must be unique");
        assert_eq!(reg[12].id(), "E13");
        assert_eq!(reg[12].slug(), "churn");
        assert_eq!(reg[15].id(), "E16");
        assert_eq!(reg[15].slug(), "overload");
        assert_eq!(reg[16].id(), "E17");
        assert_eq!(reg[16].slug(), "sharded-metropolis");
        assert_eq!(reg[17].id(), "E18");
        assert_eq!(reg[17].slug(), "hotspot");
        assert_eq!(reg[18].id(), "E19");
        assert_eq!(reg[18].slug(), "adversary");
    }

    #[test]
    fn find_resolves_slug_and_id() {
        assert_eq!(find("churn").unwrap().id(), "E13");
        assert_eq!(find("e13").unwrap().slug(), "churn");
        assert_eq!(find("METROPOLIS").unwrap().id(), "E15");
        assert!(find("nope").is_none());
    }

    #[test]
    fn samples_keep_key_columns_as_identity_and_numbers_as_metrics() {
        let mut r = ExperimentReport::new("E0", "demo", "claim", &["nodes", "kind", "sessions", "survival %"]);
        r.push_row(["100", "a", "17", "98.50"]);
        r.push_row(["100", "b", "abc", "77.00"]);
        let samples = samples_from_report(&r, &["nodes", "kind"]);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].scenario, "nodes=100 kind=a");
        assert_eq!(
            samples[0].metrics,
            vec![("sessions".to_string(), 17.0), ("survival %".to_string(), 98.5)]
        );
        // Non-numeric cells outside the key columns are skipped, not keyed.
        assert_eq!(samples[1].metrics, vec![("survival %".to_string(), 77.0)]);
    }

    #[test]
    fn duplicate_scenarios_get_deterministic_suffixes() {
        let mut r = ExperimentReport::new("E0", "demo", "claim", &["phase", "v"]);
        r.push_row(["warm", "1"]);
        r.push_row(["warm", "2"]);
        r.push_row(["cool", "3"]);
        let samples = samples_from_report(&r, &["phase"]);
        let keys: Vec<&str> = samples.iter().map(|s| s.scenario.as_str()).collect();
        assert_eq!(keys, vec!["phase=warm", "phase=warm#2", "phase=cool"]);
    }

    #[test]
    fn rows_without_key_columns_fall_back_to_all() {
        let mut r = ExperimentReport::new("E0", "demo", "claim", &["v"]);
        r.push_row(["4"]);
        let samples = samples_from_report(&r, &[]);
        assert_eq!(samples[0].scenario, "all");
        assert_eq!(samples[0].metrics, vec![("v".to_string(), 4.0)]);
    }

    #[test]
    fn param_kind_validation() {
        assert!(ParamKind::USize.check("42").is_ok());
        assert!(ParamKind::USize.check("-1").is_err());
        assert!(ParamKind::F64.check("2.5").is_ok());
        assert!(ParamKind::F64.check("inf").is_err());
        assert!(ParamKind::Stack.check("full").is_ok());
        assert!(ParamKind::Stack.check("Full").is_err());
        assert!(ParamKind::OnOff.check("on").is_ok());
        assert!(ParamKind::OnOff.check("off").is_ok());
        assert!(ParamKind::OnOff.check("true").is_err());
        assert!(ParamKind::Defense.check("off").is_ok());
        assert!(ParamKind::Defense.check("sanity").is_ok());
        assert!(ParamKind::Defense.check("auth").is_ok());
        assert!(ParamKind::Defense.check("Auth").is_err());
    }
}
