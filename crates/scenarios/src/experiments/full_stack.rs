//! Full-stack scale machinery: run the **real PeerHood middleware** — not a
//! lightweight stand-in agent — on every node of the E12–E15 city worlds.
//!
//! The scale experiments historically drove the `simnet` substrate with
//! purpose-built probe agents because the full stack was too
//! allocation-heavy per node. After the zero-copy frame / shared-payload /
//! allocation-lean-storage refactor the real [`PeerHoodNode`] host is cheap
//! enough to populate thousand-node cities, so each experiment family gains
//! a [`StackMode`] knob:
//!
//! * [`StackMode::Lightweight`] — the original probe agents, byte-identical
//!   to the pre-refactor reports (the re-baseline mode),
//! * [`StackMode::Full`] — every node hosts a full middleware stack (daemon,
//!   discovery plugins, engine, connection table, handover machinery) plus a
//!   small [`MetroApp`] that registers a `"metro"` service, attaches to the
//!   best provider dynamic discovery finds, and keeps the session alive with
//!   periodic pings.
//!
//! [`FullStackHost`] wraps the [`PeerHoodNode`] so experiments can still
//! classify *why* a session's route broke (crash vs. range — information the
//! application-level callbacks deliberately do not expose) by observing the
//! radio-level disconnect reasons under the app's current session link.

use std::any::Any;
use std::rc::Rc;

use peerhood::application::Application;
use peerhood::config::{DiscoveryMode, PeerHoodConfig};
use peerhood::error::PeerHoodError;
use peerhood::ids::{ConnectionId, DeviceAddress};
use peerhood::node::{PeerHoodApi, PeerHoodNode};
use peerhood::service::ServiceInfo;
use simnet::prelude::*;

/// Which agent populates a scale experiment's nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackMode {
    /// The original lightweight probe agent (reports byte-identical to the
    /// pre-refactor baselines).
    Lightweight,
    /// The real `PeerHoodNode` middleware stack on every node.
    Full,
}

/// Name of the service every metropolis node registers and consumes.
pub const METRO_SERVICE: &str = "metro";

const PING_TIMER: u64 = 0x3E70;

/// The two shared node configurations of a full-stack city — one for
/// stationary terminals, one for pedestrians — differing only in the
/// advertised [`MobilityClass`](peerhood::device::MobilityClass). Truthful
/// classes matter at scale: the §3.4.3 route ranking prefers static
/// providers, so sessions anchor on terminals that stay put instead of
/// churning through passing pedestrians. Build once per world and share the
/// matching `Rc` with every node via
/// [`PeerHoodNodeBuilder::config_shared`](peerhood::node::PeerHoodNodeBuilder::config_shared).
pub fn metro_configs(inquiry_interval: SimDuration) -> (Rc<PeerHoodConfig>, Rc<PeerHoodConfig>) {
    let static_cfg = metro_config_with(inquiry_interval, peerhood::device::MobilityClass::Static);
    let mut mobile = (*static_cfg).clone();
    mobile.mobility = peerhood::device::MobilityClass::Dynamic;
    (static_cfg, Rc::new(mobile))
}

/// The shared node configuration of a full-stack city node advertising
/// [`MobilityClass::Static`](peerhood::device::MobilityClass::Static) (see
/// [`metro_configs`] for the static/mobile pair).
pub fn metro_config(inquiry_interval: SimDuration) -> Rc<PeerHoodConfig> {
    metro_config_with(inquiry_interval, peerhood::device::MobilityClass::Static)
}

fn metro_config_with(inquiry_interval: SimDuration, mobility: peerhood::device::MobilityClass) -> Rc<PeerHoodConfig> {
    let mut cfg = PeerHoodConfig::new("metro", mobility);
    cfg.techs = vec![RadioTech::Wlan];
    cfg.discovery.mode = DiscoveryMode::TwoHop;
    cfg.discovery.inquiry_interval = inquiry_interval;
    cfg.discovery.service_check_interval = SimDuration::from_secs(300);
    // Pedestrians drift in and out of each other's 50 m disc on a ~minute
    // timescale; the default 5-loop retention (~50 s) would age a neighbour
    // out just in time to pay a full information fetch on re-encounter.
    // Twelve loops (~2 min) keep the storage warm across those excursions,
    // so re-meeting a known device costs a `mark_responded`, not a fetch.
    cfg.discovery.max_missed_loops = 12;
    // Export only the direct neighbourhood (the classic §3.1 fetch): at
    // metropolis density a node's two-hop vision covers dozens of devices,
    // and re-shipping the whole storage in every fetch response is what the
    // original per-node cost drowned in. Zero-jump exports still carry the
    // responder's ~15 direct neighbours — the requester learns them as
    // 1-jump routes and handover candidates populate exactly as before —
    // but responses shrink ~4x.
    cfg.discovery.max_export_jumps = 0;
    cfg.monitor.interval = SimDuration::from_secs(10);
    // The thesis' 230 "signal low" threshold is calibrated to its Bluetooth
    // quality curve; on the WLAN profile (plateau to 15 m, 180 at the 50 m
    // edge) 230 already trips at ~35 m and every mid-range session hands
    // over forever, growing bridge chains. 190 means "approaching the
    // coverage edge" on this curve (~46 m), which restores the intended
    // semantics: hand over when the link is about to die.
    cfg.monitor.quality_threshold = 190;
    // One routing attempt, then fall back to reconnecting directly to
    // another provider: in a uniform city a direct re-route to a nearer
    // peer beats growing a relay chain, and every avoided bridge is one
    // less pair of links to check, relay through and eventually break.
    cfg.handover.max_routing_attempts = 1;
    Rc::new(cfg)
}

/// The application of a full-stack city node: every device both offers and
/// consumes the [`METRO_SERVICE`], mirroring the lightweight probes'
/// attach-to-best-neighbour behaviour through the real middleware API.
#[derive(Default)]
pub struct MetroApp {
    /// The session this node currently drives as a client.
    current: Option<ConnectionId>,
    connecting: bool,
    /// Set when the session is lost; consumed by the next establishment to
    /// measure reconnection latency. Survives restarts (the app is the
    /// measurement instrument).
    down_since: Option<SimTime>,
    /// Client sessions established (first connects, service reconnections
    /// and re-attachments after loss).
    pub sessions_established: u64,
    /// App-level session losses the middleware could not recover.
    pub sessions_lost: u64,
    /// Completed route changes observed on the live session (routing
    /// handover / re-attachment).
    pub route_changes: u64,
    /// Pings sent on the session.
    pub pings_sent: u64,
    /// Payloads received (pings served plus echoes).
    pub payloads_received: u64,
    /// Total reconnection latency across all samples.
    pub reconnect_secs_total: f64,
    /// Number of latency samples in `reconnect_secs_total`.
    pub reconnects: u64,
}

impl MetroApp {
    fn try_attach(&mut self, api: &mut PeerHoodApi<'_, '_>) {
        if self.current.is_some() || self.connecting {
            return;
        }
        if let Ok(conn) = api.connect_to_service(METRO_SERVICE) {
            self.current = Some(conn);
            self.connecting = true;
        }
    }

    /// True while the node holds an established client session.
    pub fn attached(&self) -> bool {
        self.current.is_some() && !self.connecting
    }

    /// The client session this app currently drives, if any.
    pub fn current_conn(&self) -> Option<ConnectionId> {
        self.current
    }
}

impl Application for MetroApp {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn on_start(&mut self, api: &mut PeerHoodApi<'_, '_>) {
        // A restart reaches here too (the reborn daemon re-runs app
        // start-up): session state is gone with the old core.
        self.current = None;
        self.connecting = false;
        let _ = api.register_service(ServiceInfo::new(METRO_SERVICE, "v1", 7));
        api.schedule_timer(SimDuration::from_secs(10), PING_TIMER);
    }

    fn on_device_discovered(&mut self, api: &mut PeerHoodApi<'_, '_>, _address: DeviceAddress) {
        self.try_attach(api);
    }

    fn on_connected(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId) {
        if self.current == Some(conn) {
            self.connecting = false;
            self.sessions_established += 1;
            if let Some(t0) = self.down_since.take() {
                self.reconnect_secs_total += api.now().saturating_since(t0).as_secs_f64();
                self.reconnects += 1;
            }
        }
    }

    fn on_connect_failed(&mut self, _api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, _error: PeerHoodError) {
        if self.current == Some(conn) {
            self.current = None;
            self.connecting = false;
        }
    }

    fn on_data(&mut self, _api: &mut PeerHoodApi<'_, '_>, _conn: ConnectionId, _payload: Vec<u8>) {
        self.payloads_received += 1;
    }

    fn on_disconnected(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, _graceful: bool) {
        if self.current == Some(conn) {
            self.current = None;
            self.connecting = false;
            self.sessions_lost += 1;
            self.down_since = Some(api.now());
        }
    }

    fn on_connection_changed(&mut self, _api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId) {
        if self.current == Some(conn) {
            self.route_changes += 1;
        }
    }

    fn on_reconnect_required(
        &mut self,
        _api: &mut PeerHoodApi<'_, '_>,
        _conn: ConnectionId,
        _candidates: &[DeviceAddress],
    ) -> bool {
        // Decline the middleware-driven provider switch: in a uniform city
        // every node offers the service, so re-attaching lazily on the next
        // ping tick picks the *best* provider known then (the same lazy
        // re-attach the lightweight probes use) instead of cascading
        // connects through the candidate list right now.
        false
    }

    fn on_service_reconnected(&mut self, api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, _provider: DeviceAddress) {
        if self.current == Some(conn) {
            self.connecting = false;
            self.sessions_established += 1;
            if let Some(t0) = self.down_since.take() {
                self.reconnect_secs_total += api.now().saturating_since(t0).as_secs_f64();
                self.reconnects += 1;
            }
        }
    }

    fn on_timer(&mut self, api: &mut PeerHoodApi<'_, '_>, token: u64) {
        if token != PING_TIMER {
            return;
        }
        match self.current {
            Some(conn) if !self.connecting => {
                if api.send(conn, b"metro-ping".to_vec()).is_ok() {
                    self.pings_sent += 1;
                }
            }
            _ => self.try_attach(api),
        }
        api.schedule_timer(SimDuration::from_secs(10), PING_TIMER);
    }
}

/// Aggregated per-node counters of a full-stack city node.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullStats {
    /// Client sessions established.
    pub sessions_established: u64,
    /// Session routes broken because the peer's stack died.
    pub broken_by_crash: u64,
    /// Session routes broken by coverage/radio loss.
    pub broken_by_range: u64,
    /// Completed routing handovers (middleware counter).
    pub handover_completions: u64,
    /// Route changes observed by the application.
    pub route_changes: u64,
    /// Total reconnection latency and sample count.
    pub reconnect_secs_total: f64,
    /// Number of latency samples in `reconnect_secs_total`.
    pub reconnects: u64,
    /// Pings sent / payloads received by the app.
    pub pings_sent: u64,
    /// Payloads the app received.
    pub payloads_received: u64,
    /// True if the node currently holds an established session.
    pub attached: bool,
}

/// A city node running the full middleware: delegates every radio event to
/// the inner [`PeerHoodNode`] and, around the delegation, classifies session
/// route breaks by their radio-level [`DisconnectReason`] — the one piece of
/// information the application callbacks do not carry.
pub struct FullStackHost {
    node: PeerHoodNode,
    /// Session route breaks: the peer's stack died.
    pub broken_by_crash: u64,
    /// Session route breaks: coverage or radio loss.
    pub broken_by_range: u64,
}

impl FullStackHost {
    /// Builds a city node sharing `config` with the rest of the fleet.
    pub fn new(config: Rc<PeerHoodConfig>) -> Self {
        FullStackHost {
            node: PeerHoodNode::builder()
                .config_shared(config)
                .app(MetroApp::default())
                .build(),
            broken_by_crash: 0,
            broken_by_range: 0,
        }
    }

    /// The wrapped middleware node.
    pub fn node(&self) -> &PeerHoodNode {
        &self.node
    }

    /// The radio link currently carrying the app's session, if any.
    fn session_link(&self) -> Option<LinkId> {
        let conn = self.node.with_app(|a: &MetroApp| a.current_conn()).flatten()?;
        self.node.connection_link(conn)
    }

    /// Aggregated counters for experiment reports.
    pub fn stats(&self) -> FullStats {
        let app = |f: &dyn Fn(&MetroApp) -> u64| self.node.with_app(|a: &MetroApp| f(a)).unwrap_or(0);
        FullStats {
            sessions_established: app(&|a| a.sessions_established),
            broken_by_crash: self.broken_by_crash,
            broken_by_range: self.broken_by_range,
            handover_completions: self.node.handover_completions(),
            route_changes: app(&|a| a.route_changes),
            reconnect_secs_total: self.node.with_app(|a: &MetroApp| a.reconnect_secs_total).unwrap_or(0.0),
            reconnects: app(&|a| a.reconnects),
            pings_sent: app(&|a| a.pings_sent),
            payloads_received: app(&|a| a.payloads_received),
            attached: self.node.with_app(|a: &MetroApp| a.attached()).unwrap_or(false),
        }
    }
}

impl NodeAgent for FullStackHost {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.node.on_start(ctx);
    }
    fn on_restart(&mut self, ctx: &mut NodeCtx<'_>) {
        self.node.on_restart(ctx);
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: TimerToken) {
        self.node.on_timer(ctx, timer);
    }
    fn on_inquiry_complete(&mut self, ctx: &mut NodeCtx<'_>, tech: RadioTech, hits: Vec<InquiryHit>) {
        self.node.on_inquiry_complete(ctx, tech, hits);
    }
    fn on_incoming_connection(&mut self, ctx: &mut NodeCtx<'_>, incoming: IncomingConnection) -> bool {
        self.node.on_incoming_connection(ctx, incoming)
    }
    fn on_connected(&mut self, ctx: &mut NodeCtx<'_>, attempt: AttemptId, link: LinkId, peer: NodeId, tech: RadioTech) {
        self.node.on_connected(ctx, attempt, link, peer, tech);
    }
    fn on_connect_failed(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        attempt: AttemptId,
        peer: NodeId,
        tech: RadioTech,
        error: ConnectError,
    ) {
        self.node.on_connect_failed(ctx, attempt, peer, tech, error);
    }
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, from: NodeId, payload: Payload) {
        self.node.on_message(ctx, link, from, payload);
    }
    fn on_disconnected(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, peer: NodeId, reason: DisconnectReason) {
        // Classify before delegating: the middleware is about to start its
        // recovery machinery, after which the session-to-link mapping is
        // gone. A break counted here may still be healed by a handover —
        // the counters measure route breaks, exactly like the lightweight
        // probes' per-link accounting.
        if self.session_link() == Some(link) {
            match reason {
                DisconnectReason::PeerFailed => self.broken_by_crash += 1,
                DisconnectReason::OutOfRange => self.broken_by_range += 1,
                DisconnectReason::PeerClosed | DisconnectReason::LocalClosed => {}
            }
        }
        self.node.on_disconnected(ctx, link, peer, reason);
    }
}
