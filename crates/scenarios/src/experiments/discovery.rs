//! Experiments E1–E5: device discovery, traffic and route selection.

use peerhood::config::DiscoveryMode;
use peerhood::device::MobilityClass;
use peerhood::gnutella::{gnutella_full_search_messages, peerhood_cycle_messages};
use peerhood::ids::DeviceAddress;
use peerhood::node::PeerHoodNode;
use peerhood::quality::route_acceptable;
use peerhood::route::{best_route, RouteInfo};
use simnet::prelude::*;

use crate::report::ExperimentReport;
use crate::topology::{
    experiment_config, ground_truth, knowledge_fraction, line_positions, random_positions, spawn_relay,
};

/// Settings shared by the world-based discovery experiments.
#[derive(Debug, Clone, Copy)]
pub struct DiscoverySettings {
    /// Base random seed.
    pub seed: u64,
    /// Simulated time the network is given to converge.
    pub convergence: SimDuration,
    /// Node counts to sweep for E1.
    pub node_counts: [usize; 2],
}

impl Default for DiscoverySettings {
    fn default() -> Self {
        DiscoverySettings {
            seed: 1,
            convergence: SimDuration::from_secs(240),
            node_counts: [12, 20],
        }
    }
}

impl DiscoverySettings {
    /// A reduced variant for quick CI runs.
    pub fn quick() -> Self {
        DiscoverySettings {
            seed: 1,
            convergence: SimDuration::from_secs(150),
            node_counts: [8, 12],
        }
    }
}

fn knowledge_for_mode(mode: DiscoveryMode, nodes: usize, seed: u64, convergence: SimDuration) -> f64 {
    let side = 45.0;
    let positions = random_positions(nodes, side, seed);
    let truth = ground_truth(&positions, 10.0);
    let mut world = World::new(WorldConfig::ideal(seed));
    let ids: Vec<NodeId> = positions
        .iter()
        .enumerate()
        .map(|(i, p)| {
            spawn_relay(
                &mut world,
                experiment_config(format!("n{i}"), MobilityClass::Static, mode),
                *p,
            )
        })
        .collect();
    let scope = format!("E1 mode={mode:?} nodes={nodes}");
    crate::telemetry::instrument_world(&mut world, &scope);
    crate::telemetry::run_world(&mut world, convergence, |_| {});
    crate::telemetry::finish_world(&mut world, &scope);
    let mut total = 0.0;
    for (i, id) in ids.iter().enumerate() {
        let known = world
            .with_agent::<PeerHoodNode, _>(*id, |n, _| n.storage_stats().known_devices)
            .unwrap_or(0);
        total += knowledge_fraction(&truth, i, known);
    }
    total / ids.len() as f64
}

/// E1 (Fig. 3.1–3.3): fraction of the reachable network each node knows
/// under direct-only, legacy two-hop and dynamic discovery.
pub fn e01_coverage_exclusion(settings: &DiscoverySettings) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E1",
        "Coverage exclusion vs. discovery algorithm",
        "Direct-only and two-hop discovery leave devices outside the inquiry coverage invisible; \
         dynamic discovery achieves total environment awareness (Fig. 3.1-3.6).",
        &["nodes", "direct-only", "two-hop", "dynamic"],
    );
    for (idx, &nodes) in settings.node_counts.iter().enumerate() {
        let seed = settings.seed + idx as u64;
        let direct = knowledge_for_mode(DiscoveryMode::DirectOnly, nodes, seed, settings.convergence);
        let two_hop = knowledge_for_mode(DiscoveryMode::TwoHop, nodes, seed, settings.convergence);
        let dynamic = knowledge_for_mode(DiscoveryMode::Dynamic, nodes, seed, settings.convergence);
        report.push_row([
            nodes.to_string(),
            ExperimentReport::f(direct),
            ExperimentReport::f(two_hop),
            ExperimentReport::f(dynamic),
        ]);
        if idx == settings.node_counts.len() - 1 {
            report.push_note(format!(
                "dynamic discovery knows {:.0}% of the reachable network vs {:.0}% for direct-only",
                dynamic * 100.0,
                direct * 100.0
            ));
        }
    }
    report
}

/// E2 (§3.2, Fig. 3.4): query traffic of Gnutella flooding vs. one PeerHood
/// dynamic-discovery cycle on the same topologies.
pub fn e02_gnutella_traffic(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E2",
        "Gnutella flooding vs. PeerHood discovery traffic",
        "Gnutella-style flooding generates huge query traffic; PeerHood sends the inquiry only to \
         direct neighbours, so one cycle is linear in the number of links (§3.2-3.3).",
        &[
            "nodes",
            "edges",
            "gnutella msgs (all nodes search, TTL 7)",
            "peerhood msgs / cycle",
            "ratio",
        ],
    );
    for (i, &nodes) in [10usize, 20, 40, 80].iter().enumerate() {
        let positions = random_positions(nodes, (nodes as f64).sqrt() * 9.0, seed + i as u64);
        let pairs: Vec<(f64, f64)> = positions.iter().map(|p| (p.x, p.y)).collect();
        let topo = peerhood::gnutella::Topology::from_positions(&pairs, 10.0);
        let gnutella = gnutella_full_search_messages(&topo, 7);
        let peerhood_msgs = peerhood_cycle_messages(&topo);
        let ratio = if peerhood_msgs > 0 {
            gnutella as f64 / peerhood_msgs as f64
        } else {
            0.0
        };
        report.push_row([
            nodes.to_string(),
            topo.edge_count().to_string(),
            gnutella.to_string(),
            peerhood_msgs.to_string(),
            ExperimentReport::f(ratio),
        ]);
    }
    report.push_note("the gap widens with density, matching the thesis' scalability argument");
    report
}

/// E3 (Fig. 3.8–3.9): best-route selection with equal-sum routes and the
/// minimum-quality threshold.
pub fn e03_quality_route_selection() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E3",
        "Link-quality route selection (threshold rule)",
        "Two routes with equal quality sums (230+230 vs 210+250): the route containing a hop below \
         the minimum demanded threshold 230 is rejected (Fig. 3.9).",
        &[
            "route",
            "hop qualities",
            "sum",
            "acceptable (threshold 230)",
            "selected",
        ],
    );
    let a_b_d = RouteInfo::via(
        DeviceAddress::from_node_raw(1),
        1,
        vec![230, 230],
        MobilityClass::Static,
    );
    let a_c_d = RouteInfo::via(
        DeviceAddress::from_node_raw(2),
        1,
        vec![210, 250],
        MobilityClass::Static,
    );
    let routes = [("A-B-D", &a_b_d), ("A-C-D", &a_c_d)];
    let selected = best_route([&a_b_d, &a_c_d], 230).unwrap();
    for (name, route) in routes {
        report.push_row([
            name.to_string(),
            format!("{:?}", route.hop_qualities),
            route.quality_sum().to_string(),
            route_acceptable(&route.hop_qualities, 230).to_string(),
            (std::ptr::eq(route, selected)).to_string(),
        ]);
    }
    report.push_note("A-B-D is selected even though both sums are 460, exactly as Fig. 3.9 argues");
    report
}

/// E4 (Fig. 3.10): change-notification delay vs. jump count.
pub fn e04_notification_delay(seed: u64, max_jumps: usize) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E4",
        "Maximum change-notification delay vs. jump count",
        "Max Delay = Num Jumps x searching cycle time: a change several jumps away is learned only \
         after that many full discovery cycles (Fig. 3.10).",
        &["jumps", "measured delay (s)", "cycle time (s)", "predicted bound (s)"],
    );
    for jumps in 1..=max_jumps {
        // A line of `jumps + 1` relays; the observer sits at one end, the new
        // device appears at the other end once the network has converged.
        let spacing = 8.0;
        let positions = line_positions(jumps + 1, spacing);
        let mut world = World::new(WorldConfig::ideal(seed + jumps as u64));
        let cfg = |i: usize| experiment_config(format!("n{i}"), MobilityClass::Static, DiscoveryMode::Dynamic);
        let ids: Vec<NodeId> = positions
            .iter()
            .enumerate()
            .map(|(i, p)| spawn_relay(&mut world, cfg(i), *p))
            .collect();
        let observer = ids[0];
        let scope = format!("E4 jumps={jumps}");
        crate::telemetry::instrument_world(&mut world, &scope);
        crate::telemetry::run_world(&mut world, SimDuration::from_secs(200), |_| {});
        // The new device appears one hop beyond the far end of the line.
        let new_pos = Point::new((jumps + 1) as f64 * spacing, 0.0);
        let newcomer = spawn_relay(&mut world, cfg(999), new_pos);
        let newcomer_addr = DeviceAddress::from_node(newcomer);
        let appeared_at = world.now();
        let mut learned_at = None;
        for _ in 0..400 {
            world.run_for(SimDuration::from_secs(1));
            let known = world
                .with_agent::<PeerHoodNode, _>(observer, |n, _| {
                    n.known_devices().iter().any(|d| d.info.address == newcomer_addr)
                })
                .unwrap_or(false);
            if known {
                learned_at = Some(world.now());
                break;
            }
        }
        crate::telemetry::finish_world(&mut world, &scope);
        let cycle = world.config().radio.bluetooth.inquiry_duration.as_secs_f64() + 4.0;
        let predicted = (jumps + 1) as f64 * cycle;
        let measured = learned_at.map(|t| (t - appeared_at).as_secs_f64()).unwrap_or(f64::NAN);
        report.push_row([
            (jumps + 1).to_string(),
            ExperimentReport::f(measured),
            ExperimentReport::f(cycle),
            ExperimentReport::f(predicted),
        ]);
    }
    report.push_note("measured delays grow roughly linearly with the jump count, as predicted");
    report
}

/// E5 (Fig. 3.11, §3.4.3): static bridges are preferred over dynamic ones and
/// keep relayed connections alive longer.
pub fn e05_static_vs_dynamic_bridge(seed: u64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E5",
        "Static vs. dynamic devices as bridge",
        "Static terminals should be preferred as bridges; a dynamic bridge walks away and breaks the \
         relayed connection (Fig. 3.11).",
        &[
            "bridge mobility",
            "route chosen through",
            "relay survived 120 s",
            "relayed messages",
        ],
    );
    for &static_bridge in &[true, false] {
        let mut world = World::new(WorldConfig::ideal(seed + static_bridge as u64));
        // Client and server 16 m apart; two candidate bridges in the middle.
        let client_cfg = experiment_config("client", MobilityClass::Dynamic, DiscoveryMode::Dynamic);
        let server_cfg = experiment_config("server", MobilityClass::Static, DiscoveryMode::Dynamic);
        let bridge_mobility = if static_bridge {
            MobilityClass::Static
        } else {
            MobilityClass::Dynamic
        };
        let bridge_cfg = experiment_config("bridge", bridge_mobility, DiscoveryMode::Dynamic);
        let client = crate::topology::spawn_app(
            &mut world,
            client_cfg,
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            Box::new(migration::MessagingClient::new(
                "sink",
                b"m".to_vec(),
                120,
                SimDuration::from_secs(1),
                SimDuration::from_secs(60),
            )),
        );
        let bridge_mobility_model = if static_bridge {
            MobilityModel::stationary(Point::new(8.0, 0.0))
        } else {
            // The dynamic bridge wanders off after two minutes.
            MobilityModel::walk_after(
                Point::new(8.0, 0.0),
                Point::new(8.0, 80.0),
                1.4,
                SimDuration::from_secs(120),
            )
        };
        let techs = bridge_cfg.techs.clone();
        let bridge = world.add_node(
            "bridge",
            bridge_mobility_model,
            &techs,
            Box::new(PeerHoodNode::relay(bridge_cfg)),
        );
        let server = crate::topology::spawn_app(
            &mut world,
            server_cfg,
            MobilityModel::stationary(Point::new(16.0, 0.0)),
            Box::new(migration::MessagingServer::new("sink")),
        );
        let scope = format!("E5 bridge={}", if static_bridge { "static" } else { "dynamic" });
        crate::telemetry::instrument_world(&mut world, &scope);
        crate::telemetry::run_world(&mut world, SimDuration::from_secs(300), |_| {});
        crate::telemetry::finish_world(&mut world, &scope);
        let server_addr = DeviceAddress::from_node(server);
        let route_via = world
            .with_agent::<PeerHoodNode, _>(client, |n, _| {
                n.known_devices()
                    .into_iter()
                    .find(|d| d.info.address == server_addr)
                    .and_then(|d| d.route.bridge)
            })
            .unwrap();
        let (_, relayed, _) = world
            .with_agent::<PeerHoodNode, _>(bridge, |n, _| n.bridge_stats())
            .unwrap();
        let delivered =
            crate::topology::with_app(&mut world, server, migration::MessagingServer::received_count).unwrap();
        let survived = delivered >= 100;
        report.push_row([
            if static_bridge { "static" } else { "dynamic" }.to_string(),
            route_via.map(|a| a.to_string()).unwrap_or_else(|| "direct/none".into()),
            survived.to_string(),
            relayed.to_string(),
        ]);
    }
    report.push_note("the connection relayed through the walking bridge degrades once it leaves coverage");
    report
}
