//! The experiment runners E1–E19 (see `DESIGN.md` for the per-figure index;
//! E12 is the dense-city scale family, E13/E14 are the fault & churn
//! family, E16 is the resilience-pipeline overload city, E17 is the
//! sharded metropolis, E18 is the hotspot metropolis on the
//! load-balanced sharded engine and E19 is the hostile city run against
//! the security defence tiers, all added on top of the thesis).
//!
//! Each function builds the scenario it needs, runs the simulation and
//! returns an [`ExperimentReport`](crate::report::ExperimentReport) whose
//! `Display` output is the markdown table recorded in `EXPERIMENTS.md`.

pub mod adversary_exp;
pub mod bridge;
pub mod discovery;
pub mod faults_exp;
pub mod full_stack;
pub mod handover;
pub mod hotspot;
pub mod metropolis;
pub mod migration_exp;
pub mod overload;
pub mod registry;
pub mod scale;
pub mod sharded;

pub use adversary_exp::{
    adversary_outcome, adversary_run, e19_hostile_city, parse_defense, plan_digest, AdversaryOutcome,
    AdversarySettings, Defense,
};
pub use bridge::{bridge_trial, e06_bridge_performance, e10_coverage_amplification, BridgeTrial};
pub use discovery::{
    e01_coverage_exclusion, e02_gnutella_traffic, e03_quality_route_selection, e04_notification_delay,
    e05_static_vs_dynamic_bridge, DiscoverySettings,
};
pub use faults_exp::{e13_churn_sweep, e14_blackout_flash_crowd, e14_blackout_flash_crowd_with, ChurnSettings};
pub use full_stack::{FullStackHost, FullStats, MetroApp, StackMode, METRO_SERVICE};
pub use handover::{
    e07_two_server_handover, e08_routing_handover, e11_monitoring_limitation, routing_handover_run, HandoverRun,
};
pub use hotspot::{e18_hotspot_metropolis, hotspot_metropolis_run, HotspotSettings};
pub use metropolis::{e15_full_stack_metropolis, metropolis_run, MetropolisSettings};
pub use migration_exp::{e09_result_routing, migration_run, MigrationRun};
pub use overload::{
    e16_overload, overload_outcome, overload_run, CrowdApp, HotspotApp, OverloadOutcome, OverloadSettings,
    HOTSPOT_SERVICE,
};
pub use registry::{
    find, registry, samples_from_report, Experiment, ParamKind, ParamSpec, Params, RunOutput, SampleRow,
};
pub use scale::{e12_dense_city, CityAgent, ScaleSettings};
pub use sharded::{
    e17_sharded_metropolis, sharded_metropolis_run, sharded_world_digest, ShardCityAgent, ShardedSettings,
};

use crate::report::ExperimentReport;

/// How thorough a full reproduction run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Reduced sizes, suitable for CI and `cargo test`.
    Quick,
    /// The sizes used to produce `EXPERIMENTS.md`.
    Full,
}

/// Runs every experiment through the [`Experiment`] registry and returns
/// the reports in E1–E19 order. Settings-driven families keep their
/// historical pinned seeds (see [`Experiment::suite_seed`]), so the suite
/// output is byte-identical to the pre-registry per-experiment entry
/// points (E16–E19 append after the historical E1–E15 blocks).
pub fn run_all(seed: u64, effort: Effort) -> Vec<ExperimentReport> {
    let params = Params::new();
    registry()
        .iter()
        .map(|e| e.run(e.suite_seed(seed), &params, effort == Effort::Quick).report)
        .collect()
}
