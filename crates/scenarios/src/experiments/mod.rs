//! The experiment runners E1–E14 (see `DESIGN.md` for the per-figure index;
//! E12 is the dense-city scale family and E13/E14 are the fault & churn
//! family added on top of the thesis).
//!
//! Each function builds the scenario it needs, runs the simulation and
//! returns an [`ExperimentReport`](crate::report::ExperimentReport) whose
//! `Display` output is the markdown table recorded in `EXPERIMENTS.md`.

pub mod bridge;
pub mod discovery;
pub mod faults_exp;
pub mod full_stack;
pub mod handover;
pub mod metropolis;
pub mod migration_exp;
pub mod scale;

pub use bridge::{bridge_trial, e06_bridge_performance, e10_coverage_amplification, BridgeTrial};
pub use discovery::{
    e01_coverage_exclusion, e02_gnutella_traffic, e03_quality_route_selection, e04_notification_delay,
    e05_static_vs_dynamic_bridge, DiscoverySettings,
};
pub use faults_exp::{e13_churn_sweep, e14_blackout_flash_crowd, e14_blackout_flash_crowd_with, ChurnSettings};
pub use full_stack::{FullStackHost, FullStats, MetroApp, StackMode, METRO_SERVICE};
pub use handover::{
    e07_two_server_handover, e08_routing_handover, e11_monitoring_limitation, routing_handover_run, HandoverRun,
};
pub use metropolis::{e15_full_stack_metropolis, metropolis_run, MetropolisSettings};
pub use migration_exp::{e09_result_routing, migration_run, MigrationRun};
pub use scale::{e12_dense_city, CityAgent, ScaleSettings};

use crate::report::ExperimentReport;

/// How thorough a full reproduction run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Reduced sizes, suitable for CI and `cargo test`.
    Quick,
    /// The sizes used to produce `EXPERIMENTS.md`.
    Full,
}

/// Runs every experiment and returns the reports in order.
pub fn run_all(seed: u64, effort: Effort) -> Vec<ExperimentReport> {
    let discovery_settings = match effort {
        Effort::Quick => DiscoverySettings::quick(),
        Effort::Full => DiscoverySettings::default(),
    };
    let (bridge_trials, handover_runs, delay_jumps) = match effort {
        Effort::Quick => (4, 1, 2),
        Effort::Full => (10, 3, 3),
    };
    let scale_settings = match effort {
        Effort::Quick => ScaleSettings::quick(),
        Effort::Full => ScaleSettings::full(),
    };
    let churn_settings = match effort {
        Effort::Quick => ChurnSettings::quick(),
        Effort::Full => ChurnSettings::full(),
    };
    let metropolis_settings = match effort {
        Effort::Quick => MetropolisSettings::quick(),
        Effort::Full => MetropolisSettings::full(),
    };
    vec![
        e01_coverage_exclusion(&discovery_settings),
        e02_gnutella_traffic(seed),
        e03_quality_route_selection(),
        e04_notification_delay(seed, delay_jumps),
        e05_static_vs_dynamic_bridge(seed),
        e06_bridge_performance(seed, bridge_trials),
        e07_two_server_handover(seed),
        e08_routing_handover(seed, handover_runs),
        e09_result_routing(seed),
        e10_coverage_amplification(seed),
        e11_monitoring_limitation(seed),
        e12_dense_city(&scale_settings),
        e13_churn_sweep(&churn_settings),
        e14_blackout_flash_crowd(seed, effort == Effort::Quick),
        e15_full_stack_metropolis(&metropolis_settings),
    ]
}
