//! E17: the sharded metropolis — one run, 100k+ nodes, many cores.
//!
//! E12–E16 scale the *population*; E17 scales the *machine*. The city runs
//! on [`ShardedWorld`]: the area is split into vertical stripes, each owned
//! by one worker thread, advancing in conservative lookahead windows with
//! cross-shard effects merged canonically at every barrier. The headline
//! property — and the thing this experiment's report is built to prove — is
//! that the shard count is **pure load partitioning**: the same seed
//! produces byte-identical results on 1, 2, 4 or 8 shards, so the report
//! carries a digest of every counter, per-node tally and lifecycle event,
//! and deliberately never mentions the shard count itself. Run it twice with
//! different `--shards` values and `diff` the output: it must be empty.
//!
//! The workload is the E12 city probe ported to the windowed API: every
//! device periodically scans its WLAN neighbourhood, attaches to the
//! best-quality peer, pings it, and hands over when the monitored quality
//! drops below the thesis' "signal low" threshold — under light seeded
//! churn, at metropolitan population (100k nodes quick, 250k full).

use std::any::Any;

use simnet::prelude::*;

use crate::report::ExperimentReport;

const SCAN: TimerToken = TimerToken(0xE171);
const QCHECK: TimerToken = TimerToken(0xE172);
const PING: TimerToken = TimerToken(0xE173);

/// Settings for the E17 sharded-metropolis run.
#[derive(Debug, Clone)]
pub struct ShardedSettings {
    /// Base random seed (world, placement and churn plans derive from it).
    pub seed: u64,
    /// City population.
    pub nodes: usize,
    /// Device density in nodes per square kilometre.
    pub density_per_km2: f64,
    /// Fraction of nodes roaming as random-waypoint pedestrians.
    pub mobile_fraction: f64,
    /// Expected crashes per churning node per hour (every tenth node
    /// churns). Zero disables the fault engine.
    pub churn_per_hour: f64,
    /// Mean downtime of a crashed node.
    pub mean_downtime: SimDuration,
    /// Simulated duration.
    pub duration: SimDuration,
    /// How often each device scans its neighbourhood.
    pub inquiry_interval: SimDuration,
    /// How often an attached device pings its peer.
    pub ping_interval: SimDuration,
    /// Worker threads to run the world on. Changes wall-clock time only,
    /// never results.
    pub shards: usize,
}

impl ShardedSettings {
    /// The full-size run used to produce `EXPERIMENTS.md` (a quarter-million
    /// nodes).
    pub fn full() -> Self {
        ShardedSettings {
            seed: 17,
            nodes: 250_000,
            density_per_km2: 1_000.0,
            mobile_fraction: 0.2,
            churn_per_hour: 20.0,
            mean_downtime: SimDuration::from_secs(25),
            duration: SimDuration::from_secs(120),
            inquiry_interval: SimDuration::from_secs(20),
            ping_interval: SimDuration::from_secs(10),
            shards: 2,
        }
    }

    /// The CI variant: a 100k-node city over a shorter horizon.
    pub fn quick() -> Self {
        ShardedSettings {
            nodes: 100_000,
            duration: SimDuration::from_secs(45),
            ..ShardedSettings::full()
        }
    }

    /// A small population for debug-build smoke tests (`cargo test`).
    pub fn smoke() -> Self {
        ShardedSettings {
            nodes: 600,
            duration: SimDuration::from_secs(60),
            ..ShardedSettings::full()
        }
    }

    /// Side length in metres of the square area at the configured density.
    pub fn side_m(&self) -> f64 {
        (self.nodes as f64 / self.density_per_km2 * 1_000_000.0).sqrt()
    }
}

/// The E12 city probe ported to the sharded world's windowed API: scan,
/// attach to the best-quality neighbour, ping it, hand over on low quality.
pub struct ShardCityAgent {
    inquiry_interval: SimDuration,
    ping_interval: SimDuration,
    attached: Option<(LinkId, NodeId)>,
    handover_from: Option<LinkId>,
    connecting: bool,
    last_hits: Vec<InquiryHit>,
    /// Completed quality-driven handovers.
    pub handovers: u64,
    /// Attached links lost to anything but a graceful peer close.
    pub drops: u64,
    /// Pings received (the echo side of the data path).
    pub pings_received: u64,
}

impl ShardCityAgent {
    /// Creates the probe with the given scan and ping cadence.
    pub fn new(inquiry_interval: SimDuration, ping_interval: SimDuration) -> Self {
        ShardCityAgent {
            inquiry_interval,
            ping_interval,
            attached: None,
            handover_from: None,
            connecting: false,
            last_hits: Vec::new(),
            handovers: 0,
            drops: 0,
            pings_received: 0,
        }
    }

    /// Best candidate by quality (ties towards the lower id), excluding
    /// `except` — the same deterministic rule as the E12 probe.
    fn best_candidate(&self, except: Option<NodeId>) -> Option<InquiryHit> {
        self.last_hits
            .iter()
            .filter(|h| Some(h.node) != except)
            .max_by_key(|h| (h.quality, std::cmp::Reverse(h.node)))
            .copied()
    }
}

impl ShardAgent for ShardCityAgent {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn on_start(&mut self, ctx: &mut ShardCtx<'_>) {
        // Stagger scans so the city is not phase-locked on one instant.
        let jitter_ms = ctx.rng().range(0..self.inquiry_interval.as_millis().max(1));
        ctx.schedule(SimDuration::from_millis(jitter_ms), SCAN);
        ctx.schedule(SimDuration::from_millis(5_000 + jitter_ms), QCHECK);
        ctx.schedule(self.ping_interval + SimDuration::from_millis(jitter_ms), PING);
    }
    fn on_restart(&mut self, ctx: &mut ShardCtx<'_>) {
        // A reboot loses the link table and the scan cache with it.
        self.attached = None;
        self.handover_from = None;
        self.connecting = false;
        self.last_hits.clear();
        self.on_start(ctx);
    }
    fn on_timer(&mut self, ctx: &mut ShardCtx<'_>, token: TimerToken) {
        match token {
            SCAN => {
                ctx.start_inquiry(RadioTech::Wlan);
                ctx.schedule(self.inquiry_interval, SCAN);
            }
            QCHECK => {
                if let Some((link, peer)) = self.attached {
                    let quality = ctx.link_quality(link);
                    if quality.map(|q| q < QUALITY_LOW_THRESHOLD).unwrap_or(true) && !self.connecting {
                        if let Some(target) = self.best_candidate(Some(peer)) {
                            self.handover_from = Some(link);
                            self.connecting = true;
                            ctx.connect(target.node, RadioTech::Wlan);
                        }
                    }
                }
                ctx.schedule(SimDuration::from_secs(5), QCHECK);
            }
            PING => {
                if let Some((link, _)) = self.attached {
                    let _ = ctx.send(link, b"city-ping".to_vec());
                }
                ctx.schedule(self.ping_interval, PING);
            }
            _ => {}
        }
    }
    fn on_inquiry_complete(&mut self, ctx: &mut ShardCtx<'_>, _tech: RadioTech, hits: Vec<InquiryHit>) {
        self.last_hits = hits;
        if self.attached.is_none() && !self.connecting {
            if let Some(best) = self.best_candidate(None) {
                self.connecting = true;
                ctx.connect(best.node, RadioTech::Wlan);
            }
        }
    }
    fn on_incoming_connection(&mut self, _ctx: &mut ShardCtx<'_>, _incoming: IncomingConnection) -> bool {
        true
    }
    fn on_connected(
        &mut self,
        ctx: &mut ShardCtx<'_>,
        _attempt: AttemptId,
        link: LinkId,
        peer: NodeId,
        _tech: RadioTech,
    ) {
        self.connecting = false;
        if let Some(old) = self.handover_from.take() {
            ctx.close(old);
            self.handovers += 1;
        }
        self.attached = Some((link, peer));
    }
    fn on_connect_failed(
        &mut self,
        _ctx: &mut ShardCtx<'_>,
        _attempt: AttemptId,
        _peer: NodeId,
        _tech: RadioTech,
        _error: ConnectError,
    ) {
        self.connecting = false;
        self.handover_from = None;
    }
    fn on_message(&mut self, _ctx: &mut ShardCtx<'_>, _link: LinkId, _from: NodeId, payload: SharedPayload) {
        if payload.as_slice() == b"city-ping" {
            self.pings_received += 1;
        }
    }
    fn on_disconnected(&mut self, _ctx: &mut ShardCtx<'_>, link: LinkId, _peer: NodeId, reason: DisconnectReason) {
        if self.handover_from == Some(link) {
            // The old link died before the handover connect resolved: the
            // in-flight attempt becomes a plain re-attach, not a handover.
            self.handover_from = None;
        }
        if self.attached.map(|(l, _)| l) == Some(link) {
            self.attached = None;
            if reason != DisconnectReason::PeerClosed {
                self.drops += 1;
            }
        }
    }
}

/// Builds and runs the sharded metropolis, returning the world for
/// inspection. Identical `(settings minus shards)` produce identical worlds
/// at any shard count.
pub fn sharded_metropolis_run(settings: &ShardedSettings) -> ShardedWorld {
    let side = settings.side_m();
    let area = Rect::new(0.0, 0.0, side, side);
    let mut config = ShardedConfig::new(settings.seed ^ (settings.nodes as u64), area);
    config.shards = settings.shards;
    config.grid_cell_m = config.radio.wlan.range_m;
    config.link_check_interval = SimDuration::from_secs(1);
    config.window = Some(SimDuration::from_secs(1));
    config.max_speed_mps = 2.0;
    config.mobility_horizon = SimTime::ZERO + settings.duration + SimDuration::from_secs(600);
    let mut world = ShardedWorld::new(config);
    let mut placer = SimRng::new(settings.seed ^ 0x5AD0 ^ (settings.nodes as u64));
    let mobile_every = if settings.mobile_fraction <= 0.0 {
        usize::MAX
    } else {
        (1.0 / settings.mobile_fraction).round().max(1.0) as usize
    };
    for i in 0..settings.nodes {
        let start = Point::new(placer.uniform_f64(0.0, side), placer.uniform_f64(0.0, side));
        let mobility = if i % mobile_every == 0 {
            MobilityModel::RandomWaypoint {
                area,
                start,
                min_speed_mps: 0.7,
                max_speed_mps: 2.0,
                pause: SimDuration::from_secs(20),
            }
        } else {
            MobilityModel::stationary(start)
        };
        world.add_node(
            format!("s{i}"),
            mobility,
            &[RadioTech::Wlan],
            Box::new(ShardCityAgent::new(settings.inquiry_interval, settings.ping_interval)),
        );
    }
    if settings.churn_per_hour > 0.0 {
        let mtbf = SimDuration::from_secs_f64(3_600.0 / settings.churn_per_hour);
        let horizon = SimTime::ZERO + settings.duration;
        let planner = SimRng::new(settings.seed ^ 0xFA17_5A4D);
        for (i, node) in world.node_ids().collect::<Vec<_>>().into_iter().enumerate() {
            if i % 10 != 0 {
                continue;
            }
            let mut rng = planner.derive(i as u64);
            let plan = FaultPlan::churn(horizon, mtbf, settings.mean_downtime, &mut rng);
            world.install_fault_plan(node, &plan);
        }
    }
    let scope = format!("E17 nodes={} shards={}", settings.nodes, settings.shards);
    crate::telemetry::instrument_sharded(&mut world, &scope);
    world.run_for(settings.duration);
    crate::telemetry::finish_sharded(&mut world, &scope);
    world
}

/// FNV-1a digest of everything the run produced: global counters, the
/// per-node counter stream, the per-technology traffic split, fault stats
/// and the canonical lifecycle stream. Two runs agree on this digest only if
/// they agree on every number the world can report — the single cell CI
/// diffs across shard counts.
pub fn sharded_world_digest(world: &ShardedWorld) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = BASIS;
    let mut fold = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    let fold_counters = |fold: &mut dyn FnMut(u64), c: &Counters| {
        fold(c.inquiries_started);
        fold(c.inquiry_hits);
        fold(c.connect_attempts);
        fold(c.connect_failures);
        fold(c.connects_established);
        fold(c.messages_sent);
        fold(c.bytes_sent);
        fold(c.messages_delivered);
        fold(c.messages_lost);
        fold(c.links_broken);
        fold(c.quality_samples);
    };
    fold_counters(&mut fold, world.metrics().global());
    for (id, counters) in world.metrics().iter_nodes() {
        fold(id.as_raw());
        fold_counters(&mut fold, counters);
    }
    for tech in [RadioTech::Bluetooth, RadioTech::Wlan, RadioTech::Gprs] {
        fold(world.metrics().messages_for_tech(tech));
        fold(world.metrics().bytes_for_tech(tech));
    }
    let stats = world.fault_stats();
    fold(stats.crashes);
    fold(stats.restarts);
    fold(stats.radio_outages);
    fold(stats.radio_restores);
    for event in world.lifecycle_events() {
        fold(event.at.as_micros());
        fold(event.node.as_raw());
        fold(match event.kind {
            LifecycleKind::NodeDown => 1,
            LifecycleKind::NodeUp => 2,
            LifecycleKind::RadioDown(t) => 0x10 + t as u64,
            LifecycleKind::RadioUp(t) => 0x20 + t as u64,
        });
    }
    h
}

/// E17 (beyond the thesis): the sharded metropolis.
///
/// The report is identical for every shard count by construction — it
/// includes the run digest and omits the shard count, so `diff`-ing two
/// runs at different `--shards` values is the invariance check itself.
pub fn e17_sharded_metropolis(settings: &ShardedSettings) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E17",
        "Sharded metropolis: deterministic intra-run parallelism at 100k+ nodes",
        "Beyond the thesis: the world itself parallelises. Spatial shards advance in conservative \
         lookahead windows with cross-shard events merged in canonical order, so one run spreads \
         across every core while staying byte-identical at any shard count. This table contains a \
         digest of every counter and lifecycle event and no shard-dependent cell: rerun with a \
         different --shards value and diff — the output must not change.",
        &[
            "nodes",
            "side (m)",
            "inquiries",
            "links established",
            "handovers",
            "coverage drops",
            "pings delivered",
            "crashes",
            "restarts",
            "digest",
        ],
    );
    let mut world = sharded_metropolis_run(settings);
    let (mut handovers, mut drops) = (0u64, 0u64);
    for id in world.node_ids().collect::<Vec<_>>() {
        if let Some((h, d)) = world.with_agent::<ShardCityAgent, _>(id, |a| (a.handovers, a.drops)) {
            handovers += h;
            drops += d;
        }
    }
    let digest = sharded_world_digest(&world);
    let g = world.metrics().global();
    let fault = world.fault_stats();
    report.push_row([
        settings.nodes.to_string(),
        format!("{:.0}", settings.side_m()),
        g.inquiries_started.to_string(),
        g.connects_established.to_string(),
        handovers.to_string(),
        drops.to_string(),
        g.messages_delivered.to_string(),
        fault.crashes.to_string(),
        fault.restarts.to_string(),
        format!("{digest:016x}"),
    ]);
    report.push_note(format!(
        "density {} nodes/km^2, {:.0}% mobile, every 10th node churning at {}/h (mean downtime \
         {}s), {}s simulated; windowed execution (1s lookahead), digest covers all counters, \
         per-node tallies and the lifecycle stream",
        settings.density_per_km2,
        settings.mobile_fraction * 100.0,
        settings.churn_per_hour,
        settings.mean_downtime.as_secs(),
        settings.duration.as_secs_f64(),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_city_runs_and_report_is_shard_invariant() {
        let mut one = ShardedSettings::smoke();
        one.shards = 1;
        let mut four = ShardedSettings::smoke();
        four.shards = 4;
        let a = e17_sharded_metropolis(&one);
        let b = e17_sharded_metropolis(&four);
        assert_eq!(a.to_string(), b.to_string(), "report must not depend on shard count");
        // The city actually did something.
        let world = sharded_metropolis_run(&one);
        assert!(world.metrics().global().connects_established > 0);
        assert!(world.metrics().global().messages_delivered > 0);
    }
}
