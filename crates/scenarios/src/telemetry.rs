//! Scenario-side switchboard for the live telemetry plane.
//!
//! The engines ([`World`], [`ShardedWorld`]) carry the recording hooks; this
//! module decides *whether* a given experiment run engages them. The `repro`
//! CLI (and tests) call [`configure`] once per thread, the experiment
//! builders call [`instrument_world`] / [`instrument_sharded`] on each world
//! they create and [`finish_world`] / [`finish_sharded`] when the run ends,
//! and the CLI drains the recorded [`TelemetryCapture`]s with
//! [`take_captures`] after the report is printed.
//!
//! Settings are **thread-local and default to [`TelemetryMode::Off`]**: sweep
//! worker threads, `cargo test` and every existing entry point see inert
//! hooks and byte-identical runs unless they opt in themselves. Telemetry
//! output never goes to stdout — reports stay diffable against the recorded
//! baselines with the plane on or off.

use std::cell::{Cell, RefCell};

use simnet::prelude::*;
use simnet::telemetry::DEFAULT_SAMPLE_INTERVAL;

/// How the telemetry plane is engaged for runs on this thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryMode {
    /// No recorder attached; runs are untouched (the default).
    Off,
    /// Record frames for an end-of-run roll-up / JSONL export.
    Record,
    /// Record, and additionally stream every frame to stderr as it is
    /// emitted (`repro watch`).
    Watch,
}

/// Thread-local telemetry settings for experiment runs.
#[derive(Debug, Clone, Copy)]
pub struct TelemetrySettings {
    /// Recording mode.
    pub mode: TelemetryMode,
    /// Virtual-time spacing of sampled frames.
    pub sample_interval: SimDuration,
    /// Also enable per-phase wall-clock profiling (independent of `mode`).
    pub profile: bool,
    /// Also record per-shard `shard/*` series in sharded runs. Off by
    /// default: these series depend on the shard layout, so the default
    /// captures stay byte-identical at any `--shards` count.
    pub shard_series: bool,
}

impl Default for TelemetrySettings {
    fn default() -> Self {
        TelemetrySettings {
            mode: TelemetryMode::Off,
            sample_interval: DEFAULT_SAMPLE_INTERVAL,
            profile: false,
            shard_series: false,
        }
    }
}

/// Everything one instrumented run leaves behind.
#[derive(Debug, Clone)]
pub struct TelemetryCapture {
    /// Which run this is (experiment slug plus scenario key, e.g.
    /// `"E12 nodes=400"`).
    pub scope: String,
    /// Frames retained by the ring.
    pub frames: usize,
    /// Frames the ring evicted.
    pub dropped: u64,
    /// JSON-lines export of every retained frame (empty when the run was
    /// profile-only).
    pub jsonl: String,
    /// FNV-1a digest of `jsonl` — what the determinism tests compare.
    pub digest: u64,
    /// End-of-run roll-up table (`None` when the run was profile-only).
    pub rollup: Option<String>,
    /// Per-phase profile table (`None` unless profiling was on).
    pub profile: Option<String>,
}

thread_local! {
    static SETTINGS: Cell<TelemetrySettings> = Cell::new(TelemetrySettings::default());
    static CAPTURES: RefCell<Vec<TelemetryCapture>> = const { RefCell::new(Vec::new()) };
}

/// Sets the telemetry settings for experiment runs on this thread.
pub fn configure(settings: TelemetrySettings) {
    SETTINGS.with(|s| s.set(settings));
}

/// The settings in force on this thread.
pub fn settings() -> TelemetrySettings {
    SETTINGS.with(|s| s.get())
}

/// Drains every capture recorded on this thread since the last call.
pub fn take_captures() -> Vec<TelemetryCapture> {
    CAPTURES.with(|c| c.borrow_mut().drain(..).collect())
}

fn push_capture(capture: TelemetryCapture) {
    CAPTURES.with(|c| c.borrow_mut().push(capture));
}

/// Attaches the configured recorder/profiler to a sequential world. A no-op
/// under [`TelemetryMode::Off`] without profiling.
pub fn instrument_world(world: &mut World, scope: &str) {
    let s = settings();
    if s.mode != TelemetryMode::Off {
        world.enable_telemetry(TelemetryConfig::every(s.sample_interval));
        if s.mode == TelemetryMode::Watch {
            if let Some(tel) = world.telemetry_mut() {
                tel.set_on_frame(watch_printer(scope.to_string()));
            }
        }
    }
    if s.profile {
        world.enable_profiling();
    }
}

/// Attaches the configured recorder/profiler to a sharded world.
pub fn instrument_sharded(world: &mut ShardedWorld, scope: &str) {
    let s = settings();
    if s.mode != TelemetryMode::Off {
        let mut config = TelemetryConfig::every(s.sample_interval);
        config.shard_series = s.shard_series;
        world.enable_telemetry(config);
        if s.mode == TelemetryMode::Watch {
            if let Some(tel) = world.telemetry_mut() {
                tel.set_on_frame(watch_printer(scope.to_string()));
            }
        }
    }
    if s.profile {
        world.enable_profiling();
    }
}

/// Harvests a sequential world's recorder/profile into a capture. Call once
/// when the run is over (before the world is dropped).
pub fn finish_world(world: &mut World, scope: &str) {
    let elapsed = world.now().saturating_since(SimTime::ZERO);
    let profile = settings().profile.then(|| world.profiler().report(elapsed));
    finish(world.take_telemetry(), profile, scope);
}

/// Harvests a sharded world's recorder/profile into a capture.
pub fn finish_sharded(world: &mut ShardedWorld, scope: &str) {
    let elapsed = world.now().saturating_since(SimTime::ZERO);
    let profile = settings().profile.then(|| world.profile().report(elapsed));
    finish(world.take_telemetry(), profile, scope);
}

fn finish(telemetry: Option<Box<Telemetry>>, profile: Option<String>, scope: &str) {
    if telemetry.is_none() && profile.is_none() {
        return;
    }
    let capture = match telemetry {
        Some(tel) => {
            let jsonl = tel.to_jsonl();
            TelemetryCapture {
                scope: scope.to_string(),
                frames: tel.frame_count(),
                dropped: tel.dropped_frames(),
                digest: simnet::telemetry::fnv1a(jsonl.as_bytes()),
                jsonl,
                rollup: Some(tel.rollup()),
                profile,
            }
        }
        None => TelemetryCapture {
            scope: scope.to_string(),
            frames: 0,
            dropped: 0,
            jsonl: String::new(),
            digest: simnet::telemetry::fnv1a(b""),
            rollup: None,
            profile,
        },
    };
    push_capture(capture);
}

/// Runs a sequential world for `duration`, chunked at the sample interval so
/// `refresh` can mirror scenario-level gauges (resilience pipeline state,
/// handover counts) into the recorder between frames. With telemetry off the
/// chunking — and the refresh work — is skipped entirely; with it on, the
/// chunked `run_until` sequence processes the exact same events in the exact
/// same order, so the simulation itself is unchanged either way.
pub fn run_world(world: &mut World, duration: SimDuration, mut refresh: impl FnMut(&mut World)) {
    let s = settings();
    if s.mode == TelemetryMode::Off {
        world.run_for(duration);
        return;
    }
    let end = world.now() + duration;
    while world.now() < end {
        refresh(world);
        let step = s.sample_interval.min(end.saturating_since(world.now()));
        world.run_for(step);
    }
    refresh(world);
}

/// The live `repro watch` frame printer: one stderr line per sampled frame
/// with the aggregate vitals (and per-frame connect/delivery rates derived
/// from the counter deltas).
fn watch_printer(scope: String) -> simnet::FrameSink {
    let mut prev: Option<(SimTime, f64, f64)> = None;
    Box::new(move |frame| {
        let t = frame.at;
        let connects = frame.get("world", "connects_established").unwrap_or(0.0);
        let delivered = frame.get("world", "messages_delivered").unwrap_or(0.0);
        let (t0, c0, d0) = prev.unwrap_or((SimTime::ZERO, 0.0, 0.0));
        let dt = t.saturating_since(t0).as_secs_f64();
        let (cps, dps) = if dt > 0.0 {
            ((connects - c0) / dt, (delivered - d0) / dt)
        } else {
            (0.0, 0.0)
        };
        prev = Some((t, connects, delivered));
        let mut line = format!(
            "[watch] {scope} t={:.0}s alive={:.0} links={:.0} connects/s={cps:.1} delivered/s={dps:.1} delivery={:.1}%",
            t.saturating_since(SimTime::ZERO).as_secs_f64(),
            frame.get("world", "nodes_alive").unwrap_or(0.0),
            frame.get("world", "links_open").unwrap_or(0.0),
            frame.get("world", "delivery_rate").unwrap_or(1.0) * 100.0,
        );
        let shed = frame.get("resilience", "inbound_shed").unwrap_or(0.0)
            + frame.get("resilience", "outbound_shed").unwrap_or(0.0)
            + frame.get("resilience", "queue_shed").unwrap_or(0.0);
        if let Some(open) = frame.get("resilience", "breakers_open") {
            line.push_str(&format!(" shed={shed:.0} breakers_open={open:.0}"));
        }
        if let Some(crashes) = frame.get("faults", "node_crashes") {
            if crashes > 0.0 {
                line.push_str(&format!(" crashes={crashes:.0}"));
            }
        }
        eprintln!("{line}");
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_default_to_off_and_are_thread_local() {
        assert_eq!(settings().mode, TelemetryMode::Off);
        configure(TelemetrySettings {
            mode: TelemetryMode::Record,
            ..TelemetrySettings::default()
        });
        assert_eq!(settings().mode, TelemetryMode::Record);
        let other = std::thread::spawn(|| settings().mode).join().unwrap();
        assert_eq!(other, TelemetryMode::Off, "settings must not leak across threads");
        configure(TelemetrySettings::default());
    }

    #[test]
    fn finish_with_nothing_attached_records_no_capture() {
        configure(TelemetrySettings::default());
        let mut world = World::new(WorldConfig::with_seed(7));
        instrument_world(&mut world, "noop");
        run_world(&mut world, SimDuration::from_secs(2), |_| {});
        finish_world(&mut world, "noop");
        assert!(take_captures().is_empty());
    }
}
