//! Experiment report structures.
//!
//! Every experiment runner returns an [`ExperimentReport`]: a titled table
//! whose `Display` implementation renders GitHub-flavoured markdown, so the
//! `repro` binary can regenerate `EXPERIMENTS.md` directly.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One row of an experiment table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Cell values, one per column.
    pub cells: Vec<String>,
}

impl Row {
    /// Builds a row from anything displayable.
    pub fn new<I, S>(cells: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: ToString,
    {
        Row {
            cells: cells.into_iter().map(|c| c.to_string()).collect(),
        }
    }
}

/// A titled result table for one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment identifier, e.g. `"E6"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// What the thesis claims / reports for this experiment.
    pub paper_claim: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
    /// Free-form observations on how the measurement compares to the claim.
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        paper_claim: impl Into<String>,
        columns: &[&str],
    ) -> Self {
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            paper_claim: paper_claim.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn push_row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: ToString,
    {
        self.rows.push(Row::new(cells));
    }

    /// Appends an observation note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Convenience: a cell value from a float with two decimals.
    pub fn f(value: f64) -> String {
        format!("{value:.2}")
    }
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {} — {}", self.id, self.title)?;
        writeln!(f)?;
        writeln!(f, "*Paper:* {}", self.paper_claim)?;
        writeln!(f)?;
        writeln!(f, "| {} |", self.columns.join(" | "))?;
        writeln!(
            f,
            "|{}|",
            self.columns.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        )?;
        for row in &self.rows {
            writeln!(f, "| {} |", row.cells.join(" | "))?;
        }
        if !self.notes.is_empty() {
            writeln!(f)?;
            for note in &self.notes {
                writeln!(f, "- {note}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_markdown() {
        let mut r = ExperimentReport::new("E0", "Demo", "a claim", &["setting", "value"]);
        r.push_row(["x", "1"]);
        r.push_row(["y", "2"]);
        r.push_note("looks right");
        let text = r.to_string();
        assert!(text.contains("### E0 — Demo"));
        assert!(text.contains("| setting | value |"));
        assert!(text.contains("| x | 1 |"));
        assert!(text.contains("- looks right"));
        assert!(text.contains("*Paper:* a claim"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(ExperimentReport::f(1.23456), "1.23");
        assert_eq!(ExperimentReport::f(0.0), "0.00");
    }

    #[test]
    fn rows_from_mixed_types() {
        let row = Row::new([1.to_string(), "two".to_string()]);
        assert_eq!(row.cells, vec!["1", "two"]);
    }
}
