//! Multi-application host: one device, several programs, one middleware.
//!
//! The thesis' middleware is a shared neighbourhood layer used by every
//! application on a device. This example runs a fixed PC that hosts **two
//! independent services owned by two applications** — a messaging "print"
//! server and a picture-analysis server — on a single PeerHood stack, while
//! a phone (also hosting two client applications) talks to both.
//!
//! ```text
//! cargo run -p scenarios --example multi_app
//! ```

use migration::{MessagingClient, MessagingServer, PictureClient, PictureServer, TaskSpec};
use peerhood::node::PeerHoodNode;
use peerhood::prelude::*;
use scenarios::topology::experiment_config;
use simnet::prelude::*;

fn main() {
    let spec = TaskSpec::small();
    let mut world = World::new(WorldConfig::ideal(23));

    // The phone hosts two client applications on one middleware stack.
    let phone_cfg = experiment_config("phone", MobilityClass::Dynamic, DiscoveryMode::Dynamic);
    let phone_techs = phone_cfg.techs.clone();
    let phone = world.add_node(
        "phone",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &phone_techs,
        Box::new(
            PeerHoodNode::builder()
                .config(phone_cfg)
                .app(MessagingClient::new(
                    "print",
                    b"hello from the phone".to_vec(),
                    10,
                    SimDuration::from_secs(1),
                    SimDuration::from_secs(30),
                ))
                .app(PictureClient::new("analysis", spec.clone(), SimDuration::from_secs(35)))
                .event_trace(true)
                .build(),
        ),
    );

    // The PC hosts two server applications with independent services.
    let pc_cfg = experiment_config("pc", MobilityClass::Static, DiscoveryMode::Dynamic);
    let pc_techs = pc_cfg.techs.clone();
    let pc = world.add_node(
        "pc",
        MobilityModel::stationary(Point::new(4.0, 0.0)),
        &pc_techs,
        Box::new(
            PeerHoodNode::builder()
                .config(pc_cfg)
                .app(MessagingServer::new("print"))
                .app(PictureServer::for_spec("analysis", &spec))
                .relay(true)
                .build(),
        ),
    );

    world.run_for(SimDuration::from_secs(240));

    world
        .with_agent::<PeerHoodNode, _>(pc, |node, _| {
            println!("pc hosts {} applications: {:?}", node.app_ids().len(), node.app_ids());
            let printed = node.with_app(|app: &MessagingServer| app.received_count()).unwrap();
            let packages = node.with_app(|app: &PictureServer| app.packages_received()).unwrap();
            println!("print service received   : {printed} message(s)");
            println!("analysis service received: {packages} package(s)");
        })
        .unwrap();
    world
        .with_agent::<PeerHoodNode, _>(phone, |node, _| {
            let sent = node.with_app(|app: &MessagingClient| app.sent).unwrap();
            let outcome = node.with_app(|app: &PictureClient| app.outcome()).unwrap();
            println!("phone messaging app sent : {sent} message(s)");
            println!("phone picture task       : {outcome:?}");
            // The typed event trace shows both applications' traffic without
            // downcasting: count Data deliveries per owning app.
            let trace = node.take_event_trace();
            for id in node.app_ids() {
                let events = trace.iter().filter(|e| e.app() == Some(id)).count();
                println!("events routed to {id}     : {events}");
            }
        })
        .unwrap();
}
