//! Quickstart: two devices discover each other, connect and exchange data.
//!
//! ```text
//! cargo run -p scenarios --example quickstart
//! ```

use migration::{MessagingClient, MessagingServer};
use peerhood::node::PeerHoodNode;
use peerhood::prelude::*;
use scenarios::topology::{experiment_config, spawn_app, with_app};
use simnet::prelude::*;

fn main() {
    // A deterministic world with ideal radios so the example runs instantly.
    let mut world = World::new(WorldConfig::ideal(42));

    // A mobile phone that will send ten messages to the "echo" service...
    let phone = spawn_app(
        &mut world,
        experiment_config("phone", MobilityClass::Dynamic, DiscoveryMode::Dynamic),
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        Box::new(MessagingClient::new(
            "echo",
            b"hello peerhood".to_vec(),
            10,
            SimDuration::from_secs(1),
            SimDuration::from_secs(30),
        )),
    );
    // ... and a fixed PC four metres away that registers it.
    let pc = spawn_app(
        &mut world,
        experiment_config("pc", MobilityClass::Static, DiscoveryMode::Dynamic),
        MobilityModel::stationary(Point::new(4.0, 0.0)),
        Box::new(MessagingServer::new("echo")),
    );

    // Two simulated minutes: discovery, connection, data exchange.
    world.run_for(SimDuration::from_secs(120));

    world
        .with_agent::<PeerHoodNode, _>(phone, |node, _| {
            let stats = node.storage_stats();
            println!(
                "phone knows {} device(s), {} service(s)",
                stats.known_devices, stats.known_services
            );
            node.with_app(|app: &MessagingClient| {
                println!(
                    "phone sent {}/{} messages (connection setup took {:.1} s)",
                    app.sent,
                    app.repetitions,
                    app.connection_setup_seconds().unwrap_or(f64::NAN)
                );
            });
        })
        .unwrap();
    with_app(&mut world, pc, |app: &MessagingServer| {
        println!(
            "pc received {} message(s) from {} client(s)",
            app.received_count(),
            app.clients
        );
    });
}
