//! Routing handover while walking down a corridor (§5.2.1 of the thesis).
//!
//! A client streams messages to a server while walking away from it; when
//! the link quality degrades past the 230 threshold the HandoverThread
//! re-routes the live connection through a bridge node in the corridor, and
//! the application only notices a `connection_changed` callback.
//!
//! ```text
//! cargo run -p scenarios --example corridor_handover
//! ```

use migration::{MessagingClient, MessagingServer};
use peerhood::node::PeerHoodNode;
use peerhood::prelude::*;
use scenarios::topology::{experiment_config, spawn_app, spawn_relay, with_app};
use simnet::prelude::*;

fn main() {
    let mut world = World::new(WorldConfig::ideal(11));

    // The client starts next to the server and walks down the corridor.
    let client = spawn_app(
        &mut world,
        experiment_config("client", MobilityClass::Dynamic, DiscoveryMode::Dynamic),
        MobilityModel::walk_after(
            Point::new(2.0, 0.0),
            Point::new(17.0, 0.0),
            0.8,
            SimDuration::from_secs(80),
        ),
        Box::new(MessagingClient::new(
            "print",
            b"good morning!".to_vec(),
            80,
            SimDuration::from_secs(1),
            SimDuration::from_secs(50),
        )),
    );
    let server = spawn_app(
        &mut world,
        experiment_config("server", MobilityClass::Static, DiscoveryMode::Dynamic),
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        Box::new(MessagingServer::new("print")),
    );
    // A fixed bridge half-way down the corridor keeps the server reachable.
    spawn_relay(
        &mut world,
        experiment_config("bridge", MobilityClass::Static, DiscoveryMode::Dynamic),
        Point::new(9.0, 0.0),
    );

    world.run_for(SimDuration::from_secs(300));

    world
        .with_agent::<PeerHoodNode, _>(client, |node, _| {
            println!("routing handovers    : {}", node.handover_completions());
            node.with_app(|app: &MessagingClient| {
                println!("messages sent        : {}/{}", app.sent, app.repetitions);
                println!("route changes seen   : {}", app.connection_changes);
                println!("task restarts        : {}", app.restarts);
            });
        })
        .unwrap();
    with_app(&mut world, server, |app: &MessagingServer| {
        println!(
            "server received      : {} messages (largest gap {:.1} s)",
            app.received_count(),
            app.largest_gap_seconds()
        );
    });
}
