//! Picture-analysis task migration with result routing (§5.3 of the thesis).
//!
//! A phone uploads a picture to a fixed analysis server, walks out of
//! Bluetooth coverage while the server is still processing, and receives the
//! result later through the server-initiated reconnection (result routing).
//!
//! ```text
//! cargo run -p scenarios --example picture_migration
//! ```

use migration::{PictureClient, PictureServer, TaskSpec};
use peerhood::node::PeerHoodNode;
use peerhood::prelude::*;
use scenarios::topology::{experiment_config, spawn_app, with_app};
use simnet::prelude::*;

fn main() {
    let spec = TaskSpec::considerable();
    let mut world = World::new(WorldConfig::ideal(7));

    // The phone walks 60 m away one minute in, waits, and comes back.
    let phone = spawn_app(
        &mut world,
        experiment_config("phone", MobilityClass::Dynamic, DiscoveryMode::Dynamic),
        MobilityModel::Waypoints {
            points: vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 0.0),
                Point::new(60.0, 0.0),
                Point::new(60.0, 0.0),
                Point::new(0.0, 0.0),
            ],
            speed_mps: 1.4,
            start_after: SimDuration::from_secs(60),
        },
        Box::new(PictureClient::new("analysis", spec.clone(), SimDuration::from_secs(30))),
    );
    let server = spawn_app(
        &mut world,
        experiment_config("analysis-server", MobilityClass::Static, DiscoveryMode::Dynamic),
        MobilityModel::stationary(Point::new(5.0, 0.0)),
        Box::new(PictureServer::for_spec("analysis", &spec)),
    );

    world.run_for(SimDuration::from_secs(700));

    with_app(&mut world, phone, |app: &PictureClient| {
        println!("uploaded packages : {}", app.sent_packages);
        println!("task outcome      : {:?}", app.outcome());
        println!(
            "result received at: {}",
            app.result_received_at
                .map(|t| t.to_string())
                .unwrap_or_else(|| "never".into())
        );
    });
    world
        .with_agent::<PeerHoodNode, _>(server, |node, _| {
            let packages = node.with_app(|app: &PictureServer| app.packages_received()).unwrap();
            println!(
                "server processed {} package(s); reply reconnections performed: {}",
                packages,
                node.reply_reconnections()
            );
        })
        .unwrap();
}
