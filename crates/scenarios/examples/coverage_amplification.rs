//! Coverage amplification through a tunnel (Fig. 6.1 of the thesis).
//!
//! A phone inside a tunnel has no GPRS coverage. A chain of Bluetooth bridge
//! devices installed along the tunnel relays its traffic to a GPRS-connected
//! server outside, so the phone can still reach the mobile network's
//! services.
//!
//! ```text
//! cargo run -p scenarios --example coverage_amplification
//! ```

use migration::{MessagingClient, MessagingServer};
use peerhood::node::PeerHoodNode;
use peerhood::prelude::*;
use scenarios::topology::{experiment_config, spawn_app, spawn_relay, with_app};
use simnet::prelude::*;

fn main() {
    // The tunnel: no GPRS coverage for x in [-5, 27].
    let mut config = WorldConfig::ideal(3);
    config.gprs_dead_zones = vec![Rect::new(-5.0, -5.0, 27.0, 5.0)];
    let mut world = World::new(config);

    let phone = spawn_app(
        &mut world,
        experiment_config("phone", MobilityClass::Dynamic, DiscoveryMode::Dynamic)
            .with_techs(&[RadioTech::Bluetooth, RadioTech::Gprs]),
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        Box::new(MessagingClient::new(
            "gateway",
            b"sms through the tunnel".to_vec(),
            10,
            SimDuration::from_secs(1),
            SimDuration::from_secs(120),
        )),
    );
    // Three Bluetooth bridges installed along the tunnel.
    for (i, x) in [8.0, 16.0, 24.0].iter().enumerate() {
        spawn_relay(
            &mut world,
            experiment_config(
                format!("tunnel-bridge-{i}"),
                MobilityClass::Static,
                DiscoveryMode::Dynamic,
            ),
            Point::new(*x, 0.0),
        );
    }
    // The gateway server outside the tunnel, with both Bluetooth and GPRS.
    let gateway = spawn_app(
        &mut world,
        experiment_config("gateway", MobilityClass::Static, DiscoveryMode::Dynamic)
            .with_techs(&[RadioTech::Bluetooth, RadioTech::Gprs]),
        MobilityModel::stationary(Point::new(32.0, 0.0)),
        Box::new(MessagingServer::new("gateway")),
    );

    world.run_for(SimDuration::from_secs(400));

    let gateway_addr = DeviceAddress::from_node(gateway);
    world
        .with_agent::<PeerHoodNode, _>(phone, |node, _| {
            let route = node
                .known_devices()
                .into_iter()
                .find(|d| d.info.address == gateway_addr)
                .map(|d| d.route.jumps);
            println!("phone's route to the gateway: {:?} jump(s)", route);
            let sent = node.with_app(|app: &MessagingClient| app.sent).unwrap();
            println!("messages sent from inside the tunnel: {sent}");
        })
        .unwrap();
    with_app(&mut world, gateway, |app: &MessagingServer| {
        println!("gateway received: {} message(s)", app.received_count());
    });
}
