use std::any::Any;
use std::collections::VecDeque;

use super::*;
use crate::node::{ConnectError, DisconnectReason, IncomingConnection, InquiryHit};

/// A minimal scriptable agent used to exercise the world mechanics.
#[derive(Default)]
struct Probe {
    started: bool,
    timers: Vec<TimerToken>,
    inquiry_results: Vec<(RadioTech, Vec<InquiryHit>)>,
    connected: Vec<(AttemptId, LinkId, NodeId)>,
    failed: Vec<(AttemptId, ConnectError)>,
    incoming: Vec<IncomingConnection>,
    accept_incoming: bool,
    messages: Vec<(LinkId, Vec<u8>)>,
    disconnects: Vec<(LinkId, DisconnectReason)>,
    echo: bool,
}

impl Probe {
    fn accepting() -> Self {
        Probe {
            accept_incoming: true,
            ..Probe::default()
        }
    }
    fn echoing() -> Self {
        Probe {
            accept_incoming: true,
            echo: true,
            ..Probe::default()
        }
    }
}

impl NodeAgent for Probe {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.started = true;
    }
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, timer: TimerToken) {
        self.timers.push(timer);
    }
    fn on_inquiry_complete(&mut self, _ctx: &mut NodeCtx<'_>, tech: RadioTech, hits: Vec<InquiryHit>) {
        self.inquiry_results.push((tech, hits));
    }
    fn on_incoming_connection(&mut self, _ctx: &mut NodeCtx<'_>, incoming: IncomingConnection) -> bool {
        self.incoming.push(incoming);
        self.accept_incoming
    }
    fn on_connected(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        attempt: AttemptId,
        link: LinkId,
        peer: NodeId,
        _tech: RadioTech,
    ) {
        self.connected.push((attempt, link, peer));
    }
    fn on_connect_failed(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        attempt: AttemptId,
        _peer: NodeId,
        _tech: RadioTech,
        error: ConnectError,
    ) {
        self.failed.push((attempt, error));
    }
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, _from: NodeId, payload: Payload) {
        if self.echo {
            let mut reply = payload.to_vec();
            reply.reverse();
            let _ = ctx.send(link, reply);
        }
        self.messages.push((link, payload.to_vec()));
    }
    fn on_disconnected(&mut self, _ctx: &mut NodeCtx<'_>, link: LinkId, _peer: NodeId, reason: DisconnectReason) {
        self.disconnects.push((link, reason));
    }
}

fn ideal_world(seed: u64) -> World {
    World::new(WorldConfig::ideal(seed))
}

fn bt() -> [RadioTech; 1] {
    [RadioTech::Bluetooth]
}

#[test]
fn start_and_timer_delivery() {
    let mut w = ideal_world(1);
    let a = w.add_node(
        "a",
        MobilityModel::stationary(Point::ORIGIN),
        &bt(),
        Box::new(Probe::default()),
    );
    w.run_for(SimDuration::from_millis(1));
    w.with_agent::<Probe, _>(a, |p, ctx| {
        assert!(p.started);
        ctx.schedule(SimDuration::from_secs(5), TimerToken(99));
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(4));
    w.with_agent::<Probe, _>(a, |p, _| assert!(p.timers.is_empty()))
        .unwrap();
    w.run_for(SimDuration::from_secs(2));
    w.with_agent::<Probe, _>(a, |p, _| assert_eq!(p.timers, vec![TimerToken(99)]))
        .unwrap();
}

#[test]
fn inquiry_finds_only_nodes_in_range() {
    let mut w = ideal_world(2);
    let a = w.add_node(
        "a",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(Probe::default()),
    );
    let b = w.add_node(
        "b",
        MobilityModel::stationary(Point::new(5.0, 0.0)),
        &bt(),
        Box::new(Probe::default()),
    );
    let _far = w.add_node(
        "far",
        MobilityModel::stationary(Point::new(100.0, 0.0)),
        &bt(),
        Box::new(Probe::default()),
    );
    w.run_for(SimDuration::from_millis(1));
    w.with_agent::<Probe, _>(a, |_, ctx| ctx.start_inquiry(RadioTech::Bluetooth))
        .unwrap();
    w.run_for(SimDuration::from_secs(15));
    w.with_agent::<Probe, _>(a, |p, _| {
        assert_eq!(p.inquiry_results.len(), 1);
        let hits = &p.inquiry_results[0].1;
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].node, b);
        assert!(hits[0].quality > 200);
    })
    .unwrap();
    assert_eq!(w.metrics().global().inquiries_started, 1);
    assert_eq!(w.metrics().global().inquiry_hits, 1);
}

#[test]
fn undiscoverable_nodes_are_not_found() {
    let mut w = ideal_world(3);
    let a = w.add_node(
        "a",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(Probe::default()),
    );
    let b = w.add_node(
        "b",
        MobilityModel::stationary(Point::new(3.0, 0.0)),
        &bt(),
        Box::new(Probe::default()),
    );
    w.run_for(SimDuration::from_millis(1));
    w.with_agent::<Probe, _>(b, |_, ctx| ctx.set_discoverable(RadioTech::Bluetooth, false))
        .unwrap();
    w.with_agent::<Probe, _>(a, |_, ctx| ctx.start_inquiry(RadioTech::Bluetooth))
        .unwrap();
    w.run_for(SimDuration::from_secs(15));
    w.with_agent::<Probe, _>(a, |p, _| {
        assert!(p.inquiry_results[0].1.is_empty());
    })
    .unwrap();
}

#[test]
fn connect_send_and_receive() {
    let mut w = ideal_world(4);
    let a = w.add_node(
        "a",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(Probe::default()),
    );
    let b = w.add_node(
        "b",
        MobilityModel::stationary(Point::new(4.0, 0.0)),
        &bt(),
        Box::new(Probe::echoing()),
    );
    w.run_for(SimDuration::from_millis(1));
    w.with_agent::<Probe, _>(a, |_, ctx| {
        ctx.connect(b, RadioTech::Bluetooth);
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(2));
    let link = w
        .with_agent::<Probe, _>(a, |p, _| {
            assert_eq!(p.connected.len(), 1);
            p.connected[0].1
        })
        .unwrap();
    w.with_agent::<Probe, _>(a, |_, ctx| {
        ctx.send(link, b"hello".to_vec()).unwrap();
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(2));
    w.with_agent::<Probe, _>(b, |p, _| {
        assert_eq!(p.messages.len(), 1);
        assert_eq!(p.messages[0].1, b"hello".to_vec());
    })
    .unwrap();
    // The echoing agent reversed the payload back to a.
    w.with_agent::<Probe, _>(a, |p, _| {
        assert_eq!(p.messages.len(), 1);
        assert_eq!(p.messages[0].1, b"olleh".to_vec());
    })
    .unwrap();
    assert_eq!(w.metrics().global().connects_established, 1);
    assert_eq!(w.metrics().global().messages_delivered, 2);
}

#[test]
fn rejected_connection_reports_failure() {
    let mut w = ideal_world(5);
    let a = w.add_node(
        "a",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(Probe::default()),
    );
    let b = w.add_node(
        "b",
        MobilityModel::stationary(Point::new(4.0, 0.0)),
        &bt(),
        Box::new(Probe::default()), // does not accept
    );
    w.run_for(SimDuration::from_millis(1));
    w.with_agent::<Probe, _>(a, |_, ctx| {
        ctx.connect(b, RadioTech::Bluetooth);
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(2));
    w.with_agent::<Probe, _>(a, |p, _| {
        assert_eq!(p.failed.len(), 1);
        assert_eq!(p.failed[0].1, ConnectError::Rejected);
    })
    .unwrap();
    assert_eq!(w.metrics().global().connect_failures, 1);
}

#[test]
fn out_of_range_connection_fails() {
    let mut w = ideal_world(6);
    let a = w.add_node(
        "a",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(Probe::default()),
    );
    let b = w.add_node(
        "b",
        MobilityModel::stationary(Point::new(500.0, 0.0)),
        &bt(),
        Box::new(Probe::accepting()),
    );
    w.run_for(SimDuration::from_millis(1));
    w.with_agent::<Probe, _>(a, |_, ctx| {
        ctx.connect(b, RadioTech::Bluetooth);
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(2));
    w.with_agent::<Probe, _>(a, |p, _| {
        assert_eq!(p.failed[0].1, ConnectError::OutOfRange);
    })
    .unwrap();
}

#[test]
fn mobility_breaks_links_and_loses_in_flight_messages() {
    let mut w = ideal_world(7);
    let a = w.add_node(
        "a",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(Probe::default()),
    );
    // b walks away at 2 m/s immediately; after ~5 s it is out of the 10 m
    // Bluetooth range.
    let b = w.add_node(
        "b",
        MobilityModel::walk(Point::new(1.0, 0.0), Point::new(200.0, 0.0), 2.0),
        &bt(),
        Box::new(Probe::accepting()),
    );
    w.run_for(SimDuration::from_millis(1));
    w.with_agent::<Probe, _>(a, |_, ctx| {
        ctx.connect(b, RadioTech::Bluetooth);
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(1));
    let link = w
        .with_agent::<Probe, _>(a, |p, _| p.connected.first().map(|c| c.1))
        .unwrap()
        .expect("link established before b left range");
    w.run_for(SimDuration::from_secs(30));
    w.with_agent::<Probe, _>(a, |p, _| {
        assert_eq!(p.disconnects.len(), 1);
        assert_eq!(p.disconnects[0], (link, DisconnectReason::OutOfRange));
    })
    .unwrap();
    assert!(w.metrics().global().links_broken >= 2);
    // Sending on the now-closed link is an error.
    let err = w
        .with_agent::<Probe, _>(a, |_, ctx| ctx.send(link, vec![1, 2, 3]))
        .unwrap();
    assert_eq!(err, Err(SendError::Closed));
}

#[test]
fn graceful_close_notifies_peer() {
    let mut w = ideal_world(8);
    let a = w.add_node(
        "a",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(Probe::default()),
    );
    let b = w.add_node(
        "b",
        MobilityModel::stationary(Point::new(2.0, 0.0)),
        &bt(),
        Box::new(Probe::accepting()),
    );
    w.run_for(SimDuration::from_millis(1));
    w.with_agent::<Probe, _>(a, |_, ctx| {
        ctx.connect(b, RadioTech::Bluetooth);
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(1));
    let link = w.with_agent::<Probe, _>(a, |p, _| p.connected[0].1).unwrap();
    w.with_agent::<Probe, _>(a, |_, ctx| ctx.close(link)).unwrap();
    w.run_for(SimDuration::from_secs(1));
    w.with_agent::<Probe, _>(b, |p, _| {
        assert_eq!(p.disconnects, vec![(link, DisconnectReason::PeerClosed)]);
    })
    .unwrap();
}

#[test]
fn crash_node_fails_links() {
    let mut w = ideal_world(9);
    let a = w.add_node(
        "a",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(Probe::default()),
    );
    let b = w.add_node(
        "b",
        MobilityModel::stationary(Point::new(2.0, 0.0)),
        &bt(),
        Box::new(Probe::accepting()),
    );
    w.run_for(SimDuration::from_millis(1));
    w.with_agent::<Probe, _>(a, |_, ctx| {
        ctx.connect(b, RadioTech::Bluetooth);
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(1));
    let link = w.with_agent::<Probe, _>(a, |p, _| p.connected[0].1).unwrap();
    w.crash_node(b);
    w.with_agent::<Probe, _>(a, |p, _| {
        assert_eq!(p.disconnects, vec![(link, DisconnectReason::PeerFailed)]);
    })
    .unwrap();
    assert!(!w.is_alive(b));
    // The dead node can no longer be driven.
    assert!(w.with_agent::<Probe, _>(b, |_, _| ()).is_none());
}

#[test]
fn quality_override_decays_and_breaks_link() {
    let mut w = ideal_world(10);
    let a = w.add_node(
        "a",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(Probe::default()),
    );
    let b = w.add_node(
        "b",
        MobilityModel::stationary(Point::new(2.0, 0.0)),
        &bt(),
        Box::new(Probe::accepting()),
    );
    w.run_for(SimDuration::from_millis(1));
    w.with_agent::<Probe, _>(a, |_, ctx| {
        ctx.connect(b, RadioTech::Bluetooth);
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(1));
    let link = w.with_agent::<Probe, _>(a, |p, _| p.connected[0].1).unwrap();
    // Start at 240 and decay 10 units per second: below 230 after 1 s,
    // zero (and therefore broken) after 24 s.
    w.set_link_quality_override(link, 240.0, 10.0);
    assert_eq!(w.link_quality(link), Some(240));
    w.run_for(SimDuration::from_secs(2));
    let q = w.link_quality(link).unwrap();
    assert!(q < 230, "quality should have decayed below threshold, got {q}");
    w.run_for(SimDuration::from_secs(30));
    w.with_agent::<Probe, _>(a, |p, _| {
        assert_eq!(p.disconnects.len(), 1);
    })
    .unwrap();
    assert_eq!(w.link_quality(link), None);
}

#[test]
fn gprs_dead_zone_blocks_connection() {
    let mut config = WorldConfig::ideal(11);
    config.gprs_dead_zones = vec![Rect::new(-5.0, -5.0, 5.0, 5.0)];
    let mut w = World::new(config);
    let inside = w.add_node(
        "inside",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &[RadioTech::Gprs],
        Box::new(Probe::default()),
    );
    let outside = w.add_node(
        "outside",
        MobilityModel::stationary(Point::new(100.0, 0.0)),
        &[RadioTech::Gprs],
        Box::new(Probe::accepting()),
    );
    w.run_for(SimDuration::from_millis(1));
    assert!(!w.in_range(inside, outside, RadioTech::Gprs));
    w.with_agent::<Probe, _>(inside, |_, ctx| {
        ctx.connect(outside, RadioTech::Gprs);
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(5));
    w.with_agent::<Probe, _>(inside, |p, _| {
        assert_eq!(p.failed[0].1, ConnectError::OutOfRange);
    })
    .unwrap();
    // Two nodes both outside the dead zone can talk regardless of distance.
    let far = w.add_node(
        "far",
        MobilityModel::stationary(Point::new(5000.0, 0.0)),
        &[RadioTech::Gprs],
        Box::new(Probe::accepting()),
    );
    w.run_for(SimDuration::from_millis(1));
    assert!(w.in_range(outside, far, RadioTech::Gprs));
}

#[test]
fn determinism_same_seed_same_outcome() {
    fn run(seed: u64) -> (u64, u64, VecDeque<u64>) {
        let mut w = World::new(WorldConfig::with_seed(seed));
        let a = w.add_node(
            "a",
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            &bt(),
            Box::new(Probe::default()),
        );
        let b = w.add_node(
            "b",
            MobilityModel::stationary(Point::new(6.0, 0.0)),
            &bt(),
            Box::new(Probe::accepting()),
        );
        w.run_for(SimDuration::from_millis(1));
        for _ in 0..10 {
            w.with_agent::<Probe, _>(a, |_, ctx| {
                ctx.connect(b, RadioTech::Bluetooth);
                ctx.start_inquiry(RadioTech::Bluetooth);
            })
            .unwrap();
            w.run_for(SimDuration::from_secs(20));
        }
        let qualities: VecDeque<u64> = w
            .with_agent::<Probe, _>(a, |p, _| {
                p.inquiry_results
                    .iter()
                    .flat_map(|(_, hits)| hits.iter().map(|h| h.quality as u64))
                    .collect()
            })
            .unwrap();
        (
            w.metrics().global().connects_established,
            w.metrics().global().connect_failures,
            qualities,
        )
    }
    assert_eq!(run(1234), run(1234));
    // Different seeds should usually differ in at least the sampled qualities.
    let a = run(1);
    let b = run(2);
    assert!(a.2 != b.2 || a.0 != b.0 || a.1 != b.1);
}

#[test]
fn world_accessors() {
    let mut w = ideal_world(12);
    let a = w.add_node(
        "alpha",
        MobilityModel::stationary(Point::new(1.0, 2.0)),
        &bt(),
        Box::new(Probe::default()),
    );
    assert_eq!(w.node_count(), 1);
    assert_eq!(w.node_name(a), Some("alpha"));
    assert_eq!(w.position_of(a), Some(Point::new(1.0, 2.0)));
    assert_eq!(w.node_ids().collect::<Vec<_>>(), vec![a]);
    assert!(w.links_of(a).is_empty());
    assert!(w.link_info(LinkId(0)).is_none());
    assert_eq!(w.now(), SimTime::ZERO);
    w.run_until(SimTime::from_secs(10));
    assert_eq!(w.now(), SimTime::from_secs(10));
    let idle_at = w.run_until_idle(SimTime::from_secs(100));
    assert!(idle_at <= SimTime::from_secs(100));
}

#[test]
fn grid_cell_defaults_to_smallest_finite_range() {
    let w = ideal_world(13);
    // Bluetooth's 10 m is the smallest finite range in the default set.
    assert_eq!(w.grid_cell_m(), 10.0);
    let mut config = WorldConfig::ideal(13);
    config.grid_cell_m = Some(25.0);
    let w = World::new(config);
    assert_eq!(w.grid_cell_m(), 25.0);
}

#[test]
fn neighbors_grid_matches_reference_under_mobility() {
    let mut w = ideal_world(14);
    let mut rng = SimRng::new(99);
    let area = Rect::square(120.0);
    for i in 0..60 {
        let start = Point::new(rng.uniform_f64(0.0, 120.0), rng.uniform_f64(0.0, 120.0));
        let mobility = if i % 3 == 0 {
            MobilityModel::stationary(start)
        } else {
            MobilityModel::RandomWaypoint {
                area,
                start,
                min_speed_mps: 0.5,
                max_speed_mps: 2.5,
                pause: SimDuration::from_secs(3),
            }
        };
        w.add_node(format!("n{i}"), mobility, &bt(), Box::new(Probe::default()));
    }
    for step in 0..20 {
        w.run_for(SimDuration::from_secs(7));
        for node in w.node_ids().collect::<Vec<_>>() {
            let grid = w.neighbors_in_range(node, RadioTech::Bluetooth);
            let reference = w.neighbors_in_range_reference(node, RadioTech::Bluetooth);
            assert_eq!(grid, reference, "grid/reference diverged for {node} at step {step}");
        }
    }
}

#[test]
fn closed_links_retire_once_drained_but_stay_visible() {
    let mut w = ideal_world(15);
    let a = w.add_node(
        "a",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(Probe::default()),
    );
    let b = w.add_node(
        "b",
        MobilityModel::stationary(Point::new(2.0, 0.0)),
        &bt(),
        Box::new(Probe::accepting()),
    );
    w.run_for(SimDuration::from_millis(1));
    w.with_agent::<Probe, _>(a, |_, ctx| {
        ctx.connect(b, RadioTech::Bluetooth);
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(1));
    let link = w.with_agent::<Probe, _>(a, |p, _| p.connected[0].1).unwrap();
    assert_eq!(w.active_link_count(), 1);
    assert_eq!(w.retired_link_count(), 0);
    // Close with a payload still in flight: the payload must flush first.
    w.with_agent::<Probe, _>(a, |_, ctx| {
        ctx.send(link, b"flush me".to_vec()).unwrap();
        ctx.close(link);
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(2));
    w.with_agent::<Probe, _>(b, |p, _| {
        assert_eq!(p.messages.len(), 1, "in-flight payload flushed before close");
        assert_eq!(p.disconnects, vec![(link, DisconnectReason::PeerClosed)]);
    })
    .unwrap();
    // The entry has left the active table ...
    assert_eq!(w.active_link_count(), 0);
    assert_eq!(w.retired_link_count(), 1);
    // ... but every read API still answers exactly as before.
    let info = w.link_info(link).expect("retired link still has a snapshot");
    assert!(!info.open);
    assert_eq!(info.initiator, a);
    assert_eq!(info.acceptor, b);
    assert_eq!(w.links_of(a).len(), 1);
    assert_eq!(w.links_of(b).len(), 1);
    let err = w.with_agent::<Probe, _>(a, |_, ctx| ctx.send(link, vec![1])).unwrap();
    assert_eq!(err, Err(SendError::Closed), "retired links still classify as closed");
    assert_eq!(w.link_quality(link), None);
}

#[test]
fn tombstones_compact_once_both_endpoints_crash_past_retirement() {
    let mut w = ideal_world(17);
    let a = w.add_node(
        "a",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(Probe::default()),
    );
    let b = w.add_node(
        "b",
        MobilityModel::stationary(Point::new(2.0, 0.0)),
        &bt(),
        Box::new(Probe::accepting()),
    );
    w.run_for(SimDuration::from_millis(1));
    w.with_agent::<Probe, _>(a, |_, ctx| {
        ctx.connect(b, RadioTech::Bluetooth);
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(1));
    let link = w.with_agent::<Probe, _>(a, |p, _| p.connected[0].1).unwrap();
    w.with_agent::<Probe, _>(a, |_, ctx| ctx.close(link)).unwrap();
    w.run_for(SimDuration::from_secs(1));
    assert_eq!(w.retired_link_count(), 1);
    assert_eq!(w.compacted_link_count(), 0);

    // One endpoint crashing is not enough: the surviving peer's agent could
    // still hold the LinkId, so the tombstone must keep answering.
    w.crash_node(a);
    assert_eq!(w.retired_link_count(), 1, "peer b never crashed; tombstone must stay");
    assert!(w.link_info(link).is_some());
    w.restart_node(a);

    // Once the second endpoint crashes past the retirement epochs, no live
    // agent can name the link any more: the tombstone and its by_node index
    // entries are reclaimed for good.
    w.crash_node(b);
    assert_eq!(w.retired_link_count(), 0);
    assert_eq!(w.compacted_link_count(), 1);
    assert!(w.link_info(link).is_none());
    assert!(w.links_of(a).is_empty());
    assert!(w.links_of(b).is_empty());
}

#[test]
fn physically_broken_links_retire_after_loss() {
    let mut w = ideal_world(16);
    let a = w.add_node(
        "a",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &bt(),
        Box::new(Probe::default()),
    );
    let b = w.add_node(
        "b",
        MobilityModel::walk(Point::new(1.0, 0.0), Point::new(300.0, 0.0), 4.0),
        &bt(),
        Box::new(Probe::accepting()),
    );
    w.run_for(SimDuration::from_millis(1));
    w.with_agent::<Probe, _>(a, |_, ctx| {
        ctx.connect(b, RadioTech::Bluetooth);
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(1));
    assert_eq!(w.active_link_count(), 1);
    w.run_for(SimDuration::from_secs(60));
    // Out of range: the link broke, was never gracefully closed, and has
    // fully retired; no stale entries churn the active table.
    assert_eq!(w.active_link_count(), 0);
    assert_eq!(w.retired_link_count(), 1);
    assert!(w.metrics().global().links_broken >= 2);
}
