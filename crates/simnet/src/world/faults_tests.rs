//! World-level tests of the fault-injection subsystem: crash/restart
//! lifecycle, epoch guards, radio outages and loss bursts.

use std::any::Any;

use super::*;
use crate::faults::{FaultPlan, LifecycleKind};
use crate::node::{ConnectError, DisconnectReason, IncomingConnection, InquiryHit};

/// A probe that records lives: how often it started, restarted, what it saw.
#[derive(Default)]
struct FaultProbe {
    starts: usize,
    restarts: usize,
    timers: Vec<TimerToken>,
    inquiry_hits: Vec<Vec<NodeId>>,
    connected: Vec<(LinkId, NodeId)>,
    failed: Vec<ConnectError>,
    messages: Vec<Vec<u8>>,
    disconnects: Vec<(NodeId, DisconnectReason)>,
}

impl NodeAgent for FaultProbe {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.starts += 1;
    }
    fn on_restart(&mut self, ctx: &mut NodeCtx<'_>) {
        self.restarts += 1;
        self.on_start(ctx);
    }
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, timer: TimerToken) {
        self.timers.push(timer);
    }
    fn on_inquiry_complete(&mut self, _ctx: &mut NodeCtx<'_>, _tech: RadioTech, hits: Vec<InquiryHit>) {
        self.inquiry_hits.push(hits.into_iter().map(|h| h.node).collect());
    }
    fn on_incoming_connection(&mut self, _ctx: &mut NodeCtx<'_>, _incoming: IncomingConnection) -> bool {
        true
    }
    fn on_connected(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        _attempt: AttemptId,
        link: LinkId,
        peer: NodeId,
        _tech: RadioTech,
    ) {
        self.connected.push((link, peer));
    }
    fn on_connect_failed(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        _attempt: AttemptId,
        _peer: NodeId,
        _tech: RadioTech,
        error: ConnectError,
    ) {
        self.failed.push(error);
    }
    fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _link: LinkId, _from: NodeId, payload: Payload) {
        self.messages.push(payload.to_vec());
    }
    fn on_disconnected(&mut self, _ctx: &mut NodeCtx<'_>, _link: LinkId, peer: NodeId, reason: DisconnectReason) {
        self.disconnects.push((peer, reason));
    }
}

fn bt() -> [RadioTech; 1] {
    [RadioTech::Bluetooth]
}

fn probe_world(seed: u64) -> World {
    World::new(WorldConfig::ideal(seed))
}

fn add_probe(w: &mut World, name: &str, x: f64) -> NodeId {
    w.add_node(
        name,
        MobilityModel::stationary(Point::new(x, 0.0)),
        &bt(),
        Box::new(FaultProbe::default()),
    )
}

/// Connects `a` to `b` and returns the established link id.
fn connect_pair(w: &mut World, a: NodeId, b: NodeId) -> LinkId {
    w.with_agent::<FaultProbe, _>(a, |_, ctx| {
        ctx.connect(b, RadioTech::Bluetooth);
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(5));
    w.with_agent::<FaultProbe, _>(a, |p, _| p.connected.last().map(|(l, _)| *l))
        .unwrap()
        .expect("pair must connect")
}

#[test]
fn scheduled_crash_breaks_links_and_notifies_the_peer() {
    let mut w = probe_world(11);
    let a = add_probe(&mut w, "a", 0.0);
    let b = add_probe(&mut w, "b", 5.0);
    w.run_for(SimDuration::from_secs(1));
    let link = connect_pair(&mut w, a, b);
    w.install_fault_plan(b, FaultPlan::new().crash_at(SimTime::from_secs(30)));
    w.run_for(SimDuration::from_secs(60));
    assert!(!w.is_alive(b));
    assert!(!w.link_info(link).unwrap().open);
    w.with_agent::<FaultProbe, _>(a, |p, _| {
        assert_eq!(p.disconnects, vec![(b, DisconnectReason::PeerFailed)]);
    })
    .unwrap();
    // The crashed node's agent is unreachable while down.
    assert!(w.with_agent::<FaultProbe, _>(b, |_, _| ()).is_none());
    let stats = w.fault_stats();
    assert_eq!(stats.crashes, 1);
    assert_eq!(stats.restarts, 0);
    assert_eq!(
        w.lifecycle_events(),
        &[LifecycleEvent {
            at: SimTime::from_secs(30),
            node: b,
            kind: LifecycleKind::NodeDown,
        }]
    );
}

#[test]
fn restart_rebirths_the_agent_and_reenters_the_spatial_index() {
    let mut w = probe_world(12);
    let a = add_probe(&mut w, "a", 0.0);
    let b = add_probe(&mut w, "b", 5.0);
    w.install_fault_plan(
        b,
        FaultPlan::new().crash_for(SimTime::from_secs(10), SimDuration::from_secs(10)),
    );
    w.run_for(SimDuration::from_secs(15));
    assert!(!w.is_alive(b));
    assert!(w.neighbors_in_range(a, RadioTech::Bluetooth).is_empty());
    w.run_for(SimDuration::from_secs(10));
    assert!(w.is_alive(b));
    // Back in the grid: both the indexed path and the oracle see it.
    assert_eq!(w.neighbors_in_range(a, RadioTech::Bluetooth), vec![b]);
    assert_eq!(w.neighbors_in_range_reference(a, RadioTech::Bluetooth), vec![b]);
    w.with_agent::<FaultProbe, _>(b, |p, _| {
        assert_eq!(p.restarts, 1);
        assert_eq!(p.starts, 2, "the default on_restart runs on_start again");
    })
    .unwrap();
    let stats = w.fault_stats();
    assert_eq!((stats.crashes, stats.restarts), (1, 1));
    let kinds: Vec<LifecycleKind> = w.take_lifecycle_events().into_iter().map(|e| e.kind).collect();
    assert_eq!(kinds, vec![LifecycleKind::NodeDown, LifecycleKind::NodeUp]);
    assert!(w.lifecycle_events().is_empty(), "take drains the stream");
}

#[test]
fn timers_and_inquiries_from_a_previous_life_never_fire() {
    let mut w = probe_world(13);
    let a = add_probe(&mut w, "a", 0.0);
    let _b = add_probe(&mut w, "b", 5.0);
    w.run_for(SimDuration::from_secs(1));
    // Schedule a timer and start an inquiry, then crash before they land.
    w.with_agent::<FaultProbe, _>(a, |_, ctx| {
        ctx.schedule(SimDuration::from_secs(30), TimerToken(7));
        ctx.start_inquiry(RadioTech::Bluetooth);
    })
    .unwrap();
    w.crash_node(a);
    w.restart_node(a);
    w.run_for(SimDuration::from_secs(60));
    w.with_agent::<FaultProbe, _>(a, |p, ctx| {
        assert!(p.timers.is_empty(), "pre-crash timer leaked into the new life");
        assert!(p.inquiry_hits.is_empty(), "pre-crash inquiry leaked into the new life");
        // The new life schedules its own timer, which does fire.
        ctx.schedule(SimDuration::from_secs(5), TimerToken(8));
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(10));
    w.with_agent::<FaultProbe, _>(a, |p, _| assert_eq!(p.timers, vec![TimerToken(8)]))
        .unwrap();
}

#[test]
fn connect_attempts_from_a_previous_life_resolve_to_nothing() {
    let mut w = probe_world(14);
    let a = add_probe(&mut w, "a", 0.0);
    let b = add_probe(&mut w, "b", 5.0);
    w.run_for(SimDuration::from_secs(1));
    w.with_agent::<FaultProbe, _>(a, |_, ctx| {
        ctx.connect(b, RadioTech::Bluetooth);
    })
    .unwrap();
    // Crash and restart before the attempt resolves.
    w.crash_node(a);
    w.restart_node(a);
    w.run_for(SimDuration::from_secs(30));
    w.with_agent::<FaultProbe, _>(a, |p, _| {
        assert!(p.connected.is_empty(), "stale attempt must not connect the new life");
        assert!(p.failed.is_empty(), "stale attempt must not fail into the new life");
    })
    .unwrap();
}

#[test]
fn radio_outage_breaks_links_like_range_loss_and_hides_the_node() {
    let mut w = probe_world(15);
    let a = add_probe(&mut w, "a", 0.0);
    let b = add_probe(&mut w, "b", 5.0);
    w.run_for(SimDuration::from_secs(1));
    let link = connect_pair(&mut w, a, b);
    w.install_fault_plan(
        b,
        FaultPlan::new().radio_outage(RadioTech::Bluetooth, SimTime::from_secs(30), SimDuration::from_secs(30)),
    );
    w.run_for(SimDuration::from_secs(40));
    assert!(w.is_alive(b), "an outage is not a crash");
    assert!(!w.radio_enabled(b, RadioTech::Bluetooth));
    assert!(!w.link_info(link).unwrap().open);
    // Both endpoints see the break, with the range-loss reason.
    for node in [a, b] {
        w.with_agent::<FaultProbe, _>(node, |p, _| {
            assert_eq!(p.disconnects.len(), 1);
            assert_eq!(p.disconnects[0].1, DisconnectReason::OutOfRange);
        })
        .unwrap();
    }
    // Invisible to discovery and unreachable while dark.
    assert!(w.neighbors_in_range(a, RadioTech::Bluetooth).is_empty());
    w.with_agent::<FaultProbe, _>(a, |_, ctx| {
        ctx.connect(b, RadioTech::Bluetooth);
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(5));
    w.with_agent::<FaultProbe, _>(a, |p, _| {
        assert_eq!(p.failed, vec![ConnectError::Unreachable]);
    })
    .unwrap();
    // After the outage the node is reachable again.
    w.run_for(SimDuration::from_secs(20));
    assert!(w.radio_enabled(b, RadioTech::Bluetooth));
    assert_eq!(w.neighbors_in_range(a, RadioTech::Bluetooth), vec![b]);
    let stats = w.fault_stats();
    assert_eq!((stats.radio_outages, stats.radio_restores), (1, 1));
}

#[test]
fn radio_outage_is_per_technology() {
    let mut w = probe_world(16);
    let techs = [RadioTech::Bluetooth, RadioTech::Wlan];
    let a = w.add_node(
        "a",
        MobilityModel::stationary(Point::new(0.0, 0.0)),
        &techs,
        Box::new(FaultProbe::default()),
    );
    let b = w.add_node(
        "b",
        MobilityModel::stationary(Point::new(5.0, 0.0)),
        &techs,
        Box::new(FaultProbe::default()),
    );
    w.run_for(SimDuration::from_secs(1));
    w.set_radio_enabled(b, RadioTech::Bluetooth, false);
    assert!(w.neighbors_in_range(a, RadioTech::Bluetooth).is_empty());
    assert_eq!(w.neighbors_in_range(a, RadioTech::Wlan), vec![b]);
    // Toggling a technology the node does not carry is a no-op.
    w.set_radio_enabled(b, RadioTech::Gprs, false);
    assert_eq!(w.fault_stats().radio_outages, 1);
}

#[test]
fn loss_burst_drops_payloads_only_inside_the_window() {
    let mut w = probe_world(17);
    let a = add_probe(&mut w, "a", 0.0);
    let b = add_probe(&mut w, "b", 5.0);
    w.run_for(SimDuration::from_secs(1));
    let link = connect_pair(&mut w, a, b);
    w.install_fault_plan(
        a,
        FaultPlan::new().loss_burst(SimTime::from_secs(100), SimTime::from_secs(200), 1.0, 0.0),
    );
    // Before the window: delivered.
    w.run_until(SimTime::from_secs(50));
    w.with_agent::<FaultProbe, _>(a, |_, ctx| ctx.send(link, b"before".to_vec()).unwrap())
        .unwrap();
    // Inside: dropped.
    w.run_until(SimTime::from_secs(150));
    w.with_agent::<FaultProbe, _>(a, |_, ctx| ctx.send(link, b"during".to_vec()).unwrap())
        .unwrap();
    // After: delivered again.
    w.run_until(SimTime::from_secs(250));
    w.with_agent::<FaultProbe, _>(a, |_, ctx| ctx.send(link, b"after".to_vec()).unwrap())
        .unwrap();
    w.run_for(SimDuration::from_secs(5));
    w.with_agent::<FaultProbe, _>(b, |p, _| {
        assert_eq!(p.messages, vec![b"before".to_vec(), b"after".to_vec()]);
    })
    .unwrap();
    assert_eq!(w.fault_stats().payloads_dropped, 1);
    assert_eq!(w.metrics().global().messages_lost, 1);
}

#[test]
fn link_burst_hits_only_the_targeted_pair() {
    // Node `a` sits between `b` (the flaky pair) and `c` (a clean one). A
    // `link_burst(b, ..)` on `a` must drop only the a<->b traffic; a<->c
    // payloads sent at the very same instants sail through.
    let mut w = probe_world(19);
    let a = add_probe(&mut w, "a", 0.0);
    let b = add_probe(&mut w, "b", 5.0);
    let c = add_probe(&mut w, "c", -5.0);
    w.run_for(SimDuration::from_secs(1));
    let link_ab = connect_pair(&mut w, a, b);
    let link_ac = connect_pair(&mut w, a, c);
    w.install_fault_plan(
        a,
        FaultPlan::new().link_burst(b, SimTime::from_secs(100), SimTime::from_secs(200), 1.0, 0.0),
    );
    // Inside the window: both directions of a<->b die, a<->c is untouched.
    w.run_until(SimTime::from_secs(150));
    w.with_agent::<FaultProbe, _>(a, |_, ctx| {
        ctx.send(link_ab, b"to-b".to_vec()).unwrap();
        ctx.send(link_ac, b"to-c".to_vec()).unwrap();
    })
    .unwrap();
    w.with_agent::<FaultProbe, _>(b, |_, ctx| ctx.send(link_ab, b"from-b".to_vec()).unwrap())
        .unwrap();
    w.with_agent::<FaultProbe, _>(c, |_, ctx| ctx.send(link_ac, b"from-c".to_vec()).unwrap())
        .unwrap();
    // After the window the pair works again.
    w.run_until(SimTime::from_secs(250));
    w.with_agent::<FaultProbe, _>(a, |_, ctx| ctx.send(link_ab, b"late".to_vec()).unwrap())
        .unwrap();
    w.run_for(SimDuration::from_secs(5));
    w.with_agent::<FaultProbe, _>(b, |p, _| {
        assert_eq!(p.messages, vec![b"late".to_vec()], "in-window a->b must drop");
    })
    .unwrap();
    w.with_agent::<FaultProbe, _>(c, |p, _| {
        assert_eq!(p.messages, vec![b"to-c".to_vec()], "the clean pair must deliver");
    })
    .unwrap();
    w.with_agent::<FaultProbe, _>(a, |p, _| {
        assert_eq!(p.messages, vec![b"from-c".to_vec()], "only b's reply is dropped");
    })
    .unwrap();
    assert_eq!(w.fault_stats().payloads_dropped, 2);
}

#[test]
fn corruption_bursts_flip_bits_but_still_deliver() {
    let mut w = probe_world(18);
    let a = add_probe(&mut w, "a", 0.0);
    let b = add_probe(&mut w, "b", 5.0);
    w.run_for(SimDuration::from_secs(1));
    let link = connect_pair(&mut w, a, b);
    w.install_fault_plan(b, FaultPlan::new().loss_burst(SimTime::ZERO, SimTime::MAX, 0.0, 1.0));
    let original = vec![0u8; 64];
    w.with_agent::<FaultProbe, _>(a, |_, ctx| ctx.send(link, original.clone()).unwrap())
        .unwrap();
    w.run_for(SimDuration::from_secs(5));
    w.with_agent::<FaultProbe, _>(b, |p, _| {
        assert_eq!(p.messages.len(), 1, "corrupted payloads are still delivered");
        assert_eq!(p.messages[0].len(), original.len());
        assert_ne!(p.messages[0], original, "bits must have flipped");
    })
    .unwrap();
    assert!(w.fault_stats().payloads_corrupted >= 1);
}

#[test]
fn same_seed_and_plan_reproduce_the_same_fault_run() {
    let run = |seed: u64| {
        let mut w = probe_world(seed);
        let nodes: Vec<NodeId> = (0..8)
            .map(|i| add_probe(&mut w, &format!("n{i}"), i as f64 * 4.0))
            .collect();
        let planner = SimRng::new(seed ^ 0xC0FFEE);
        for (i, node) in nodes.iter().enumerate() {
            let mut rng = planner.derive(i as u64);
            let plan = FaultPlan::churn(
                SimTime::from_secs(300),
                SimDuration::from_secs(60),
                SimDuration::from_secs(10),
                &mut rng,
            )
            .loss_burst(SimTime::from_secs(100), SimTime::from_secs(140), 0.3, 0.3);
            w.install_fault_plan(*node, plan);
        }
        // Every node keeps trying to talk to its right neighbour.
        for round in 0..30 {
            w.run_for(SimDuration::from_secs(10));
            for pair in nodes.windows(2) {
                let (from, to) = (pair[0], pair[1]);
                w.with_agent::<FaultProbe, _>(from, |p, ctx| {
                    if let Some((link, peer)) = p.connected.last().copied() {
                        if peer == to {
                            let _ = ctx.send(link, vec![round as u8; 16]);
                            return;
                        }
                    }
                    ctx.connect(to, RadioTech::Bluetooth);
                });
            }
        }
        w.run_for(SimDuration::from_secs(10));
        (w.fault_stats(), *w.metrics().global(), w.lifecycle_events().len())
    };
    let first = run(77);
    let second = run(77);
    assert_eq!(first, second, "same seed + same plans must reproduce exactly");
    assert!(first.0.crashes > 0, "the churn plans must actually crash nodes");
    let other = run(78);
    assert_ne!(first, other, "different seeds should diverge");
}

#[test]
fn flapping_link_breaks_and_blocks_the_pair_periodically() {
    let mut w = probe_world(21);
    let a = add_probe(&mut w, "a", 0.0);
    let b = add_probe(&mut w, "b", 5.0);
    let c = add_probe(&mut w, "c", 9.0);
    w.run_for(SimDuration::from_secs(1));
    let flaky = connect_pair(&mut w, a, b);
    let clean = connect_pair(&mut w, a, c);
    // 10 s period, up only 40% of it: over two minutes the a-b link must
    // break repeatedly while a-c stays up throughout.
    w.install_fault_plan(a, FaultPlan::new().flapping_link(b, SimDuration::from_secs(10), 0.4));
    w.run_for(SimDuration::from_secs(120));
    assert!(!w.link_info(flaky).unwrap().open, "a 40% duty link cannot stay up");
    assert!(w.link_info(clean).unwrap().open, "the untouched pair must survive");
    let (breaks, reasons_ok) = w
        .with_agent::<FaultProbe, _>(a, |p, _| {
            let from_b: Vec<_> = p.disconnects.iter().filter(|(peer, _)| *peer == b).collect();
            (
                from_b.len(),
                from_b.iter().all(|(_, r)| *r == DisconnectReason::OutOfRange),
            )
        })
        .unwrap();
    assert_eq!(breaks, 1, "only the first break: nobody re-dialed");
    assert!(reasons_ok, "flap breaks must look like range losses");

    // Redialing during a down phase fails with OutOfRange; over enough
    // retries both outcomes appear and successes reconnect the pair.
    let mut successes = 0usize;
    let mut failures = 0usize;
    for _ in 0..24 {
        let already = w
            .with_agent::<FaultProbe, _>(a, |p, _| (p.connected.len(), p.failed.len()))
            .unwrap();
        w.with_agent::<FaultProbe, _>(a, |_, ctx| {
            ctx.connect(b, RadioTech::Bluetooth);
        })
        .unwrap();
        w.run_for(SimDuration::from_secs(5));
        let now = w
            .with_agent::<FaultProbe, _>(a, |p, _| (p.connected.len(), p.failed.len()))
            .unwrap();
        successes += now.0 - already.0;
        failures += now.1 - already.1;
    }
    assert!(successes > 0, "up phases must admit reconnects");
    assert!(failures > 0, "down phases must refuse connects");
    w.with_agent::<FaultProbe, _>(a, |p, _| {
        assert!(
            p.failed.iter().all(|e| *e == ConnectError::OutOfRange),
            "flap refusals use range-loss semantics: {:?}",
            p.failed
        );
    })
    .unwrap();
}
